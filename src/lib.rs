//! # fairjob — Exploring Fairness of Ranking in Online Job Marketplaces
//!
//! Facade crate re-exporting the whole workspace. See the individual
//! crates for details:
//!
//! * [`emd`] — Earth Mover's Distance solvers.
//! * [`hist`] — histograms and histogram distances.
//! * [`store`] — the columnar worker store.
//! * [`marketplace`] — the crowdsourcing-platform simulation.
//! * [`core`] — the most-unfair-partitioning search (the paper's
//!   contribution).
//! * [`repair`] — bias repair (quantile alignment and quota re-ranking).
//!
//! # End-to-end example
//!
//! ```
//! use fairjob::core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
//! use fairjob::core::{AuditConfig, AuditContext};
//! use fairjob::marketplace::scoring::{RuleBasedScore, ScoringFunction};
//! use fairjob::marketplace::{bucketise_numeric_protected, generate_uniform};
//! use fairjob::repair::{repair_scores, RepairConfig, RepairTarget};
//!
//! // 1. A simulated worker population (the paper's AMT-like schema).
//! let mut workers = generate_uniform(300, 42);
//! bucketise_numeric_protected(&mut workers)?;
//!
//! // 2. A scoring function that discriminates by design (f6).
//! let scores = RuleBasedScore::f6(7).score_all(&workers)?;
//!
//! // 3. Audit: find the most-unfair partitioning.
//! let ctx = AuditContext::new(&workers, &scores, AuditConfig::default())?;
//! let audit = Balanced::new(AttributeChoice::Worst).run(&ctx)?;
//! assert!(audit.unfairness > 0.7, "f6 separates genders by ~0.8");
//!
//! // 4. Repair: quantile-align the groups the audit found.
//! let groups: Vec<_> = audit.partitioning.partitions().iter().map(|p| p.rows.clone()).collect();
//! let repaired = repair_scores(
//!     &scores,
//!     &groups,
//!     &RepairConfig { lambda: 1.0, target: RepairTarget::Median },
//! )?;
//!
//! // 5. The audited partitioning is now fair.
//! let rctx = AuditContext::new(&workers, &repaired, AuditConfig::default())?;
//! let parts: Vec<_> = groups
//!     .iter()
//!     .map(|g| rctx.partition(fairjob::store::Predicate::always(), g.clone()))
//!     .collect();
//! assert!(rctx.unfairness(&parts)? < 0.05);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use fairjob_core as core;
pub use fairjob_emd as emd;
pub use fairjob_hist as hist;
pub use fairjob_marketplace as marketplace;
pub use fairjob_repair as repair;
pub use fairjob_serve as serve;
pub use fairjob_store as store;
pub use fairjob_stream as stream;
