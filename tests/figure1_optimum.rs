//! Figure 1 reproduction: the toy example's optimum partitioning is
//! {Male-English, Male-Indian, Male-Other, Female}, and the search
//! algorithms relate to it as expected.

use fairjob::core::algorithms::exhaustive::{exhaustive_cells, ExhaustiveTree};
use fairjob::core::algorithms::{
    balanced::Balanced, beam::Beam, unbalanced::Unbalanced, Algorithm, AttributeChoice,
};
use fairjob::core::{AuditConfig, AuditContext};
use fairjob::marketplace::toy::toy_workers;

fn figure1_partition_count(result: &fairjob::core::AuditResult) -> (usize, usize) {
    let mut whole = 0;
    let mut split = 0;
    for p in result.partitioning.partitions() {
        match p.predicate.constraints().len() {
            1 => whole += 1,
            2 => split += 1,
            _ => {}
        }
    }
    (whole, split)
}

#[test]
fn exhaustive_tree_finds_the_figure() {
    let (t, scores) = toy_workers();
    let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
    let result = ExhaustiveTree::new(10_000).run(&ctx).unwrap();
    assert_eq!(result.partitioning.len(), 4);
    assert_eq!(figure1_partition_count(&result), (1, 3));
    // Hand-computable optimum: pairs (ME,MI)=.4 (ME,MO)=.8 (ME,F)=.9
    // (MI,MO)=.4 (MI,F)=.5 (MO,F)=.1 -> avg 3.1/6.
    assert!((result.unfairness - 3.1 / 6.0).abs() < 1e-9);
}

#[test]
fn unbalanced_recovers_the_figure_greedily() {
    let (t, scores) = toy_workers();
    let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
    let exhaustive = ExhaustiveTree::new(10_000).run(&ctx).unwrap();
    let unbalanced = Unbalanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
    assert!((unbalanced.unfairness - exhaustive.unfairness).abs() < 1e-9);
    assert_eq!(figure1_partition_count(&unbalanced), (1, 3));
}

#[test]
fn balanced_cannot_express_the_unbalanced_optimum() {
    // balanced splits *all* partitions per round, so the figure's
    // asymmetric tree is outside its space; it stops at the gender split.
    let (t, scores) = toy_workers();
    let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
    let balanced = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
    assert_eq!(balanced.partitioning.len(), 2);
    assert!((balanced.unfairness - 0.5).abs() < 1e-9);
    let exhaustive = ExhaustiveTree::new(10_000).run(&ctx).unwrap();
    assert!(balanced.unfairness < exhaustive.unfairness);
}

#[test]
fn heuristics_never_beat_the_exhaustive_tree_search() {
    let (t, scores) = toy_workers();
    let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
    let best = ExhaustiveTree::new(10_000).run(&ctx).unwrap().unfairness;
    let algorithms: Vec<Box<dyn Algorithm>> = vec![
        Box::new(Balanced::new(AttributeChoice::Worst)),
        Box::new(Balanced::new(AttributeChoice::Random { seed: 1 })),
        Box::new(Unbalanced::new(AttributeChoice::Worst)),
        Box::new(Unbalanced::new(AttributeChoice::Random { seed: 2 })),
        Box::new(Beam::new(4)),
    ];
    for algo in algorithms {
        let r = algo.run(&ctx).unwrap();
        assert!(
            r.unfairness <= best + 1e-9,
            "{} beat exhaustive?",
            r.algorithm
        );
    }
}

#[test]
fn cell_space_superset_bound_holds() {
    let (t, scores) = toy_workers();
    let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
    let tree = ExhaustiveTree::new(10_000).run(&ctx).unwrap();
    let cells = exhaustive_cells(&ctx, 1_000_000).unwrap();
    assert!(cells.unfairness >= tree.unfairness - 1e-12);
}

#[test]
fn more_bins_refine_but_preserve_the_figure() {
    let (t, scores) = toy_workers();
    for bins in [5, 10, 20, 50] {
        let ctx = AuditContext::new(&t, &scores, AuditConfig::with_bins(bins)).unwrap();
        let result = ExhaustiveTree::new(10_000).run(&ctx).unwrap();
        assert_eq!(
            figure1_partition_count(&result),
            (1, 3),
            "figure optimum should be stable at {bins} bins"
        );
    }
}
