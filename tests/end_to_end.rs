//! End-to-end integration tests: the full generate → score → audit →
//! repair pipeline across crates.

use fairjob::core::algorithms::{
    all_attributes::AllAttributes, balanced::Balanced, beam::Beam, unbalanced::Unbalanced,
    Algorithm, AttributeChoice,
};
use fairjob::core::{AuditConfig, AuditContext};
use fairjob::marketplace::scoring::{LinearScore, RuleBasedScore, ScoringFunction};
use fairjob::marketplace::{bucketise_numeric_protected, generate_uniform};
use fairjob::repair::{repair_scores, RepairConfig, RepairTarget};
use fairjob::store::{Predicate, RowSet};

fn population(n: usize, seed: u64) -> fairjob::store::Table {
    let mut workers = generate_uniform(n, seed);
    bucketise_numeric_protected(&mut workers).unwrap();
    workers
}

#[test]
fn every_algorithm_produces_a_valid_cover() {
    let workers = population(400, 1);
    let scores = LinearScore::alpha("f1", 0.5).score_all(&workers).unwrap();
    let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
    let algorithms: Vec<Box<dyn Algorithm>> = vec![
        Box::new(Balanced::new(AttributeChoice::Worst)),
        Box::new(Balanced::new(AttributeChoice::Random { seed: 2 })),
        Box::new(Unbalanced::new(AttributeChoice::Worst)),
        Box::new(Unbalanced::new(AttributeChoice::Random { seed: 3 })),
        Box::new(Unbalanced::new(AttributeChoice::Worst).with_cross_stopping()),
        Box::new(Unbalanced::new(AttributeChoice::Worst).with_ancestor_siblings()),
        Box::new(AllAttributes),
        Box::new(Beam::new(2)),
    ];
    for algo in algorithms {
        let result = algo.run(&ctx).unwrap();
        result
            .partitioning
            .validate(workers.len())
            .unwrap_or_else(|e| panic!("{}: {e}", result.algorithm));
        // Reported unfairness is recomputable from the partitioning.
        let recomputed = ctx.unfairness(result.partitioning.partitions()).unwrap();
        assert!(
            (recomputed - result.unfairness).abs() < 1e-9,
            "{}: reported {} vs recomputed {recomputed}",
            result.algorithm,
            result.unfairness
        );
        assert!(result.unfairness >= 0.0);
    }
}

#[test]
fn run_all_returns_results_in_input_order() {
    use fairjob::core::algorithms::{paper_algorithms, run_all};
    let workers = population(200, 13);
    let scores = LinearScore::alpha("f1", 0.5).score_all(&workers).unwrap();
    let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
    let algorithms = paper_algorithms(3);
    let refs: Vec<&dyn Algorithm> = algorithms.iter().map(|a| a.as_ref()).collect();
    let results = run_all(&ctx, &refs).unwrap();
    assert_eq!(results.len(), 5);
    let names: Vec<String> = results.iter().map(|r| r.algorithm.clone()).collect();
    assert_eq!(
        names,
        vec![
            "unbalanced",
            "r-unbalanced",
            "balanced",
            "r-balanced",
            "all-attributes"
        ]
    );
    for r in &results {
        r.partitioning.validate(workers.len()).unwrap();
    }
}

#[test]
fn audits_are_deterministic() {
    let workers = population(300, 4);
    let scores = LinearScore::alpha("f4", 1.0).score_all(&workers).unwrap();
    let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
    for _ in 0..2 {
        let a = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
        let b = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
        assert_eq!(a.unfairness, b.unfairness);
        assert_eq!(a.partitioning.len(), b.partitioning.len());
    }
}

#[test]
fn designed_bias_dominates_random_noise() {
    let workers = population(1000, 5);
    let random = LinearScore::alpha("f1", 0.5).score_all(&workers).unwrap();
    let biased = RuleBasedScore::f6(6).score_all(&workers).unwrap();
    let random_ctx = AuditContext::new(&workers, &random, AuditConfig::default()).unwrap();
    let biased_ctx = AuditContext::new(&workers, &biased, AuditConfig::default()).unwrap();
    let random_audit = Balanced::new(AttributeChoice::Worst)
        .run(&random_ctx)
        .unwrap();
    let biased_audit = Balanced::new(AttributeChoice::Worst)
        .run(&biased_ctx)
        .unwrap();
    assert!(
        biased_audit.unfairness > random_audit.unfairness + 0.3,
        "designed bias {:.3} should dominate noise {:.3}",
        biased_audit.unfairness,
        random_audit.unfairness
    );
    // And the audit pinpoints the designed attribute.
    let gender = workers.schema().index_of("gender").unwrap();
    assert_eq!(biased_audit.partitioning.attributes_used(), vec![gender]);
    assert!(
        (biased_audit.unfairness - 0.8).abs() < 0.05,
        "f6 separates genders by ~0.8"
    );
}

#[test]
fn repair_after_audit_eliminates_the_found_unfairness() {
    let workers = population(800, 7);
    let scores = RuleBasedScore::f7(8).score_all(&workers).unwrap();
    let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
    let audit = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
    assert!(audit.unfairness > 0.3);

    let groups: Vec<RowSet> = audit
        .partitioning
        .partitions()
        .iter()
        .map(|p| p.rows.clone())
        .collect();
    let repaired = repair_scores(
        &scores,
        &groups,
        &RepairConfig {
            lambda: 1.0,
            target: RepairTarget::Median,
        },
    )
    .unwrap();
    let rctx = AuditContext::new(&workers, &repaired, AuditConfig::default()).unwrap();
    let parts: Vec<_> = groups
        .iter()
        .map(|g| rctx.partition(Predicate::always(), g.clone()))
        .collect();
    let residual = rctx.unfairness(&parts).unwrap();
    assert!(
        residual < 0.02,
        "full repair should flatten the audited partitioning: {residual}"
    );
}

#[test]
fn partial_repair_interpolates_monotonically() {
    let workers = population(500, 9);
    let scores = RuleBasedScore::f6(10).score_all(&workers).unwrap();
    let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
    let audit = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
    let groups: Vec<RowSet> = audit
        .partitioning
        .partitions()
        .iter()
        .map(|p| p.rows.clone())
        .collect();
    let mut last = f64::INFINITY;
    for lambda in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let repaired = repair_scores(
            &scores,
            &groups,
            &RepairConfig {
                lambda,
                target: RepairTarget::Median,
            },
        )
        .unwrap();
        let rctx = AuditContext::new(&workers, &repaired, AuditConfig::default()).unwrap();
        let parts: Vec<_> = groups
            .iter()
            .map(|g| rctx.partition(Predicate::always(), g.clone()))
            .collect();
        let residual = rctx.unfairness(&parts).unwrap();
        assert!(
            residual <= last + 1e-6,
            "residual should fall as lambda grows: {residual} after {last}"
        );
        last = residual;
    }
}

#[test]
fn row_order_does_not_change_the_result() {
    // Build the same population in two different row orders.
    let workers = population(200, 11);
    let scores = LinearScore::alpha("f2", 0.3).score_all(&workers).unwrap();

    let mut reversed = fairjob::store::Table::new(workers.schema().clone());
    for row in (0..workers.len()).rev() {
        reversed.push_row(&workers.row(row).unwrap()).unwrap();
    }
    let reversed_scores: Vec<f64> = scores.iter().rev().copied().collect();

    let ctx_a = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
    let ctx_b = AuditContext::new(&reversed, &reversed_scores, AuditConfig::default()).unwrap();
    let a = Balanced::new(AttributeChoice::Worst).run(&ctx_a).unwrap();
    let b = Balanced::new(AttributeChoice::Worst).run(&ctx_b).unwrap();
    assert!((a.unfairness - b.unfairness).abs() < 1e-9);
    assert_eq!(a.partitioning.len(), b.partitioning.len());
}

#[test]
fn csv_roundtrip_preserves_audit_results() {
    let workers = population(150, 12);
    let text = fairjob::store::csv::to_csv(&workers);
    let back = fairjob::store::csv::from_csv(workers.schema().clone(), &text).unwrap();
    assert_eq!(workers, back);
    let scores = LinearScore::alpha("f1", 0.5).score_all(&back).unwrap();
    let ctx = AuditContext::new(&back, &scores, AuditConfig::default()).unwrap();
    assert!(Balanced::new(AttributeChoice::Worst).run(&ctx).is_ok());
}
