//! Fast versions of the paper's qualitative claims (the full-scale
//! regenerations live in `fairjob-bench`'s binaries):
//!
//! 1. Single-observed-attribute functions (f4, f5) look more unfair than
//!    blended ones (Tables 1–2).
//! 2. Larger populations look less unfair (Table 1 vs Table 2).
//! 3. Biased-by-design functions dominate random ones, and `balanced`
//!    recovers the designed attributes (Table 3).
//! 4. `balanced` is the slowest algorithm (runtime columns).

use fairjob::core::algorithms::{
    all_attributes::AllAttributes, balanced::Balanced, unbalanced::Unbalanced, Algorithm,
    AttributeChoice,
};
use fairjob::core::{AuditConfig, AuditContext};
use fairjob::marketplace::scoring::{LinearScore, RuleBasedScore, ScoringFunction};
use fairjob::marketplace::{bucketise_numeric_protected, generate_uniform};

fn population(n: usize, seed: u64) -> fairjob::store::Table {
    let mut workers = generate_uniform(n, seed);
    bucketise_numeric_protected(&mut workers).unwrap();
    workers
}

fn audit(workers: &fairjob::store::Table, f: &dyn ScoringFunction) -> fairjob::core::AuditResult {
    let scores = f.score_all(workers).unwrap();
    let ctx = AuditContext::new(workers, &scores, AuditConfig::default()).unwrap();
    Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap()
}

#[test]
fn single_attribute_functions_look_most_unfair() {
    let workers = population(500, 0xEDB7_2019);
    let f1 = audit(&workers, &LinearScore::alpha("f1", 0.5)).unfairness;
    let f4 = audit(&workers, &LinearScore::alpha("f4", 1.0)).unfairness;
    let f5 = audit(&workers, &LinearScore::alpha("f5", 0.0)).unfairness;
    assert!(f4 > f1, "f4 {f4} should exceed f1 {f1}");
    assert!(f5 > f1, "f5 {f5} should exceed f1 {f1}");
}

#[test]
fn larger_populations_look_less_unfair() {
    let small = population(250, 3);
    let large = population(2500, 3);
    let f = LinearScore::alpha("f1", 0.5);
    let u_small = audit(&small, &f).unfairness;
    let u_large = audit(&large, &f).unfairness;
    assert!(
        u_small > u_large,
        "noise-driven unfairness shrinks with population: {u_small} vs {u_large}"
    );
}

#[test]
fn biased_functions_dominate_and_are_localised() {
    let workers = population(2000, 0xF00D);
    let random = audit(&workers, &LinearScore::alpha("f1", 0.5));
    let f6 = audit(&workers, &RuleBasedScore::f6(1));
    let f7 = audit(&workers, &RuleBasedScore::f7(2));
    assert!(f6.unfairness > 2.0 * random.unfairness);
    assert!(f7.unfairness > random.unfairness);
    // f6 splits on gender alone; f7 on gender and country.
    let names = |r: &fairjob::core::AuditResult| {
        r.partitioning
            .attributes_used()
            .iter()
            .map(|&a| workers.schema().attribute(a).name.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(names(&f6), vec!["gender"]);
    let f7_names = names(&f7);
    assert!(f7_names.contains(&"gender".to_string()) && f7_names.contains(&"country".to_string()));
    assert_eq!(
        f7_names.len(),
        2,
        "f7 should not split beyond gender and country: {f7_names:?}"
    );
}

#[test]
fn balanced_is_the_slowest_heuristic() {
    let workers = population(1500, 5);
    let scores = LinearScore::alpha("f1", 0.5).score_all(&workers).unwrap();
    let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
    let balanced = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
    let unbalanced = Unbalanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
    let all_attrs = AllAttributes.run(&ctx).unwrap();
    assert!(
        balanced.elapsed > unbalanced.elapsed,
        "balanced {:?} should out-slow unbalanced {:?}",
        balanced.elapsed,
        unbalanced.elapsed
    );
    assert!(
        balanced.candidates_evaluated > all_attrs.candidates_evaluated,
        "balanced evaluates many candidate partitionings"
    );
}

#[test]
fn unbalanced_cross_stopping_oversplits_on_f6() {
    // The paper's Table 3 anomaly (unbalanced = 0.040 on f6, far below
    // balanced's 0.800) reproduces under the cross-pair reading of the
    // stopping rule: the algorithm keeps splitting inside each gender.
    let workers = population(1500, 7);
    let scores = RuleBasedScore::f6(3).score_all(&workers).unwrap();
    let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
    let literal = Unbalanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
    let cross = Unbalanced::new(AttributeChoice::Worst)
        .with_cross_stopping()
        .run(&ctx)
        .unwrap();
    assert!(
        (literal.unfairness - 0.8).abs() < 0.05,
        "union reading stops at gender"
    );
    assert!(
        cross.unfairness < 0.2 && cross.partitioning.len() > 10,
        "cross reading over-splits: {} with {} partitions",
        cross.unfairness,
        cross.partitioning.len()
    );
}

#[test]
fn five_algorithm_sweep_matches_paper_row_order() {
    use fairjob::core::algorithms::paper_algorithms;
    let names: Vec<String> = paper_algorithms(1).iter().map(|a| a.name()).collect();
    assert_eq!(
        names,
        vec![
            "unbalanced",
            "r-unbalanced",
            "balanced",
            "r-balanced",
            "all-attributes"
        ]
    );
}
