//! Cross-crate property tests: for random populations and scoring
//! functions, the audit algorithms maintain the Definition 1 invariants
//! and sit below the exhaustive optimum on small instances.

use fairjob::core::algorithms::exhaustive::ExhaustiveTree;
use fairjob::core::algorithms::{
    balanced::Balanced, unbalanced::Unbalanced, Algorithm, AttributeChoice,
};
use fairjob::core::{AuditConfig, AuditContext};
use fairjob::store::schema::{AttributeKind, Schema};
use fairjob::store::table::{Table, Value};
use proptest::prelude::*;

/// A small random population over a 3-attribute protected schema plus
/// per-row scores.
fn small_population() -> impl Strategy<Value = (Table, Vec<f64>)> {
    prop::collection::vec((0u32..2, 0u32..3, 0u32..2, 0.0f64..=1.0), 4..40).prop_map(|rows| {
        let schema = Schema::builder()
            .categorical("g", AttributeKind::Protected, &["a", "b"])
            .categorical("c", AttributeKind::Protected, &["x", "y", "z"])
            .categorical("l", AttributeKind::Protected, &["p", "q"])
            .numeric("score", AttributeKind::Observed, 0.0, 1.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        let mut scores = Vec::new();
        for (g, c, l, s) in rows {
            t.push_row(&[
                Value::cat(["a", "b"][g as usize]),
                Value::cat(["x", "y", "z"][c as usize]),
                Value::cat(["p", "q"][l as usize]),
                Value::num(s),
            ])
            .unwrap();
            scores.push(s);
        }
        (t, scores)
    })
}

/// The shrunk failure case checked into `invariants.proptest-regressions`
/// (seed `add957d7…`), reconstructed explicitly: the vendored proptest
/// shim does not replay regression files, so the case is pinned here.
/// Four rows where two partitions tie at zero distance (both all-zero
/// scores) — historically sensitive to the stopping rule's `>=`.
#[test]
fn regression_shrunk_tie_at_zero_distance() {
    let schema = Schema::builder()
        .categorical("g", AttributeKind::Protected, &["a", "b"])
        .categorical("c", AttributeKind::Protected, &["x", "y", "z"])
        .categorical("l", AttributeKind::Protected, &["p", "q"])
        .numeric("score", AttributeKind::Observed, 0.0, 1.0)
        .build()
        .unwrap();
    let mut t = Table::new(schema);
    let scores = vec![0.0, 0.0, 0.9935006775308379, 0.5146487029770269];
    for ((g, c), &s) in [("b", "x"), ("a", "x"), ("a", "y"), ("a", "x")]
        .iter()
        .zip(&scores)
    {
        t.push_row(&[Value::cat(g), Value::cat(c), Value::cat("p"), Value::num(s)])
            .unwrap();
    }
    let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
    let best = ExhaustiveTree::new(2_000_000).run(&ctx).unwrap().unfairness;
    for algo in [
        &Balanced::new(AttributeChoice::Worst) as &dyn Algorithm,
        &Balanced::new(AttributeChoice::Random { seed: 9 }),
        &Unbalanced::new(AttributeChoice::Worst),
        &Unbalanced::new(AttributeChoice::Random { seed: 10 }),
    ] {
        let r = algo.run(&ctx).unwrap();
        r.partitioning.validate(t.len()).unwrap();
        assert!(r.unfairness.is_finite() && r.unfairness >= 0.0);
        assert!(
            r.unfairness <= best + 1e-9,
            "{} above exhaustive",
            r.algorithm
        );
        let naive = ctx.unfairness(r.partitioning.partitions()).unwrap();
        assert!(
            (r.unfairness - naive).abs() < 1e-9,
            "{} engine/naive drift",
            r.algorithm
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn algorithms_always_produce_disjoint_covers((t, scores) in small_population()) {
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        for algo in [
            &Balanced::new(AttributeChoice::Worst) as &dyn Algorithm,
            &Balanced::new(AttributeChoice::Random { seed: 9 }),
            &Unbalanced::new(AttributeChoice::Worst),
            &Unbalanced::new(AttributeChoice::Random { seed: 10 }),
        ] {
            let result = algo.run(&ctx).unwrap();
            prop_assert!(result.partitioning.validate(t.len()).is_ok());
            prop_assert!(result.unfairness.is_finite() && result.unfairness >= 0.0);
        }
    }

    #[test]
    fn heuristics_bounded_by_exhaustive((t, scores) in small_population()) {
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let best = ExhaustiveTree::new(2_000_000).run(&ctx).unwrap().unfairness;
        for algo in [
            &Balanced::new(AttributeChoice::Worst) as &dyn Algorithm,
            &Unbalanced::new(AttributeChoice::Worst),
        ] {
            let r = algo.run(&ctx).unwrap();
            prop_assert!(
                r.unfairness <= best + 1e-9,
                "{} found {} above exhaustive {}", r.algorithm, r.unfairness, best
            );
        }
    }

    #[test]
    fn unfairness_is_bounded_by_max_bin_distance((t, scores) in small_population()) {
        // With 10 bins over [0,1] the largest possible EMD is 0.9.
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let r = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
        prop_assert!(r.unfairness <= 0.9 + 1e-12);
    }

    #[test]
    fn repair_preserves_bounds_order_and_identity((t, scores) in small_population()) {
        use fairjob::repair::{repair_scores, RepairConfig, RepairTarget};
        use fairjob::store::RowSet;
        let ctx = AuditContext::new(&t, &scores, AuditConfig::default()).unwrap();
        let audit = Balanced::new(AttributeChoice::Worst).run(&ctx).unwrap();
        let groups: Vec<RowSet> =
            audit.partitioning.partitions().iter().map(|p| p.rows.clone()).collect();
        // λ = 0 is the identity.
        let zero = repair_scores(&scores, &groups,
            &RepairConfig { lambda: 0.0, target: RepairTarget::Median }).unwrap();
        prop_assert_eq!(&zero, &scores);
        for lambda in [0.5, 1.0] {
            for target in [RepairTarget::Median, RepairTarget::Pooled] {
                let repaired =
                    repair_scores(&scores, &groups, &RepairConfig { lambda, target }).unwrap();
                // Repaired scores stay inside the original score range
                // (targets are interpolations of original scores, and
                // partial repair is a convex combination).
                let lo = scores.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                for &r in &repaired {
                    prop_assert!(r >= lo - 1e-12 && r <= hi + 1e-12);
                }
                // Within-group score order is preserved.
                for g in &groups {
                    let members: Vec<usize> = g.iter().collect();
                    for i in 0..members.len() {
                        for j in 0..members.len() {
                            if scores[members[i]] < scores[members[j]] {
                                prop_assert!(
                                    repaired[members[i]] <= repaired[members[j]] + 1e-12,
                                    "order broken within a group"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
