//! Bounded admission of concurrent audits.
//!
//! A resident daemon under heavy read traffic must refuse work it
//! cannot start, not queue it unboundedly: a queued audit holds a
//! session thread, and a deep queue turns overload into unbounded
//! latency for every client. [`AdmissionGate::try_acquire`] either
//! grants a permit immediately or returns the typed
//! [`ServeError::Overloaded`] rejection that the protocol maps to
//! `ERR overloaded …` — clients back off and retry.

use crate::error::ServeError;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A counting gate over in-flight audits. `max == 0` admits nothing
/// (useful to drain or to test rejection); permits release on drop.
#[derive(Debug)]
pub struct AdmissionGate {
    max: usize,
    inflight: AtomicUsize,
}

impl AdmissionGate {
    /// A gate admitting at most `max` concurrent holders.
    pub fn new(max: usize) -> Self {
        AdmissionGate {
            max,
            inflight: AtomicUsize::new(0),
        }
    }

    /// The configured bound.
    pub fn max(&self) -> usize {
        self.max
    }

    /// Holders right now.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Admit or reject, without blocking.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when `max` permits are already out.
    pub fn try_acquire(&self) -> Result<AdmissionPermit<'_>, ServeError> {
        let mut current = self.inflight.load(Ordering::SeqCst);
        loop {
            if current >= self.max {
                return Err(ServeError::Overloaded {
                    inflight: current,
                    max: self.max,
                });
            }
            match self.inflight.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Ok(AdmissionPermit { gate: self }),
                Err(observed) => current = observed,
            }
        }
    }
}

/// An admitted slot; dropping it frees the slot (also on unwind, so a
/// panicking audit cannot leak budget).
#[derive(Debug)]
pub struct AdmissionPermit<'g> {
    gate: &'g AdmissionGate,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_max_then_rejects_typed() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_acquire().unwrap();
        let b = gate.try_acquire().unwrap();
        assert_eq!(gate.inflight(), 2);
        match gate.try_acquire() {
            Err(ServeError::Overloaded {
                inflight: 2,
                max: 2,
            }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        drop(a);
        let c = gate.try_acquire().expect("slot freed on drop");
        drop(b);
        drop(c);
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn zero_budget_rejects_everything() {
        let gate = AdmissionGate::new(0);
        assert!(matches!(
            gate.try_acquire(),
            Err(ServeError::Overloaded {
                inflight: 0,
                max: 0
            })
        ));
    }

    #[test]
    fn contended_acquires_never_exceed_max() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let gate = Arc::new(AdmissionGate::new(3));
        let peak = Arc::new(AtomicUsize::new(0));
        let admitted = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (gate, peak, admitted) = (gate.clone(), peak.clone(), admitted.clone());
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if let Ok(_permit) = gate.try_acquire() {
                            admitted.fetch_add(1, Ordering::SeqCst);
                            peak.fetch_max(gate.inflight(), Ordering::SeqCst);
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert!(admitted.load(Ordering::SeqCst) > 0);
        assert_eq!(gate.inflight(), 0);
    }
}
