//! Errors of the serving layer.
//!
//! Protocol-visible failures ([`ServeError::code`]) render as
//! `ERR <code> <detail>` response lines; transport failures
//! ([`ServeError::Io`]) end the session or the accept loop.

use fairjob_core::AuditError;
use fairjob_stream::StreamError;
use std::fmt;

/// Errors from the resident audit daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure (bind, accept, read, write).
    Io(std::io::Error),
    /// The bounded in-flight audit budget is exhausted — the typed
    /// admission-control rejection. The request was *not* queued;
    /// clients should back off and retry.
    Overloaded {
        /// Audits in flight when the request arrived.
        inflight: usize,
        /// The configured bound.
        max: usize,
    },
    /// Another session currently owns the writer role; only a single
    /// writer session may append epochs.
    WriterBusy {
        /// Session id of the current writer.
        owner: u64,
    },
    /// A previous epoch failed mid-application; the writer view may
    /// hold a partial epoch and has been retired. Readers keep serving
    /// the last published snapshot; appending requires a restart.
    WriterPoisoned,
    /// A malformed request line or epoch payload.
    Protocol(String),
    /// A FairQL parse or analysis failure; `position` is the byte
    /// offset in the query text. Renders as
    /// `ERR parse <position> <message>`.
    Parse {
        /// Byte offset of the offending token in the query text.
        position: usize,
        /// What went wrong there.
        message: String,
    },
    /// A FairQL execution failure (the query was well-formed).
    Query(String),
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// Underlying stream-layer failure (event application, snapshots).
    Stream(StreamError),
    /// Underlying audit failure.
    Audit(AuditError),
}

impl ServeError {
    /// Stable machine-readable code used in `ERR <code> …` responses.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Io(_) => "io",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::WriterBusy { .. } => "writer-busy",
            ServeError::WriterPoisoned => "writer-poisoned",
            ServeError::Protocol(_) => "usage",
            ServeError::Parse { .. } => "parse",
            ServeError::Query(_) => "query",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::Stream(_) => "stream",
            ServeError::Audit(_) => "audit",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Overloaded { inflight, max } => {
                write!(f, "audit budget exhausted: {inflight}/{max} in flight")
            }
            ServeError::WriterBusy { owner } => {
                write!(f, "session {owner} holds the writer role")
            }
            ServeError::WriterPoisoned => {
                write!(
                    f,
                    "writer view retired after a failed epoch; restart to append"
                )
            }
            ServeError::Protocol(msg) => write!(f, "{msg}"),
            ServeError::Parse { position, message } => write!(f, "{position} {message}"),
            ServeError::Query(msg) => write!(f, "{msg}"),
            ServeError::ShuttingDown => write!(f, "server is draining"),
            ServeError::Stream(e) => write!(f, "stream: {e}"),
            ServeError::Audit(e) => write!(f, "audit: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<StreamError> for ServeError {
    fn from(e: StreamError) -> Self {
        ServeError::Stream(e)
    }
}

impl From<AuditError> for ServeError {
    fn from(e: AuditError) -> Self {
        ServeError::Audit(e)
    }
}
