//! The resident audit daemon.
//!
//! [`Server::start`] binds a TCP listener and serves the
//! `fairjob-serve v1` protocol ([`crate::protocol`]) until shut down.
//! Concurrency model:
//!
//! - **One writer, many readers.** The first session to send `EPOCH`
//!   claims the writer role for its lifetime; it owns the
//!   [`StreamAuditor`] and appends epochs through the warm incremental
//!   path. Everyone else gets `ERR writer-busy`.
//! - **Snapshot publication.** After each applied epoch the writer
//!   swaps a fresh [`StreamSnapshot`] behind an `Arc`; reader `AUDIT`s
//!   clone that `Arc` and audit off-lock, so a long audit never blocks
//!   ingest and an epoch application never blocks audits. Reader
//!   results are bit-identical to a cold offline audit of the same
//!   epoch (copy-on-write isolation: later writer mutations cannot
//!   reach a published snapshot).
//! - **Admission control.** At most `max_inflight` audits run at once;
//!   excess requests are rejected with `ERR overloaded` immediately
//!   instead of queueing ([`AdmissionGate`]).
//! - **Clean shutdown.** `SHUTDOWN`, [`Server::shutdown`], or a
//!   listener error set the drain flag; sessions notice within one
//!   poll interval, finish their current request, and the accept loop
//!   joins every session thread before returning — no `process::exit`
//!   mid-request.

use crate::admission::AdmissionGate;
use crate::error::ServeError;
use crate::protocol::{self, Request, PROTOCOL_HEADER};
use fairjob_core::algorithms::Algorithm;
use fairjob_core::pool::WorkerPool;
use fairjob_core::{AuditConfig, EngineStats};
use fairjob_fairql::{Defaults, QueryError, QueryOutput, Session, Source, WarmCache};
use fairjob_stream::{StreamAuditor, StreamSnapshot, StreamView};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a [`Server`] is run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Concurrent-audit budget; further `AUDIT`s get `ERR overloaded`.
    pub max_inflight: usize,
    /// Accept at most this many sessions, then stop listening and
    /// drain — `None` serves until [`Server::shutdown`]. Lets a CLI
    /// invocation serve a bounded workload and exit cleanly.
    pub max_sessions: Option<u64>,
    /// How often a blocked session read re-checks the drain flag.
    pub poll_interval: Duration,
    /// Seed handed to `QUERY` sessions for randomised algorithms named
    /// in `USING` clauses (the CLI threads its `--seed` through).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 4,
            max_sessions: None,
            poll_interval: Duration::from_millis(100),
            seed: 0xBEEF,
        }
    }
}

/// Monotonic server-wide counters behind `METRICS`.
#[derive(Debug, Default)]
struct Metrics {
    sessions_opened: AtomicU64,
    audits_ok: AtomicU64,
    audits_rejected: AtomicU64,
    queries_ok: AtomicU64,
    epochs_applied: AtomicU64,
    errors: AtomicU64,
    /// Worst observed audit staleness: published epoch at audit
    /// completion minus the epoch the audit ran against.
    max_epoch_lag: AtomicU64,
    /// [`EngineStats`] totals across every audit and epoch.
    engine: Mutex<EngineStats>,
}

/// The writer role: whichever session holds `owner` may append epochs.
/// A failed epoch retires the auditor (`None` = poisoned): the view may
/// hold a partial epoch, so appending stops while readers keep serving
/// the last published snapshot.
#[derive(Debug)]
struct WriterState {
    auditor: Option<StreamAuditor>,
    owner: Option<u64>,
}

struct Shared {
    snapshot: Mutex<Arc<StreamSnapshot>>,
    writer: Mutex<WriterState>,
    gate: AdmissionGate,
    algorithm: Arc<dyn Algorithm + Send + Sync>,
    config: AuditConfig,
    metrics: Metrics,
    shutdown: AtomicBool,
    poll_interval: Duration,
    seed: u64,
    addr: SocketAddr,
}

fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn published(&self) -> Arc<StreamSnapshot> {
        Arc::clone(&lock_ignore_poison(&self.snapshot))
    }

    /// Set the drain flag and unblock a listener parked in `accept`.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A running daemon. Dropping it shuts down and joins the accept loop.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<Result<u64, ServeError>>>,
}

impl Server {
    /// Bind `serve.addr` and start serving `view` with `algorithm`
    /// under `config`. The initial snapshot (the view's current epoch)
    /// is published immediately, before any writer connects.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the bind fails, or
    /// [`ServeError::Stream`] on a bin-layout mismatch between `view`
    /// and `config`.
    pub fn start(
        view: StreamView,
        algorithm: Arc<dyn Algorithm + Send + Sync>,
        config: AuditConfig,
        serve: ServeConfig,
    ) -> Result<Server, ServeError> {
        let snapshot = view.snapshot();
        let auditor = StreamAuditor::new(view, config.clone())?;
        let listener = TcpListener::bind(&serve.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            snapshot: Mutex::new(Arc::new(snapshot)),
            writer: Mutex::new(WriterState {
                auditor: Some(auditor),
                owner: None,
            }),
            gate: AdmissionGate::new(serve.max_inflight),
            algorithm,
            config,
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
            poll_interval: serve.poll_interval,
            seed: serve.seed,
            addr,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            let max_sessions = serve.max_sessions;
            std::thread::Builder::new()
                .name("fairjob-serve-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener, max_sessions))
                .map_err(ServeError::Io)?
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The epoch of the currently published snapshot.
    pub fn published_epoch(&self) -> u64 {
        self.shared.published().epoch()
    }

    /// Begin draining: stop admitting work, wake the accept loop.
    /// Idempotent; returns immediately — use [`Server::join`] to wait.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Wait for the accept loop to finish draining every session.
    ///
    /// Returns the number of sessions served, or the listener error
    /// that forced the drain (in-flight sessions were still joined
    /// before returning — the daemon never aborts mid-request).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the accept loop stopped on a listener
    /// failure rather than a requested shutdown.
    pub fn join(mut self) -> Result<u64, ServeError> {
        let handle = self.accept.take().expect("accept loop joined once");
        match handle.join() {
            Ok(result) => result,
            Err(_) => Err(ServeError::Protocol("accept loop panicked".to_string())),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.shutdown();
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    max_sessions: Option<u64>,
) -> Result<u64, ServeError> {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    let mut accepted = 0u64;
    let mut failure: Option<ServeError> = None;
    loop {
        if shared.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.draining() {
                    // The shutdown wake-up connection (or a client that
                    // raced the drain flag): close it unanswered.
                    drop(stream);
                    break;
                }
                accepted += 1;
                let id = accepted;
                shared
                    .metrics
                    .sessions_opened
                    .fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                match std::thread::Builder::new()
                    .name(format!("fairjob-serve-session-{id}"))
                    .spawn(move || session(&shared, stream, id))
                {
                    Ok(handle) => sessions.push(handle),
                    Err(e) => {
                        failure = Some(ServeError::Io(e));
                        break;
                    }
                }
                if max_sessions.is_some_and(|max| accepted >= max) {
                    // Bounded workload served: stop listening, let the
                    // live sessions run to completion below.
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => {
                // Listener failure: drain in-flight sessions cleanly
                // instead of aborting mid-request.
                failure = Some(ServeError::Io(e));
                break;
            }
        }
    }
    if failure.is_some() {
        shared.shutdown.store(true, Ordering::SeqCst);
    }
    for handle in sessions {
        let _ = handle.join();
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(accepted),
    }
}

/// Per-session counters behind `STATS`.
#[derive(Debug, Default)]
struct SessionStats {
    requests: u64,
    audits: u64,
    epochs: u64,
    queries: u64,
    errors: u64,
}

fn session(shared: &Arc<Shared>, stream: TcpStream, id: u64) {
    // I/O failures end the session; everything protocol-visible is
    // already answered inline.
    let _ = session_inner(shared, stream, id);
    // Release the writer role so a successor session can append (the
    // auditor itself survives unless an epoch failed mid-application).
    let mut writer = lock_ignore_poison(&shared.writer);
    if writer.owner == Some(id) {
        writer.owner = None;
    }
}

fn session_inner(shared: &Arc<Shared>, stream: TcpStream, id: u64) -> Result<(), ServeError> {
    stream.set_read_timeout(Some(shared.poll_interval))?;
    let _ = stream.set_nodelay(true);
    let mut out = stream.try_clone()?;
    out.write_all(PROTOCOL_HEADER.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()?;
    let mut lines = LineReader::new(stream);
    let mut stats = SessionStats::default();
    // FairQL caches survive across this session's QUERY requests, so a
    // repeated audit query reuses the previous run's split/distance
    // caches (invalidated automatically when the snapshot moves on).
    let mut warm = WarmCache::default();
    while let Some(line) = lines.next_line(|| shared.draining())? {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        stats.requests += 1;
        let (response, close) = handle(shared, id, &mut lines, line, &mut stats, &mut warm);
        out.write_all(response.as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
        if close {
            break;
        }
    }
    Ok(())
}

fn err_line(shared: &Shared, stats: &mut SessionStats, e: &ServeError) -> String {
    stats.errors += 1;
    shared.metrics.errors.fetch_add(1, Ordering::SeqCst);
    format!("ERR {} {}", e.code(), e)
}

fn handle(
    shared: &Arc<Shared>,
    id: u64,
    lines: &mut LineReader,
    line: &str,
    stats: &mut SessionStats,
    warm: &mut WarmCache,
) -> (String, bool) {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(reason) => {
            return (
                err_line(shared, stats, &ServeError::Protocol(reason)),
                false,
            )
        }
    };
    match request {
        Request::Audit => match do_audit(shared) {
            Ok(response) => {
                stats.audits += 1;
                (response, false)
            }
            Err(e) => (err_line(shared, stats, &e), false),
        },
        Request::Query(text) => match do_query(shared, warm, &text) {
            Ok(response) => {
                stats.queries += 1;
                (response, false)
            }
            Err(e) => (err_line(shared, stats, &e), false),
        },
        Request::Epoch(count) => match do_epoch(shared, id, lines, count) {
            Ok(response) => {
                stats.epochs += 1;
                (response, false)
            }
            // An I/O failure while reading the payload leaves the
            // stream mid-record: close the session.
            Err(e @ ServeError::Io(_)) => (err_line(shared, stats, &e), true),
            Err(e) => (err_line(shared, stats, &e), false),
        },
        Request::Metrics => (render_metrics(shared), false),
        Request::Health => (render_health(shared), false),
        Request::Stats => (
            format!(
                "OK requests={} audits={} epochs={} queries={} errors={}",
                stats.requests, stats.audits, stats.epochs, stats.queries, stats.errors
            ),
            false,
        ),
        Request::Ping => ("OK pong".to_string(), false),
        Request::Quit => ("OK bye".to_string(), true),
        Request::Shutdown => {
            shared.begin_shutdown();
            ("OK draining".to_string(), true)
        }
    }
}

fn do_audit(shared: &Shared) -> Result<String, ServeError> {
    if shared.draining() {
        return Err(ServeError::ShuttingDown);
    }
    let _permit = shared.gate.try_acquire().inspect_err(|_| {
        shared
            .metrics
            .audits_rejected
            .fetch_add(1, Ordering::SeqCst);
    })?;
    let snapshot = shared.published();
    let started = Instant::now();
    let ctx = snapshot.context(shared.config.clone())?;
    let result = shared.algorithm.run(&ctx).map_err(ServeError::Audit)?;
    let elapsed = started.elapsed();
    // Staleness at completion: how far the published state moved while
    // this audit ran off its snapshot.
    let lag = shared.published().epoch().saturating_sub(snapshot.epoch());
    shared
        .metrics
        .max_epoch_lag
        .fetch_max(lag, Ordering::SeqCst);
    lock_ignore_poison(&shared.metrics.engine).merge(&result.engine);
    shared.metrics.audits_ok.fetch_add(1, Ordering::SeqCst);
    Ok(format!(
        "OK epoch={} live={} partitions={} {} elapsed_us={} lag={}",
        snapshot.epoch(),
        snapshot.live_count(),
        result.partitioning.partitions().len(),
        protocol::render_f64("unfairness", result.unfairness),
        elapsed.as_micros(),
        lag,
    ))
}

fn map_query_error(e: QueryError) -> ServeError {
    match e {
        QueryError::Parse { offset, message } => ServeError::Parse {
            position: offset,
            message,
        },
        QueryError::Exec(message) => ServeError::Query(message),
    }
}

fn do_query(shared: &Shared, warm: &mut WarmCache, text: &str) -> Result<String, ServeError> {
    if shared.draining() {
        return Err(ServeError::ShuttingDown);
    }
    // Queries can run audits, so they draw from the same admission
    // budget as the AUDIT verb.
    let _permit = shared.gate.try_acquire().inspect_err(|_| {
        shared
            .metrics
            .audits_rejected
            .fetch_add(1, Ordering::SeqCst);
    })?;
    let snapshot = shared.published();
    let defaults = Defaults {
        algorithm: Arc::clone(&shared.algorithm),
        metric: Arc::clone(&shared.config.distance),
        bins: shared.config.bins,
        seed: shared.seed,
        threads: shared.config.threads,
        min_partition_size: shared.config.min_partition_size,
        shards: shared.config.shards,
    };
    let mut session = Session::new(Source::Snapshot(&snapshot), defaults)
        .map_err(map_query_error)?
        .with_warm(std::mem::take(warm));
    let executed = session.execute(text);
    // Hand the caches back before error mapping so a failed statement
    // in a script doesn't throw away warmth earlier statements built.
    let outputs = match executed {
        Ok(outputs) => {
            *warm = session.into_warm();
            outputs
        }
        Err(e) => {
            *warm = session.into_warm();
            return Err(map_query_error(e));
        }
    };
    let mut payload: Vec<String> = Vec::new();
    for output in &outputs {
        if let QueryOutput::Audit { summary, .. } = output {
            lock_ignore_poison(&shared.metrics.engine).merge(&summary.engine);
            shared.metrics.audits_ok.fetch_add(1, Ordering::SeqCst);
        }
        payload.extend(output.render().lines().map(str::to_string));
    }
    shared.metrics.queries_ok.fetch_add(1, Ordering::SeqCst);
    let mut response = format!("OK results={} lines={}", outputs.len(), payload.len());
    for line in &payload {
        response.push('\n');
        response.push_str(line);
    }
    Ok(response)
}

fn do_epoch(
    shared: &Arc<Shared>,
    id: u64,
    lines: &mut LineReader,
    count: usize,
) -> Result<String, ServeError> {
    // Always consume the promised payload first, even when the epoch
    // will be rejected: leaving record lines unread would desynchronise
    // the session — they would be parsed as request lines. Reading
    // before taking the writer lock also keeps a slow writer's payload
    // I/O from blocking the `writer-busy` answer to a rival session.
    let mut payload = Vec::with_capacity(count);
    while payload.len() < count {
        match lines.next_line(|| false)? {
            Some(line) => payload.push(line),
            None => {
                return Err(ServeError::Protocol(format!(
                    "EPOCH payload truncated: got {} of {count} record lines",
                    payload.len()
                )))
            }
        }
    }
    if shared.draining() {
        return Err(ServeError::ShuttingDown);
    }
    let mut writer = lock_ignore_poison(&shared.writer);
    match writer.owner {
        Some(owner) if owner != id => return Err(ServeError::WriterBusy { owner }),
        _ => writer.owner = Some(id),
    }
    let mut auditor = writer.auditor.take().ok_or(ServeError::WriterPoisoned)?;
    let result = apply_epoch(shared, &mut auditor, &payload);
    match result {
        Ok(response) => {
            writer.auditor = Some(auditor);
            Ok(response)
        }
        Err(e @ ServeError::Protocol(_)) => {
            // The payload never reached the view; the auditor is intact.
            writer.auditor = Some(auditor);
            Err(e)
        }
        Err(e) => {
            // Event application or the audit failed: the view may hold
            // a partial epoch. Retire the auditor (writer poisoned);
            // readers keep the last published snapshot.
            Err(e)
        }
    }
}

fn apply_epoch(
    shared: &Shared,
    auditor: &mut StreamAuditor,
    payload: &[String],
) -> Result<String, ServeError> {
    let events = protocol::parse_epoch_records(payload, auditor.view().table().schema())
        .map_err(ServeError::Protocol)?;
    let report = auditor.run_epoch(&events, &*shared.algorithm)?;
    *lock_ignore_poison(&shared.snapshot) = Arc::new(auditor.view().snapshot());
    shared.metrics.epochs_applied.fetch_add(1, Ordering::SeqCst);
    lock_ignore_poison(&shared.metrics.engine).merge(&report.audit.engine);
    Ok(format!(
        "OK epoch={} live={} events={} changes={} {}",
        report.epoch,
        report.live_workers,
        report.events,
        report.changes,
        protocol::render_f64("unfairness", report.audit.unfairness),
    ))
}

fn render_metrics(shared: &Shared) -> String {
    let snapshot = shared.published();
    let engine = *lock_ignore_poison(&shared.metrics.engine);
    let m = &shared.metrics;
    let mut out = format!(
        "OK sessions={} audits_ok={} audits_rejected={} queries_ok={} epochs_applied={} \
         errors={} max_epoch_lag={} epoch={} live={} pool_threads={}",
        m.sessions_opened.load(Ordering::SeqCst),
        m.audits_ok.load(Ordering::SeqCst),
        m.audits_rejected.load(Ordering::SeqCst),
        m.queries_ok.load(Ordering::SeqCst),
        m.epochs_applied.load(Ordering::SeqCst),
        m.errors.load(Ordering::SeqCst),
        m.max_epoch_lag.load(Ordering::SeqCst),
        snapshot.epoch(),
        snapshot.live_count(),
        WorkerPool::global().threads_spawned(),
    );
    // Every engine counter, driven by `as_pairs` so a counter added to
    // `EngineStats` shows up here without touching this function.
    for (name, value) in engine.as_pairs() {
        out.push_str(&format!(" {name}={value}"));
    }
    out
}

fn render_health(shared: &Shared) -> String {
    let snapshot = shared.published();
    let writer = lock_ignore_poison(&shared.writer);
    format!(
        "OK status={} epoch={} live={} inflight={} max_inflight={} writer={}",
        if shared.draining() { "draining" } else { "ok" },
        snapshot.epoch(),
        snapshot.live_count(),
        shared.gate.inflight(),
        shared.gate.max(),
        if writer.auditor.is_some() {
            "ok"
        } else {
            "poisoned"
        },
    )
}

/// A newline framer over a [`TcpStream`] with a read timeout:
/// `BufReader::read_line` would lose buffered bytes on a timeout, so
/// this keeps its own buffer and re-checks `draining` between polls.
#[derive(Debug)]
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    start: usize,
    eof: bool,
}

impl LineReader {
    fn new(stream: TcpStream) -> Self {
        LineReader {
            stream,
            buf: Vec::new(),
            start: 0,
            eof: false,
        }
    }

    /// The next line (without its terminator), `None` on EOF or when
    /// `draining()` turns true while idle.
    fn next_line(&mut self, draining: impl Fn() -> bool) -> Result<Option<String>, ServeError> {
        loop {
            if let Some(nl) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
                let end = self.start + nl;
                let line = String::from_utf8_lossy(&self.buf[self.start..end])
                    .trim_end_matches('\r')
                    .to_string();
                self.start = end + 1;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                }
                return Ok(Some(line));
            }
            if self.eof {
                // Trailing bytes without a newline: surface them once.
                if self.start < self.buf.len() {
                    let line = String::from_utf8_lossy(&self.buf[self.start..]).to_string();
                    self.buf.clear();
                    self.start = 0;
                    return Ok(Some(line));
                }
                return Ok(None);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if draining() {
                        return Ok(None);
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ServeError::Io(e)),
            }
        }
    }
}
