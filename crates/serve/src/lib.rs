//! `fairjob-serve`: a resident audit daemon for the streaming fairness
//! auditor.
//!
//! The offline pipeline answers one audit per process; a marketplace
//! wants the audit *resident*: events keep arriving, and analysts ask
//! "how unfair is ranking right now?" without paying a cold rebuild.
//! This crate keeps a [`fairjob_stream::StreamAuditor`] alive behind a
//! dependency-free TCP daemon speaking the line-delimited
//! [`protocol::PROTOCOL_HEADER`] protocol:
//!
//! - a single **writer** session appends epochs through the warm
//!   incremental path (`EPOCH <k>` + `k` record lines in the
//!   `fairjob-events v1` grammar);
//! - concurrent **reader** sessions audit a consistent published
//!   [`fairjob_stream::StreamSnapshot`] (`AUDIT`), never blocking
//!   ingest and never observing a half-applied epoch — results are
//!   bit-identical to a cold offline audit of the same epoch;
//! - `QUERY <fairql>` runs FairQL statements (`AUDIT`/`SELECT`/
//!   `DESCRIBE`/`EXPLAIN`) against the published snapshot, with FairQL
//!   caches held per session and parse failures answered as
//!   `ERR parse <byte-offset> <message>`;
//! - [`AdmissionGate`] bounds in-flight audits with a typed
//!   `ERR overloaded` rejection instead of unbounded queueing;
//! - `METRICS`/`HEALTH` expose server counters and
//!   [`fairjob_core::EngineStats`] totals.
//!
//! Start one with [`Server::start`]; drive it with [`ServeClient`] or
//! `fairjob serve` from the CLI.

pub mod admission;
pub mod client;
pub mod error;
pub mod protocol;
pub mod server;

pub use admission::{AdmissionGate, AdmissionPermit};
pub use client::ServeClient;
pub use error::ServeError;
pub use server::{ServeConfig, Server};
