//! The `fairjob-serve v1` wire protocol.
//!
//! Newline-framed text, versioned like `fairjob-events v1`: the server
//! greets each connection with [`PROTOCOL_HEADER`], then answers every
//! request line with exactly one response line — `OK key=value …` or
//! `ERR <code> <detail>`. Verbs:
//!
//! | request            | meaning                                              |
//! |--------------------|------------------------------------------------------|
//! | `AUDIT`            | run the configured audit on the published snapshot   |
//! | `QUERY <fairql>`   | run FairQL statements against the published snapshot; multi-line framed response (`OK results=… lines=n` + `n` payload lines) |
//! | `EPOCH <k>`        | writer-only: apply the next `k` event record lines as one epoch, re-audit warm, publish the new snapshot |
//! | `METRICS`          | server-wide counters (sessions, audits, `EngineStats` totals, epoch lag, pool spawns) |
//! | `HEALTH`           | liveness probe: epoch, live rows, admission state    |
//! | `STATS`            | this session's request/audit/epoch/error counts      |
//! | `PING`             | `OK pong`                                            |
//! | `QUIT`             | close the session                                    |
//! | `SHUTDOWN`         | drain and stop the server                            |
//!
//! `EPOCH` payload lines use the *record* grammar of
//! `fairjob-events v1` (`add,…`, `score,…`, `set,…`, `remove,…`) —
//! the same CSV-quoted format `fairjob generate --events-out` writes,
//! minus the file header and `epoch` terminator, which the framing
//! already provides.

use fairjob_marketplace::stream::{Event, EventLog, EVENT_FILE_HEADER};
use fairjob_store::schema::Schema;

/// Version greeting; the first line a client reads after connecting.
pub const PROTOCOL_HEADER: &str = "fairjob-serve v1";

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run an audit against the currently published snapshot.
    Audit,
    /// Run FairQL statement text against the published snapshot. A
    /// FairQL parse/analysis failure answers
    /// `ERR parse <byte-offset> <message>`.
    Query(String),
    /// Apply one epoch; the operand is the number of event record lines
    /// that follow the request line.
    Epoch(usize),
    /// Server-wide counters.
    Metrics,
    /// Liveness probe.
    Health,
    /// Per-session counters.
    Stats,
    /// No-op round trip.
    Ping,
    /// Close this session.
    Quit,
    /// Drain in-flight sessions and stop the server.
    Shutdown,
}

impl Request {
    /// Parse one request line (already stripped of its newline).
    ///
    /// # Errors
    ///
    /// A human-readable reason for unknown verbs or malformed operands.
    pub fn parse(line: &str) -> Result<Request, String> {
        // QUERY carries free-form statement text (spaces, quotes, `;`):
        // split off the verb only, before the whitespace tokenisation
        // that every other verb goes through.
        let trimmed = line.trim();
        let verb_end = trimmed.find(char::is_whitespace).unwrap_or(trimmed.len());
        if trimmed[..verb_end].eq_ignore_ascii_case("QUERY") {
            let text = trimmed[verb_end..].trim();
            if text.is_empty() {
                return Err("QUERY needs statement text".to_string());
            }
            return Ok(Request::Query(text.to_string()));
        }
        let mut parts = line.split_whitespace();
        let verb = parts.next().unwrap_or("");
        let arg = parts.next();
        if parts.next().is_some() {
            return Err(format!("too many operands in `{line}`"));
        }
        match (verb.to_ascii_uppercase().as_str(), arg) {
            ("AUDIT", None) => Ok(Request::Audit),
            ("EPOCH", Some(k)) => k
                .parse::<usize>()
                .map(Request::Epoch)
                .map_err(|_| format!("EPOCH needs an event count, got `{k}`")),
            ("EPOCH", None) => Err("EPOCH needs an event count".to_string()),
            ("METRICS", None) => Ok(Request::Metrics),
            ("HEALTH", None) => Ok(Request::Health),
            ("STATS", None) => Ok(Request::Stats),
            ("PING", None) => Ok(Request::Ping),
            ("QUIT", None) => Ok(Request::Quit),
            ("SHUTDOWN", None) => Ok(Request::Shutdown),
            ("", _) => Err("empty request".to_string()),
            (v, Some(_)) => Err(format!("verb `{v}` takes no operand")),
            (v, None) => Err(format!("unknown verb `{v}`")),
        }
    }
}

/// Render one epoch's events as protocol payload lines — the
/// `fairjob-events v1` record grammar without header or `epoch`
/// terminator.
pub fn render_epoch_records(events: &[Event], schema: &Schema) -> Vec<String> {
    let log = EventLog::from_epochs(vec![events.to_vec()]);
    let rendered = log.render(schema);
    rendered
        .lines()
        .filter(|l| *l != EVENT_FILE_HEADER && *l != "epoch")
        .map(str::to_string)
        .collect()
}

/// Parse protocol payload lines back into events.
///
/// # Errors
///
/// A human-readable reason with the 1-based payload line number.
pub fn parse_epoch_records(lines: &[String], schema: &Schema) -> Result<Vec<Event>, String> {
    let mut text = String::from(EVENT_FILE_HEADER);
    text.push('\n');
    for line in lines {
        text.push_str(line);
        text.push('\n');
    }
    text.push_str("epoch\n");
    let log = EventLog::parse(&text, schema).map_err(|e| {
        // Line 1 of the synthesised file is the header; shift to
        // payload-relative numbering.
        format!("payload line {}: {}", e.line.saturating_sub(1), e.reason)
    })?;
    Ok(log.epochs().first().cloned().unwrap_or_default())
}

/// Extract `key=value` from a response line (`OK a=1 b=2 …`).
pub fn kv<'a>(response: &'a str, key: &str) -> Option<&'a str> {
    response
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('='))
}

/// Render an `f64` for the wire twice over: human-readable decimal and
/// exact bits, so clients can assert bit-identity.
pub fn render_f64(key: &str, value: f64) -> String {
    format!("{key}={value} {key}_bits={:016x}", value.to_bits())
}

/// Recover the exact `f64` from a `…_bits` value rendered by
/// [`render_f64`].
pub fn parse_f64_bits(hex: &str) -> Option<f64> {
    u64::from_str_radix(hex, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(Request::parse("AUDIT"), Ok(Request::Audit));
        assert_eq!(Request::parse("audit"), Ok(Request::Audit));
        assert_eq!(
            Request::parse("QUERY AUDIT workers WHERE country = 'India'; DESCRIBE"),
            Ok(Request::Query(
                "AUDIT workers WHERE country = 'India'; DESCRIBE".to_string()
            ))
        );
        assert_eq!(
            Request::parse("query SELECT * FROM workers"),
            Ok(Request::Query("SELECT * FROM workers".to_string()))
        );
        assert_eq!(Request::parse("EPOCH 12"), Ok(Request::Epoch(12)));
        assert_eq!(Request::parse("METRICS"), Ok(Request::Metrics));
        assert_eq!(Request::parse("HEALTH"), Ok(Request::Health));
        assert_eq!(Request::parse("STATS"), Ok(Request::Stats));
        assert_eq!(Request::parse("PING"), Ok(Request::Ping));
        assert_eq!(Request::parse("QUIT"), Ok(Request::Quit));
        assert_eq!(Request::parse("SHUTDOWN"), Ok(Request::Shutdown));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("FROB").is_err());
        assert!(Request::parse("EPOCH").is_err());
        assert!(Request::parse("EPOCH twelve").is_err());
        assert!(Request::parse("AUDIT now").is_err());
        assert!(Request::parse("EPOCH 3 4").is_err());
        assert!(Request::parse("QUERY").is_err());
        assert!(Request::parse("QUERY   ").is_err());
    }

    #[test]
    fn kv_extracts_values() {
        let line = "OK epoch=7 live=120 unfairness=0.25 unfairness_bits=3fd0000000000000";
        assert_eq!(kv(line, "epoch"), Some("7"));
        assert_eq!(kv(line, "live"), Some("120"));
        assert_eq!(kv(line, "unfairness_bits"), Some("3fd0000000000000"));
        assert_eq!(kv(line, "missing"), None);
    }

    #[test]
    fn f64_bits_round_trip() {
        let v = 0.123_456_789_f64;
        let rendered = format!("OK {}", render_f64("unfairness", v));
        let bits = kv(&rendered, "unfairness_bits").unwrap();
        assert_eq!(parse_f64_bits(bits).unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn epoch_records_round_trip() {
        use fairjob_marketplace::stream::{generate_stream, StreamConfig};
        let scenario = generate_stream(&StreamConfig {
            initial: 30,
            epochs: 2,
            events_per_epoch: 10,
            seed: 5,
            alpha: 0.5,
        });
        let schema = scenario.initial.schema();
        for events in scenario.events.epochs() {
            let lines = render_epoch_records(events, schema);
            assert_eq!(lines.len(), events.len());
            let parsed = parse_epoch_records(&lines, schema).unwrap();
            assert_eq!(&parsed, events);
        }
    }

    #[test]
    fn bad_epoch_records_report_payload_line() {
        use fairjob_marketplace::stream::{generate_stream, StreamConfig};
        let scenario = generate_stream(&StreamConfig {
            initial: 5,
            epochs: 0,
            events_per_epoch: 0,
            seed: 1,
            alpha: 0.5,
        });
        let err = parse_epoch_records(&["not-a-record".to_string()], scenario.initial.schema())
            .unwrap_err();
        assert!(err.contains("payload line 1"), "got: {err}");
    }
}
