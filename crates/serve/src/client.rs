//! A small blocking client for the `fairjob-serve v1` protocol, used
//! by the load bench, the integration tests, and scripted drivers.

use crate::error::ServeError;
use crate::protocol::{self, PROTOCOL_HEADER};
use fairjob_marketplace::stream::Event;
use fairjob_store::schema::Schema;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One protocol session over TCP. Request methods return the raw
/// response line (`OK …`) so callers can pull fields with
/// [`protocol::kv`]; `ERR` responses become [`ServeError::Protocol`]
/// carrying the full line.
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connect and consume the version greeting.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on connect failure, or
    /// [`ServeError::Protocol`] when the greeting is not
    /// `fairjob-serve v1`.
    pub fn connect(addr: SocketAddr) -> Result<Self, ServeError> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut greeting = String::new();
        reader.read_line(&mut greeting)?;
        if greeting.trim_end() != PROTOCOL_HEADER {
            return Err(ServeError::Protocol(format!(
                "unexpected greeting `{}`",
                greeting.trim_end()
            )));
        }
        Ok(ServeClient { reader, writer })
    }

    fn read_response(&mut self) -> Result<String, ServeError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        let line = line.trim_end().to_string();
        if line.starts_with("OK") {
            Ok(line)
        } else {
            Err(ServeError::Protocol(line))
        }
    }

    /// Send one request line and read the one response line.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure; [`ServeError::Protocol`]
    /// carrying the server's `ERR …` line.
    pub fn request(&mut self, line: &str) -> Result<String, ServeError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `AUDIT` the published snapshot.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`]; `ERR overloaded …` surfaces as
    /// [`ServeError::Protocol`] — check with [`is_overloaded`].
    ///
    /// [`is_overloaded`]: ServeClient::is_overloaded
    pub fn audit(&mut self) -> Result<String, ServeError> {
        self.request("AUDIT")
    }

    /// Run FairQL statement text (one line; `;`-separate statements)
    /// against the published snapshot. Returns the `OK results=…
    /// lines=…` header and the payload lines that follow it.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`]; FairQL errors surface as
    /// [`ServeError::Protocol`] carrying the server's
    /// `ERR parse <offset> <message>` or `ERR query <message>` line.
    pub fn query(&mut self, text: &str) -> Result<(String, Vec<String>), ServeError> {
        let header = self.request(&format!("QUERY {text}"))?;
        let count: usize = protocol::kv(&header, "lines")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ServeError::Protocol(format!("malformed QUERY header `{header}`")))?;
        let mut lines = Vec::with_capacity(count);
        for _ in 0..count {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ServeError::Protocol(
                    "server closed the connection mid-payload".to_string(),
                ));
            }
            lines.push(line.trim_end().to_string());
        }
        Ok((header, lines))
    }

    /// Append one epoch of `events` (writer sessions only).
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request`].
    pub fn epoch(&mut self, events: &[Event], schema: &Schema) -> Result<String, ServeError> {
        let records = protocol::render_epoch_records(events, schema);
        let mut framed = format!("EPOCH {}\n", records.len());
        for record in &records {
            framed.push_str(record);
            framed.push('\n');
        }
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Whether an error is the typed admission-control rejection.
    pub fn is_overloaded(error: &ServeError) -> bool {
        matches!(error, ServeError::Protocol(line) if line.starts_with("ERR overloaded"))
    }

    /// `QUIT` politely; transport errors on the way out are ignored.
    pub fn quit(mut self) {
        let _ = self.request("QUIT");
    }
}
