//! End-to-end tests of the resident daemon: protocol round trips,
//! concurrent-reader determinism against offline cold audits,
//! admission control, writer exclusivity/poisoning, and clean drain.

use fairjob_core::algorithms::balanced::Balanced;
use fairjob_core::algorithms::{Algorithm, AttributeChoice};
use fairjob_core::{AuditConfig, AuditContext};
use fairjob_marketplace::stream::{generate_stream, Event, StreamConfig};
use fairjob_serve::{protocol, ServeClient, ServeConfig, Server};
use fairjob_store::schema::Schema;
use fairjob_stream::StreamView;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const BINS: usize = 10;

struct Scenario {
    view: StreamView,
    epochs: Vec<Vec<Event>>,
    schema: Schema,
}

fn scenario(initial: usize, epochs: usize, seed: u64) -> Scenario {
    let generated = generate_stream(&StreamConfig {
        initial,
        epochs,
        events_per_epoch: 8,
        seed,
        alpha: 0.5,
    });
    let schema = generated.initial.schema().clone();
    let view = StreamView::new(generated.initial, generated.scores, BINS).unwrap();
    Scenario {
        view,
        epochs: generated.events.epochs().to_vec(),
        schema,
    }
}

fn algorithm() -> Arc<dyn Algorithm + Send + Sync> {
    Arc::new(Balanced::new(AttributeChoice::Worst))
}

fn config() -> AuditConfig {
    AuditConfig::with_bins(BINS)
}

/// Offline cold-audit unfairness bits for epoch 0 and after each of
/// `epochs` — the ground truth readers must match bit-for-bit.
fn cold_bits_per_epoch(scn: &Scenario) -> Vec<u64> {
    let algorithm = algorithm();
    let mut view = scn.view.clone();
    let mut expected = Vec::with_capacity(scn.epochs.len() + 1);
    let cold = |view: &StreamView| {
        let (table, scores) = view.compact().unwrap();
        let ctx = AuditContext::new(&table, &scores, config()).unwrap();
        algorithm.run(&ctx).unwrap().unfairness.to_bits()
    };
    expected.push(cold(&view));
    for events in &scn.epochs {
        view.apply_epoch(events).unwrap();
        expected.push(cold(&view));
    }
    expected
}

fn start(scn: &Scenario, serve: ServeConfig) -> Server {
    Server::start(scn.view.clone(), algorithm(), config(), serve).unwrap()
}

#[test]
fn end_to_end_session_round_trip() {
    let scn = scenario(60, 2, 11);
    let expected = cold_bits_per_epoch(&scn);
    let server = start(&scn, ServeConfig::default());
    let mut client = ServeClient::connect(server.addr()).unwrap();

    assert_eq!(client.request("PING").unwrap(), "OK pong");

    let health = client.request("HEALTH").unwrap();
    assert_eq!(protocol::kv(&health, "status"), Some("ok"));
    assert_eq!(protocol::kv(&health, "epoch"), Some("0"));
    assert_eq!(protocol::kv(&health, "writer"), Some("ok"));

    let audit = client.audit().unwrap();
    assert_eq!(protocol::kv(&audit, "epoch"), Some("0"));
    let bits = protocol::kv(&audit, "unfairness_bits").unwrap();
    assert_eq!(
        protocol::parse_f64_bits(bits).unwrap().to_bits(),
        expected[0],
        "epoch-0 audit must match the offline cold audit bit-for-bit"
    );

    for (k, events) in scn.epochs.iter().enumerate() {
        let reply = client.epoch(events, &scn.schema).unwrap();
        assert_eq!(
            protocol::kv(&reply, "epoch"),
            Some(format!("{}", k + 1).as_str())
        );
        let audit = client.audit().unwrap();
        let bits = protocol::kv(&audit, "unfairness_bits").unwrap();
        assert_eq!(
            protocol::parse_f64_bits(bits).unwrap().to_bits(),
            expected[k + 1],
            "epoch-{} audit diverges from the cold rebuild",
            k + 1
        );
    }

    let metrics = client.request("METRICS").unwrap();
    assert_eq!(protocol::kv(&metrics, "epochs_applied"), Some("2"));
    assert_eq!(protocol::kv(&metrics, "epoch"), Some("2"));
    let audits_ok: u64 = protocol::kv(&metrics, "audits_ok")
        .unwrap()
        .parse()
        .unwrap();
    assert!(audits_ok >= 3);
    // METRICS must expose every EngineStats counter by name — the
    // formatter iterates `as_pairs`, so a counter added to the struct
    // but dropped from the reply fails here.
    for (name, _) in fairjob_core::EngineStats::default().as_pairs() {
        assert!(
            protocol::kv(&metrics, name).is_some(),
            "METRICS reply is missing engine counter {name}: {metrics}"
        );
    }

    let stats = client.request("STATS").unwrap();
    assert_eq!(protocol::kv(&stats, "epochs"), Some("2"));

    let err = client.request("FROB").unwrap_err();
    assert!(err.to_string().starts_with("ERR usage"), "got {err}");

    assert_eq!(client.request("QUIT").unwrap(), "OK bye");
    server.shutdown();
    assert_eq!(server.join().unwrap(), 1);
}

#[test]
fn concurrent_readers_observe_some_published_epoch_exactly() {
    let scn = scenario(80, 3, 23);
    let expected = Arc::new(cold_bits_per_epoch(&scn));
    let server = start(
        &scn,
        ServeConfig {
            max_inflight: 8,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let (expected, done) = (Arc::clone(&expected), Arc::clone(&done));
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                let mut observed = 0usize;
                while !done.load(Ordering::SeqCst) {
                    match client.audit() {
                        Ok(reply) => {
                            observed += 1;
                            let epoch: usize =
                                protocol::kv(&reply, "epoch").unwrap().parse().unwrap();
                            let bits = protocol::kv(&reply, "unfairness_bits").unwrap();
                            assert_eq!(
                                protocol::parse_f64_bits(bits).unwrap().to_bits(),
                                expected[epoch],
                                "reader saw epoch {epoch} with non-cold-identical bits"
                            );
                        }
                        Err(e) if ServeClient::is_overloaded(&e) => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(e) => panic!("reader failed: {e}"),
                    }
                }
                client.quit();
                observed
            })
        })
        .collect();

    let mut writer = ServeClient::connect(addr).unwrap();
    for events in &scn.epochs {
        writer.epoch(events, &scn.schema).unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    done.store(true, Ordering::SeqCst);
    writer.quit();

    let mut total = 0;
    for handle in readers {
        total += handle.join().unwrap();
    }
    assert!(total > 0, "no reader completed a single audit");
    server.shutdown();
    server.join().unwrap();
}

#[test]
fn admission_control_rejects_instead_of_queueing() {
    let scn = scenario(40, 0, 5);
    let server = start(
        &scn,
        ServeConfig {
            max_inflight: 0,
            ..ServeConfig::default()
        },
    );
    let mut client = ServeClient::connect(server.addr()).unwrap();
    for _ in 0..3 {
        let err = client.audit().unwrap_err();
        assert!(
            ServeClient::is_overloaded(&err),
            "zero-budget gate must reject with ERR overloaded, got {err}"
        );
    }
    // Rejections are immediate and typed, never queued: the session
    // still answers other verbs right away.
    assert_eq!(client.request("PING").unwrap(), "OK pong");
    let metrics = client.request("METRICS").unwrap();
    assert_eq!(protocol::kv(&metrics, "audits_rejected"), Some("3"));
    assert_eq!(protocol::kv(&metrics, "audits_ok"), Some("0"));
    client.quit();
    server.shutdown();
    server.join().unwrap();
}

#[test]
fn writer_role_is_exclusive_until_release() {
    let scn = scenario(50, 2, 9);
    let server = start(&scn, ServeConfig::default());

    let mut a = ServeClient::connect(server.addr()).unwrap();
    a.epoch(&scn.epochs[0], &scn.schema).unwrap();

    let mut b = ServeClient::connect(server.addr()).unwrap();
    let err = b.epoch(&scn.epochs[1], &scn.schema).unwrap_err();
    assert!(
        err.to_string().starts_with("ERR writer-busy"),
        "second writer must be refused, got {err}"
    );
    // Readers are unaffected by writer exclusivity.
    b.audit().unwrap();

    a.quit();
    // The role releases with the session; poll until the successor
    // can append.
    let mut appended = false;
    for _ in 0..100 {
        match b.epoch(&scn.epochs[1], &scn.schema) {
            Ok(reply) => {
                assert_eq!(protocol::kv(&reply, "epoch"), Some("2"));
                appended = true;
                break;
            }
            Err(e) if e.to_string().starts_with("ERR writer-busy") => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(appended, "writer role never released after QUIT");
    b.quit();
    server.shutdown();
    server.join().unwrap();
}

#[test]
fn failed_epoch_poisons_writer_but_readers_keep_serving() {
    let scn = scenario(40, 1, 3);
    let server = start(&scn, ServeConfig::default());
    let mut client = ServeClient::connect(server.addr()).unwrap();

    // A malformed payload record is caught before application: the
    // writer survives.
    let err = client.request("EPOCH 1\nnot-a-record").unwrap_err();
    assert!(err.to_string().starts_with("ERR usage"), "got {err}");
    let health = client.request("HEALTH").unwrap();
    assert_eq!(protocol::kv(&health, "writer"), Some("ok"));

    // A well-formed event that fails mid-application poisons the
    // writer: the view may hold a partial epoch.
    let ghost = vec![Event::ScoreUpdated {
        worker: 9_999,
        score: 0.5,
    }];
    let err = client.epoch(&ghost, &scn.schema).unwrap_err();
    assert!(err.to_string().starts_with("ERR stream"), "got {err}");

    let err = client.epoch(&scn.epochs[0], &scn.schema).unwrap_err();
    assert!(
        err.to_string().starts_with("ERR writer-poisoned"),
        "poisoned writer must refuse further epochs, got {err}"
    );
    let health = client.request("HEALTH").unwrap();
    assert_eq!(protocol::kv(&health, "writer"), Some("poisoned"));

    // Readers still audit the last published snapshot (epoch 0).
    let audit = client.audit().unwrap();
    assert_eq!(protocol::kv(&audit, "epoch"), Some("0"));

    client.quit();
    server.shutdown();
    server.join().unwrap();
}

#[test]
fn shutdown_drains_sessions_and_reports_count() {
    let scn = scenario(30, 0, 7);
    let server = start(&scn, ServeConfig::default());
    for _ in 0..3 {
        let mut client = ServeClient::connect(server.addr()).unwrap();
        assert_eq!(client.request("PING").unwrap(), "OK pong");
        client.quit();
    }
    // An idle session (no QUIT) must not wedge the drain: the poll
    // interval bounds how long it lingers.
    let idle = ServeClient::connect(server.addr()).unwrap();
    server.shutdown();
    assert_eq!(server.join().unwrap(), 4);
    drop(idle);
}

#[test]
fn shutdown_verb_drains_from_the_wire() {
    let scn = scenario(30, 0, 13);
    let server = start(&scn, ServeConfig::default());
    let mut client = ServeClient::connect(server.addr()).unwrap();
    assert_eq!(client.request("SHUTDOWN").unwrap(), "OK draining");
    assert_eq!(server.join().unwrap(), 1);
}

#[test]
fn max_sessions_bounds_the_accept_loop() {
    let scn = scenario(30, 0, 17);
    let server = start(
        &scn,
        ServeConfig {
            max_sessions: Some(2),
            ..ServeConfig::default()
        },
    );
    for _ in 0..2 {
        let mut client = ServeClient::connect(server.addr()).unwrap();
        assert_eq!(client.request("PING").unwrap(), "OK pong");
        client.quit();
    }
    assert_eq!(server.join().unwrap(), 2);
}

#[test]
fn query_audit_is_bit_identical_to_the_audit_verb() {
    let scn = scenario(90, 0, 31);
    let server = start(&scn, ServeConfig::default());
    let mut client = ServeClient::connect(server.addr()).unwrap();

    let audit = client.audit().unwrap();
    let bits = protocol::kv(&audit, "unfairness_bits").unwrap().to_string();

    let (header, lines) = client.query("AUDIT workers").unwrap();
    assert_eq!(protocol::kv(&header, "results"), Some("1"));
    assert_eq!(
        protocol::kv(&lines[0], "unfairness_bits"),
        Some(bits.as_str()),
        "QUERY audit diverged from the AUDIT verb:\n{}",
        lines.join("\n")
    );

    // A repeated audit in the same session reuses the warm FairQL
    // caches without changing the answer.
    let (_, warm_lines) = client.query("AUDIT workers").unwrap();
    assert_eq!(
        protocol::kv(&warm_lines[0], "unfairness_bits"),
        Some(bits.as_str())
    );
    assert_eq!(protocol::kv(&warm_lines[0], "splits_computed"), Some("0"));

    client.quit();
    server.shutdown();
    server.join().unwrap();
}

#[test]
fn query_explain_analyze_reports_the_cold_runs_counters() {
    let scn = scenario(80, 0, 37);
    // The ground truth: a cold audit through the exact path the server
    // uses for the AUDIT verb.
    let snapshot = scn.view.snapshot();
    let ctx = snapshot.context(config()).unwrap();
    let expected = algorithm().run(&ctx).unwrap();

    let server = start(&scn, ServeConfig::default());
    // A fresh session, so the query runs against cold caches.
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let (_, lines) = client.query("EXPLAIN ANALYZE AUDIT workers").unwrap();
    let text = lines.join("\n");
    assert!(
        text.contains(&format!(
            "unfairness_bits={:016x}",
            expected.unfairness.to_bits()
        )),
        "bits missing from plan:\n{text}"
    );
    for (name, value) in expected.engine.as_pairs() {
        assert!(
            text.contains(&format!(" {name}={value}")),
            "{name}={value} missing from plan:\n{text}"
        );
    }
    client.quit();
    server.shutdown();
    server.join().unwrap();
}

#[test]
fn query_parse_errors_carry_byte_offsets() {
    let scn = scenario(40, 0, 41);
    let server = start(&scn, ServeConfig::default());
    let mut client = ServeClient::connect(server.addr()).unwrap();

    let err = client.query("FROB workers").unwrap_err();
    assert!(err.to_string().starts_with("ERR parse 0 "), "got: {err}");

    // The offset is relative to the query text, pointing at the
    // offending value token.
    let err = client
        .query("AUDIT workers WHERE gender = 'Robot'")
        .unwrap_err();
    assert!(err.to_string().starts_with("ERR parse 29 "), "got: {err}");

    client.quit();
    server.shutdown();
    server.join().unwrap();
}

#[test]
fn stats_count_queries_served() {
    let scn = scenario(50, 0, 43);
    let server = start(&scn, ServeConfig::default());
    let mut client = ServeClient::connect(server.addr()).unwrap();

    client.query("DESCRIBE").unwrap();
    client.query("SELECT COUNT(*) FROM workers").unwrap();
    let _ = client.query("FROB").unwrap_err(); // errors are not served queries

    let stats = client.request("STATS").unwrap();
    assert_eq!(protocol::kv(&stats, "queries"), Some("2"));
    assert_eq!(protocol::kv(&stats, "errors"), Some("1"));

    let metrics = client.request("METRICS").unwrap();
    assert_eq!(protocol::kv(&metrics, "queries_ok"), Some("2"));

    client.quit();
    server.shutdown();
    server.join().unwrap();
}
