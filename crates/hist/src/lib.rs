//! Histograms of scores and pluggable histogram distances.
//!
//! The EDBT 2019 fairness audit represents each group of workers by "one
//! histogram of score distributions per partition" and compares groups
//! with the Earth Mover's Distance. This crate provides:
//!
//! * [`bins`] — bin layouts: equal-width grids (the paper's "equal bins
//!   over the range of f"), explicit edges, quantile bins, and the usual
//!   automatic bin-count rules (Sturges / Scott / Freedman–Diaconis) for
//!   sensitivity analyses.
//! * [`histogram`] — dense counted histograms with merging, normalisation
//!   and summary statistics.
//! * [`distance`] — the [`distance::HistogramDistance`] trait with the EMD
//!   implementation used by the paper plus the alternative divergences its
//!   future-work section mentions (Jensen–Shannon, KL, total variation,
//!   Kolmogorov–Smirnov, Hellinger, χ²).
//!
//! # Example
//!
//! ```
//! use fairjob_hist::{BinSpec, Histogram};
//! use fairjob_hist::distance::{Emd1d, HistogramDistance};
//!
//! let spec = BinSpec::equal_width(0.0, 1.0, 10).unwrap();
//! let low = Histogram::from_values(spec.clone(), [0.05, 0.1, 0.15].iter().copied());
//! let high = Histogram::from_values(spec, [0.9, 0.95, 0.85].iter().copied());
//! let d = Emd1d.distance(&low, &high).unwrap();
//! assert!(d > 0.7, "mass must travel most of the unit interval: {d}");
//! ```

pub mod bins;
pub mod distance;
pub mod hist2d;
pub mod histogram;
pub mod sketch;

pub use bins::BinSpec;
pub use distance::{DistanceBounds, DistanceError, HistogramDistance};
pub use fairjob_emd::{ScratchStats, SolveScratch};
pub use histogram::{CdfStats, Histogram};
