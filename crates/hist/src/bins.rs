//! Bin layouts for score histograms.
//!
//! The paper builds histograms "by creating equal bins over the range of
//! f"; [`BinSpec::equal_width`] is that layout. Quantile bins and the
//! automatic bin-count rules exist for the bin-sensitivity ablation.

use std::fmt;

/// Errors from constructing or using a bin layout.
#[derive(Debug, Clone, PartialEq)]
pub enum BinError {
    /// `lo >= hi`, non-finite bound, or zero bins requested.
    BadSpec(&'static str),
    /// Explicit edges were not strictly increasing.
    EdgesNotIncreasing {
        /// Index of the first offending edge.
        index: usize,
    },
    /// Not enough data to derive bins (quantile / auto rules).
    NotEnoughData,
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::BadSpec(reason) => write!(f, "bad bin spec: {reason}"),
            BinError::EdgesNotIncreasing { index } => {
                write!(f, "bin edges must be strictly increasing (edge {index})")
            }
            BinError::NotEnoughData => write!(f, "not enough data to derive bins"),
        }
    }
}

impl std::error::Error for BinError {}

/// A one-dimensional bin layout over a closed interval.
///
/// Values below the first edge clamp into the first bin and values above
/// the last edge clamp into the last bin, so every finite value maps to a
/// bin; scoring functions are supposed to emit values in `[lo, hi]` but
/// clamping makes histogramming total.
#[derive(Debug, Clone, PartialEq)]
pub struct BinSpec {
    edges: Vec<f64>,
    /// True when the layout is an equal-width grid (enables the
    /// closed-form EMD fast path keyed on `(lo, hi, n)`).
    uniform: bool,
}

impl BinSpec {
    /// `n` equal-width bins spanning `[lo, hi]` — the paper's layout.
    ///
    /// # Errors
    ///
    /// [`BinError::BadSpec`] for non-finite bounds, `lo >= hi` or `n == 0`.
    // `!(lo < hi)` deliberately treats NaN bounds as invalid.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn equal_width(lo: f64, hi: f64, n: usize) -> Result<Self, BinError> {
        if !lo.is_finite() || !hi.is_finite() || !(lo < hi) {
            return Err(BinError::BadSpec("require finite lo < hi"));
        }
        if n == 0 {
            return Err(BinError::BadSpec("zero bins"));
        }
        let width = (hi - lo) / n as f64;
        let edges = (0..=n).map(|i| lo + i as f64 * width).collect();
        Ok(BinSpec {
            edges,
            uniform: true,
        })
    }

    /// Bins from explicit, strictly increasing edges (`k+1` edges → `k`
    /// bins).
    ///
    /// # Errors
    ///
    /// [`BinError::BadSpec`] with fewer than two edges or non-finite
    /// edges; [`BinError::EdgesNotIncreasing`] otherwise.
    pub fn from_edges(edges: Vec<f64>) -> Result<Self, BinError> {
        if edges.len() < 2 {
            return Err(BinError::BadSpec("need at least two edges"));
        }
        for (i, w) in edges.windows(2).enumerate() {
            if !w[0].is_finite() || !w[1].is_finite() {
                return Err(BinError::BadSpec("non-finite edge"));
            }
            if w[0] >= w[1] {
                return Err(BinError::EdgesNotIncreasing { index: i + 1 });
            }
        }
        Ok(BinSpec {
            edges,
            uniform: false,
        })
    }

    /// `n` bins holding (approximately) equal numbers of the given sample
    /// values: edges at the `i/n` quantiles.
    ///
    /// # Errors
    ///
    /// [`BinError::NotEnoughData`] when fewer than 2 distinct values
    /// exist; [`BinError::BadSpec`] for `n == 0`.
    pub fn quantile(values: &[f64], n: usize) -> Result<Self, BinError> {
        if n == 0 {
            return Err(BinError::BadSpec("zero bins"));
        }
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if sorted.len() < 2 || sorted[0] == sorted[sorted.len() - 1] {
            return Err(BinError::NotEnoughData);
        }
        let mut edges = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let q = i as f64 / n as f64;
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            edges.push(sorted[idx]);
        }
        edges.dedup();
        if edges.len() < 2 {
            return Err(BinError::NotEnoughData);
        }
        BinSpec::from_edges(edges)
    }

    /// Sturges' rule: `ceil(log2 n) + 1` equal-width bins over the data
    /// range.
    ///
    /// # Errors
    ///
    /// [`BinError::NotEnoughData`] without at least 2 distinct finite
    /// values.
    pub fn sturges(values: &[f64]) -> Result<Self, BinError> {
        let (lo, hi, n) = finite_range(values)?;
        let k = ((n as f64).log2().ceil() as usize + 1).max(1);
        BinSpec::equal_width(lo, hi, k)
    }

    /// Scott's normal-reference rule: bin width `3.49 σ n^(-1/3)`.
    ///
    /// # Errors
    ///
    /// [`BinError::NotEnoughData`] without at least 2 distinct finite
    /// values or with zero variance.
    pub fn scott(values: &[f64]) -> Result<Self, BinError> {
        let (lo, hi, n) = finite_range(values)?;
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let sd = var.sqrt();
        if sd == 0.0 {
            return Err(BinError::NotEnoughData);
        }
        let width = 3.49 * sd * (n as f64).powf(-1.0 / 3.0);
        let k = (((hi - lo) / width).ceil() as usize).max(1);
        BinSpec::equal_width(lo, hi, k)
    }

    /// Freedman–Diaconis rule: bin width `2 · IQR · n^(-1/3)`.
    ///
    /// # Errors
    ///
    /// [`BinError::NotEnoughData`] without at least 2 distinct finite
    /// values or with zero IQR.
    pub fn freedman_diaconis(values: &[f64]) -> Result<Self, BinError> {
        let (lo, hi, n) = finite_range(values)?;
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        let iqr = q(0.75) - q(0.25);
        if iqr <= 0.0 {
            return Err(BinError::NotEnoughData);
        }
        let width = 2.0 * iqr * (n as f64).powf(-1.0 / 3.0);
        let k = (((hi - lo) / width).ceil() as usize).max(1);
        BinSpec::equal_width(lo, hi, k)
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.edges.len() - 1
    }

    /// True when the spec has no bins (never constructible; for
    /// completeness of the container API).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lowest edge.
    pub fn lo(&self) -> f64 {
        self.edges[0]
    }

    /// Highest edge.
    pub fn hi(&self) -> f64 {
        *self.edges.last().expect("at least two edges")
    }

    /// Whether this is an equal-width grid.
    pub fn is_uniform(&self) -> bool {
        self.uniform
    }

    /// The edges (length `len() + 1`).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Centre of bin `i`.
    pub fn centre(&self, i: usize) -> f64 {
        (self.edges[i] + self.edges[i + 1]) / 2.0
    }

    /// All bin centres.
    pub fn centres(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.centre(i)).collect()
    }

    /// Map a value to its bin index. Out-of-range values clamp to the
    /// first/last bin; NaN maps to the first bin (histogram callers
    /// should filter NaN upstream — scores are validated on creation).
    // `!(value > lo)` deliberately routes NaN into the first bin.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn bin_index(&self, value: f64) -> usize {
        let n = self.len();
        if self.uniform {
            let lo = self.lo();
            let hi = self.hi();
            if !(value > lo) {
                return 0;
            }
            if value >= hi {
                return n - 1;
            }
            let idx = ((value - lo) / (hi - lo) * n as f64) as usize;
            idx.min(n - 1)
        } else {
            // Binary search over edges: find rightmost edge <= value.
            if !(value > self.edges[0]) {
                return 0;
            }
            if value >= self.edges[n] {
                return n - 1;
            }
            match self
                .edges
                .binary_search_by(|e| e.partial_cmp(&value).expect("finite edges"))
            {
                Ok(i) => i.min(n - 1),
                Err(i) => i - 1,
            }
        }
    }

    /// Bulk form of [`BinSpec::bin_index`]: classify a whole slice in
    /// fixed-width chunks. On the uniform layout the per-value branches
    /// collapse into the clamp arithmetic itself — `v <= lo` (and `NaN`)
    /// land at 0 via the saturating float→int cast, `v >= hi` lands at
    /// `n - 1` via the `min` — so the loop is a straight
    /// subtract/divide/scale/clamp the compiler can vectorize. The
    /// division keeps the exact `(v - lo) / (hi - lo) * n` operation
    /// order of [`BinSpec::bin_index`], so the returned indices are
    /// **identical** to the scalar path for every input (asserted by a
    /// differential test); non-uniform layouts fall back to the scalar
    /// binary search per value.
    pub fn bin_indices(&self, values: &[f64]) -> Vec<u32> {
        const CHUNK: usize = 4096;
        let n = self.len();
        let (lo, hi) = (self.lo(), self.hi());
        let mut out = Vec::with_capacity(values.len());
        if self.uniform && hi > lo {
            let width = hi - lo;
            let scale = n as f64;
            let top = n - 1;
            for chunk in values.chunks(CHUNK) {
                out.extend(
                    chunk
                        .iter()
                        .map(|&v| (((v - lo) / width * scale) as usize).min(top) as u32),
                );
            }
        } else {
            for chunk in values.chunks(CHUNK) {
                out.extend(chunk.iter().map(|&v| self.bin_index(v) as u32));
            }
        }
        out
    }
}

fn finite_range(values: &[f64]) -> Result<(f64, f64, usize), BinError> {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.len() < 2 {
        return Err(BinError::NotEnoughData);
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if lo == hi {
        return Err(BinError::NotEnoughData);
    }
    Ok((lo, hi, finite.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_bin_indices_match_scalar_bin_index() {
        let uniform = BinSpec::equal_width(-2.0, 3.0, 7).unwrap();
        let skewed = BinSpec::from_edges(vec![0.0, 0.1, 0.5, 0.55, 2.0]).unwrap();
        let mut values = vec![
            f64::NAN,
            f64::NEG_INFINITY,
            f64::INFINITY,
            -3.0,
            -2.0,
            3.0,
            4.0,
            0.0,
            0.1,
            0.5,
            0.55,
            2.0,
        ];
        // Dense sweep across and past both ranges, hitting edges exactly.
        for i in 0..=600 {
            values.push(-3.0 + i as f64 * 0.0125);
        }
        for spec in [&uniform, &skewed] {
            let bulk = spec.bin_indices(&values);
            assert_eq!(bulk.len(), values.len());
            for (&v, &idx) in values.iter().zip(&bulk) {
                assert_eq!(
                    idx as usize,
                    spec.bin_index(v),
                    "bulk kernel diverged at v={v} (uniform={})",
                    spec.is_uniform()
                );
            }
        }
    }

    #[test]
    fn equal_width_layout() {
        let s = BinSpec::equal_width(0.0, 1.0, 10).unwrap();
        assert_eq!(s.len(), 10);
        assert!(s.is_uniform());
        assert_eq!(s.lo(), 0.0);
        assert_eq!(s.hi(), 1.0);
        assert!((s.centre(0) - 0.05).abs() < 1e-12);
        assert!((s.centre(9) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn equal_width_rejects_bad_specs() {
        assert!(BinSpec::equal_width(1.0, 0.0, 10).is_err());
        assert!(BinSpec::equal_width(0.0, 1.0, 0).is_err());
        assert!(BinSpec::equal_width(f64::NAN, 1.0, 3).is_err());
    }

    #[test]
    fn bin_index_uniform() {
        let s = BinSpec::equal_width(0.0, 1.0, 10).unwrap();
        assert_eq!(s.bin_index(0.0), 0);
        assert_eq!(s.bin_index(0.05), 0);
        assert_eq!(s.bin_index(0.1), 1);
        assert_eq!(s.bin_index(0.95), 9);
        assert_eq!(s.bin_index(1.0), 9); // top edge is inclusive
        assert_eq!(s.bin_index(-5.0), 0); // clamp
        assert_eq!(s.bin_index(5.0), 9); // clamp
    }

    #[test]
    fn bin_index_explicit_edges() {
        let s = BinSpec::from_edges(vec![0.0, 0.1, 0.5, 1.0]).unwrap();
        assert_eq!(s.len(), 3);
        assert!(!s.is_uniform());
        assert_eq!(s.bin_index(0.05), 0);
        assert_eq!(s.bin_index(0.1), 1); // edge belongs to the right bin
        assert_eq!(s.bin_index(0.3), 1);
        assert_eq!(s.bin_index(0.7), 2);
        assert_eq!(s.bin_index(1.0), 2);
    }

    #[test]
    fn edges_must_increase() {
        assert!(matches!(
            BinSpec::from_edges(vec![0.0, 0.5, 0.5, 1.0]),
            Err(BinError::EdgesNotIncreasing { index: 2 })
        ));
        assert!(BinSpec::from_edges(vec![0.0]).is_err());
    }

    #[test]
    fn quantile_bins_balance_counts() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = BinSpec::quantile(&values, 4).unwrap();
        assert_eq!(s.len(), 4);
        // Roughly a quarter of the data falls in each bin.
        let mut counts = vec![0usize; 4];
        for &v in &values {
            counts[s.bin_index(v)] += 1;
        }
        for c in counts {
            assert!((20..=30).contains(&c), "unbalanced quantile bin: {c}");
        }
    }

    #[test]
    fn quantile_needs_spread() {
        assert!(matches!(
            BinSpec::quantile(&[1.0, 1.0, 1.0], 4),
            Err(BinError::NotEnoughData)
        ));
        assert!(matches!(
            BinSpec::quantile(&[], 4),
            Err(BinError::NotEnoughData)
        ));
    }

    #[test]
    fn sturges_bin_count() {
        let values: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let s = BinSpec::sturges(&values).unwrap();
        assert_eq!(s.len(), 7); // log2(64) + 1
    }

    #[test]
    fn scott_and_fd_produce_reasonable_counts() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64 / 999.0).collect();
        let scott = BinSpec::scott(&values).unwrap();
        let fd = BinSpec::freedman_diaconis(&values).unwrap();
        assert!(
            scott.len() >= 2 && scott.len() <= 100,
            "scott: {}",
            scott.len()
        );
        assert!(fd.len() >= 2 && fd.len() <= 100, "fd: {}", fd.len());
    }

    #[test]
    fn auto_rules_need_variance() {
        assert!(BinSpec::scott(&[2.0; 10]).is_err());
        assert!(BinSpec::freedman_diaconis(&[2.0; 10]).is_err());
        assert!(BinSpec::sturges(&[2.0; 10]).is_err());
    }

    #[test]
    fn centres_cover_grid() {
        let s = BinSpec::equal_width(0.0, 2.0, 4).unwrap();
        let c = s.centres();
        assert_eq!(c.len(), 4);
        assert!((c[0] - 0.25).abs() < 1e-12);
        assert!((c[3] - 1.75).abs() < 1e-12);
    }
}
