//! Two-dimensional score histograms and their EMD.
//!
//! Workers are often ranked by *several* functions at once (one per task
//! type). Auditing each function separately can miss joint effects — a
//! group may be mid-range on both axes separately but systematically
//! pushed into the "bad at both" corner jointly. A 2-D histogram over a
//! pair of scores plus the general EMD solver (L1 ground distance over
//! the grid) extends the paper's measure to that joint view; the
//! `joint_audit` example exercises it.

use crate::bins::BinSpec;
use crate::distance::DistanceError;
use fairjob_emd::{GroundDistance, Solver};

/// A dense 2-D histogram over the product of two [`BinSpec`] grids.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram2d {
    x_spec: BinSpec,
    y_spec: BinSpec,
    /// Row-major counts: `counts[iy * nx + ix]`.
    counts: Vec<f64>,
    total: f64,
}

impl Histogram2d {
    /// An empty 2-D histogram over the two bin layouts.
    pub fn empty(x_spec: BinSpec, y_spec: BinSpec) -> Self {
        let n = x_spec.len() * y_spec.len();
        Histogram2d {
            x_spec,
            y_spec,
            counts: vec![0.0; n],
            total: 0.0,
        }
    }

    /// Bin a sequence of `(x, y)` points (weight 1 each; non-finite
    /// points skipped).
    pub fn from_points(
        x_spec: BinSpec,
        y_spec: BinSpec,
        points: impl IntoIterator<Item = (f64, f64)>,
    ) -> Self {
        let mut h = Histogram2d::empty(x_spec, y_spec);
        for (x, y) in points {
            h.add(x, y);
        }
        h
    }

    /// Add one point. Non-finite coordinates are ignored.
    pub fn add(&mut self, x: f64, y: f64) {
        if !x.is_finite() || !y.is_finite() {
            return;
        }
        let ix = self.x_spec.bin_index(x);
        let iy = self.y_spec.bin_index(y);
        self.counts[iy * self.x_spec.len() + ix] += 1.0;
        self.total += 1.0;
    }

    /// Add one point by precomputed cell indices, skipping the per-point
    /// float binning of [`Histogram2d::add`] (the joint audit bins both
    /// score vectors once at context build).
    ///
    /// # Panics
    ///
    /// When `ix` or `iy` is outside the grid — a programming error at
    /// the caller's binning step.
    pub fn add_cell(&mut self, ix: usize, iy: usize) {
        assert!(
            ix < self.x_spec.len() && iy < self.y_spec.len(),
            "cell ({ix}, {iy}) outside {}x{} grid",
            self.x_spec.len(),
            self.y_spec.len()
        );
        self.counts[iy * self.x_spec.len() + ix] += 1.0;
        self.total += 1.0;
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// True when no mass has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total <= 0.0
    }

    /// The grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.x_spec.len(), self.y_spec.len())
    }

    /// Count in cell `(ix, iy)`.
    pub fn count(&self, ix: usize, iy: usize) -> f64 {
        self.counts[iy * self.x_spec.len() + ix]
    }

    /// Marginal histogram over the x axis.
    pub fn marginal_x(&self) -> crate::Histogram {
        let nx = self.x_spec.len();
        let mut counts = vec![0.0; nx];
        for (i, &c) in self.counts.iter().enumerate() {
            counts[i % nx] += c;
        }
        crate::Histogram::from_counts(self.x_spec.clone(), counts)
    }

    /// Marginal histogram over the y axis.
    pub fn marginal_y(&self) -> crate::Histogram {
        let nx = self.x_spec.len();
        let ny = self.y_spec.len();
        let mut counts = vec![0.0; ny];
        for (i, &c) in self.counts.iter().enumerate() {
            counts[i / nx] += c;
        }
        crate::Histogram::from_counts(self.y_spec.clone(), counts)
    }
}

/// L1 (cityblock) ground distance between cells of a 2-D grid, measured
/// between cell centres in score units on each axis.
#[derive(Debug, Clone)]
pub struct GridL1_2d {
    x_centres: Vec<f64>,
    y_centres: Vec<f64>,
}

impl GridL1_2d {
    /// Ground distance for histograms over the given bin layouts.
    pub fn new(x_spec: &BinSpec, y_spec: &BinSpec) -> Self {
        GridL1_2d {
            x_centres: x_spec.centres(),
            y_centres: y_spec.centres(),
        }
    }
}

impl GroundDistance for GridL1_2d {
    fn size(&self) -> usize {
        self.x_centres.len() * self.y_centres.len()
    }

    fn cost(&self, i: usize, j: usize) -> f64 {
        let nx = self.x_centres.len();
        let (ix, iy) = (i % nx, i / nx);
        let (jx, jy) = (j % nx, j / nx);
        (self.x_centres[ix] - self.x_centres[jx]).abs()
            + (self.y_centres[iy] - self.y_centres[jy]).abs()
    }
}

/// EMD between two 2-D histograms under the cityblock ground distance,
/// solved exactly with min-cost flow on the non-empty cells.
///
/// # Errors
///
/// [`DistanceError::SpecMismatch`] for different grids,
/// [`DistanceError::EmptyHistogram`] when either side is empty, and
/// solver failures as [`DistanceError::Emd`].
pub fn emd_2d(a: &Histogram2d, b: &Histogram2d) -> Result<f64, DistanceError> {
    if a.x_spec != b.x_spec || a.y_spec != b.y_spec {
        return Err(DistanceError::SpecMismatch);
    }
    if a.is_empty() || b.is_empty() {
        return Err(DistanceError::EmptyHistogram);
    }
    let fa: Vec<f64> = a.counts.iter().map(|c| c / a.total).collect();
    let fb: Vec<f64> = b.counts.iter().map(|c| c / b.total).collect();
    let ground = GridL1_2d::new(&a.x_spec, &a.y_spec);
    Ok(fairjob_emd::transport::solve_emd(&fa, &fb, &ground, Solver::Flow)?.cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{Emd1d, HistogramDistance};

    fn spec(n: usize) -> BinSpec {
        BinSpec::equal_width(0.0, 1.0, n).unwrap()
    }

    #[test]
    fn binning_and_totals() {
        let h = Histogram2d::from_points(
            spec(4),
            spec(4),
            [(0.1, 0.1), (0.9, 0.9), (0.9, 0.1), (f64::NAN, 0.5)],
        );
        assert_eq!(h.total(), 3.0);
        assert_eq!(h.count(0, 0), 1.0);
        assert_eq!(h.count(3, 3), 1.0);
        assert_eq!(h.count(3, 0), 1.0);
        assert_eq!(h.dims(), (4, 4));
    }

    #[test]
    fn add_cell_matches_add() {
        let points = [(0.1, 0.1), (0.9, 0.9), (0.9, 0.1), (0.4, 0.7)];
        let direct = Histogram2d::from_points(spec(4), spec(4), points.iter().copied());
        let (xs, ys) = (spec(4), spec(4));
        let mut indexed = Histogram2d::empty(xs.clone(), ys.clone());
        for &(x, y) in &points {
            indexed.add_cell(xs.bin_index(x), ys.bin_index(y));
        }
        assert_eq!(indexed, direct);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn add_cell_rejects_out_of_grid() {
        let mut h = Histogram2d::empty(spec(4), spec(2));
        h.add_cell(4, 0);
    }

    #[test]
    fn marginals_match_direct_1d_histograms() {
        let points: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64 / 50.0, (i as f64 * 7.0 % 50.0) / 50.0))
            .collect();
        let h2 = Histogram2d::from_points(spec(10), spec(10), points.iter().copied());
        let hx = crate::Histogram::from_values(spec(10), points.iter().map(|p| p.0));
        let hy = crate::Histogram::from_values(spec(10), points.iter().map(|p| p.1));
        assert_eq!(h2.marginal_x(), hx);
        assert_eq!(h2.marginal_y(), hy);
    }

    #[test]
    fn emd_2d_identity_and_symmetry() {
        let a = Histogram2d::from_points(spec(5), spec(5), [(0.1, 0.3), (0.7, 0.9)]);
        let b = Histogram2d::from_points(spec(5), spec(5), [(0.5, 0.5)]);
        assert!(emd_2d(&a, &a).unwrap().abs() < 1e-9);
        let d1 = emd_2d(&a, &b).unwrap();
        let d2 = emd_2d(&b, &a).unwrap();
        assert!((d1 - d2).abs() < 1e-9);
        assert!(d1 > 0.0);
    }

    #[test]
    fn corner_to_corner_costs_both_axes() {
        // All mass moves from (0.1,0.1) to (0.9,0.9) on a 5x5 grid:
        // centres 0.1 and 0.9 -> cityblock distance 0.8 + 0.8.
        let a = Histogram2d::from_points(spec(5), spec(5), [(0.1, 0.1)]);
        let b = Histogram2d::from_points(spec(5), spec(5), [(0.9, 0.9)]);
        let d = emd_2d(&a, &b).unwrap();
        assert!((d - 1.6).abs() < 1e-9, "{d}");
    }

    #[test]
    fn pure_x_shift_matches_1d_emd() {
        // Mass differs only along x; 2-D EMD equals the marginal 1-D EMD.
        let a = Histogram2d::from_points(spec(8), spec(8), [(0.1, 0.5), (0.2, 0.5)]);
        let b = Histogram2d::from_points(spec(8), spec(8), [(0.8, 0.5), (0.9, 0.5)]);
        let d2 = emd_2d(&a, &b).unwrap();
        let d1 = Emd1d.distance(&a.marginal_x(), &b.marginal_x()).unwrap();
        assert!((d2 - d1).abs() < 1e-9, "2d {d2} vs marginal {d1}");
    }

    #[test]
    fn joint_structure_invisible_to_marginals() {
        // Anti-diagonal vs diagonal mass: identical marginals, positive
        // joint EMD — the case motivating the joint audit.
        let diag = Histogram2d::from_points(spec(4), spec(4), [(0.1, 0.1), (0.9, 0.9)]);
        let anti = Histogram2d::from_points(spec(4), spec(4), [(0.1, 0.9), (0.9, 0.1)]);
        let dx = Emd1d
            .distance(&diag.marginal_x(), &anti.marginal_x())
            .unwrap();
        let dy = Emd1d
            .distance(&diag.marginal_y(), &anti.marginal_y())
            .unwrap();
        assert!(dx.abs() < 1e-12 && dy.abs() < 1e-12, "marginals identical");
        let joint = emd_2d(&diag, &anti).unwrap();
        assert!(joint > 0.7, "joint EMD sees the structure: {joint}");
    }

    #[test]
    fn mismatched_grids_rejected() {
        let a = Histogram2d::from_points(spec(4), spec(4), [(0.5, 0.5)]);
        let b = Histogram2d::from_points(spec(5), spec(4), [(0.5, 0.5)]);
        assert!(matches!(emd_2d(&a, &b), Err(DistanceError::SpecMismatch)));
        let e = Histogram2d::empty(spec(4), spec(4));
        assert!(matches!(emd_2d(&a, &e), Err(DistanceError::EmptyHistogram)));
    }
}
