//! Streaming quantile estimation (P² algorithm).
//!
//! Platform logs arrive as a stream of scores; the P² sketch (Jain &
//! Chlamtac, CACM 1985) tracks a quantile online in O(1) memory without
//! storing observations, which is what the live-monitoring side of the
//! platform uses to watch score distributions drift between audits.

/// P² estimator for a single quantile `p` of a stream.
///
/// Maintains five markers (min, three interior, max) whose positions are
/// nudged towards their ideal stream positions with piecewise-parabolic
/// interpolation. Accuracy is within a few percent of the exact
/// empirical quantile for smooth distributions after a few hundred
/// observations.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates).
    heights: [f64; 5],
    /// Actual marker positions (1-based counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far.
    count: usize,
    /// First five observations (before the estimator proper starts).
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// Track the `p`-quantile (`0 < p < 1`; clamped to (0.001, 0.999)).
    pub fn new(p: f64) -> Self {
        let p = p.clamp(0.001, 0.999);
        P2Quantile {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feed one observation. Non-finite values are ignored.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if self.warmup.len() < 5 {
            self.warmup.push(x);
            if self.warmup.len() == 5 {
                self.warmup
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                for (i, &v) in self.warmup.iter().enumerate() {
                    self.heights[i] = v;
                }
            }
            return;
        }
        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }
        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, s)
                    };
                self.heights[i] = new_height;
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate; `None` before any observation.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.warmup.len() < 5 {
            // Exact quantile of the few points seen.
            let mut v = self.warmup.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let idx = ((v.len() - 1) as f64 * self.p).round() as usize;
            return Some(v[idx]);
        }
        Some(self.heights[2])
    }
}

/// A bank of P² estimators tracking several quantiles of one stream.
#[derive(Debug, Clone)]
pub struct QuantileBank {
    estimators: Vec<(f64, P2Quantile)>,
}

impl QuantileBank {
    /// Track the given quantile levels.
    pub fn new(levels: &[f64]) -> Self {
        QuantileBank {
            estimators: levels.iter().map(|&p| (p, P2Quantile::new(p))).collect(),
        }
    }

    /// The standard five-number summary (5%, 25%, 50%, 75%, 95%).
    pub fn summary() -> Self {
        QuantileBank::new(&[0.05, 0.25, 0.5, 0.75, 0.95])
    }

    /// Feed one observation to every estimator.
    pub fn observe(&mut self, x: f64) {
        for (_, est) in &mut self.estimators {
            est.observe(x);
        }
    }

    /// `(level, estimate)` pairs; empty estimates before data arrives.
    pub fn estimates(&self) -> Vec<(f64, Option<f64>)> {
        self.estimators
            .iter()
            .map(|(p, est)| (*p, est.estimate()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    /// Deterministic pseudo-random stream (LCG) so tests don't need rand.
    fn stream(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn median_of_uniform_stream() {
        let data = stream(10_000, 42);
        let mut est = P2Quantile::new(0.5);
        for &x in &data {
            est.observe(x);
        }
        let got = est.estimate().unwrap();
        assert!((got - 0.5).abs() < 0.03, "median estimate {got}");
        assert_eq!(est.count(), 10_000);
    }

    #[test]
    fn tail_quantiles_of_uniform_stream() {
        let data = stream(20_000, 7);
        for (p, tol) in [(0.05, 0.02), (0.95, 0.02), (0.25, 0.03), (0.75, 0.03)] {
            let mut est = P2Quantile::new(p);
            for &x in &data {
                est.observe(x);
            }
            let got = est.estimate().unwrap();
            assert!((got - p).abs() < tol, "p={p}: estimate {got}");
        }
    }

    #[test]
    fn matches_exact_on_skewed_stream() {
        // Quadratically skewed data.
        let data: Vec<f64> = stream(20_000, 9).iter().map(|x| x * x).collect();
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut est = P2Quantile::new(0.5);
        for &x in &data {
            est.observe(x);
        }
        let exact = exact_quantile(&sorted, 0.5);
        let got = est.estimate().unwrap();
        assert!(
            (got - exact).abs() < 0.03,
            "exact {exact} vs estimate {got}"
        );
    }

    #[test]
    fn small_streams_are_exact() {
        let mut est = P2Quantile::new(0.5);
        assert!(est.estimate().is_none());
        for x in [3.0, 1.0, 2.0] {
            est.observe(x);
        }
        assert_eq!(est.estimate(), Some(2.0));
    }

    #[test]
    fn non_finite_ignored() {
        let mut est = P2Quantile::new(0.5);
        est.observe(f64::NAN);
        est.observe(f64::INFINITY);
        assert_eq!(est.count(), 0);
        assert!(est.estimate().is_none());
    }

    #[test]
    fn estimates_are_order_insensitive_enough() {
        // Same multiset, ascending vs shuffled: estimates agree loosely.
        let mut asc: Vec<f64> = (0..5000).map(|i| i as f64 / 5000.0).collect();
        let shuffled = stream(5000, 3); // different values, same distribution
        let mut e1 = P2Quantile::new(0.5);
        for &x in &asc {
            e1.observe(x);
        }
        let mut e2 = P2Quantile::new(0.5);
        asc.reverse();
        for &x in &asc {
            e2.observe(x);
        }
        let (a, b) = (e1.estimate().unwrap(), e2.estimate().unwrap());
        assert!((a - b).abs() < 0.05, "{a} vs {b}");
        let _ = shuffled;
    }

    #[test]
    fn bank_tracks_summary() {
        let mut bank = QuantileBank::summary();
        for x in stream(10_000, 11) {
            bank.observe(x);
        }
        let estimates = bank.estimates();
        assert_eq!(estimates.len(), 5);
        // Monotone across levels.
        let values: Vec<f64> = estimates.iter().map(|(_, v)| v.unwrap()).collect();
        for w in values.windows(2) {
            assert!(
                w[0] <= w[1] + 0.02,
                "quantiles should be monotone: {values:?}"
            );
        }
    }

    #[test]
    fn extreme_p_clamped() {
        let est = P2Quantile::new(0.0);
        assert!(est.p > 0.0);
        let est = P2Quantile::new(1.5);
        assert!(est.p < 1.0);
    }
}
