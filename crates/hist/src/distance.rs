//! Pluggable distances between histograms.
//!
//! The paper measures unfairness with the Earth Mover's Distance
//! ([`Emd1d`], with [`EmdExact`] and [`EmdThresholded`] as general/robust
//! variants) and lists "other formulations and metrics for fairness" as
//! future work — those are the remaining implementations here. All of
//! them operate on *normalised* histograms so that partition sizes do not
//! leak into the distance.

use crate::histogram::Histogram;
use fairjob_emd::bounds;
use fairjob_emd::{
    EmdError, GridL1, GroundCache, GroundMatrix, PositionsL1, SolveScratch, Solver, Thresholded,
};
use std::fmt;

/// Errors from distance computation.
#[derive(Debug, Clone, PartialEq)]
pub enum DistanceError {
    /// The two histograms use different bin layouts.
    SpecMismatch,
    /// One of the histograms holds no mass.
    EmptyHistogram,
    /// The underlying EMD solver failed.
    Emd(EmdError),
}

impl fmt::Display for DistanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistanceError::SpecMismatch => write!(f, "histograms use different bin specs"),
            DistanceError::EmptyHistogram => write!(f, "cannot compare an empty histogram"),
            DistanceError::Emd(e) => write!(f, "emd: {e}"),
        }
    }
}

impl std::error::Error for DistanceError {}

impl From<EmdError> for DistanceError {
    fn from(e: EmdError) -> Self {
        DistanceError::Emd(e)
    }
}

/// Cheap, provable bounds on a distance, used by the batch kernel to
/// settle pairs without an exact solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceBounds {
    /// Provable lower bound: `lower <= distance(a, b)`.
    pub lower: f64,
    /// Provable upper bound: `distance(a, b) <= upper`.
    pub upper: f64,
    /// When true, `lower == upper` **bit-identically equals** the value
    /// [`HistogramDistance::distance`] would return — the bound *is* the
    /// answer and no exact solve is ever needed.
    pub exact: bool,
}

/// A distance (or divergence) between two histograms over the same bins.
///
/// Implementations must be symmetric unless documented otherwise
/// ([`Kl`] is the one asymmetric member, kept for completeness).
pub trait HistogramDistance: Send + Sync {
    /// Distance between `a` and `b`.
    ///
    /// # Errors
    ///
    /// [`DistanceError::SpecMismatch`] for differing layouts,
    /// [`DistanceError::EmptyHistogram`] when either side has no mass.
    fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64, DistanceError>;

    /// Short stable identifier for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Cheap provable bounds on `distance(a, b)`, or `None` when this
    /// distance has no screening support (the default) or the pair is
    /// degenerate (mismatched specs, empty histograms). Callers fall
    /// back to [`HistogramDistance::distance`] on `None`, so returning
    /// it is always safe.
    fn bounds(&self, a: &Histogram, b: &Histogram) -> Option<DistanceBounds> {
        let _ = (a, b);
        None
    }

    /// [`HistogramDistance::distance`] on a caller-owned solver
    /// workspace. The default ignores the scratch; the exact-EMD
    /// implementations override it to reuse solver buffers, the shared
    /// ground-matrix cache, and warm-started duals. The returned value is
    /// always bit-identical to `distance`.
    fn distance_with(
        &self,
        a: &Histogram,
        b: &Histogram,
        scratch: &mut SolveScratch,
    ) -> Result<f64, DistanceError> {
        let _ = scratch;
        self.distance(a, b)
    }

    /// Pre-build any process-wide cached state for histograms laid out
    /// like `h` (the exact solvers' ground matrix), so that workers
    /// solving afterwards — possibly in parallel — only ever hit the
    /// cache. The default does nothing.
    ///
    /// # Errors
    ///
    /// Implementations surface ground-construction failures here instead
    /// of at the first solve.
    fn prime(&self, h: &Histogram) -> Result<(), DistanceError> {
        let _ = h;
        Ok(())
    }
}

// Ground-cache signature tags. A signature is the exact bit-level
// fingerprint of the data a ground matrix is built from, so equal
// signatures guarantee equal matrices (no hashing, no collisions).
const SIG_POSITIONS: u64 = 0x706f_7331; // centres, L1
const SIG_THR_GRID: u64 = 0x7468_6731; // uniform grid, thresholded
const SIG_THR_POSITIONS: u64 = 0x7468_7031; // centres, thresholded

fn positions_sig(spec: &crate::bins::BinSpec, out: &mut Vec<u64>) {
    out.push(SIG_POSITIONS);
    out.push(spec.len() as u64);
    for i in 0..spec.len() {
        out.push(spec.centre(i).to_bits());
    }
}

fn thresholded_sig(spec: &crate::bins::BinSpec, threshold: f64, out: &mut Vec<u64>) {
    if spec.is_uniform() {
        out.push(SIG_THR_GRID);
        out.push(spec.len() as u64);
        out.push(spec.lo().to_bits());
        out.push(spec.hi().to_bits());
    } else {
        out.push(SIG_THR_POSITIONS);
        out.push(spec.len() as u64);
        for i in 0..spec.len() {
            out.push(spec.centre(i).to_bits());
        }
    }
    out.push(threshold.to_bits());
}

fn frequencies(a: &Histogram, b: &Histogram) -> Result<(Vec<f64>, Vec<f64>), DistanceError> {
    if a.spec() != b.spec() {
        return Err(DistanceError::SpecMismatch);
    }
    let fa = a.frequencies().ok_or(DistanceError::EmptyHistogram)?;
    let fb = b.frequencies().ok_or(DistanceError::EmptyHistogram)?;
    Ok((fa, fb))
}

/// Closed-form 1-D EMD over bin positions — the paper's measure and the
/// fast path used by the audit algorithms.
///
/// Uniform layouts use the grid closed form; non-uniform layouts use the
/// sorted-positions closed form over bin centres. Either way the distance
/// is in score units (for scores in `[0,1]`, at most `1 - binwidth`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Emd1d;

impl HistogramDistance for Emd1d {
    fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64, DistanceError> {
        let (fa, fb) = frequencies(a, b)?;
        let spec = a.spec();
        if spec.is_uniform() {
            Ok(fairjob_emd::emd_1d_grid(&fa, &fb, spec.lo(), spec.hi())?)
        } else {
            Ok(fairjob_emd::emd_1d_positions(&fa, &fb, &spec.centres())?)
        }
    }

    fn name(&self) -> &'static str {
        "emd"
    }

    /// Exact bounds from the cached prefix CDFs: Vallender's identity
    /// makes the CDF-L1 closed form *equal* to the 1-D EMD, and
    /// [`Histogram::cdf_stats`] + [`bounds::cdf_l1_grid`] replicate the
    /// floating-point operation order of the `distance` path, so the
    /// returned value is bit-identical to it.
    fn bounds(&self, a: &Histogram, b: &Histogram) -> Option<DistanceBounds> {
        if a.spec() != b.spec() {
            return None;
        }
        let (sa, sb) = (a.cdf_stats()?, b.cdf_stats()?);
        let spec = a.spec();
        let d = if spec.is_uniform() {
            bounds::cdf_l1_grid(&sa.cdf, &sb.cdf, spec.lo(), spec.hi()).ok()?
        } else {
            bounds::cdf_l1_positions(&sa.cdf, &sb.cdf, &spec.centres()).ok()?
        };
        Some(DistanceBounds {
            lower: d,
            upper: d,
            exact: true,
        })
    }
}

/// EMD via an exact transportation solver (flow or simplex). Numerically
/// identical to [`Emd1d`] on 1-D grounds; exists for differential testing
/// and for callers that want the simplex backend.
#[derive(Debug, Clone, Copy)]
pub struct EmdExact {
    /// Which exact backend to use.
    pub solver: Solver,
}

impl HistogramDistance for EmdExact {
    fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64, DistanceError> {
        let (fa, fb) = frequencies(a, b)?;
        let spec = a.spec();
        let ground = fairjob_emd::PositionsL1::new(spec.centres());
        Ok(fairjob_emd::transport::solve_emd(&fa, &fb, &ground, self.solver)?.cost)
    }

    fn name(&self) -> &'static str {
        match self.solver {
            Solver::Flow => "emd-flow",
            Solver::Simplex => "emd-simplex",
        }
    }

    /// Projection lower bound and total-variation upper bound around the
    /// transportation solvers. Not exact (the solvers take a different
    /// numeric path), but valid for the L1-on-centres ground they use.
    fn bounds(&self, a: &Histogram, b: &Histogram) -> Option<DistanceBounds> {
        if a.spec() != b.spec() {
            return None;
        }
        let (sa, sb) = (a.cdf_stats()?, b.cdf_stats()?);
        let spec = a.spec();
        let span = spec.centre(spec.len() - 1) - spec.centre(0);
        Some(DistanceBounds {
            lower: (sa.mean - sb.mean).abs(),
            upper: bounds::tv_between(&sa.cdf, &sb.cdf) * span,
            exact: false,
        })
    }

    /// Solve on the workspace: cached ground matrix (no per-pair centre
    /// walk or validation), reused solver buffers, and — for the flow
    /// backend — warm-started duals between consecutive pairs sharing a
    /// support set. Bit-identical to `distance`.
    fn distance_with(
        &self,
        a: &Histogram,
        b: &Histogram,
        scratch: &mut SolveScratch,
    ) -> Result<f64, DistanceError> {
        let (fa, fb) = frequencies(a, b)?;
        let spec = a.spec();
        let ground = scratch.ground_for(
            |sig| positions_sig(spec, sig),
            || GroundMatrix::build(&PositionsL1::new(spec.centres())),
        )?;
        Ok(fairjob_emd::emd_cost_in(
            scratch,
            &fa,
            &fb,
            &ground,
            self.solver,
        )?)
    }

    fn prime(&self, h: &Histogram) -> Result<(), DistanceError> {
        let spec = h.spec();
        let mut sig = Vec::new();
        positions_sig(spec, &mut sig);
        GroundCache::global().get_or_build(&sig, || {
            GroundMatrix::build(&PositionsL1::new(spec.centres()))
        })?;
        Ok(())
    }
}

/// EMD with a saturated (thresholded) ground distance, after Pele &
/// Werman (ICCV 2009): bins further apart than `threshold` all cost
/// `threshold`. Robust to outlier mass.
#[derive(Debug, Clone, Copy)]
pub struct EmdThresholded {
    /// Saturation distance in score units.
    pub threshold: f64,
}

impl HistogramDistance for EmdThresholded {
    fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64, DistanceError> {
        let (fa, fb) = frequencies(a, b)?;
        let spec = a.spec();
        let ground = if spec.is_uniform() {
            Thresholded::new(
                GridL1::new(spec.lo(), spec.hi(), spec.len())?,
                self.threshold,
            )
        } else {
            // Build from centres via the grid-equivalent positions.
            return {
                let pos = fairjob_emd::PositionsL1::new(spec.centres());
                let t = Thresholded::new(pos, self.threshold);
                Ok(fairjob_emd::transport::solve_emd(&fa, &fb, &t, Solver::Flow)?.cost)
            };
        };
        Ok(fairjob_emd::transport::solve_emd(&fa, &fb, &ground, Solver::Flow)?.cost)
    }

    fn name(&self) -> &'static str {
        "emd-thresholded"
    }

    /// Total-variation sandwich for the saturated ground: off-diagonal
    /// costs lie in `[min(gap, t), min(span, t)]`, so
    /// `TV * d_min <= EMD_t <= TV * d_max`. The projection bound is *not*
    /// valid here (it bounds the unthresholded EMD from below, which the
    /// thresholded EMD can undercut).
    fn bounds(&self, a: &Histogram, b: &Histogram) -> Option<DistanceBounds> {
        if a.spec() != b.spec() || !self.threshold.is_finite() {
            return None;
        }
        let (sa, sb) = (a.cdf_stats()?, b.cdf_stats()?);
        let spec = a.spec();
        let centres = spec.centres();
        let span = centres[centres.len() - 1] - centres[0];
        let min_gap = centres
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::INFINITY, f64::min);
        let tv = bounds::tv_between(&sa.cdf, &sb.cdf);
        // A single bin has no off-diagonal cost; TV is 0 there anyway.
        let d_min = if min_gap.is_finite() { min_gap } else { 0.0 };
        Some(DistanceBounds {
            lower: tv * d_min.min(self.threshold).max(0.0),
            upper: tv * span.min(self.threshold).max(0.0),
            exact: false,
        })
    }

    fn distance_with(
        &self,
        a: &Histogram,
        b: &Histogram,
        scratch: &mut SolveScratch,
    ) -> Result<f64, DistanceError> {
        let (fa, fb) = frequencies(a, b)?;
        let spec = a.spec();
        let threshold = self.threshold;
        let ground = scratch.ground_for(
            |sig| thresholded_sig(spec, threshold, sig),
            || build_thresholded_matrix(spec, threshold),
        )?;
        Ok(fairjob_emd::emd_cost_in(
            scratch,
            &fa,
            &fb,
            &ground,
            Solver::Flow,
        )?)
    }

    fn prime(&self, h: &Histogram) -> Result<(), DistanceError> {
        let spec = h.spec();
        let mut sig = Vec::new();
        thresholded_sig(spec, self.threshold, &mut sig);
        GroundCache::global()
            .get_or_build(&sig, || build_thresholded_matrix(spec, self.threshold))?;
        Ok(())
    }
}

/// Snapshot the thresholded ground for `spec` into a validated matrix,
/// mirroring the ground construction in [`EmdThresholded::distance`].
fn build_thresholded_matrix(
    spec: &crate::bins::BinSpec,
    threshold: f64,
) -> Result<GroundMatrix, EmdError> {
    if spec.is_uniform() {
        let g = GridL1::new(spec.lo(), spec.hi(), spec.len())?;
        GroundMatrix::build(&Thresholded::new(g, threshold))
    } else {
        GroundMatrix::build(&Thresholded::new(
            PositionsL1::new(spec.centres()),
            threshold,
        ))
    }
}

/// Total variation distance: `½ Σ |aᵢ - bᵢ|` ∈ [0, 1]. Ignores bin
/// geometry entirely (a useful contrast with EMD in the metric ablation).
#[derive(Debug, Clone, Copy, Default)]
pub struct TotalVariation;

impl HistogramDistance for TotalVariation {
    fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64, DistanceError> {
        let (fa, fb) = frequencies(a, b)?;
        Ok(0.5 * fa.iter().zip(&fb).map(|(x, y)| (x - y).abs()).sum::<f64>())
    }

    fn name(&self) -> &'static str {
        "total-variation"
    }
}

/// Kolmogorov–Smirnov statistic: `max |CDF_a - CDF_b|` ∈ [0, 1].
#[derive(Debug, Clone, Copy, Default)]
pub struct KolmogorovSmirnov;

impl HistogramDistance for KolmogorovSmirnov {
    fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64, DistanceError> {
        let (fa, fb) = frequencies(a, b)?;
        let mut ca = 0.0;
        let mut cb = 0.0;
        let mut m = 0.0f64;
        for (x, y) in fa.iter().zip(&fb) {
            ca += x;
            cb += y;
            m = m.max((ca - cb).abs());
        }
        Ok(m)
    }

    fn name(&self) -> &'static str {
        "kolmogorov-smirnov"
    }
}

/// Jensen–Shannon divergence (base-2, so the value is in [0, 1]);
/// symmetric, finite smoothed KL to the mixture.
#[derive(Debug, Clone, Copy, Default)]
pub struct JensenShannon;

impl HistogramDistance for JensenShannon {
    fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64, DistanceError> {
        let (fa, fb) = frequencies(a, b)?;
        let mut d = 0.0;
        for (&x, &y) in fa.iter().zip(&fb) {
            let m = (x + y) / 2.0;
            if x > 0.0 {
                d += 0.5 * x * (x / m).log2();
            }
            if y > 0.0 {
                d += 0.5 * y * (y / m).log2();
            }
        }
        Ok(d.max(0.0))
    }

    fn name(&self) -> &'static str {
        "jensen-shannon"
    }
}

/// Smoothed Kullback–Leibler divergence `KL(a ‖ b)`. **Asymmetric**; bins
/// are Laplace-smoothed with `epsilon` to keep the value finite when `b`
/// has empty bins.
#[derive(Debug, Clone, Copy)]
pub struct Kl {
    /// Additive smoothing mass per bin.
    pub epsilon: f64,
}

impl Default for Kl {
    fn default() -> Self {
        Kl { epsilon: 1e-6 }
    }
}

impl HistogramDistance for Kl {
    fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64, DistanceError> {
        let (fa, fb) = frequencies(a, b)?;
        let n = fa.len() as f64;
        let smooth = |v: f64| (v + self.epsilon) / (1.0 + n * self.epsilon);
        let mut d = 0.0;
        for (&x, &y) in fa.iter().zip(&fb) {
            let (sx, sy) = (smooth(x), smooth(y));
            d += sx * (sx / sy).ln();
        }
        Ok(d.max(0.0))
    }

    fn name(&self) -> &'static str {
        "kl"
    }
}

/// Hellinger distance `√(1 - Σ √(aᵢ bᵢ))` ∈ [0, 1]; a bounded metric.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hellinger;

impl HistogramDistance for Hellinger {
    fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64, DistanceError> {
        let (fa, fb) = frequencies(a, b)?;
        let bc: f64 = fa.iter().zip(&fb).map(|(x, y)| (x * y).sqrt()).sum();
        Ok((1.0 - bc.min(1.0)).sqrt())
    }

    fn name(&self) -> &'static str {
        "hellinger"
    }
}

/// Symmetrised χ² distance: `½ Σ (aᵢ-bᵢ)² / (aᵢ+bᵢ)` ∈ [0, 1].
#[derive(Debug, Clone, Copy, Default)]
pub struct ChiSquare;

impl HistogramDistance for ChiSquare {
    fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64, DistanceError> {
        let (fa, fb) = frequencies(a, b)?;
        let mut d = 0.0;
        for (&x, &y) in fa.iter().zip(&fb) {
            let s = x + y;
            if s > 0.0 {
                d += (x - y).powi(2) / s;
            }
        }
        Ok(0.5 * d)
    }

    fn name(&self) -> &'static str {
        "chi-square"
    }
}

/// Resolve a metric by its short CLI/query name. These are the stable
/// user-facing spellings (`tv`, not `total-variation`); `None` means the
/// name is unknown. The accepted set matches `fairjob audit --metric`.
pub fn by_name(name: &str) -> Option<std::sync::Arc<dyn HistogramDistance>> {
    Some(match name {
        "emd" => std::sync::Arc::new(Emd1d),
        "emd-exact" => std::sync::Arc::new(EmdExact {
            solver: Solver::Flow,
        }),
        "tv" => std::sync::Arc::new(TotalVariation),
        "ks" => std::sync::Arc::new(KolmogorovSmirnov),
        "jsd" => std::sync::Arc::new(JensenShannon),
        "hellinger" => std::sync::Arc::new(Hellinger),
        "chi2" => std::sync::Arc::new(ChiSquare),
        _ => return None,
    })
}

/// The names [`by_name`] accepts, for error messages.
pub const METRIC_NAMES: &[&str] = &["emd", "emd-exact", "tv", "ks", "jsd", "hellinger", "chi2"];

/// All bounded symmetric distances, for metric-sweep ablations.
pub fn all_symmetric_distances() -> Vec<Box<dyn HistogramDistance>> {
    vec![
        Box::new(Emd1d),
        Box::new(TotalVariation),
        Box::new(KolmogorovSmirnov),
        Box::new(JensenShannon),
        Box::new(Hellinger),
        Box::new(ChiSquare),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::BinSpec;

    fn spec() -> BinSpec {
        BinSpec::equal_width(0.0, 1.0, 10).unwrap()
    }

    fn h(values: &[f64]) -> Histogram {
        Histogram::from_values(spec(), values.iter().copied())
    }

    #[test]
    fn emd_extremes() {
        let a = h(&[0.05]);
        let b = h(&[0.95]);
        let d = Emd1d.distance(&a, &b).unwrap();
        assert!((d - 0.9).abs() < 1e-12);
    }

    #[test]
    fn all_distances_zero_on_identical() {
        let a = h(&[0.1, 0.5, 0.9]);
        for dist in all_symmetric_distances() {
            let d = dist.distance(&a, &a).unwrap();
            assert!(d.abs() < 1e-9, "{}: {d}", dist.name());
        }
        assert!(Kl::default().distance(&a, &a).unwrap().abs() < 1e-9);
    }

    #[test]
    fn all_distances_symmetric() {
        let a = h(&[0.1, 0.2, 0.5]);
        let b = h(&[0.6, 0.9, 0.95]);
        for dist in all_symmetric_distances() {
            let d1 = dist.distance(&a, &b).unwrap();
            let d2 = dist.distance(&b, &a).unwrap();
            assert!((d1 - d2).abs() < 1e-12, "{}", dist.name());
        }
    }

    #[test]
    fn kl_is_asymmetric_but_nonnegative() {
        let a = h(&[0.1, 0.1, 0.2]);
        let b = h(&[0.8, 0.9]);
        let d1 = Kl::default().distance(&a, &b).unwrap();
        let d2 = Kl::default().distance(&b, &a).unwrap();
        assert!(d1 > 0.0 && d2 > 0.0);
        assert!((d1 - d2).abs() > 1e-6, "expected asymmetry: {d1} vs {d2}");
    }

    #[test]
    fn spec_mismatch_detected() {
        let a = h(&[0.5]);
        let b = Histogram::from_values(BinSpec::equal_width(0.0, 1.0, 5).unwrap(), [0.5]);
        for dist in all_symmetric_distances() {
            assert!(matches!(
                dist.distance(&a, &b),
                Err(DistanceError::SpecMismatch)
            ));
        }
    }

    #[test]
    fn empty_histogram_detected() {
        let a = h(&[0.5]);
        let e = Histogram::empty(spec());
        assert!(matches!(
            Emd1d.distance(&a, &e),
            Err(DistanceError::EmptyHistogram)
        ));
        assert!(matches!(
            Emd1d.distance(&e, &a),
            Err(DistanceError::EmptyHistogram)
        ));
    }

    #[test]
    fn tv_and_ks_bounded_by_one() {
        let a = h(&[0.01; 5]);
        let b = h(&[0.99; 5]);
        assert!((TotalVariation.distance(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!((KolmogorovSmirnov.distance(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jsd_bounded_by_one_bit() {
        let a = h(&[0.01; 5]);
        let b = h(&[0.99; 5]);
        let d = JensenShannon.distance(&a, &b).unwrap();
        assert!(d <= 1.0 + 1e-12 && d > 0.99);
    }

    #[test]
    fn hellinger_disjoint_supports() {
        let a = h(&[0.05]);
        let b = h(&[0.95]);
        assert!((Hellinger.distance(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_bounded() {
        let a = h(&[0.05]);
        let b = h(&[0.95]);
        let d = ChiSquare.distance(&a, &b).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn emd_exact_matches_closed_form() {
        let a = h(&[0.12, 0.34, 0.55, 0.9]);
        let b = h(&[0.2, 0.21, 0.8]);
        let closed = Emd1d.distance(&a, &b).unwrap();
        for solver in [Solver::Flow, Solver::Simplex] {
            let exact = EmdExact { solver }.distance(&a, &b).unwrap();
            assert!((closed - exact).abs() < 1e-9, "{solver:?}");
        }
    }

    #[test]
    fn thresholded_caps_distance() {
        let a = h(&[0.05]);
        let b = h(&[0.95]);
        let d = EmdThresholded { threshold: 0.25 }.distance(&a, &b).unwrap();
        assert!((d - 0.25).abs() < 1e-9);
    }

    #[test]
    fn emd_on_non_uniform_spec_uses_centres() {
        let s = BinSpec::from_edges(vec![0.0, 0.5, 0.6, 1.0]).unwrap();
        let a = Histogram::from_values(s.clone(), [0.1].iter().copied()); // centre 0.25
        let b = Histogram::from_values(s, [0.9].iter().copied()); // centre 0.8
        let d = Emd1d.distance(&a, &b).unwrap();
        assert!((d - 0.55).abs() < 1e-12);
    }

    #[test]
    fn emd1d_bounds_are_exact_and_bit_identical() {
        let a = h(&[0.12, 0.34, 0.55, 0.9]);
        let b = h(&[0.2, 0.21, 0.8]);
        let bd = Emd1d.bounds(&a, &b).unwrap();
        assert!(bd.exact);
        let d = Emd1d.distance(&a, &b).unwrap();
        assert_eq!(bd.lower.to_bits(), d.to_bits());
        assert_eq!(bd.upper.to_bits(), d.to_bits());

        // Non-uniform specs get the positions closed form, still exact.
        let s = BinSpec::from_edges(vec![0.0, 0.5, 0.6, 1.0]).unwrap();
        let na = Histogram::from_values(s.clone(), [0.1, 0.55].iter().copied());
        let nb = Histogram::from_values(s, [0.9, 0.55].iter().copied());
        let bd = Emd1d.bounds(&na, &nb).unwrap();
        assert!(bd.exact);
        assert_eq!(
            bd.lower.to_bits(),
            Emd1d.distance(&na, &nb).unwrap().to_bits()
        );
    }

    #[test]
    fn solver_bounds_sandwich_the_distance() {
        let a = h(&[0.05, 0.1, 0.4]);
        let b = h(&[0.6, 0.95]);
        for solver in [Solver::Flow, Solver::Simplex] {
            let dist = EmdExact { solver };
            let bd = dist.bounds(&a, &b).unwrap();
            assert!(!bd.exact);
            let d = dist.distance(&a, &b).unwrap();
            assert!(bd.lower <= d + 1e-9 && d <= bd.upper + 1e-9);
        }
        let dist = EmdThresholded { threshold: 0.25 };
        let bd = dist.bounds(&a, &b).unwrap();
        let d = dist.distance(&a, &b).unwrap();
        assert!(bd.lower <= d + 1e-9 && d <= bd.upper + 1e-9);
    }

    #[test]
    fn bounds_degenerate_pairs_return_none() {
        let a = h(&[0.5]);
        let other_spec = Histogram::from_values(BinSpec::equal_width(0.0, 1.0, 5).unwrap(), [0.5]);
        assert!(Emd1d.bounds(&a, &other_spec).is_none());
        assert!(Emd1d.bounds(&a, &Histogram::empty(spec())).is_none());
        // Distances without screening support keep the default.
        assert!(TotalVariation.bounds(&a, &a).is_none());
    }

    #[test]
    fn distance_with_is_bit_identical_to_distance() {
        let hists = [
            h(&[0.12, 0.34, 0.55, 0.9]),
            h(&[0.2, 0.21, 0.8]),
            h(&[0.05, 0.5, 0.95]),
        ];
        let exact_flow = EmdExact {
            solver: Solver::Flow,
        };
        let exact_simplex = EmdExact {
            solver: Solver::Simplex,
        };
        let thresholded = EmdThresholded { threshold: 0.25 };
        let mut scratch = SolveScratch::new();
        for a in &hists {
            for b in &hists {
                for dist in [
                    &exact_flow as &dyn HistogramDistance,
                    &exact_simplex,
                    &thresholded,
                    &Emd1d, // default impl must also agree
                ] {
                    let plain = dist.distance(a, b).unwrap();
                    let scratched = dist.distance_with(a, b, &mut scratch).unwrap();
                    assert_eq!(
                        plain.to_bits(),
                        scratched.to_bits(),
                        "{}: plain={plain} scratched={scratched}",
                        dist.name()
                    );
                }
            }
        }
    }

    #[test]
    fn prime_makes_every_scratch_solve_a_cache_hit() {
        // A spec unlikely to collide with other tests' cache entries.
        let s = BinSpec::equal_width(0.0, 0.731, 9).unwrap();
        let a = Histogram::from_values(s.clone(), [0.1, 0.3].iter().copied());
        let b = Histogram::from_values(s, [0.5, 0.7].iter().copied());
        let dist = EmdExact {
            solver: Solver::Flow,
        };
        dist.prime(&a).unwrap();
        let mut scratch = SolveScratch::new();
        scratch.begin_chunk();
        dist.distance_with(&a, &b, &mut scratch).unwrap();
        dist.distance_with(&b, &a, &mut scratch).unwrap();
        // Primed: both solves hit a cache tier, never build.
        assert_eq!(scratch.stats().ground_cache_hits, 2);
        assert_eq!(scratch.stats().scratch_reuses, 1);
    }

    #[test]
    fn warm_starts_fire_on_shared_supports() {
        let s = BinSpec::equal_width(0.0, 1.0, 8).unwrap();
        let mk = |vals: &[f64]| Histogram::from_values(s.clone(), vals.iter().copied());
        // Same support bins, different masses.
        let a = mk(&[0.1, 0.1, 0.4, 0.9]);
        let b = mk(&[0.1, 0.4, 0.4, 0.9]);
        let c = mk(&[0.1, 0.4, 0.9, 0.9]);
        let dist = EmdExact {
            solver: Solver::Flow,
        };
        let mut scratch = SolveScratch::new();
        scratch.begin_chunk();
        let d1 = dist.distance_with(&a, &b, &mut scratch).unwrap();
        let d2 = dist.distance_with(&a, &c, &mut scratch).unwrap();
        assert_eq!(scratch.stats().warm_starts, 1);
        // Warm-started values still match the cold path bit for bit.
        assert_eq!(d1.to_bits(), dist.distance(&a, &b).unwrap().to_bits());
        assert_eq!(d2.to_bits(), dist.distance(&a, &c).unwrap().to_bits());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Emd1d.name(), "emd");
        assert_eq!(
            EmdExact {
                solver: Solver::Flow
            }
            .name(),
            "emd-flow"
        );
        assert_eq!(
            EmdExact {
                solver: Solver::Simplex
            }
            .name(),
            "emd-simplex"
        );
    }
}
