//! Dense counted histograms.

use crate::bins::BinSpec;
use fairjob_emd::bounds::PrefixCdf;
use std::sync::{Arc, OnceLock};

/// Lazily-built per-histogram CDF statistics, computed once and reused
/// across every pair the histogram participates in.
///
/// The prefix CDF is built from [`Histogram::frequencies`] — *not* the
/// raw counts — so that closed forms over it reproduce, bit for bit, the
/// distance path that hands frequencies to [`fairjob_emd::emd_1d_grid`]
/// (which renormalises its input a second time).
#[derive(Debug, PartialEq)]
pub struct CdfStats {
    /// Prefix CDF over the histogram's frequencies.
    pub cdf: PrefixCdf,
    /// Mass-weighted mean over bin centres (same value as
    /// [`Histogram::mean`]).
    pub mean: f64,
}

/// A dense histogram: a [`BinSpec`] plus one count per bin.
///
/// Counts are `f64` so histograms can hold weighted observations and
/// normalised mass alike. `h(pᵢ, f)` in the paper is exactly
/// `Histogram::from_values(spec, scores of partition pᵢ)`.
///
/// Equality compares the bin layout and counts only; the lazily-cached
/// [`CdfStats`] is derived data and never observable through `==`.
#[derive(Debug, Clone)]
pub struct Histogram {
    spec: BinSpec,
    counts: Vec<f64>,
    total: f64,
    /// `None` inside the lock = the stats were computed but the
    /// histogram is empty (or its frequencies are degenerate).
    stats: OnceLock<Option<Arc<CdfStats>>>,
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec && self.counts == other.counts && self.total == other.total
    }
}

impl Histogram {
    /// An empty histogram over `spec`.
    pub fn empty(spec: BinSpec) -> Self {
        let n = spec.len();
        Histogram {
            spec,
            counts: vec![0.0; n],
            total: 0.0,
            stats: OnceLock::new(),
        }
    }

    /// Build a histogram by binning an iterator of values (each with
    /// weight 1). Non-finite values are skipped.
    pub fn from_values(spec: BinSpec, values: impl IntoIterator<Item = f64>) -> Self {
        let mut h = Histogram::empty(spec);
        for v in values {
            h.add(v);
        }
        h
    }

    /// Wrap precomputed counts (e.g. from the columnar store's group-by).
    ///
    /// # Panics
    ///
    /// When `counts.len() != spec.len()` — this is a programming error at
    /// the store/histogram boundary, not a data error.
    pub fn from_counts(spec: BinSpec, counts: Vec<f64>) -> Self {
        assert_eq!(
            counts.len(),
            spec.len(),
            "count vector must match bin count"
        );
        let total = counts.iter().sum();
        Histogram {
            spec,
            counts,
            total,
            stats: OnceLock::new(),
        }
    }

    /// Build a histogram from precomputed bin indices (weight 1 each).
    /// The caller binned the values once up front (e.g. the audit layer
    /// bins every score at context build), so no float comparisons
    /// happen here — just counter bumps.
    ///
    /// # Panics
    ///
    /// When an index is `>= spec.len()` — a programming error at the
    /// caller's binning step, not a data error.
    pub fn from_bin_indices(spec: BinSpec, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut counts = vec![0.0; spec.len()];
        let mut total = 0.0;
        for i in indices {
            counts[i] += 1.0;
            total += 1.0;
        }
        Histogram {
            spec,
            counts,
            total,
            stats: OnceLock::new(),
        }
    }

    /// [`Histogram::from_bin_indices`] over a precomputed `u32` bin
    /// array (the audit layer's `bin_of` representation): counts
    /// accumulate as integers and convert to `f64` once at the end.
    /// Both the per-bin counts and the total are whole numbers far
    /// below 2^53, so the integer accumulation is **exactly** the value
    /// the float path produces — per-shard counts from this kernel can
    /// be merged by integer addition without any rounding concern.
    ///
    /// # Panics
    ///
    /// As [`Histogram::from_bin_indices`], when an index `>= len()`.
    pub fn from_bin_indices_u32(spec: BinSpec, indices: impl IntoIterator<Item = u32>) -> Self {
        let mut counts = vec![0u32; spec.len()];
        for i in indices {
            counts[i as usize] += 1;
        }
        Self::from_counts(spec, counts.into_iter().map(f64::from).collect())
    }

    /// Add one observation with weight 1. Non-finite values are ignored.
    pub fn add(&mut self, value: f64) {
        self.add_weighted(value, 1.0);
    }

    /// Add one observation with the given non-negative weight. Non-finite
    /// values or weights are ignored.
    pub fn add_weighted(&mut self, value: f64, weight: f64) {
        if !value.is_finite() || !weight.is_finite() || weight < 0.0 {
            return;
        }
        let i = self.spec.bin_index(value);
        self.counts[i] += weight;
        self.total += weight;
        self.stats = OnceLock::new();
    }

    /// The bin layout.
    pub fn spec(&self) -> &BinSpec {
        &self.spec
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// True when no mass has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total <= 0.0
    }

    /// Per-bin relative frequencies (unit total mass), or `None` when the
    /// histogram is empty.
    pub fn frequencies(&self) -> Option<Vec<f64>> {
        if self.is_empty() {
            return None;
        }
        Some(self.counts.iter().map(|c| c / self.total).collect())
    }

    /// Merge another histogram into this one.
    ///
    /// # Panics
    ///
    /// When the bin specs differ — merging across layouts is a
    /// programming error.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.spec, other.spec,
            "cannot merge histograms with different bin specs"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.stats = OnceLock::new();
    }

    /// Mean of the binned distribution (bin centres weighted by mass), or
    /// `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let s: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, c)| c * self.spec.centre(i))
            .sum();
        Some(s / self.total)
    }

    /// Variance of the binned distribution, or `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        let s: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, c)| c * (self.spec.centre(i) - mean).powi(2))
            .sum();
        Some(s / self.total)
    }

    /// Cached CDF statistics for the bound-screening fast path, built on
    /// first use and reused across every pairwise comparison this
    /// histogram participates in. Returns `None` when the histogram is
    /// empty.
    ///
    /// The cache is invalidated by every mutation ([`Histogram::add`],
    /// [`Histogram::add_weighted`], [`Histogram::merge`]); the engine's
    /// split-children patching path rebuilds histograms through
    /// [`Histogram::from_counts`], so patched partitions start with a
    /// fresh (unbuilt) cache and streaming stays bit-identical.
    pub fn cdf_stats(&self) -> Option<&CdfStats> {
        self.stats
            .get_or_init(|| {
                let freqs = self.frequencies()?;
                let cdf = PrefixCdf::build(&freqs).ok()?;
                let mean = self.mean()?;
                Some(Arc::new(CdfStats { cdf, mean }))
            })
            .as_deref()
    }

    /// Cumulative mass up to and including bin `i`, normalised to [0, 1].
    /// Returns `None` when empty.
    pub fn cdf(&self) -> Option<Vec<f64>> {
        if self.is_empty() {
            return None;
        }
        let mut acc = 0.0;
        Some(
            self.counts
                .iter()
                .map(|c| {
                    acc += c;
                    acc / self.total
                })
                .collect(),
        )
    }

    /// A compact ASCII rendering (one line per non-empty bin) used by the
    /// audit reports and examples.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().fold(0.0f64, f64::max);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar_len = if max > 0.0 {
                ((c / max) * width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!(
                "[{:6.3}, {:6.3}) {:>8.1} {}\n",
                self.spec.edges()[i],
                self.spec.edges()[i + 1],
                c,
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec10() -> BinSpec {
        BinSpec::equal_width(0.0, 1.0, 10).unwrap()
    }

    #[test]
    fn u32_bin_index_constructor_is_bit_identical() {
        let indices: Vec<u32> = (0..500).map(|i| (i * 7) % 10).collect();
        let float_path = Histogram::from_bin_indices(spec10(), indices.iter().map(|&i| i as usize));
        let int_path = Histogram::from_bin_indices_u32(spec10(), indices.iter().copied());
        assert_eq!(float_path.total().to_bits(), int_path.total().to_bits());
        for (a, b) in float_path.counts().iter().zip(int_path.counts()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn from_values_counts_correctly() {
        let h = Histogram::from_values(spec10(), [0.05, 0.07, 0.55, 0.95, 1.0].iter().copied());
        assert_eq!(h.total(), 5.0);
        assert_eq!(h.counts()[0], 2.0);
        assert_eq!(h.counts()[5], 1.0);
        assert_eq!(h.counts()[9], 2.0); // 0.95 and clamped 1.0
    }

    #[test]
    fn from_bin_indices_matches_from_values() {
        let values = [0.05, 0.07, 0.55, 0.95, 1.0];
        let direct = Histogram::from_values(spec10(), values.iter().copied());
        let spec = spec10();
        let indices: Vec<usize> = values.iter().map(|&v| spec.bin_index(v)).collect();
        let indexed = Histogram::from_bin_indices(spec, indices);
        assert_eq!(indexed, direct);
        assert_eq!(indexed.total(), 5.0);
    }

    #[test]
    fn from_bin_indices_empty_is_empty() {
        let h = Histogram::from_bin_indices(spec10(), std::iter::empty());
        assert!(h.is_empty());
    }

    #[test]
    #[should_panic]
    fn from_bin_indices_rejects_out_of_range() {
        let _ = Histogram::from_bin_indices(spec10(), [10usize]);
    }

    #[test]
    fn nan_values_are_skipped() {
        let h = Histogram::from_values(spec10(), [f64::NAN, 0.5].iter().copied());
        assert_eq!(h.total(), 1.0);
    }

    #[test]
    fn weighted_adds() {
        let mut h = Histogram::empty(spec10());
        h.add_weighted(0.5, 2.5);
        h.add_weighted(0.5, -1.0); // ignored
        h.add_weighted(0.5, f64::INFINITY); // ignored
        assert_eq!(h.total(), 2.5);
        assert_eq!(h.counts()[5], 2.5);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let h = Histogram::from_values(spec10(), (0..100).map(|i| i as f64 / 100.0));
        let f = h.frequencies().unwrap();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = Histogram::empty(spec10());
        assert!(h.is_empty());
        assert!(h.frequencies().is_none());
        assert!(h.mean().is_none());
        assert!(h.variance().is_none());
        assert!(h.cdf().is_none());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::from_values(spec10(), [0.1, 0.2].iter().copied());
        let b = Histogram::from_values(spec10(), [0.2, 0.9].iter().copied());
        a.merge(&b);
        assert_eq!(a.total(), 4.0);
        assert_eq!(a.counts()[2], 2.0);
    }

    #[test]
    #[should_panic(expected = "different bin specs")]
    fn merge_rejects_mismatched_specs() {
        let mut a = Histogram::empty(spec10());
        let b = Histogram::empty(BinSpec::equal_width(0.0, 1.0, 5).unwrap());
        a.merge(&b);
    }

    #[test]
    fn mean_and_variance() {
        // All mass in bin centred at 0.55.
        let h = Histogram::from_values(spec10(), [0.55, 0.55].iter().copied());
        assert!((h.mean().unwrap() - 0.55).abs() < 1e-12);
        assert!(h.variance().unwrap().abs() < 1e-12);
        // Two extreme bins: mean 0.5, variance (0.45)^2.
        let h = Histogram::from_values(spec10(), [0.0, 1.0].iter().copied());
        assert!((h.mean().unwrap() - 0.5).abs() < 1e-12);
        assert!((h.variance().unwrap() - 0.45 * 0.45).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let h = Histogram::from_values(spec10(), (0..50).map(|i| i as f64 / 50.0));
        let cdf = h.cdf().unwrap();
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_counts_roundtrip() {
        let h = Histogram::from_counts(spec10(), vec![1.0; 10]);
        assert_eq!(h.total(), 10.0);
    }

    #[test]
    #[should_panic(expected = "must match bin count")]
    fn from_counts_rejects_wrong_len() {
        let _ = Histogram::from_counts(spec10(), vec![1.0; 3]);
    }

    #[test]
    fn cdf_stats_match_frequencies_and_mean() {
        let h = Histogram::from_values(spec10(), [0.1, 0.2, 0.2, 0.9].iter().copied());
        let stats = h.cdf_stats().unwrap();
        let expected = PrefixCdf::build(&h.frequencies().unwrap()).unwrap();
        assert_eq!(stats.cdf, expected);
        assert_eq!(stats.mean.to_bits(), h.mean().unwrap().to_bits());
        // Second call returns the same cached object.
        assert!(std::ptr::eq(h.cdf_stats().unwrap(), stats));
    }

    #[test]
    fn cdf_stats_invalidated_by_mutation() {
        let mut h = Histogram::from_values(spec10(), [0.1, 0.9].iter().copied());
        let before = h.cdf_stats().unwrap().cdf.clone();
        h.add(0.5);
        let after = h.cdf_stats().unwrap();
        assert_ne!(after.cdf, before);
        assert_eq!(
            after.cdf,
            PrefixCdf::build(&h.frequencies().unwrap()).unwrap()
        );

        let mut m = Histogram::from_values(spec10(), [0.1].iter().copied());
        let _ = m.cdf_stats();
        m.merge(&h);
        assert_eq!(
            m.cdf_stats().unwrap().cdf,
            PrefixCdf::build(&m.frequencies().unwrap()).unwrap()
        );
    }

    #[test]
    fn cdf_stats_none_when_empty_and_ignored_by_eq() {
        let h = Histogram::empty(spec10());
        assert!(h.cdf_stats().is_none());
        // A histogram with a built cache still equals its cache-less clone.
        let a = Histogram::from_values(spec10(), [0.3].iter().copied());
        let b = a.clone();
        let _ = a.cdf_stats();
        assert_eq!(a, b);
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let h = Histogram::from_values(spec10(), [0.1, 0.9].iter().copied());
        let s = h.render_ascii(20);
        assert_eq!(s.lines().count(), 10);
        assert!(s.contains('#'));
    }
}
