//! Property-based tests for histograms and histogram distances.

use fairjob_hist::distance::{
    all_symmetric_distances, Emd1d, EmdExact, EmdThresholded, HistogramDistance, JensenShannon,
    TotalVariation,
};
use fairjob_hist::{BinSpec, Histogram};
use proptest::prelude::*;

fn values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 1..max_len)
}

fn hist(spec: &BinSpec, vals: &[f64]) -> Histogram {
    Histogram::from_values(spec.clone(), vals.iter().copied())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_value_lands_in_exactly_one_bin(vals in values(64), n in 1usize..32) {
        let spec = BinSpec::equal_width(0.0, 1.0, n).unwrap();
        let h = hist(&spec, &vals);
        prop_assert_eq!(h.total() as usize, vals.len());
    }

    #[test]
    fn merge_equals_concatenation(a in values(32), b in values(32)) {
        let spec = BinSpec::equal_width(0.0, 1.0, 10).unwrap();
        let mut ha = hist(&spec, &a);
        let hb = hist(&spec, &b);
        ha.merge(&hb);
        let mut both = a.clone();
        both.extend_from_slice(&b);
        let hc = hist(&spec, &both);
        prop_assert_eq!(ha.counts(), hc.counts());
    }

    #[test]
    fn all_distances_are_metric_like(a in values(48), b in values(48), c in values(48)) {
        let spec = BinSpec::equal_width(0.0, 1.0, 8).unwrap();
        let (ha, hb, hc) = (hist(&spec, &a), hist(&spec, &b), hist(&spec, &c));
        for dist in all_symmetric_distances() {
            let dab = dist.distance(&ha, &hb).unwrap();
            let dba = dist.distance(&hb, &ha).unwrap();
            prop_assert!(dab >= 0.0, "{} negative", dist.name());
            prop_assert!((dab - dba).abs() < 1e-9, "{} asymmetric", dist.name());
            let daa = dist.distance(&ha, &ha).unwrap();
            // sqrt in Hellinger amplifies 1e-16 rounding to ~1e-8.
            prop_assert!(daa.abs() < 1e-7, "{} self-distance {daa}", dist.name());
            // Triangle inequality for the true metrics (EMD, TV, Hellinger, KS).
            if matches!(dist.name(), "emd" | "total-variation" | "hellinger" | "kolmogorov-smirnov") {
                let dbc = dist.distance(&hb, &hc).unwrap();
                let dac = dist.distance(&ha, &hc).unwrap();
                prop_assert!(dac <= dab + dbc + 1e-9, "{} triangle violated", dist.name());
            }
        }
    }

    #[test]
    fn emd_closed_form_matches_solvers(a in values(48), b in values(48)) {
        let spec = BinSpec::equal_width(0.0, 1.0, 8).unwrap();
        let (ha, hb) = (hist(&spec, &a), hist(&spec, &b));
        let closed = Emd1d.distance(&ha, &hb).unwrap();
        for solver in [fairjob_emd::Solver::Flow, fairjob_emd::Solver::Simplex] {
            let exact = EmdExact { solver }.distance(&ha, &hb).unwrap();
            prop_assert!((closed - exact).abs() < 1e-8, "{solver:?}: {closed} vs {exact}");
        }
    }

    #[test]
    fn emd_bounded_by_tv_times_span(a in values(48), b in values(48)) {
        // EMD <= TV * (max distance between bin centres): moving mass can
        // never cost more than moving the whole differing mass end to end.
        let spec = BinSpec::equal_width(0.0, 1.0, 10).unwrap();
        let (ha, hb) = (hist(&spec, &a), hist(&spec, &b));
        let emd = Emd1d.distance(&ha, &hb).unwrap();
        let tv = TotalVariation.distance(&ha, &hb).unwrap();
        prop_assert!(emd <= tv * 0.9 + 1e-9, "emd={emd} tv={tv}");
    }

    #[test]
    fn emd1d_bounds_are_bitwise_exact(a in values(48), b in values(48), n in 2usize..16) {
        let spec = BinSpec::equal_width(0.0, 1.0, n).unwrap();
        let (ha, hb) = (hist(&spec, &a), hist(&spec, &b));
        let bd = Emd1d.bounds(&ha, &hb).unwrap();
        let d = Emd1d.distance(&ha, &hb).unwrap();
        prop_assert!(bd.exact);
        prop_assert_eq!(bd.lower.to_bits(), d.to_bits(), "lower={} d={}", bd.lower, d);
        prop_assert_eq!(bd.upper.to_bits(), d.to_bits(), "upper={} d={}", bd.upper, d);
    }

    #[test]
    fn all_bound_providers_sandwich_their_distance(
        a in values(48),
        b in values(48),
        t in 0.05f64..1.0,
    ) {
        let spec = BinSpec::equal_width(0.0, 1.0, 8).unwrap();
        let (ha, hb) = (hist(&spec, &a), hist(&spec, &b));
        let dists: Vec<Box<dyn HistogramDistance>> = vec![
            Box::new(Emd1d),
            Box::new(EmdExact { solver: fairjob_emd::Solver::Flow }),
            Box::new(EmdExact { solver: fairjob_emd::Solver::Simplex }),
            Box::new(EmdThresholded { threshold: t }),
        ];
        for dist in dists {
            let bd = dist.bounds(&ha, &hb).expect("bounds available");
            let d = dist.distance(&ha, &hb).unwrap();
            prop_assert!(bd.lower <= d + 1e-9,
                "{}: lower {} > exact {}", dist.name(), bd.lower, d);
            prop_assert!(d <= bd.upper + 1e-9,
                "{}: exact {} > upper {}", dist.name(), d, bd.upper);
        }
    }

    #[test]
    fn jsd_at_most_one(a in values(48), b in values(48)) {
        let spec = BinSpec::equal_width(0.0, 1.0, 10).unwrap();
        let d = JensenShannon.distance(&hist(&spec, &a), &hist(&spec, &b)).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
    }

    #[test]
    fn quantile_spec_preserves_totals(vals in values(64)) {
        prop_assume!(vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            > vals.iter().cloned().fold(f64::INFINITY, f64::min));
        if let Ok(spec) = BinSpec::quantile(&vals, 4) {
            let h = hist(&spec, &vals);
            prop_assert_eq!(h.total() as usize, vals.len());
        }
    }

    #[test]
    fn emd_2d_dominates_sum_of_marginals(
        pa in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..24),
        pb in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..24),
    ) {
        use fairjob_hist::hist2d::{emd_2d, Histogram2d};
        let spec = BinSpec::equal_width(0.0, 1.0, 5).unwrap();
        let a = Histogram2d::from_points(spec.clone(), spec.clone(), pa.iter().copied());
        let b = Histogram2d::from_points(spec.clone(), spec, pb.iter().copied());
        let joint = emd_2d(&a, &b).unwrap();
        // Projecting any transport plan to one axis gives a feasible 1-D
        // plan, and cityblock cost decomposes per axis, so
        // EMD_2d >= EMD(marginal_x) + EMD(marginal_y).
        let dx = Emd1d.distance(&a.marginal_x(), &b.marginal_x()).unwrap();
        let dy = Emd1d.distance(&a.marginal_y(), &b.marginal_y()).unwrap();
        prop_assert!(joint >= dx + dy - 1e-8, "joint {joint} < {dx} + {dy}");
        // And symmetric / zero on self.
        let back = emd_2d(&b, &a).unwrap();
        prop_assert!((joint - back).abs() < 1e-8);
        prop_assert!(emd_2d(&a, &a).unwrap().abs() < 1e-9);
    }

    #[test]
    fn p2_sketch_tracks_exact_quantiles(vals in prop::collection::vec(0.0f64..1.0, 200..800)) {
        use fairjob_hist::sketch::P2Quantile;
        let mut est = P2Quantile::new(0.5);
        for &v in &vals {
            est.observe(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = sorted[(sorted.len() - 1) / 2];
        let got = est.estimate().unwrap();
        // Loose bound: P² converges slowly on adversarial streams.
        prop_assert!((got - exact).abs() < 0.15, "exact {exact} vs p2 {got}");
    }

    #[test]
    fn cdf_monotone(vals in values(64)) {
        let spec = BinSpec::equal_width(0.0, 1.0, 12).unwrap();
        let cdf = hist(&spec, &vals).cdf().unwrap();
        for w in cdf.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        prop_assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
    }
}
