//! Bias repair for ranked marketplaces.
//!
//! The paper's future work includes "studying ways of repairing bias in
//! the context of ranking in online job marketplaces". This crate
//! implements the canonical score-repair construction (Feldman et al.,
//! KDD 2015, adapted from classification to ranking): once the audit has
//! identified the most-unfair partitioning, each group's score
//! distribution is pulled towards a common **target distribution** by
//! quantile alignment:
//!
//! * a worker at quantile `q` of their group's scores is mapped to the
//!   target distribution's value at quantile `q`;
//! * the **partial repair** parameter `λ ∈ [0, 1]` interpolates between
//!   the original score (`λ = 0`) and the fully aligned score (`λ = 1`).
//!
//! Quantile alignment is monotone within each group, so the *relative*
//! ranking of workers inside a group is preserved — repair changes how
//! groups compare, not how group members compare.
//!
//! # Example
//!
//! ```
//! use fairjob_repair::{repair_scores, RepairConfig, RepairTarget};
//! use fairjob_store::RowSet;
//!
//! // Two groups with disjoint score ranges.
//! let scores = vec![0.9, 0.95, 0.1, 0.15];
//! let groups = vec![RowSet::from_rows(vec![0, 1]), RowSet::from_rows(vec![2, 3])];
//! let repaired = repair_scores(
//!     &scores,
//!     &groups,
//!     &RepairConfig { lambda: 1.0, target: RepairTarget::Median },
//! ).unwrap();
//! // After full repair the two groups have identical score multisets.
//! assert!((repaired[0] - repaired[2]).abs() < 1e-9);
//! assert!((repaired[1] - repaired[3]).abs() < 1e-9);
//! ```

pub mod quantile;
pub mod rerank;

use fairjob_store::RowSet;
use quantile::{interpolated_quantile, quantile_level};
use std::fmt;

/// Errors from the repair layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairError {
    /// λ outside `[0, 1]` or non-finite.
    BadLambda {
        /// The offending value.
        lambda: f64,
    },
    /// The groups do not form a disjoint cover of the score rows.
    BadGroups {
        /// Human-readable reason.
        reason: String,
    },
    /// A score is non-finite.
    BadScore {
        /// Row of the offending score.
        row: usize,
    },
    /// No groups were supplied.
    NoGroups,
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::BadLambda { lambda } => write!(f, "lambda {lambda} not in [0, 1]"),
            RepairError::BadGroups { reason } => write!(f, "bad groups: {reason}"),
            RepairError::BadScore { row } => write!(f, "non-finite score at row {row}"),
            RepairError::NoGroups => write!(f, "no groups supplied"),
        }
    }
}

impl std::error::Error for RepairError {}

/// Which distribution the groups are aligned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairTarget {
    /// Per quantile level, the **median** of the groups' quantile values
    /// (Feldman et al.'s choice — movement is small and the target is
    /// robust to one outlier group).
    Median,
    /// The **pooled** distribution of all scores (every group is pulled
    /// to the overall population's distribution).
    Pooled,
}

/// Repair configuration.
#[derive(Debug, Clone, Copy)]
pub struct RepairConfig {
    /// Partial-repair amount: 0 = no change, 1 = full alignment.
    pub lambda: f64,
    /// Target distribution.
    pub target: RepairTarget,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            lambda: 1.0,
            target: RepairTarget::Median,
        }
    }
}

/// Repair `scores` so that the given groups' score distributions align
/// with the configured target. Returns the repaired score vector,
/// row-aligned with `scores`.
///
/// # Errors
///
/// * [`RepairError::BadLambda`] for λ outside `[0, 1]`.
/// * [`RepairError::BadScore`] for non-finite scores.
/// * [`RepairError::BadGroups`] when groups overlap, reference rows out
///   of range, or fail to cover all rows (a repair over a partial cover
///   would silently leave workers unrepaired).
/// * [`RepairError::NoGroups`] for an empty group list.
pub fn repair_scores(
    scores: &[f64],
    groups: &[RowSet],
    config: &RepairConfig,
) -> Result<Vec<f64>, RepairError> {
    if !(0.0..=1.0).contains(&config.lambda) || !config.lambda.is_finite() {
        return Err(RepairError::BadLambda {
            lambda: config.lambda,
        });
    }
    if groups.is_empty() {
        return Err(RepairError::NoGroups);
    }
    for (row, s) in scores.iter().enumerate() {
        if !s.is_finite() {
            return Err(RepairError::BadScore { row });
        }
    }
    // Disjoint-cover check.
    let mut seen = vec![false; scores.len()];
    for g in groups {
        for row in g.iter() {
            if row >= scores.len() {
                return Err(RepairError::BadGroups {
                    reason: format!("row {row} out of range ({} scores)", scores.len()),
                });
            }
            if seen[row] {
                return Err(RepairError::BadGroups {
                    reason: format!("row {row} appears in two groups"),
                });
            }
            seen[row] = true;
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(RepairError::BadGroups {
            reason: format!("row {missing} not covered by any group"),
        });
    }

    // Sorted score list per non-empty group.
    let sorted_groups: Vec<Vec<f64>> = groups
        .iter()
        .filter(|g| !g.is_empty())
        .map(|g| {
            let mut v: Vec<f64> = g.iter().map(|r| scores[r]).collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v
        })
        .collect();
    let pooled: Vec<f64> = {
        let mut v = scores.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v
    };

    // Target quantile function.
    let target_at = |q: f64| -> f64 {
        match config.target {
            RepairTarget::Pooled => interpolated_quantile(&pooled, q),
            RepairTarget::Median => {
                let mut vals: Vec<f64> = sorted_groups
                    .iter()
                    .map(|g| interpolated_quantile(g, q))
                    .collect();
                vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let n = vals.len();
                if n % 2 == 1 {
                    vals[n / 2]
                } else {
                    (vals[n / 2 - 1] + vals[n / 2]) / 2.0
                }
            }
        }
    };

    let mut repaired = scores.to_vec();
    for g in groups.iter().filter(|g| !g.is_empty()) {
        let mut members: Vec<usize> = g.iter().collect();
        // Rank members by score (ties by row id for determinism).
        members.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .expect("finite")
                .then(a.cmp(&b))
        });
        let n = members.len();
        for (rank, &row) in members.iter().enumerate() {
            let q = quantile_level(rank, n);
            let aligned = target_at(q);
            repaired[row] = (1.0 - config.lambda) * scores[row] + config.lambda * aligned;
        }
    }
    Ok(repaired)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_groups() -> (Vec<f64>, Vec<RowSet>) {
        // Group A: high scores; group B: low scores.
        let scores = vec![0.8, 0.9, 1.0, 0.0, 0.1, 0.2];
        let groups = vec![
            RowSet::from_rows(vec![0, 1, 2]),
            RowSet::from_rows(vec![3, 4, 5]),
        ];
        (scores, groups)
    }

    #[test]
    fn lambda_zero_is_identity() {
        let (scores, groups) = two_groups();
        let cfg = RepairConfig {
            lambda: 0.0,
            target: RepairTarget::Median,
        };
        let repaired = repair_scores(&scores, &groups, &cfg).unwrap();
        assert_eq!(repaired, scores);
    }

    #[test]
    fn full_repair_aligns_group_distributions() {
        let (scores, groups) = two_groups();
        let repaired = repair_scores(&scores, &groups, &RepairConfig::default()).unwrap();
        // Same rank in both groups -> same repaired score.
        assert!((repaired[0] - repaired[3]).abs() < 1e-12);
        assert!((repaired[1] - repaired[4]).abs() < 1e-12);
        assert!((repaired[2] - repaired[5]).abs() < 1e-12);
        // Median target of two groups = midpoint of their quantiles.
        assert!((repaired[0] - 0.4).abs() < 1e-12);
        assert!((repaired[1] - 0.5).abs() < 1e-12);
        assert!((repaired[2] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn repair_preserves_within_group_order() {
        let (scores, groups) = two_groups();
        for lambda in [0.25, 0.5, 0.75, 1.0] {
            let cfg = RepairConfig {
                lambda,
                target: RepairTarget::Median,
            };
            let repaired = repair_scores(&scores, &groups, &cfg).unwrap();
            assert!(
                repaired[0] <= repaired[1] && repaired[1] <= repaired[2],
                "{lambda}"
            );
            assert!(
                repaired[3] <= repaired[4] && repaired[4] <= repaired[5],
                "{lambda}"
            );
        }
    }

    #[test]
    fn pooled_target_aligns_to_population() {
        let (scores, groups) = two_groups();
        let cfg = RepairConfig {
            lambda: 1.0,
            target: RepairTarget::Pooled,
        };
        let repaired = repair_scores(&scores, &groups, &cfg).unwrap();
        // Both groups become the pooled distribution's quantiles.
        assert!((repaired[0] - repaired[3]).abs() < 1e-12);
        assert!((repaired[1] - repaired[4]).abs() < 1e-12);
        assert!((repaired[2] - repaired[5]).abs() < 1e-12);
        // Group tops sit at quantile (2+0.5)/3 of the pooled sample
        // [0, .1, .2, .8, .9, 1]: position 0.8333*6-0.5 = 4.5 -> 0.95.
        assert!((repaired[2] - 0.95).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        let (scores, groups) = two_groups();
        let bad_lambda = RepairConfig {
            lambda: 1.5,
            target: RepairTarget::Median,
        };
        assert!(matches!(
            repair_scores(&scores, &groups, &bad_lambda),
            Err(RepairError::BadLambda { .. })
        ));
        assert!(matches!(
            repair_scores(&scores, &[], &RepairConfig::default()),
            Err(RepairError::NoGroups)
        ));
        // Overlap.
        let overlap = vec![
            RowSet::from_rows(vec![0, 1, 2, 3]),
            RowSet::from_rows(vec![3, 4, 5]),
        ];
        assert!(matches!(
            repair_scores(&scores, &overlap, &RepairConfig::default()),
            Err(RepairError::BadGroups { .. })
        ));
        // Gap.
        let gap = vec![
            RowSet::from_rows(vec![0, 1, 2]),
            RowSet::from_rows(vec![3, 4]),
        ];
        assert!(matches!(
            repair_scores(&scores, &gap, &RepairConfig::default()),
            Err(RepairError::BadGroups { .. })
        ));
        // Out of range.
        let oob = vec![RowSet::from_rows(vec![0, 1, 2, 3, 4, 5, 6])];
        assert!(matches!(
            repair_scores(&scores, &oob, &RepairConfig::default()),
            Err(RepairError::BadGroups { .. })
        ));
        // NaN score.
        let mut bad = scores.clone();
        bad[0] = f64::NAN;
        assert!(matches!(
            repair_scores(&bad, &groups, &RepairConfig::default()),
            Err(RepairError::BadScore { row: 0 })
        ));
    }

    #[test]
    fn single_group_full_repair_keeps_its_own_distribution() {
        let scores = vec![0.3, 0.7, 0.5];
        let groups = vec![RowSet::from_rows(vec![0, 1, 2])];
        let repaired = repair_scores(&scores, &groups, &RepairConfig::default()).unwrap();
        // Target = the group's own quantiles -> unchanged.
        for (a, b) in repaired.iter().zip(&scores) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn groups_of_different_sizes_align() {
        let scores = vec![0.9, 1.0, 0.0, 0.1, 0.2, 0.3];
        let groups = vec![
            RowSet::from_rows(vec![0, 1]),
            RowSet::from_rows(vec![2, 3, 4, 5]),
        ];
        let repaired = repair_scores(&scores, &groups, &RepairConfig::default()).unwrap();
        assert!(repaired[0] < repaired[1]);
        assert!(
            repaired[2] <= repaired[3] && repaired[3] <= repaired[4] && repaired[4] <= repaired[5]
        );
    }
}
