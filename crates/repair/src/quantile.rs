//! Empirical quantile helpers used by quantile-alignment repair.

/// The quantile level assigned to rank `rank` (0-based) in a group of
/// `n`: the midpoint convention `(rank + 0.5) / n`, which avoids pinning
/// the extremes of small groups to the target's min/max.
pub fn quantile_level(rank: usize, n: usize) -> f64 {
    debug_assert!(n > 0 && rank < n);
    (rank as f64 + 0.5) / n as f64
}

/// Linearly interpolated quantile of a **sorted** sample at level
/// `q ∈ [0, 1]` (clamped), using the same midpoint convention: sample
/// `i` sits at level `(i + 0.5) / n`.
pub fn interpolated_quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let q = q.clamp(0.0, 1.0);
    // Invert level(i) = (i + 0.5) / n  =>  i = q * n - 0.5.
    let pos = q * n as f64 - 0.5;
    if pos <= 0.0 {
        return sorted[0];
    }
    if pos >= (n - 1) as f64 {
        return sorted[n - 1];
    }
    let lo = pos.floor() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_midpoints() {
        assert!((quantile_level(0, 4) - 0.125).abs() < 1e-12);
        assert!((quantile_level(3, 4) - 0.875).abs() < 1e-12);
        assert!((quantile_level(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_hit_sample_points() {
        let v = [10.0, 20.0, 30.0, 40.0];
        for (i, &x) in v.iter().enumerate() {
            let q = quantile_level(i, v.len());
            assert!((interpolated_quantile(&v, q) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn quantiles_interpolate_between_points() {
        let v = [0.0, 1.0];
        // Levels 0.25 and 0.75 are the sample points; 0.5 is the middle.
        assert!((interpolated_quantile(&v, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_clamp_at_extremes() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(interpolated_quantile(&v, 0.0), 1.0);
        assert_eq!(interpolated_quantile(&v, 1.0), 3.0);
        assert_eq!(interpolated_quantile(&v, -0.5), 1.0);
        assert_eq!(interpolated_quantile(&v, 1.5), 3.0);
    }

    #[test]
    fn singleton_sample() {
        assert_eq!(interpolated_quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn quantile_function_is_monotone() {
        let v = [0.1, 0.4, 0.4, 0.9];
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let x = interpolated_quantile(&v, q);
            assert!(x >= prev - 1e-12);
            prev = x;
        }
    }
}
