//! Re-ranking repair: enforce proportional group representation in a
//! ranking without touching the scores.
//!
//! Score repair ([`crate::repair_scores`]) changes what the platform
//! stores; sometimes only the *displayed ranking* may be modified. This
//! module implements a quota-constrained re-ranker in the spirit of
//! FA*IR (Zehlike et al., CIKM 2017), generalised to any number of
//! groups with deterministic floor quotas: in every prefix of length
//! `k`, each group `g` must hold at least `floor(α · share(g) · k)`
//! positions, where `share(g)` is the group's fraction of the ranked
//! population and `α ∈ [0, 1]` relaxes the quota.
//!
//! The algorithm is an exchange-greedy: at each display position it
//! places the globally best remaining item *unless* doing so would make
//! some future prefix quota unsatisfiable (there would be more mandated
//! placements due by some prefix than slots left); in that case the
//! group with the earliest pending quota deadline supplies its best
//! remaining member. Within each group the original score order is
//! always preserved. Worst-case cost is O(n² · groups) over the quota
//! jump points — re-ranking applies to displayed lists, not whole
//! populations.

use std::collections::VecDeque;
use std::fmt;

/// One entry of a ranking: an item id (worker row), its score, and its
/// group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedItem {
    /// Item (worker row) id.
    pub id: u32,
    /// The item's score.
    pub score: f64,
    /// The item's group label (dense, `0..n_groups`).
    pub group: u32,
}

/// Errors from re-ranking.
#[derive(Debug, Clone, PartialEq)]
pub enum RerankError {
    /// α outside `[0, 1]` or non-finite.
    BadAlpha {
        /// The offending value.
        alpha: f64,
    },
    /// A group label is `>= n_groups`.
    BadGroup {
        /// The offending label.
        group: u32,
        /// The declared group count.
        n_groups: u32,
    },
    /// The input ranking is empty.
    Empty,
}

impl fmt::Display for RerankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RerankError::BadAlpha { alpha } => write!(f, "alpha {alpha} not in [0, 1]"),
            RerankError::BadGroup { group, n_groups } => {
                write!(f, "group {group} out of range (n_groups = {n_groups})")
            }
            RerankError::Empty => write!(f, "empty ranking"),
        }
    }
}

impl std::error::Error for RerankError {}

/// Per-group required counts at every prefix: `required[g][k]` for
/// prefix length `k` (index 0 unused).
fn quota_table(items: &[RankedItem], n_groups: usize, alpha: f64) -> Vec<Vec<usize>> {
    let n = items.len();
    let mut sizes = vec![0usize; n_groups];
    for item in items {
        sizes[item.group as usize] += 1;
    }
    (0..n_groups)
        .map(|g| {
            let share = sizes[g] as f64 / n as f64;
            (0..=n)
                .map(|k| (alpha * share * k as f64).floor() as usize)
                .collect()
        })
        .collect()
}

/// Re-rank `items` (given in display order, best first) so that every
/// prefix satisfies the α-relaxed proportional quota for every group.
/// Returns the new display order.
///
/// `α = 0` imposes no constraint (output = input order); `α = 1`
/// demands full proportionality at every prefix.
///
/// # Errors
///
/// [`RerankError`] for invalid α, out-of-range group labels or an empty
/// input.
pub fn rerank_proportional(
    items: &[RankedItem],
    n_groups: u32,
    alpha: f64,
) -> Result<Vec<RankedItem>, RerankError> {
    if !(0.0..=1.0).contains(&alpha) || !alpha.is_finite() {
        return Err(RerankError::BadAlpha { alpha });
    }
    if items.is_empty() {
        return Err(RerankError::Empty);
    }
    for item in items {
        if item.group >= n_groups {
            return Err(RerankError::BadGroup {
                group: item.group,
                n_groups,
            });
        }
    }
    let n = items.len();
    let g = n_groups as usize;
    let required = quota_table(items, g, alpha);

    // Quota jump points: prefixes where some group's requirement rises.
    let mut jump_points: Vec<usize> = (1..=n)
        .filter(|&k| (0..g).any(|grp| required[grp][k] > required[grp][k - 1]))
        .collect();
    if jump_points.last() != Some(&n) {
        jump_points.push(n);
    }

    // Per-group queues in original (score) order + the global order.
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); g];
    for (idx, item) in items.iter().enumerate() {
        queues[item.group as usize].push_back(idx);
    }
    let mut global: VecDeque<usize> = (0..n).collect();
    let mut taken = vec![false; n];
    let mut placed = vec![0usize; g];

    // Can the remaining quotas be met if, after filling prefix `k`,
    // per-group placements are `placed`?
    let feasible = |k: usize, placed: &[usize]| -> bool {
        for &kp in &jump_points {
            if kp < k {
                continue;
            }
            let needed: usize = (0..g)
                .map(|grp| required[grp][kp].saturating_sub(placed[grp]))
                .sum();
            if needed > kp - k {
                return false;
            }
        }
        true
    };

    let mut out = Vec::with_capacity(n);
    for k in 1..=n {
        // Pop already-taken heads lazily.
        while let Some(&front) = global.front() {
            if taken[front] {
                global.pop_front();
            } else {
                break;
            }
        }
        let best = *global.front().expect("items remain");

        // Tentatively place the globally best item.
        placed[items[best].group as usize] += 1;
        let choice = if feasible(k, &placed) {
            best
        } else {
            placed[items[best].group as usize] -= 1;
            // Pick the group with the earliest pending quota deadline.
            let mut forced: Option<(usize, usize)> = None; // (deadline, group)
            for grp in 0..g {
                if queues[grp].iter().all(|&i| taken[i]) {
                    continue;
                }
                let deadline = jump_points
                    .iter()
                    .copied()
                    .find(|&kp| kp >= k && required[grp][kp] > placed[grp]);
                if let Some(d) = deadline {
                    if forced.is_none_or(|(fd, _)| d < fd) {
                        forced = Some((d, grp));
                    }
                }
            }
            let (_, grp) = forced.expect("infeasibility implies a pending deadline");
            placed[grp] += 1;
            loop {
                let head = queues[grp].pop_front().expect("group has pending members");
                if !taken[head] {
                    break head;
                }
            }
        };
        taken[choice] = true;
        out.push(items[choice]);
    }
    Ok(out)
}

/// Check the α-quota on every prefix of a ranking; returns the first
/// `(prefix, group)` whose quota is violated, or `None` when fair.
pub fn first_quota_violation(
    items: &[RankedItem],
    n_groups: u32,
    alpha: f64,
) -> Option<(usize, u32)> {
    let g = n_groups as usize;
    let required = quota_table(items, g, alpha);
    let mut counts = vec![0usize; g];
    for (k, item) in items.iter().enumerate() {
        counts[item.group as usize] += 1;
        for (group, count) in counts.iter().enumerate() {
            if *count < required[group][k + 1] {
                return Some((k + 1, group as u32));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ranking where group 1 is severely under-ranked: all of group 0
    /// first.
    fn biased_ranking() -> Vec<RankedItem> {
        let mut items = Vec::new();
        for i in 0..10u32 {
            items.push(RankedItem {
                id: i,
                score: 1.0 - i as f64 * 0.01,
                group: 0,
            });
        }
        for i in 10..20u32 {
            items.push(RankedItem {
                id: i,
                score: 0.5 - (i - 10) as f64 * 0.01,
                group: 1,
            });
        }
        items
    }

    #[test]
    fn alpha_zero_is_identity() {
        let items = biased_ranking();
        let out = rerank_proportional(&items, 2, 0.0).unwrap();
        assert_eq!(out, items);
    }

    #[test]
    fn full_alpha_interleaves() {
        let items = biased_ranking();
        let out = rerank_proportional(&items, 2, 1.0).unwrap();
        assert_eq!(out.len(), items.len());
        assert_eq!(first_quota_violation(&out, 2, 1.0), None);
        // The biased input violates early.
        assert!(first_quota_violation(&items, 2, 1.0).is_some());
        // Output is a permutation of the input.
        let mut in_ids: Vec<u32> = items.iter().map(|i| i.id).collect();
        let mut out_ids: Vec<u32> = out.iter().map(|i| i.id).collect();
        in_ids.sort_unstable();
        out_ids.sort_unstable();
        assert_eq!(in_ids, out_ids);
    }

    #[test]
    fn within_group_order_preserved() {
        let items = biased_ranking();
        let out = rerank_proportional(&items, 2, 1.0).unwrap();
        for group in 0..2u32 {
            let order: Vec<u32> = out
                .iter()
                .filter(|i| i.group == group)
                .map(|i| i.id)
                .collect();
            let original: Vec<u32> = items
                .iter()
                .filter(|i| i.group == group)
                .map(|i| i.id)
                .collect();
            assert_eq!(order, original, "group {group}");
        }
    }

    #[test]
    fn partial_alpha_relaxes() {
        let items = biased_ranking();
        let half = rerank_proportional(&items, 2, 0.5).unwrap();
        assert_eq!(first_quota_violation(&half, 2, 0.5), None);
        // Under half-quota, group 0 keeps at least as many top spots as
        // under the full quota.
        let full = rerank_proportional(&items, 2, 1.0).unwrap();
        let top5_g0 = |v: &[RankedItem]| v.iter().take(5).filter(|i| i.group == 0).count();
        assert!(top5_g0(&half) >= top5_g0(&full));
    }

    #[test]
    fn three_groups_with_simultaneous_quota_jumps() {
        let mut items = Vec::new();
        for i in 0..6u32 {
            items.push(RankedItem {
                id: i,
                score: 1.0 - i as f64 * 0.01,
                group: 0,
            });
        }
        for i in 6..9u32 {
            items.push(RankedItem {
                id: i,
                score: 0.4,
                group: 1,
            });
        }
        for i in 9..12u32 {
            items.push(RankedItem {
                id: i,
                score: 0.3,
                group: 2,
            });
        }
        let out = rerank_proportional(&items, 3, 1.0).unwrap();
        assert_eq!(first_quota_violation(&out, 3, 1.0), None);
    }

    #[test]
    fn many_groups_stress() {
        // 5 groups of different sizes; full quota must hold everywhere.
        let mut items = Vec::new();
        let mut id = 0u32;
        for (group, count) in [(0u32, 12), (1, 7), (2, 5), (3, 3), (4, 1)] {
            for _ in 0..count {
                items.push(RankedItem {
                    id,
                    score: 1.0 - id as f64 * 0.001 - group as f64 * 0.2,
                    group,
                });
                id += 1;
            }
        }
        for alpha in [0.3, 0.7, 1.0] {
            let out = rerank_proportional(&items, 5, alpha).unwrap();
            assert_eq!(first_quota_violation(&out, 5, alpha), None, "alpha {alpha}");
            assert_eq!(out.len(), items.len());
        }
    }

    #[test]
    fn validation() {
        let items = biased_ranking();
        assert!(matches!(
            rerank_proportional(&items, 2, 1.5),
            Err(RerankError::BadAlpha { .. })
        ));
        assert!(matches!(
            rerank_proportional(&items, 1, 0.5),
            Err(RerankError::BadGroup { .. })
        ));
        assert!(matches!(
            rerank_proportional(&[], 2, 0.5),
            Err(RerankError::Empty)
        ));
    }

    #[test]
    fn single_group_unchanged() {
        let items: Vec<RankedItem> = (0..5u32)
            .map(|i| RankedItem {
                id: i,
                score: 1.0 - i as f64 * 0.1,
                group: 0,
            })
            .collect();
        let out = rerank_proportional(&items, 1, 1.0).unwrap();
        assert_eq!(out, items);
    }

    #[test]
    fn already_fair_ranking_minimally_disturbed() {
        // Alternating groups is already fair at alpha=1 for 50/50 shares.
        let items: Vec<RankedItem> = (0..10u32)
            .map(|i| RankedItem {
                id: i,
                score: 1.0 - i as f64 * 0.05,
                group: i % 2,
            })
            .collect();
        assert_eq!(first_quota_violation(&items, 2, 1.0), None);
        let out = rerank_proportional(&items, 2, 1.0).unwrap();
        assert_eq!(out, items, "fair input should pass through unchanged");
    }
}
