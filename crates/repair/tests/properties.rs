//! Property-based tests for score repair and quota re-ranking.

use fairjob_repair::rerank::{first_quota_violation, rerank_proportional, RankedItem};
use fairjob_repair::{repair_scores, RepairConfig, RepairTarget};
use fairjob_store::RowSet;
use proptest::prelude::*;

/// Random disjoint cover of `n` rows into up to 4 groups, plus scores.
fn grouped_scores() -> impl Strategy<Value = (Vec<f64>, Vec<RowSet>)> {
    prop::collection::vec((0.0f64..1.0, 0u32..4), 4..80).prop_map(|rows| {
        let scores: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); 4];
        for (i, (_, g)) in rows.iter().enumerate() {
            groups[*g as usize].push(i as u32);
        }
        (scores, groups.into_iter().map(RowSet::from_rows).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn full_repair_aligns_group_quantiles((scores, groups) in grouped_scores()) {
        let repaired = repair_scores(
            &scores,
            &groups,
            &RepairConfig { lambda: 1.0, target: RepairTarget::Median },
        ).unwrap();
        // After full repair, same-rank-quantile members of any two
        // groups sit close together: compare group means as a robust
        // proxy (they all converge to the target distribution's mean,
        // up to interpolation error shrinking with group size).
        let live: Vec<&RowSet> = groups.iter().filter(|g| g.len() >= 8).collect();
        if live.len() >= 2 {
            let means: Vec<f64> = live
                .iter()
                .map(|g| g.iter().map(|r| repaired[r]).sum::<f64>() / g.len() as f64)
                .collect();
            let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - means.iter().cloned().fold(f64::INFINITY, f64::min);
            let orig_means: Vec<f64> = live
                .iter()
                .map(|g| g.iter().map(|r| scores[r]).sum::<f64>() / g.len() as f64)
                .collect();
            let orig_spread = orig_means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - orig_means.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(
                spread <= orig_spread + 0.05,
                "repair should not widen the group-mean spread: {spread} vs {orig_spread}"
            );
            prop_assert!(spread < 0.2, "repaired group means should be close: {means:?}");
        }
    }

    #[test]
    fn partial_repair_is_between_endpoints((scores, groups) in grouped_scores()) {
        let cfg = |lambda| RepairConfig { lambda, target: RepairTarget::Median };
        let full = repair_scores(&scores, &groups, &cfg(1.0)).unwrap();
        let half = repair_scores(&scores, &groups, &cfg(0.5)).unwrap();
        for i in 0..scores.len() {
            let expected = 0.5 * scores[i] + 0.5 * full[i];
            prop_assert!((half[i] - expected).abs() < 1e-9, "λ interpolates linearly");
        }
    }

    #[test]
    fn rerank_always_satisfies_quota_and_permutes(
        groups in prop::collection::vec(0u32..3, 2..60),
        alpha in 0.0f64..=1.0,
    ) {
        let items: Vec<RankedItem> = groups
            .iter()
            .enumerate()
            .map(|(i, &g)| RankedItem { id: i as u32, score: 1.0 - i as f64 * 1e-3, group: g })
            .collect();
        let out = rerank_proportional(&items, 3, alpha).unwrap();
        prop_assert_eq!(first_quota_violation(&out, 3, alpha), None);
        // Permutation.
        let mut in_ids: Vec<u32> = items.iter().map(|i| i.id).collect();
        let mut out_ids: Vec<u32> = out.iter().map(|i| i.id).collect();
        in_ids.sort_unstable();
        out_ids.sort_unstable();
        prop_assert_eq!(in_ids, out_ids);
        // Within-group order preserved.
        for g in 0..3u32 {
            let before: Vec<u32> = items.iter().filter(|i| i.group == g).map(|i| i.id).collect();
            let after: Vec<u32> = out.iter().filter(|i| i.group == g).map(|i| i.id).collect();
            prop_assert_eq!(before, after);
        }
    }

    #[test]
    fn rerank_zero_alpha_is_identity(groups in prop::collection::vec(0u32..3, 2..40)) {
        let items: Vec<RankedItem> = groups
            .iter()
            .enumerate()
            .map(|(i, &g)| RankedItem { id: i as u32, score: 1.0 - i as f64 * 1e-3, group: g })
            .collect();
        let out = rerank_proportional(&items, 3, 0.0).unwrap();
        prop_assert_eq!(out, items);
    }
}
