//! The incremental audit loop: apply an epoch, selectively invalidate
//! the warm engine caches, re-audit, keep the caches for the next
//! epoch.

use crate::error::StreamError;
use crate::view::StreamView;
use fairjob_core::algorithms::Algorithm;
use fairjob_core::{AuditConfig, AuditContext, AuditResult, EngineCaches, InvalidationReport};
use fairjob_marketplace::stream::Event;

/// The outcome of one epoch of [`StreamAuditor::run_epoch`].
#[derive(Debug)]
pub struct EpochReport {
    /// Epoch stamp of the audited state.
    pub epoch: u64,
    /// Events applied this epoch.
    pub events: usize,
    /// Net row changes after coalescing.
    pub changes: usize,
    /// What selective invalidation did to the warm caches.
    pub invalidation: InvalidationReport,
    /// Live workers at audit time.
    pub live_workers: usize,
    /// The audit itself (partitioning, unfairness, engine counters).
    pub audit: AuditResult,
}

/// Maintains an audited view across epochs: each [`run_epoch`]
/// (1) applies the events to the [`StreamView`], (2) selectively
/// invalidates the engine caches carried over from the previous epoch
/// against the epoch's net row changes, (3) seeds those caches into a
/// fresh per-epoch [`AuditContext`] and runs the algorithm, and
/// (4) takes the caches back for the next epoch.
///
/// The warm result is bit-identical to [`StreamAuditor::cold_audit`]
/// (a from-scratch audit of the compacted live population): retained
/// distances are exactly what a recompute would produce, and patched
/// split entries are rebuilt with the same integer bin arithmetic as
/// the split kernel.
///
/// Parallel work inside each epoch's audit (candidate-split batches,
/// large pairwise evaluations) runs on the process-wide persistent
/// worker pool ([`fairjob_core::pool::WorkerPool::global`]), so worker
/// threads are spawned once for the life of the stream, not once per
/// epoch; histogram prefix-CDF caches are rebuilt lazily per partition
/// after patching, keeping warm-epoch bound screens as cheap as cold
/// ones.
///
/// [`run_epoch`]: StreamAuditor::run_epoch
#[derive(Debug)]
pub struct StreamAuditor {
    view: StreamView,
    config: AuditConfig,
    caches: Option<EngineCaches>,
}

impl StreamAuditor {
    /// Wrap a view. `config.bins` must match the view's histogram
    /// layout.
    ///
    /// # Errors
    ///
    /// [`StreamError::BinMismatch`] on disagreeing bin counts.
    pub fn new(view: StreamView, config: AuditConfig) -> Result<Self, StreamError> {
        if config.bins != view.spec().len() {
            return Err(StreamError::BinMismatch {
                view: view.spec().len(),
                config: config.bins,
            });
        }
        Ok(StreamAuditor {
            view,
            config,
            caches: None,
        })
    }

    /// The audited view.
    pub fn view(&self) -> &StreamView {
        &self.view
    }

    /// Audit the current state without applying events or bumping the
    /// epoch — the initial audit that warms the caches.
    ///
    /// # Errors
    ///
    /// [`StreamError`] from context construction or the algorithm.
    pub fn audit(&mut self, algorithm: &dyn Algorithm) -> Result<EpochReport, StreamError> {
        self.run(None, algorithm)
    }

    /// Apply one epoch of events, then re-audit incrementally.
    ///
    /// # Errors
    ///
    /// [`StreamError`] from event application (on which the auditor
    /// must be discarded — the view may hold a partial epoch), context
    /// construction, or the algorithm.
    pub fn run_epoch(
        &mut self,
        events: &[Event],
        algorithm: &dyn Algorithm,
    ) -> Result<EpochReport, StreamError> {
        self.run(Some(events), algorithm)
    }

    fn run(
        &mut self,
        events: Option<&[Event]>,
        algorithm: &dyn Algorithm,
    ) -> Result<EpochReport, StreamError> {
        let (event_count, changes) = match events {
            Some(events) => {
                let delta = self.view.apply_epoch(events)?;
                (events.len(), delta.changes)
            }
            None => (0, Vec::new()),
        };
        let mut caches = self.caches.take().unwrap_or_default();
        let invalidation = caches.invalidate(
            &changes,
            self.view.spec(),
            self.config.min_partition_size.max(1),
        );
        let ctx = self.view.context(self.config.clone())?;
        ctx.seed_engine_caches(caches);
        let audit = algorithm.run(&ctx).map_err(StreamError::Audit)?;
        // The engine adopted the seeded caches and parked them back on
        // the context when it dropped (inside `run`).
        self.caches = ctx.take_engine_caches();
        Ok(EpochReport {
            epoch: self.view.epoch(),
            events: event_count,
            changes: changes.len(),
            invalidation,
            live_workers: self.view.live_count(),
            audit,
        })
    }

    /// A from-scratch audit of the compacted live population — the
    /// baseline the incremental path is verified against. Builds a
    /// fresh table, fresh indexes and a cold engine; does not touch the
    /// auditor's warm caches.
    ///
    /// # Errors
    ///
    /// [`StreamError`] from compaction, context construction, or the
    /// algorithm.
    pub fn cold_audit(&self, algorithm: &dyn Algorithm) -> Result<AuditResult, StreamError> {
        let (table, scores) = self.view.compact()?;
        let ctx = AuditContext::new(&table, &scores, self.config.clone())?;
        algorithm.run(&ctx).map_err(StreamError::Audit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::same_partitioning;
    use fairjob_core::algorithms::{balanced::Balanced, AttributeChoice};
    use fairjob_marketplace::stream::{generate_stream, StreamConfig};

    fn auditor(workers: usize, seed: u64) -> (StreamAuditor, Vec<Vec<Event>>) {
        let scenario = generate_stream(&StreamConfig {
            initial: workers,
            epochs: 4,
            events_per_epoch: 6,
            seed,
            alpha: 0.5,
        });
        let view = StreamView::new(scenario.initial, scenario.scores, 10).unwrap();
        let auditor = StreamAuditor::new(view, AuditConfig::default()).unwrap();
        (auditor, scenario.events.epochs().to_vec())
    }

    #[test]
    fn bin_mismatch_is_rejected() {
        let (auditor, _) = auditor(20, 1);
        let view = auditor.view;
        assert!(matches!(
            StreamAuditor::new(view, AuditConfig::with_bins(5)),
            Err(StreamError::BinMismatch { .. })
        ));
    }

    #[test]
    fn incremental_epochs_match_cold_rebuilds_bit_for_bit() {
        let algorithm = Balanced::new(AttributeChoice::Worst);
        let (mut auditor, epochs) = auditor(120, 7);
        let initial = auditor.audit(&algorithm).unwrap();
        assert_eq!(initial.epoch, 0);
        assert_eq!(initial.live_workers, 120);
        for events in &epochs {
            let warm = auditor.run_epoch(events, &algorithm).unwrap();
            let cold = auditor.cold_audit(&algorithm).unwrap();
            assert!(
                same_partitioning(&warm.audit.partitioning, &cold.partitioning),
                "epoch {}: warm and cold partitionings diverge",
                warm.epoch
            );
            assert_eq!(
                warm.audit.unfairness.to_bits(),
                cold.unfairness.to_bits(),
                "epoch {}: unfairness diverges",
                warm.epoch
            );
            assert_eq!(warm.live_workers, auditor.view().live_count());
        }
    }

    #[test]
    fn warm_epochs_reuse_cached_work() {
        let algorithm = Balanced::new(AttributeChoice::Worst);
        let (mut auditor, epochs) = auditor(150, 13);
        auditor.audit(&algorithm).unwrap();
        let warm = auditor.run_epoch(&epochs[0], &algorithm).unwrap();
        let cold = auditor.cold_audit(&algorithm).unwrap();
        assert!(
            warm.invalidation.distances_retained > 0,
            "selective invalidation kept no distances: {:?}",
            warm.invalidation
        );
        assert!(
            warm.audit.engine.distances_computed < cold.engine.distances_computed,
            "warm run recomputed as many distances as cold ({} vs {})",
            warm.audit.engine.distances_computed,
            cold.engine.distances_computed
        );
        assert!(
            warm.audit.engine.rows_scanned < cold.engine.rows_scanned,
            "warm run scanned as many rows as cold ({} vs {})",
            warm.audit.engine.rows_scanned,
            cold.engine.rows_scanned
        );
    }

    #[test]
    fn empty_epoch_retains_everything() {
        let algorithm = Balanced::new(AttributeChoice::Worst);
        let (mut auditor, _) = auditor(60, 21);
        let first = auditor.audit(&algorithm).unwrap();
        assert_eq!(first.invalidation, InvalidationReport::default());
        let second = auditor.run_epoch(&[], &algorithm).unwrap();
        assert_eq!(second.epoch, 1);
        assert_eq!(second.changes, 0);
        assert_eq!(second.invalidation.distances_evicted, 0);
        assert_eq!(second.invalidation.splits_evicted, 0);
        assert!(second.invalidation.distances_retained > 0);
        // Everything the audit needs is already cached.
        assert_eq!(second.audit.engine.rows_scanned, 0);
        assert_eq!(second.audit.engine.distances_computed, 0);
        assert_eq!(
            first.audit.unfairness.to_bits(),
            second.audit.unfairness.to_bits()
        );
    }
}
