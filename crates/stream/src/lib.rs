//! Online ingestion and incremental audit maintenance.
//!
//! The paper audits a frozen snapshot of a marketplace; this crate
//! keeps the audit warm while the marketplace mutates. It replays the
//! event log of [`fairjob_marketplace::stream`] one epoch at a time
//! over a [`StreamView`] — an append-only table with a tombstone bitmap
//! for departures, in-place dictionary-index and bin-array maintenance,
//! and per-epoch change tracking — and re-audits at every epoch
//! boundary through [`StreamAuditor`], which hands the evaluation
//! engine's memo and split caches across epochs after selectively
//! invalidating only the entries the epoch's changes could have
//! touched ([`fairjob_core::EngineCaches::invalidate`]).
//!
//! The contract, asserted by the `stream_ingest` bench and the replay-
//! parity proptests: a warm incremental re-audit after a small epoch
//! produces a partitioning **bit-identical** to a cold rebuild over the
//! compacted live population, while scanning a fraction of the rows
//! and recomputing a fraction of the distances.

pub mod auditor;
pub mod error;
pub mod snapshot;
pub mod view;

pub use auditor::{EpochReport, StreamAuditor};
pub use error::StreamError;
pub use snapshot::StreamSnapshot;
pub use view::{EpochDelta, StreamView};

use fairjob_core::Partitioning;

/// Are two partitionings the same, structurally? Compares, partition by
/// partition in order: predicate constraints, sizes, and histogram
/// counts **bit for bit**. Row ids are deliberately not compared — a
/// cold rebuild over a compacted table renumbers rows, but predicates,
/// sizes and histograms are representation-independent.
pub fn same_partitioning(a: &Partitioning, b: &Partitioning) -> bool {
    let (pa, pb) = (a.partitions(), b.partitions());
    pa.len() == pb.len()
        && pa.iter().zip(pb).all(|(x, y)| {
            x.predicate.constraints() == y.predicate.constraints()
                && x.rows.len() == y.rows.len()
                && x.histogram.counts().len() == y.histogram.counts().len()
                && x.histogram
                    .counts()
                    .iter()
                    .zip(y.histogram.counts())
                    .all(|(c, d)| c.to_bits() == d.to_bits())
        })
}
