//! Immutable, published epoch states for concurrent readers.
//!
//! A [`StreamSnapshot`] is what a resident server hands to reader
//! sessions: `Arc` handles on the writer's table, scores, dictionary
//! indexes and bin array, plus a materialised live row set and the
//! epoch stamp. Cloning is O(1) in the population size (the row set is
//! shared behind the snapshot's own `Arc` clone semantics — the struct
//! itself is cheap to clone and `Send + Sync`), so a server can
//! `Arc`-swap the "current" snapshot on every committed epoch while
//! any number of in-flight audits keep reading the one they started
//! with. The writer's next in-place mutation copies the touched shared
//! structure (`Arc::make_mut` copy-on-write in
//! [`crate::StreamView`]), never a published snapshot's.

use crate::error::StreamError;
use fairjob_core::{AuditConfig, AuditContext};
use fairjob_hist::BinSpec;
use fairjob_store::index::IndexSet;
use fairjob_store::paged::{self, PagedWriteSummary};
use fairjob_store::table::Table;
use fairjob_store::RowSet;
use std::path::Path;
use std::sync::Arc;

/// One epoch's published state: everything a reader needs to run an
/// audit that is bit-identical to a cold audit of the same epoch,
/// without blocking or being blocked by the writer.
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    table: Arc<Table>,
    scores: Arc<Vec<f64>>,
    live: RowSet,
    indexes: Arc<IndexSet>,
    bin_of: Arc<Vec<u32>>,
    spec: BinSpec,
    epoch: u64,
}

impl StreamSnapshot {
    /// Assemble a snapshot from a view's shared parts — used by
    /// [`crate::StreamView::snapshot`].
    pub(crate) fn from_parts(
        table: Arc<Table>,
        scores: Arc<Vec<f64>>,
        live: RowSet,
        indexes: Arc<IndexSet>,
        bin_of: Arc<Vec<u32>>,
        spec: BinSpec,
        epoch: u64,
    ) -> Self {
        StreamSnapshot {
            table,
            scores,
            live,
            indexes,
            bin_of,
            spec,
            epoch,
        }
    }

    /// The epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live workers in the snapshot.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The snapshot's histogram bin layout.
    pub fn spec(&self) -> &BinSpec {
        &self.spec
    }

    /// The underlying (append-only) table, tombstoned rows included.
    pub fn table(&self) -> &Table {
        self.table.as_ref()
    }

    /// Per-row scores, aligned with [`StreamSnapshot::table`].
    pub fn scores(&self) -> &[f64] {
        self.scores.as_slice()
    }

    /// Build an audit context over the snapshot's live rows. Indexes
    /// and bin array are handed over as shared `Arc`s — no rebuild, no
    /// copy; audits over the context cannot observe any later epoch.
    ///
    /// # Errors
    ///
    /// [`StreamError::BinMismatch`] when `config.bins` disagrees with
    /// the snapshot's layout; [`StreamError::Audit`] for unusable
    /// configs.
    pub fn context(&self, config: AuditConfig) -> Result<AuditContext<'_>, StreamError> {
        if config.bins != self.spec.len() {
            return Err(StreamError::BinMismatch {
                view: self.spec.len(),
                config: config.bins,
            });
        }
        AuditContext::from_parts(
            self.table.as_ref(),
            self.scores.as_slice(),
            config,
            Arc::clone(&self.indexes),
            Arc::clone(&self.bin_of),
            Some(self.live.clone()),
            self.epoch,
        )
        .map_err(StreamError::Audit)
    }

    /// Like [`context`](Self::context), but restricted to `live` — a
    /// subset of the snapshot's live rows (typically the live set
    /// intersected with a query predicate's row set). The snapshot's
    /// shared indexes and bin assignments are reused; only the
    /// population changes.
    ///
    /// # Errors
    ///
    /// [`StreamError::BinMismatch`] when `config.bins` differs from the
    /// snapshot's bin layout; [`StreamError::Audit`] from context
    /// assembly.
    pub fn context_over(
        &self,
        config: AuditConfig,
        live: fairjob_store::rowset::RowSet,
    ) -> Result<AuditContext<'_>, StreamError> {
        if config.bins != self.spec.len() {
            return Err(StreamError::BinMismatch {
                view: self.spec.len(),
                config: config.bins,
            });
        }
        AuditContext::from_parts(
            self.table.as_ref(),
            self.scores.as_slice(),
            config,
            Arc::clone(&self.indexes),
            Arc::clone(&self.bin_of),
            Some(live),
            self.epoch,
        )
        .map_err(StreamError::Audit)
    }

    /// The live row set (rows not tombstoned at snapshot time).
    pub fn live_rows(&self) -> &fairjob_store::rowset::RowSet {
        &self.live
    }

    /// The shared inverted indexes over the snapshot's table.
    pub fn indexes(&self) -> &fairjob_store::index::IndexSet {
        &self.indexes
    }

    /// Persist the snapshot to the paged columnar format: the full
    /// (uncompacted) table, row-aligned scores, the live bitmap, the
    /// epoch stamp and the bin count. Row ids are preserved, so a
    /// server restarted from the file ([`crate::StreamView::from_paged`])
    /// resumes at this epoch with the same worker ids — no event-log
    /// replay — and audits bit-identically to the writer.
    ///
    /// # Errors
    ///
    /// [`StreamError::Paged`] on write failures.
    pub fn write_paged(&self, path: &Path) -> Result<PagedWriteSummary, StreamError> {
        Ok(paged::write_paged(
            path,
            self.table.as_ref(),
            Some(self.scores.as_slice()),
            Some(&self.live),
            self.epoch,
            self.spec.len(),
        )?)
    }

    /// Materialise the snapshot's live population as a fresh, compacted
    /// table (row ids renumbered to `0..live_count`) with aligned
    /// scores — what a cold batch audit of this epoch would load.
    ///
    /// # Errors
    ///
    /// [`StreamError::Corrupt`] when the live set references a row the
    /// table does not have (a corrupted tombstone bitmap — cannot occur
    /// for sets the stream layer itself maintains);
    /// [`StreamError::Store`] from re-ingesting rows.
    pub fn compact(&self) -> Result<(Table, Vec<f64>), StreamError> {
        let corrupt = |row: usize| StreamError::Corrupt {
            row: row as u32,
            rows: self.table.len().min(self.scores.len()),
        };
        let mut rows = Vec::with_capacity(self.live.len());
        let mut scores = Vec::with_capacity(self.live.len());
        for row in self.live.iter() {
            rows.push(self.table.row(row).ok_or_else(|| corrupt(row))?);
            scores.push(*self.scores.get(row).ok_or_else(|| corrupt(row))?);
        }
        let mut table = Table::new(self.table.schema().clone());
        table.push_rows(&rows)?;
        Ok((table, scores))
    }
}

#[cfg(test)]
mod tests {
    use crate::view::StreamView;
    use fairjob_core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
    use fairjob_core::AuditConfig;
    use fairjob_marketplace::stream::{generate_stream, Event, StreamConfig};

    fn view(workers: usize, seed: u64) -> (StreamView, Vec<Vec<Event>>) {
        let scenario = generate_stream(&StreamConfig {
            initial: workers,
            epochs: 3,
            events_per_epoch: 8,
            seed,
            alpha: 0.5,
        });
        let view = StreamView::new(scenario.initial, scenario.scores, 10).unwrap();
        (view, scenario.events.epochs().to_vec())
    }

    #[test]
    fn snapshot_is_isolated_from_later_epochs() {
        let (mut v, epochs) = view(80, 31);
        let snap = v.snapshot();
        assert_eq!(snap.epoch(), 0);
        let before_live = snap.live_count();
        let before_scores = snap.scores().to_vec();
        for events in &epochs {
            v.apply_epoch(events).unwrap();
        }
        assert!(v.epoch() > 0);
        // The published snapshot still reads the epoch-0 state even
        // though the writer mutated every shared structure in place.
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.live_count(), before_live);
        assert_eq!(snap.scores(), before_scores.as_slice());
    }

    #[test]
    fn snapshot_audit_matches_cold_audit_of_same_epoch() {
        let algorithm = Balanced::new(AttributeChoice::Worst);
        let (mut v, epochs) = view(120, 32);
        v.apply_epoch(&epochs[0]).unwrap();
        let snap = v.snapshot();
        // Writer moves on; the snapshot's audit must still equal a cold
        // audit of the snapshot's own epoch, bit for bit.
        v.apply_epoch(&epochs[1]).unwrap();
        let ctx = snap.context(AuditConfig::default()).unwrap();
        let live = algorithm.run(&ctx).unwrap();
        let (table, scores) = snap.compact().unwrap();
        let cold_ctx =
            fairjob_core::AuditContext::new(&table, &scores, AuditConfig::default()).unwrap();
        let cold = algorithm.run(&cold_ctx).unwrap();
        assert_eq!(live.unfairness.to_bits(), cold.unfairness.to_bits());
        assert!(crate::same_partitioning(
            &live.partitioning,
            &cold.partitioning
        ));
    }

    #[test]
    fn snapshot_clone_is_cheap_and_equivalent() {
        let (v, _) = view(40, 33);
        let a = v.snapshot();
        let b = a.clone();
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.live_count(), b.live_count());
        assert_eq!(a.scores(), b.scores());
    }
}
