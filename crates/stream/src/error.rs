//! Errors of the streaming layer.

use fairjob_core::AuditError;
use fairjob_store::paged::PagedError;
use fairjob_store::StoreError;
use std::fmt;

/// Errors from applying events or running incremental audits.
#[derive(Debug)]
pub enum StreamError {
    /// An event targets a worker id that is out of range or tombstoned.
    UnknownWorker {
        /// The offending worker id.
        worker: u32,
    },
    /// An event carries a score outside `[0, 1]` (or non-finite).
    BadScore {
        /// The targeted worker id.
        worker: u32,
        /// The offending value.
        value: f64,
    },
    /// The audit config's bin count disagrees with the view's maintained
    /// bin array.
    BinMismatch {
        /// Bins the view was built with.
        view: usize,
        /// Bins the config asks for.
        config: usize,
    },
    /// The live bitmap references a row the table does not have — the
    /// view's internal invariants are broken (e.g. a corrupted tombstone
    /// bitmap) and it must be discarded.
    Corrupt {
        /// The offending row id.
        row: u32,
        /// Rows the table actually holds.
        rows: usize,
    },
    /// Underlying store error (bad attribute, unknown label, …).
    Store(StoreError),
    /// Underlying audit error.
    Audit(AuditError),
    /// Paged persistence failure (writing or reloading a snapshot).
    Paged(PagedError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::UnknownWorker { worker } => {
                write!(f, "worker {worker} does not exist or has left")
            }
            StreamError::BadScore { worker, value } => {
                write!(f, "score {value} for worker {worker} is outside [0, 1]")
            }
            StreamError::BinMismatch { view, config } => {
                write!(
                    f,
                    "view maintains {view} histogram bins but the audit config asks for {config}"
                )
            }
            StreamError::Corrupt { row, rows } => {
                write!(
                    f,
                    "live bitmap references row {row} but the table has {rows} rows: view is corrupt"
                )
            }
            StreamError::Store(e) => write!(f, "store: {e}"),
            StreamError::Audit(e) => write!(f, "audit: {e}"),
            StreamError::Paged(e) => write!(f, "paged snapshot: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<StoreError> for StreamError {
    fn from(e: StoreError) -> Self {
        StreamError::Store(e)
    }
}

impl From<AuditError> for StreamError {
    fn from(e: AuditError) -> Self {
        StreamError::Audit(e)
    }
}

impl From<PagedError> for StreamError {
    fn from(e: PagedError) -> Self {
        StreamError::Paged(e)
    }
}
