//! The mutable, epoch-versioned view over a worker population.

use crate::error::StreamError;
use crate::snapshot::StreamSnapshot;
use fairjob_core::{AuditConfig, AuditContext, AuditError, RowChange, RowFacts};
use fairjob_hist::BinSpec;
use fairjob_marketplace::stream::Event;
use fairjob_store::bitmap::Bitmap;
use fairjob_store::index::IndexSet;
use fairjob_store::schema::DataType;
use fairjob_store::table::Table;
use fairjob_store::RowSet;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What one epoch of events did to the view: the new epoch stamp and
/// the coalesced per-row changes (one [`RowChange`] per touched row,
/// `before` = state at epoch start, `after` = state at epoch end; rows
/// added **and** removed within the epoch, or mutated back to their
/// starting state, are dropped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochDelta {
    /// The epoch the view is now at.
    pub epoch: u64,
    /// Net row changes, ascending by row id.
    pub changes: Vec<RowChange>,
}

/// A mutable view over a worker population, maintained in place as
/// events apply:
///
/// * the table is **append-only** — worker ids are row indices,
///   assigned in arrival order, never reused;
/// * departures set a tombstone in the `live` bitmap instead of
///   deleting the row;
/// * the dictionary indexes and the per-row score-bin array are
///   maintained in place (no per-epoch rebuild);
/// * every epoch bumps a version stamp and reports its net
///   [`RowChange`]s for selective cache invalidation.
///
/// [`StreamView::context`] snapshots the view into an
/// [`AuditContext`] restricted to the live rows; results over it are
/// bit-identical to a cold audit of the compacted live population
/// ([`StreamView::compact`]).
///
/// Every column of state is behind an `Arc` so
/// [`StreamView::snapshot`] can publish an immutable
/// [`crate::StreamSnapshot`] in O(live): concurrent readers audit the
/// published snapshot while the writer keeps applying epochs — the
/// first in-place mutation after a publication copies the touched
/// structure via `Arc::make_mut` (copy-on-write), never the reader's.
#[derive(Debug, Clone)]
pub struct StreamView {
    table: Arc<Table>,
    scores: Arc<Vec<f64>>,
    live: Bitmap,
    /// Shared with per-epoch contexts and published snapshots (`Arc`
    /// hand-off, no rebuild); mutated via `Arc::make_mut` between
    /// audits, when no context of *this* view is borrowing them.
    indexes: Arc<IndexSet>,
    bin_of: Arc<Vec<u32>>,
    spec: BinSpec,
    epoch: u64,
}

impl StreamView {
    /// Wrap an initial population. `scores` must be row-aligned with
    /// `table` and each in `[0, 1]`; `bins` fixes the histogram layout
    /// every epoch's audit will use.
    ///
    /// # Errors
    ///
    /// [`StreamError`] for an empty table, misaligned or out-of-range
    /// scores, or a bad bin count.
    pub fn new(table: Table, scores: Vec<f64>, bins: usize) -> Result<Self, StreamError> {
        Self::from_state(table, scores, None, 0, bins)
    }

    /// Reconstruct a view from persisted state — the snapshot-restart
    /// path ([`crate::StreamSnapshot::write_paged`] → `fairjob serve
    /// --snapshot`). `live` restricts to the non-tombstoned rows
    /// (`None` = all live); `epoch` resumes the writer's stamp.
    ///
    /// The derived structures (dictionary indexes, score-bin array) are
    /// rebuilt from the columns. The stream layer maintains them
    /// incrementally to exactly the from-scratch values (departures
    /// only tombstone; in-place index edits mirror a rebuild — asserted
    /// in tests), so audits over the reloaded view are bit-identical to
    /// the writer's audits at the same epoch.
    ///
    /// # Errors
    ///
    /// [`StreamError`] for an empty table, misaligned or out-of-range
    /// scores, a bad bin count, or a live row beyond the table.
    pub fn from_state(
        table: Table,
        scores: Vec<f64>,
        live: Option<fairjob_store::RowSet>,
        epoch: u64,
        bins: usize,
    ) -> Result<Self, StreamError> {
        if table.is_empty() {
            return Err(StreamError::Audit(AuditError::EmptyTable));
        }
        if scores.len() != table.len() {
            return Err(StreamError::Audit(AuditError::ScoreLength {
                rows: table.len(),
                scores: scores.len(),
            }));
        }
        for (row, &s) in scores.iter().enumerate() {
            validate_score(row as u32, s)?;
        }
        let spec = BinSpec::equal_width(0.0, 1.0, bins)
            .map_err(|e| StreamError::Audit(AuditError::Bins(e.to_string())))?;
        let indexes = Arc::new(IndexSet::build(&table)?);
        // Bulk classification through the chunked kernel (identical
        // indices to per-row `bin_index`; asserted in the hist crate).
        // Epoch patching below stays per-row: deltas are small relative
        // to the initial population, so per-event updates beat
        // reclassifying the column.
        let bin_of: Arc<Vec<u32>> = Arc::new(spec.bin_indices(&scores));
        let live = match live {
            Some(rows) => {
                if let Some(&last) = rows.rows().last() {
                    if last as usize >= table.len() {
                        return Err(StreamError::Corrupt {
                            row: last,
                            rows: table.len(),
                        });
                    }
                }
                Bitmap::from_rowset(&rows, table.len())
            }
            None => Bitmap::full(table.len()),
        };
        Ok(StreamView {
            table: Arc::new(table),
            scores: Arc::new(scores),
            live,
            indexes,
            bin_of,
            spec,
            epoch,
        })
    }

    /// Cold-start a view from an opened paged snapshot file: pages are
    /// materialised back into memory, the live bitmap, epoch and bin
    /// layout carried over, and the derived structures rebuilt (see
    /// [`StreamView::from_state`] for why that is exact).
    ///
    /// # Errors
    ///
    /// [`StreamError::Paged`] from page reads, or when the file was
    /// written without scores; [`StreamError`] from state validation.
    pub fn from_paged(store: &fairjob_store::PagedStore) -> Result<Self, StreamError> {
        let (table, scores) = store.materialize()?;
        let scores = scores.ok_or_else(|| {
            StreamError::Paged(fairjob_store::paged::PagedError::Corrupt(
                "paged file carries no scores; a stream view needs them".to_string(),
            ))
        })?;
        Self::from_state(
            table,
            scores,
            store.live().cloned(),
            store.epoch(),
            store.bins(),
        )
    }

    /// The underlying (append-only) table, tombstoned rows included.
    pub fn table(&self) -> &Table {
        self.table.as_ref()
    }

    /// Per-row scores, aligned with [`StreamView::table`].
    pub fn scores(&self) -> &[f64] {
        self.scores.as_slice()
    }

    /// The histogram bin layout of this view.
    pub fn spec(&self) -> &BinSpec {
        &self.spec
    }

    /// The current epoch (0 until the first [`StreamView::apply_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live (non-tombstoned) workers.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Is this worker id live?
    pub fn is_live(&self, worker: u32) -> bool {
        self.live.contains(worker)
    }

    /// The live rows as a sorted row set.
    pub fn live_rows(&self) -> RowSet {
        self.live.to_rowset()
    }

    /// Apply one epoch of events in order, maintaining every derived
    /// structure in place, and report the net row changes.
    ///
    /// # Errors
    ///
    /// [`StreamError`] for events targeting dead or unknown workers,
    /// invalid scores, or store-level failures (unknown attributes or
    /// labels, wrong arity). **On error the view may have applied a
    /// prefix of the epoch and must be discarded.**
    pub fn apply_epoch(&mut self, events: &[Event]) -> Result<EpochDelta, StreamError> {
        // Per touched row: its facts at epoch start (`None` = the row
        // did not exist yet). BTreeMap for ascending, deterministic
        // change order.
        let mut touched: BTreeMap<u32, Option<RowFacts>> = BTreeMap::new();
        for event in events {
            match event {
                Event::WorkerAdded { values, score } => {
                    let row = self.table.len() as u32;
                    validate_score(row, *score)?;
                    Arc::make_mut(&mut self.table).push_row(values)?;
                    let table = Arc::clone(&self.table);
                    Arc::make_mut(&mut self.indexes).push_row(table.as_ref())?;
                    Arc::make_mut(&mut self.bin_of).push(self.spec.bin_index(*score) as u32);
                    Arc::make_mut(&mut self.scores).push(*score);
                    self.live.grow(self.table.len());
                    self.live.insert(row);
                    touched.entry(row).or_insert(None);
                }
                Event::ScoreUpdated { worker, score } => {
                    self.ensure_live(*worker)?;
                    validate_score(*worker, *score)?;
                    self.record_before(&mut touched, *worker)?;
                    Arc::make_mut(&mut self.scores)[*worker as usize] = *score;
                    Arc::make_mut(&mut self.bin_of)[*worker as usize] =
                        self.spec.bin_index(*score) as u32;
                }
                Event::AttributeChanged {
                    worker,
                    attribute,
                    value,
                } => {
                    self.ensure_live(*worker)?;
                    let attr = self.table.schema().index_of(attribute)?;
                    self.record_before(&mut touched, *worker)?;
                    let (old, new) =
                        Arc::make_mut(&mut self.table).set_cat(attr, *worker as usize, value)?;
                    if old != new {
                        let name = self.table.schema().attribute(attr).name.clone();
                        Arc::make_mut(&mut self.indexes).set_code(attr, *worker, new, &name)?;
                    }
                }
                Event::WorkerRemoved { worker } => {
                    self.ensure_live(*worker)?;
                    self.record_before(&mut touched, *worker)?;
                    self.live.remove(*worker);
                }
            }
        }
        self.epoch += 1;
        let mut changes = Vec::new();
        for (row, before) in touched {
            let after = if self.live.contains(row) {
                Some(self.facts(row)?)
            } else {
                None
            };
            // Net no-ops: added-and-removed within the epoch, or
            // mutated back to the starting state.
            if before == after {
                continue;
            }
            changes.push(RowChange { row, before, after });
        }
        Ok(EpochDelta {
            epoch: self.epoch,
            changes,
        })
    }

    /// Snapshot the view into an audit context over the live rows. The
    /// maintained indexes and bin array are handed over as shared
    /// `Arc`s — no rebuild, no copy.
    ///
    /// # Errors
    ///
    /// [`StreamError::BinMismatch`] when `config.bins` disagrees with
    /// the view's layout; [`AuditError`] for unusable configs.
    pub fn context(&self, config: AuditConfig) -> Result<AuditContext<'_>, StreamError> {
        if config.bins != self.spec.len() {
            return Err(StreamError::BinMismatch {
                view: self.spec.len(),
                config: config.bins,
            });
        }
        AuditContext::from_parts(
            self.table.as_ref(),
            self.scores.as_slice(),
            config,
            Arc::clone(&self.indexes),
            Arc::clone(&self.bin_of),
            Some(self.live.to_rowset()),
            self.epoch,
        )
        .map_err(StreamError::Audit)
    }

    /// Publish the current state as an immutable, cheaply-cloneable
    /// [`StreamSnapshot`]: `Arc` handles on the table, scores, indexes
    /// and bin array plus a materialised live row set. Concurrent
    /// readers audit the snapshot while this view keeps mutating — the
    /// writer's next in-place change copies the shared structure, never
    /// the snapshot's.
    pub fn snapshot(&self) -> StreamSnapshot {
        StreamSnapshot::from_parts(
            Arc::clone(&self.table),
            Arc::clone(&self.scores),
            self.live.to_rowset(),
            Arc::clone(&self.indexes),
            Arc::clone(&self.bin_of),
            self.spec.clone(),
            self.epoch,
        )
    }

    /// Materialise the live population as a fresh, compacted table (row
    /// ids renumbered to `0..live_count`) with aligned scores — what a
    /// cold batch audit of the current state would load.
    ///
    /// # Errors
    ///
    /// [`StreamError::Corrupt`] when the live bitmap references a row
    /// the table does not have (cannot occur for rows the view itself
    /// maintains); [`StreamError::Store`] from re-ingesting rows.
    pub fn compact(&self) -> Result<(Table, Vec<f64>), StreamError> {
        self.snapshot().compact()
    }

    /// The row's current facts, as predicates and histograms see it.
    ///
    /// # Errors
    ///
    /// [`StreamError::Corrupt`] for a row id beyond the table (a
    /// corrupted live bitmap); [`StreamError::Store`] from the column
    /// accessors.
    fn facts(&self, row: u32) -> Result<RowFacts, StreamError> {
        if row as usize >= self.table.len() || row as usize >= self.bin_of.len() {
            return Err(StreamError::Corrupt {
                row,
                rows: self.table.len().min(self.bin_of.len()),
            });
        }
        let mut codes = Vec::with_capacity(self.table.schema().width());
        for (attr, def) in self.table.schema().attributes().iter().enumerate() {
            codes.push(match def.dtype {
                DataType::Categorical { .. } => self.table.code_at(attr, row as usize)?,
                // Predicates never constrain non-categorical attributes;
                // a sentinel no real dictionary code reaches.
                _ => u32::MAX,
            });
        }
        Ok(RowFacts {
            codes,
            bin: self.bin_of[row as usize],
        })
    }

    fn record_before(
        &self,
        touched: &mut BTreeMap<u32, Option<RowFacts>>,
        row: u32,
    ) -> Result<(), StreamError> {
        if let std::collections::btree_map::Entry::Vacant(entry) = touched.entry(row) {
            entry.insert(Some(self.facts(row)?));
        }
        Ok(())
    }

    fn ensure_live(&self, worker: u32) -> Result<(), StreamError> {
        if self.live.contains(worker) {
            Ok(())
        } else {
            Err(StreamError::UnknownWorker { worker })
        }
    }
}

fn validate_score(worker: u32, score: f64) -> Result<(), StreamError> {
    if score.is_finite() && (0.0..=1.0).contains(&score) {
        Ok(())
    } else {
        Err(StreamError::BadScore {
            worker,
            value: score,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairjob_marketplace::stream::{generate_stream, StreamConfig};
    use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};
    use fairjob_store::index::IndexSet;

    fn view(workers: usize, seed: u64) -> StreamView {
        let scenario = generate_stream(&StreamConfig {
            initial: workers,
            epochs: 0,
            events_per_epoch: 0,
            seed,
            alpha: 0.5,
        });
        StreamView::new(scenario.initial, scenario.scores, 10).unwrap()
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut t = generate_uniform(5, 1);
        bucketise_numeric_protected(&mut t).unwrap();
        assert!(matches!(
            StreamView::new(t.clone(), vec![0.5; 4], 10),
            Err(StreamError::Audit(AuditError::ScoreLength { .. }))
        ));
        assert!(matches!(
            StreamView::new(t.clone(), vec![0.5, 0.5, 1.5, 0.5, 0.5], 10),
            Err(StreamError::BadScore { worker: 2, .. })
        ));
        assert!(matches!(
            StreamView::new(t, vec![0.5; 5], 0),
            Err(StreamError::Audit(AuditError::Bins(_)))
        ));
    }

    #[test]
    fn score_update_moves_bin_and_reports_change() {
        let mut v = view(8, 3);
        let before_bin = v.bin_of[0];
        let delta = v
            .apply_epoch(&[Event::ScoreUpdated {
                worker: 0,
                score: 0.999,
            }])
            .unwrap();
        assert_eq!(v.epoch(), 1);
        assert_eq!(delta.epoch, 1);
        assert_eq!(v.scores()[0], 0.999);
        assert_eq!(v.bin_of[0], 9);
        assert_eq!(delta.changes.len(), 1);
        let c = &delta.changes[0];
        assert_eq!(c.row, 0);
        assert_eq!(c.before.as_ref().unwrap().bin, before_bin);
        assert_eq!(c.after.as_ref().unwrap().bin, 9);
    }

    #[test]
    fn arrival_extends_everything_in_place() {
        let mut v = view(6, 4);
        let scenario = generate_stream(&StreamConfig {
            initial: 2,
            epochs: 1,
            events_per_epoch: 30,
            seed: 9,
            alpha: 0.5,
        });
        let add = scenario.events.epochs()[0]
            .iter()
            .find(|e| matches!(e, Event::WorkerAdded { .. }))
            .expect("30 events contain an arrival")
            .clone();
        let delta = v.apply_epoch(std::slice::from_ref(&add)).unwrap();
        assert_eq!(v.table().len(), 7);
        assert_eq!(v.live_count(), 7);
        assert!(v.is_live(6));
        assert_eq!(v.scores().len(), 7);
        assert_eq!(v.bin_of.len(), 7);
        assert_eq!(delta.changes.len(), 1);
        assert!(delta.changes[0].before.is_none());
        assert!(delta.changes[0].after.is_some());
        // The maintained indexes match a from-scratch rebuild.
        let rebuilt = IndexSet::build(v.table()).unwrap();
        for attr in v.table().schema().splittable() {
            assert_eq!(
                v.indexes.get(attr).unwrap().codes(),
                rebuilt.get(attr).unwrap().codes()
            );
        }
    }

    #[test]
    fn departure_tombstones_and_compaction_drops() {
        let mut v = view(5, 5);
        let delta = v
            .apply_epoch(&[Event::WorkerRemoved { worker: 2 }])
            .unwrap();
        assert_eq!(v.table().len(), 5, "the table never shrinks");
        assert_eq!(v.live_count(), 4);
        assert!(!v.is_live(2));
        assert!(delta.changes[0].after.is_none());
        let (compacted, scores) = v.compact().unwrap();
        assert_eq!(compacted.len(), 4);
        assert_eq!(scores.len(), 4);
        assert_eq!(
            compacted.row(2),
            v.table().row(3),
            "ids shift past the hole"
        );
        // Mutating the dead worker now fails.
        assert!(matches!(
            v.apply_epoch(&[Event::ScoreUpdated {
                worker: 2,
                score: 0.5
            }]),
            Err(StreamError::UnknownWorker { worker: 2 })
        ));
    }

    #[test]
    fn add_then_remove_within_epoch_coalesces_away() {
        let mut v = view(4, 6);
        let scenario = generate_stream(&StreamConfig {
            initial: 2,
            epochs: 1,
            events_per_epoch: 30,
            seed: 10,
            alpha: 0.5,
        });
        let add = scenario.events.epochs()[0]
            .iter()
            .find(|e| matches!(e, Event::WorkerAdded { .. }))
            .unwrap()
            .clone();
        let delta = v
            .apply_epoch(&[add, Event::WorkerRemoved { worker: 4 }])
            .unwrap();
        assert!(delta.changes.is_empty(), "net no-op reports no change");
        assert_eq!(
            v.table().len(),
            5,
            "the tombstoned row still occupies its id"
        );
        assert_eq!(v.live_count(), 4);
    }

    #[test]
    fn mutating_back_to_start_coalesces_away() {
        let mut v = view(4, 7);
        let original = v.scores()[1];
        let delta = v
            .apply_epoch(&[
                Event::ScoreUpdated {
                    worker: 1,
                    score: if original < 0.5 { 0.9 } else { 0.1 },
                },
                Event::ScoreUpdated {
                    worker: 1,
                    score: original,
                },
            ])
            .unwrap();
        assert!(delta.changes.is_empty());
    }

    #[test]
    fn attribute_change_updates_table_and_index() {
        let mut v = view(6, 8);
        let attr = v.table().schema().index_of("gender").unwrap();
        let old = v.table().code_at(attr, 3).unwrap();
        let new_label = if old == 0 { "Female" } else { "Male" };
        let delta = v
            .apply_epoch(&[Event::AttributeChanged {
                worker: 3,
                attribute: "gender".into(),
                value: new_label.into(),
            }])
            .unwrap();
        let new = v.table().code_at(attr, 3).unwrap();
        assert_ne!(old, new);
        assert_eq!(v.indexes.get(attr).unwrap().codes()[3], new);
        assert!(v.indexes.get(attr).unwrap().rows_with_code(new).contains(3));
        assert!(!v.indexes.get(attr).unwrap().rows_with_code(old).contains(3));
        let c = &delta.changes[0];
        assert_eq!(c.before.as_ref().unwrap().codes[attr], old);
        assert_eq!(c.after.as_ref().unwrap().codes[attr], new);
        // Unknown label is rejected.
        assert!(v
            .apply_epoch(&[Event::AttributeChanged {
                worker: 3,
                attribute: "gender".into(),
                value: "Nope".into(),
            }])
            .is_err());
    }

    /// The panic regression: a corrupted live bitmap (row ids beyond
    /// the table) must surface as [`StreamError::Corrupt`] through the
    /// documented `Result` paths — `compact` and the facts collection —
    /// never as a panic. Fatal in a resident daemon, where a panic on a
    /// session thread kills the session (or poisons shared state).
    #[test]
    fn corrupted_live_bitmap_errors_instead_of_panicking() {
        let mut v = view(5, 9);
        v.live.grow(64);
        v.live.insert(50); // no row 50 in the 5-row table
        assert!(matches!(
            v.compact(),
            Err(StreamError::Corrupt { row: 50, rows: 5 })
        ));
        // The facts path (record_before on a "live" ghost row) errors
        // the same way instead of indexing out of bounds.
        assert!(matches!(
            v.apply_epoch(&[Event::ScoreUpdated {
                worker: 50,
                score: 0.5
            }]),
            Err(StreamError::Corrupt { row: 50, .. })
        ));
    }

    #[test]
    fn context_restricts_to_live_rows() {
        let mut v = view(10, 11);
        v.apply_epoch(&[Event::WorkerRemoved { worker: 0 }])
            .unwrap();
        let ctx = v.context(AuditConfig::default()).unwrap();
        assert_eq!(ctx.root().len(), 9);
        assert_eq!(ctx.epoch(), 1);
        assert!(ctx.live_rows().is_some());
        // Bin mismatch is caught.
        assert!(matches!(
            v.context(AuditConfig::with_bins(7)),
            Err(StreamError::BinMismatch {
                view: 10,
                config: 7
            })
        ));
    }
}
