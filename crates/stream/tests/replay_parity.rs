//! Replay parity: any event sequence driven through the incremental
//! streaming path must audit **bit-identically** to batch-loading the
//! final state cold — per epoch, for several engine thread counts. This
//! is the correctness contract of selective cache invalidation: a
//! retained memo entry is exactly the distance a recompute would
//! produce, and a patched split entry is exactly the kernel's output.

use fairjob_core::algorithms::{balanced::Balanced, unbalanced::Unbalanced, AttributeChoice};
use fairjob_core::AuditConfig;
use fairjob_marketplace::stream::{generate_stream, StreamConfig};
use fairjob_store::ShardPolicy;
use fairjob_stream::{same_partitioning, StreamAuditor, StreamView};
use proptest::prelude::*;

/// Replay `scenario` epochs through a warm auditor with `threads`
/// worker threads, asserting warm == cold at every epoch boundary.
fn assert_replay_parity(
    initial: usize,
    epochs: usize,
    events_per_epoch: usize,
    seed: u64,
    threads: usize,
    balanced: bool,
) {
    let scenario = generate_stream(&StreamConfig {
        initial,
        epochs,
        events_per_epoch,
        seed,
        alpha: 0.5,
    });
    let config = AuditConfig {
        threads: Some(threads),
        ..AuditConfig::default()
    };
    let view = StreamView::new(scenario.initial, scenario.scores, config.bins).unwrap();
    let mut auditor = StreamAuditor::new(view, config).unwrap();
    let balanced_algo = Balanced::new(AttributeChoice::Worst);
    let unbalanced_algo = Unbalanced::new(AttributeChoice::Worst);
    let algorithm: &dyn fairjob_core::algorithms::Algorithm = if balanced {
        &balanced_algo
    } else {
        &unbalanced_algo
    };
    auditor.audit(algorithm).unwrap();
    for events in scenario.events.epochs() {
        let warm = auditor.run_epoch(events, algorithm).unwrap();
        let cold = auditor.cold_audit(algorithm).unwrap();
        prop_assert!(
            same_partitioning(&warm.audit.partitioning, &cold.partitioning),
            "epoch {} ({} threads): warm partitioning {:?} != cold {:?}",
            warm.epoch,
            threads,
            warm.audit
                .partitioning
                .partitions()
                .iter()
                .map(|p| p.len())
                .collect::<Vec<_>>(),
            cold.partitioning
                .partitions()
                .iter()
                .map(|p| p.len())
                .collect::<Vec<_>>()
        );
        prop_assert_eq!(
            warm.audit.unfairness.to_bits(),
            cold.unfairness.to_bits(),
            "epoch {} ({} threads): warm unfairness {} != cold {}",
            warm.epoch,
            threads,
            warm.audit.unfairness,
            cold.unfairness
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Balanced search: warm replay == cold rebuild at every epoch, for
    /// serial and parallel engines.
    #[test]
    fn balanced_replay_matches_cold_batch(
        initial in 40usize..140,
        seed in 0u64..1_000,
        events_per_epoch in 3usize..12,
    ) {
        for threads in [1usize, 2, 3] {
            assert_replay_parity(initial, 4, events_per_epoch, seed, threads, true);
        }
    }

    /// Unbalanced search (different split pattern, per-partition
    /// stopping rule) under the same contract.
    #[test]
    fn unbalanced_replay_matches_cold_batch(
        initial in 40usize..120,
        seed in 0u64..1_000,
        events_per_epoch in 3usize..10,
    ) {
        for threads in [1usize, 3] {
            assert_replay_parity(initial, 3, events_per_epoch, seed, threads, false);
        }
    }

    /// The warm-cache replay path is shard-layout independent: the same
    /// event stream driven through auditors configured with `shards =
    /// off`, fixed counts, and `auto` produces bit-identical unfairness
    /// at every epoch, across thread counts.
    #[test]
    fn warm_replay_is_bit_identical_across_shard_layouts(
        initial in 40usize..120,
        seed in 0u64..1_000,
        events_per_epoch in 3usize..10,
    ) {
        let scenario = generate_stream(&StreamConfig {
            initial,
            epochs: 3,
            events_per_epoch,
            seed,
            alpha: 0.5,
        });
        let algorithm = Balanced::new(AttributeChoice::Worst);
        let run = |shards: ShardPolicy, threads: usize| -> Vec<u64> {
            let config = AuditConfig {
                shards,
                threads: Some(threads),
                ..AuditConfig::default()
            };
            let view = StreamView::new(
                scenario.initial.clone(),
                scenario.scores.clone(),
                config.bins,
            )
            .unwrap();
            let mut auditor = StreamAuditor::new(view, config).unwrap();
            let mut bits = vec![auditor.audit(&algorithm).unwrap().audit.unfairness.to_bits()];
            for events in scenario.events.epochs() {
                bits.push(auditor.run_epoch(events, &algorithm).unwrap().audit.unfairness.to_bits());
            }
            bits
        };
        let baseline = run(ShardPolicy::Disabled, 1);
        for shards in [ShardPolicy::Fixed(2), ShardPolicy::Fixed(7), ShardPolicy::Auto] {
            for threads in [1usize, 2, 8] {
                prop_assert_eq!(
                    run(shards, threads),
                    baseline.clone(),
                    "warm replay diverged at shards={} threads={}",
                    shards,
                    threads
                );
            }
        }
    }
}
