//! Snapshot reload parity: a stream state written to the paged format
//! and cold-started from disk must audit **bit-identically** to the
//! writer — no event replay, no drift in the rebuilt derived structures
//! — and the reloaded auditor must keep the warm-replay contract for
//! every epoch that follows.

use fairjob_core::algorithms::{balanced::Balanced, AttributeChoice};
use fairjob_core::AuditConfig;
use fairjob_marketplace::stream::{generate_stream, StreamConfig};
use fairjob_store::PagedStore;
use fairjob_stream::{same_partitioning, StreamAuditor, StreamView};
use proptest::prelude::*;
use std::path::PathBuf;

/// A scratch paged snapshot file, removed on drop.
struct TempPaged(PathBuf);

impl TempPaged {
    fn path(tag: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "fairjob-snapshot-reload-{}-{tag}.fjp",
            std::process::id()
        ));
        TempPaged(path)
    }
}

impl Drop for TempPaged {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Drive some epochs, snapshot to a paged file, reload cold, and
    /// keep driving: the reloaded auditor matches the writer at the
    /// handoff epoch and at every epoch after it.
    #[test]
    fn reloaded_auditor_is_bit_identical_to_writer(
        initial in 40usize..120,
        seed in 0u64..1_000,
        events_per_epoch in 3usize..10,
    ) {
        let scenario = generate_stream(&StreamConfig {
            initial,
            epochs: 4,
            events_per_epoch,
            seed,
            alpha: 0.5,
        });
        let algorithm = Balanced::new(AttributeChoice::Worst);
        let config = AuditConfig::default();
        let view = StreamView::new(scenario.initial, scenario.scores, config.bins).unwrap();
        let mut writer = StreamAuditor::new(view, config.clone()).unwrap();
        writer.audit(&algorithm).unwrap();

        // Advance the writer halfway, then snapshot mid-stream.
        let epochs = scenario.events.epochs();
        for events in &epochs[..2] {
            writer.run_epoch(events, &algorithm).unwrap();
        }
        let at_handoff = writer.cold_audit(&algorithm).unwrap();
        let tmp = TempPaged::path(&format!("{initial}-{seed}-{events_per_epoch}"));
        let summary = writer.view().snapshot().write_paged(&tmp.0).unwrap();
        prop_assert!(summary.pages > 0);

        // Cold-start from the file: same epoch, same live set, and the
        // first audit reproduces the writer's bits with zero replay.
        let store = PagedStore::open(&tmp.0, 1 << 20).unwrap();
        let view = StreamView::from_paged(&store).unwrap();
        prop_assert_eq!(view.epoch(), writer.view().epoch());
        prop_assert_eq!(view.live_count(), writer.view().live_count());
        let mut reloaded = StreamAuditor::new(view, config).unwrap();
        let restored = reloaded.audit(&algorithm).unwrap();
        prop_assert_eq!(
            restored.audit.unfairness.to_bits(),
            at_handoff.unfairness.to_bits(),
            "restored audit diverged from the writer at the handoff epoch"
        );
        prop_assert!(same_partitioning(
            &restored.audit.partitioning,
            &at_handoff.partitioning
        ));

        // The remaining epochs replay warm on BOTH auditors and must
        // stay in lockstep — the reloaded view's rebuilt indexes and
        // bins behave exactly like the writer's maintained ones.
        for events in &epochs[2..] {
            let a = writer.run_epoch(events, &algorithm).unwrap();
            let b = reloaded.run_epoch(events, &algorithm).unwrap();
            prop_assert_eq!(a.epoch, b.epoch);
            prop_assert_eq!(
                a.audit.unfairness.to_bits(),
                b.audit.unfairness.to_bits(),
                "epoch {}: writer and reloaded auditor diverged",
                a.epoch
            );
            prop_assert!(same_partitioning(
                &a.audit.partitioning,
                &b.audit.partitioning
            ));
        }
    }
}
