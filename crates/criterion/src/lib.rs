//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no registry access, so the workspace pins
//! this path crate in place of crates.io `criterion`. It keeps the same
//! authoring surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`criterion_group!`],
//! [`criterion_main!`], [`Bencher::iter`] — but the measurement core is
//! deliberately simple: each benchmark runs a short warm-up followed by
//! a fixed batch of timed iterations and prints mean wall-clock per
//! iteration. No statistical analysis, outlier detection, plots, HTML
//! reports, or CLI filtering.
//!
//! Benches therefore still *run* (useful for the correctness assertions
//! embedded in them, e.g. the engine-counter checks in
//! `crates/bench/benches/engine.rs`) and still produce comparable
//! rough timings, without any external dependencies.

use std::time::{Duration, Instant};

/// Identifier for one parameterised benchmark case, rendered as
/// `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name: `&str`, `String`, or
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed) so cold caches don't dominate the tiny
        // sample this stub takes.
        for _ in 0..self.iters.min(2) {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn report(name: &str, iters: u64, elapsed: Duration) {
    let per_iter = elapsed.as_secs_f64() / iters as f64;
    let (value, unit) = if per_iter >= 1.0 {
        (per_iter, "s")
    } else if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "µs")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!("bench: {name:<60} {value:>10.3} {unit}/iter ({iters} iters)");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// In real criterion this sets the statistical sample count; here it
    /// scales the fixed iteration batch (clamped to keep stub runs
    /// fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).clamp(1, 100);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&name, b.iters, b.elapsed);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&name, b.iters, b.elapsed);
        self
    }

    /// No-op (real criterion emits the group summary here).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark context, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.benchmark_group("standalone").bench_function(id, f);
        self
    }
}

/// Re-export matching `criterion::black_box` (benches here import the
/// std version directly, but keep the alias for API parity).
pub use std::hint::black_box;

/// Bundle benchmark functions under one name, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Emit `main` running the given groups (CLI arguments are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs_benches() {
        benches();
    }

    #[test]
    fn benchmark_id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("solve", 128).into_id(), "solve/128");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }
}
