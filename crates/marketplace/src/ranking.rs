//! Ranking workers for tasks and exposure accounting.
//!
//! A requester query turns into a ranked list of workers ordered by the
//! scoring function — "a person who needs to hire someone for a job can
//! formulate a query and is shown a ranked list of people". Exposure
//! (how much requester attention each rank position receives) is the
//! currency in which ranking unfairness manifests downstream, so the
//! platform simulation tracks it per worker.

/// One ranked entry: a worker row id and its score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ranked {
    /// Row id of the worker.
    pub row: u32,
    /// The worker's score under the ranking function.
    pub score: f64,
}

/// Rank workers by score, descending, with deterministic tie-breaking by
/// row id (ascending). `k = None` returns the full ranking.
///
/// NaN scores are excluded from the ranking entirely (a worker without a
/// valid score cannot be shown).
pub fn rank(scores: &[f64], k: Option<usize>) -> Vec<Ranked> {
    let mut ranked: Vec<Ranked> = scores
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_finite())
        .map(|(row, &score)| Ranked {
            row: row as u32,
            score,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then(a.row.cmp(&b.row))
    });
    if let Some(k) = k {
        ranked.truncate(k);
    }
    ranked
}

/// A position-bias model mapping rank position (0-based) to the fraction
/// of requester attention it receives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExposureModel {
    /// `1 / log2(position + 2)` — the DCG discount.
    Logarithmic,
    /// `1 / (position + 1)` — a steeper reciprocal-rank discount.
    Reciprocal,
    /// Only the top `k` positions are seen, all equally.
    TopK {
        /// Number of visible positions.
        k: usize,
    },
}

impl ExposureModel {
    /// Exposure weight of 0-based `position`.
    pub fn weight(&self, position: usize) -> f64 {
        match *self {
            ExposureModel::Logarithmic => 1.0 / ((position + 2) as f64).log2(),
            ExposureModel::Reciprocal => 1.0 / (position + 1) as f64,
            ExposureModel::TopK { k } => {
                if position < k {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Accumulate each worker's exposure across a ranking: `out[row] +=
/// model.weight(position)`. `out` must have one slot per worker row.
pub fn accumulate_exposure(ranking: &[Ranked], model: ExposureModel, out: &mut [f64]) {
    for (pos, r) in ranking.iter().enumerate() {
        out[r.row as usize] += model.weight(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_descending_with_stable_ties() {
        let scores = [0.5, 0.9, 0.5, 0.1];
        let r = rank(&scores, None);
        let rows: Vec<u32> = r.iter().map(|x| x.row).collect();
        assert_eq!(rows, vec![1, 0, 2, 3]);
    }

    #[test]
    fn top_k_truncates() {
        let scores = [0.1, 0.2, 0.3, 0.4];
        let r = rank(&scores, Some(2));
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].row, 3);
        assert_eq!(r[1].row, 2);
    }

    #[test]
    fn nan_scores_excluded() {
        let scores = [0.5, f64::NAN, 0.7];
        let r = rank(&scores, None);
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|x| x.row != 1));
    }

    #[test]
    fn k_larger_than_population_is_fine() {
        let r = rank(&[0.5], Some(10));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn exposure_models_decay() {
        let log = ExposureModel::Logarithmic;
        assert!((log.weight(0) - 1.0).abs() < 1e-12);
        assert!(log.weight(1) < log.weight(0));
        let rec = ExposureModel::Reciprocal;
        assert!((rec.weight(0) - 1.0).abs() < 1e-12);
        assert!((rec.weight(3) - 0.25).abs() < 1e-12);
        let topk = ExposureModel::TopK { k: 2 };
        assert_eq!(topk.weight(1), 1.0);
        assert_eq!(topk.weight(2), 0.0);
    }

    #[test]
    fn accumulate_exposure_sums_positions() {
        let scores = [0.9, 0.1, 0.5];
        let ranking = rank(&scores, None); // rows 0, 2, 1
        let mut out = vec![0.0; 3];
        accumulate_exposure(&ranking, ExposureModel::Reciprocal, &mut out);
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert!((out[2] - 0.5).abs() < 1e-12);
        assert!((out[1] - 1.0 / 3.0).abs() < 1e-12);
        // A second ranking accumulates on top.
        accumulate_exposure(&ranking, ExposureModel::Reciprocal, &mut out);
        assert!((out[0] - 2.0).abs() < 1e-12);
    }
}
