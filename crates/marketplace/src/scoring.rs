//! Task-qualification (scoring) functions.
//!
//! Definition 1 of the paper: `f(w) = Σ αᵢ bᵢ` over observed attributes
//! `bᵢ` with user-defined weights `αᵢ`, mapping workers to `[0, 1]`.
//! [`LinearScore`] implements that family; the simulation's five random
//! functions `f = α·LanguageTest + (1-α)·ApprovalRate` with
//! `α ∈ {0, 0.3, 0.5, 0.7, 1}` come from
//! [`LinearScore::paper_random_functions`].
//!
//! The qualitative experiment uses functions that are "unfair by design":
//! they draw a worker's score uniformly from a range chosen by rules over
//! **protected** attributes. [`RuleBasedScore`] implements those, with
//! [`RuleBasedScore::f6`] … [`RuleBasedScore::f9`] matching the paper's
//! constructions.

use crate::schema::names;
use fairjob_store::schema::{AttributeKind, DataType};
use fairjob_store::{StoreError, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Errors from scoring-function construction or evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreError {
    /// Underlying store error (unknown attribute, type mismatch, …).
    Store(StoreError),
    /// Weights are invalid (negative, non-finite, or summing above 1).
    BadWeights {
        /// Human-readable reason.
        reason: String,
    },
    /// A weighted attribute is not an observed numeric/integer attribute.
    NotObserved {
        /// The attribute name.
        attribute: String,
    },
    /// A rule references an attribute unusable for its condition type.
    BadRule {
        /// Human-readable reason.
        reason: String,
    },
    /// A score range is invalid (outside `[0, 1]` or `lo > hi`).
    BadRange {
        /// The offending range.
        lo: f64,
        /// The offending range.
        hi: f64,
    },
}

impl fmt::Display for ScoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreError::Store(e) => write!(f, "store: {e}"),
            ScoreError::BadWeights { reason } => write!(f, "bad weights: {reason}"),
            ScoreError::NotObserved { attribute } => {
                write!(
                    f,
                    "attribute `{attribute}` is not an observed numeric attribute"
                )
            }
            ScoreError::BadRule { reason } => write!(f, "bad rule: {reason}"),
            ScoreError::BadRange { lo, hi } => write!(f, "bad score range [{lo}, {hi}]"),
        }
    }
}

impl std::error::Error for ScoreError {}

impl From<StoreError> for ScoreError {
    fn from(e: StoreError) -> Self {
        ScoreError::Store(e)
    }
}

/// A function assigning each worker a qualification score in `[0, 1]`.
pub trait ScoringFunction: Send + Sync {
    /// Stable identifier (`"f1"`, `"f6"`, …) for reports and tables.
    fn name(&self) -> &str;

    /// Score every row of `table`, in row order.
    ///
    /// # Errors
    ///
    /// [`ScoreError`] when the table lacks the attributes the function
    /// reads.
    fn score_all(&self, table: &Table) -> Result<Vec<f64>, ScoreError>;
}

/// The paper's linear family: `f(w) = Σ αᵢ · norm(bᵢ)` with `norm`
/// min-max normalisation by the attribute's declared range.
#[derive(Debug, Clone)]
pub struct LinearScore {
    name: String,
    weights: Vec<(String, f64)>,
}

impl LinearScore {
    /// Build a named linear function from `(observed attribute, weight)`
    /// pairs.
    ///
    /// # Errors
    ///
    /// [`ScoreError::BadWeights`] for negative/non-finite weights, a
    /// weight sum outside `(0, 1]`, or duplicate attributes.
    pub fn new(name: &str, weights: Vec<(String, f64)>) -> Result<Self, ScoreError> {
        if weights.is_empty() {
            return Err(ScoreError::BadWeights {
                reason: "no weights".into(),
            });
        }
        let mut sum = 0.0;
        for (i, (attr, w)) in weights.iter().enumerate() {
            if !w.is_finite() || *w < 0.0 {
                return Err(ScoreError::BadWeights {
                    reason: format!("weight for `{attr}` is {w}"),
                });
            }
            if weights[..i].iter().any(|(a, _)| a == attr) {
                return Err(ScoreError::BadWeights {
                    reason: format!("duplicate attribute `{attr}`"),
                });
            }
            sum += w;
        }
        if sum <= 0.0 || sum > 1.0 + 1e-9 {
            return Err(ScoreError::BadWeights {
                reason: format!("weights must sum to (0, 1], got {sum}"),
            });
        }
        Ok(LinearScore {
            name: name.to_string(),
            weights,
        })
    }

    /// The two-attribute family of the simulation:
    /// `α·LanguageTest + (1-α)·ApprovalRate`.
    ///
    /// # Panics
    ///
    /// Never — any `α ∈ [0, 1]` produces valid weights; out-of-range `α`
    /// is clamped.
    pub fn alpha(name: &str, alpha: f64) -> Self {
        let a = alpha.clamp(0.0, 1.0);
        LinearScore::new(
            name,
            vec![
                (names::LANGUAGE_TEST.into(), a),
                (names::APPROVAL_RATE.into(), 1.0 - a),
            ],
        )
        .expect("alpha weights are always valid")
    }

    /// The five random-simulation functions of the paper, named f1–f5:
    /// f1: α=0.5, f2: α=0.3, f3: α=0.7, f4: α=1 (LanguageTest only),
    /// f5: α=0 (ApprovalRate only) — so that f4/f5 are the
    /// single-attribute functions the paper singles out.
    pub fn paper_random_functions() -> Vec<LinearScore> {
        vec![
            LinearScore::alpha("f1", 0.5),
            LinearScore::alpha("f2", 0.3),
            LinearScore::alpha("f3", 0.7),
            LinearScore::alpha("f4", 1.0),
            LinearScore::alpha("f5", 0.0),
        ]
    }

    /// The `(attribute, weight)` pairs.
    pub fn weights(&self) -> &[(String, f64)] {
        &self.weights
    }
}

impl ScoringFunction for LinearScore {
    fn name(&self) -> &str {
        &self.name
    }

    fn score_all(&self, table: &Table) -> Result<Vec<f64>, ScoreError> {
        // Resolve attributes once.
        let mut resolved = Vec::with_capacity(self.weights.len());
        for (attr_name, w) in &self.weights {
            let idx = table.schema().index_of(attr_name)?;
            let attr = table.schema().attribute(idx);
            if attr.kind != AttributeKind::Observed {
                return Err(ScoreError::NotObserved {
                    attribute: attr_name.clone(),
                });
            }
            let (min, max) = match &attr.dtype {
                DataType::Numeric { min, max } => (*min, *max),
                DataType::Integer { min, max } => (*min as f64, *max as f64),
                DataType::Categorical { .. } => {
                    return Err(ScoreError::NotObserved {
                        attribute: attr_name.clone(),
                    })
                }
            };
            let span = if max > min { max - min } else { 1.0 };
            resolved.push((idx, *w, min, span));
        }
        let mut scores = Vec::with_capacity(table.len());
        for row in 0..table.len() {
            let mut s = 0.0;
            for &(idx, w, min, span) in &resolved {
                let v = table.f64_at(idx, row)?;
                s += w * ((v - min) / span);
            }
            scores.push(s.clamp(0.0, 1.0));
        }
        Ok(scores)
    }
}

/// A condition a rule can place on a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Categorical attribute equals the given label.
    CatEq {
        /// Attribute name.
        attribute: String,
        /// Required label.
        value: String,
    },
    /// Integer attribute lies in `[lo, hi]` (inclusive).
    IntInRange {
        /// Attribute name.
        attribute: String,
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
}

/// One scoring rule: if all conditions hold, draw the score uniformly
/// from `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Conditions (conjunction).
    pub conditions: Vec<Condition>,
    /// Score range lower bound.
    pub lo: f64,
    /// Score range upper bound.
    pub hi: f64,
}

/// A biased-by-design scoring function: first matching rule wins; rows
/// matching no rule draw from the default range. Deterministic in the
/// seed.
#[derive(Debug, Clone)]
pub struct RuleBasedScore {
    name: String,
    rules: Vec<Rule>,
    default: (f64, f64),
    seed: u64,
}

impl RuleBasedScore {
    /// Build a rule-based scorer.
    ///
    /// # Errors
    ///
    /// [`ScoreError::BadRange`] when any range is invalid (`lo > hi` or
    /// outside `[0, 1]`).
    pub fn new(
        name: &str,
        rules: Vec<Rule>,
        default: (f64, f64),
        seed: u64,
    ) -> Result<Self, ScoreError> {
        for r in rules.iter().map(|r| (r.lo, r.hi)).chain([default]) {
            let (lo, hi) = r;
            if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
                return Err(ScoreError::BadRange { lo, hi });
            }
        }
        Ok(RuleBasedScore {
            name: name.to_string(),
            rules,
            default,
            seed,
        })
    }

    fn cat(attribute: &str, value: &str) -> Condition {
        Condition::CatEq {
            attribute: attribute.into(),
            value: value.into(),
        }
    }

    /// f6 — discriminates against females: males score in `(0.8, 1]`,
    /// females in `[0, 0.2)`.
    pub fn f6(seed: u64) -> Self {
        RuleBasedScore::new(
            "f6",
            vec![
                Rule {
                    conditions: vec![Self::cat(names::GENDER, "Male")],
                    lo: 0.8,
                    hi: 1.0,
                },
                Rule {
                    conditions: vec![Self::cat(names::GENDER, "Female")],
                    lo: 0.0,
                    hi: 0.2,
                },
            ],
            (0.0, 1.0),
            seed,
        )
        .expect("static ranges are valid")
    }

    /// f7 — biased on gender × nationality: American males high, American
    /// females low, Indians (either gender) mid, other-nationality
    /// females high, other-nationality males low.
    pub fn f7(seed: u64) -> Self {
        RuleBasedScore::new(
            "f7",
            vec![
                Rule {
                    conditions: vec![
                        Self::cat(names::GENDER, "Male"),
                        Self::cat(names::COUNTRY, "America"),
                    ],
                    lo: 0.8,
                    hi: 1.0,
                },
                Rule {
                    conditions: vec![
                        Self::cat(names::GENDER, "Female"),
                        Self::cat(names::COUNTRY, "America"),
                    ],
                    lo: 0.0,
                    hi: 0.2,
                },
                Rule {
                    conditions: vec![Self::cat(names::COUNTRY, "India")],
                    lo: 0.5,
                    hi: 0.7,
                },
                Rule {
                    conditions: vec![Self::cat(names::GENDER, "Female")],
                    lo: 0.8,
                    hi: 1.0,
                },
                Rule {
                    conditions: vec![Self::cat(names::GENDER, "Male")],
                    lo: 0.0,
                    hi: 0.2,
                },
            ],
            (0.0, 1.0),
            seed,
        )
        .expect("static ranges are valid")
    }

    /// f8 — grades females by nationality (American high, Indian mid,
    /// other low); males are unconstrained (uniform noise).
    pub fn f8(seed: u64) -> Self {
        RuleBasedScore::new(
            "f8",
            vec![
                Rule {
                    conditions: vec![
                        Self::cat(names::GENDER, "Female"),
                        Self::cat(names::COUNTRY, "America"),
                    ],
                    lo: 0.8,
                    hi: 1.0,
                },
                Rule {
                    conditions: vec![
                        Self::cat(names::GENDER, "Female"),
                        Self::cat(names::COUNTRY, "India"),
                    ],
                    lo: 0.5,
                    hi: 0.8,
                },
                Rule {
                    conditions: vec![Self::cat(names::GENDER, "Female")],
                    lo: 0.0,
                    hi: 0.2,
                },
            ],
            (0.0, 1.0),
            seed,
        )
        .expect("static ranges are valid")
    }

    /// f9 — correlates with ethnicity, language and year of birth "in the
    /// same style as f7/f8" (the paper only sketches it): White English
    /// speakers high, Indian-ethnicity Indian speakers mid, workers born
    /// in or after 1990 low, everyone else mid-low.
    pub fn f9(seed: u64) -> Self {
        RuleBasedScore::new(
            "f9",
            vec![
                Rule {
                    conditions: vec![
                        Self::cat(names::ETHNICITY, "White"),
                        Self::cat(names::LANGUAGE, "English"),
                    ],
                    lo: 0.8,
                    hi: 1.0,
                },
                Rule {
                    conditions: vec![
                        Self::cat(names::ETHNICITY, "Indian"),
                        Self::cat(names::LANGUAGE, "Indian"),
                    ],
                    lo: 0.5,
                    hi: 0.7,
                },
                Rule {
                    conditions: vec![Condition::IntInRange {
                        attribute: names::YEAR_OF_BIRTH.into(),
                        lo: 1990,
                        hi: 2009,
                    }],
                    lo: 0.0,
                    hi: 0.2,
                },
            ],
            (0.3, 0.6),
            seed,
        )
        .expect("static ranges are valid")
    }

    /// The four biased functions of the qualitative experiment.
    pub fn paper_biased_functions(seed: u64) -> Vec<RuleBasedScore> {
        vec![
            RuleBasedScore::f6(seed),
            RuleBasedScore::f7(seed.wrapping_add(1)),
            RuleBasedScore::f8(seed.wrapping_add(2)),
            RuleBasedScore::f9(seed.wrapping_add(3)),
        ]
    }
}

/// A condition resolved against a concrete table.
enum ResolvedCondition {
    CatEq { attr: usize, code: u32 },
    IntInRange { attr: usize, lo: i64, hi: i64 },
}

impl ResolvedCondition {
    fn matches(&self, table: &Table, row: usize) -> bool {
        match *self {
            ResolvedCondition::CatEq { attr, code } => {
                table.code_at(attr, row).map(|c| c == code).unwrap_or(false)
            }
            ResolvedCondition::IntInRange { attr, lo, hi } => table
                .column(attr)
                .as_integer()
                .map(|v| (lo..=hi).contains(&v[row]))
                .unwrap_or(false),
        }
    }
}

impl ScoringFunction for RuleBasedScore {
    fn name(&self) -> &str {
        &self.name
    }

    fn score_all(&self, table: &Table) -> Result<Vec<f64>, ScoreError> {
        // Resolve all rule conditions against the schema once.
        let mut resolved: Vec<(Vec<ResolvedCondition>, f64, f64)> =
            Vec::with_capacity(self.rules.len());
        for rule in &self.rules {
            let mut conds = Vec::with_capacity(rule.conditions.len());
            for c in &rule.conditions {
                match c {
                    Condition::CatEq { attribute, value } => {
                        let attr = table.schema().index_of(attribute)?;
                        let code = table.schema().attribute(attr).code_of(value)?;
                        conds.push(ResolvedCondition::CatEq { attr, code });
                    }
                    Condition::IntInRange { attribute, lo, hi } => {
                        let attr = table.schema().index_of(attribute)?;
                        if table.column(attr).as_integer().is_none() {
                            return Err(ScoreError::BadRule {
                                reason: format!("`{attribute}` is not an integer attribute"),
                            });
                        }
                        conds.push(ResolvedCondition::IntInRange {
                            attr,
                            lo: *lo,
                            hi: *hi,
                        });
                    }
                }
            }
            conds.shrink_to_fit();
            resolved.push((conds, rule.lo, rule.hi));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut scores = Vec::with_capacity(table.len());
        for row in 0..table.len() {
            let (lo, hi) = resolved
                .iter()
                .find(|(conds, _, _)| conds.iter().all(|c| c.matches(table, row)))
                .map(|(_, lo, hi)| (*lo, *hi))
                .unwrap_or(self.default);
            let score = if hi > lo { rng.gen_range(lo..hi) } else { lo };
            scores.push(score);
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_uniform;
    use crate::schema::names;

    #[test]
    fn linear_weights_validated() {
        assert!(LinearScore::new("f", vec![]).is_err());
        assert!(LinearScore::new("f", vec![("a".into(), -0.1)]).is_err());
        assert!(LinearScore::new("f", vec![("a".into(), 0.6), ("b".into(), 0.6)]).is_err());
        assert!(LinearScore::new("f", vec![("a".into(), 0.5), ("a".into(), 0.5)]).is_err());
        assert!(LinearScore::new("f", vec![("a".into(), f64::NAN)]).is_err());
        assert!(LinearScore::new("f", vec![("a".into(), 0.0), ("b".into(), 0.0)]).is_err());
    }

    #[test]
    fn alpha_family_is_named_and_bounded() {
        let fs = LinearScore::paper_random_functions();
        assert_eq!(fs.len(), 5);
        assert_eq!(fs[0].name(), "f1");
        let t = generate_uniform(100, 5);
        for f in &fs {
            let scores = f.score_all(&t).unwrap();
            assert_eq!(scores.len(), 100);
            assert!(
                scores.iter().all(|s| (0.0..=1.0).contains(s)),
                "{}",
                f.name()
            );
        }
    }

    #[test]
    fn alpha_one_reads_only_language_test() {
        let t = generate_uniform(50, 6);
        let f4 = LinearScore::alpha("f4", 1.0);
        let scores = f4.score_all(&t).unwrap();
        let lt = t
            .column_by_name(names::LANGUAGE_TEST)
            .unwrap()
            .as_numeric()
            .unwrap();
        for (s, v) in scores.iter().zip(lt) {
            assert!((s - (v - 25.0) / 75.0).abs() < 1e-12);
        }
    }

    #[test]
    fn alpha_blends_linearly() {
        let t = generate_uniform(50, 6);
        let s4 = LinearScore::alpha("f4", 1.0).score_all(&t).unwrap();
        let s5 = LinearScore::alpha("f5", 0.0).score_all(&t).unwrap();
        let s1 = LinearScore::alpha("f1", 0.5).score_all(&t).unwrap();
        for i in 0..50 {
            assert!((s1[i] - 0.5 * (s4[i] + s5[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_rejects_protected_attributes() {
        let t = generate_uniform(10, 1);
        let f = LinearScore::new("bad", vec![(names::YEAR_OF_BIRTH.into(), 1.0)]).unwrap();
        assert!(matches!(
            f.score_all(&t),
            Err(ScoreError::NotObserved { .. })
        ));
        let f = LinearScore::new("bad", vec![(names::GENDER.into(), 1.0)]).unwrap();
        assert!(matches!(
            f.score_all(&t),
            Err(ScoreError::NotObserved { .. })
        ));
        let f = LinearScore::new("bad", vec![("nope".into(), 1.0)]).unwrap();
        assert!(matches!(f.score_all(&t), Err(ScoreError::Store(_))));
    }

    #[test]
    fn f6_separates_genders() {
        let t = generate_uniform(300, 11);
        let scores = RuleBasedScore::f6(42).score_all(&t).unwrap();
        let gender = t
            .column_by_name(names::GENDER)
            .unwrap()
            .as_categorical()
            .unwrap();
        for (s, &g) in scores.iter().zip(gender) {
            if g == 0 {
                assert!(*s >= 0.8, "male scored {s}");
            } else {
                assert!(*s < 0.2, "female scored {s}");
            }
        }
    }

    #[test]
    fn f7_rule_order_respects_paper_spec() {
        let t = generate_uniform(500, 12);
        let scores = RuleBasedScore::f7(42).score_all(&t).unwrap();
        let gender = t
            .column_by_name(names::GENDER)
            .unwrap()
            .as_categorical()
            .unwrap();
        let country = t
            .column_by_name(names::COUNTRY)
            .unwrap()
            .as_categorical()
            .unwrap();
        for i in 0..t.len() {
            let s = scores[i];
            match (gender[i], country[i]) {
                (0, 0) => assert!(s >= 0.8),                // male American
                (1, 0) => assert!(s < 0.2),                 // female American
                (_, 1) => assert!((0.5..0.7).contains(&s)), // Indian
                (1, 2) => assert!(s >= 0.8),                // female other
                (0, 2) => assert!(s < 0.2),                 // male other
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn f8_grades_females_only() {
        let t = generate_uniform(500, 13);
        let scores = RuleBasedScore::f8(42).score_all(&t).unwrap();
        let gender = t
            .column_by_name(names::GENDER)
            .unwrap()
            .as_categorical()
            .unwrap();
        let country = t
            .column_by_name(names::COUNTRY)
            .unwrap()
            .as_categorical()
            .unwrap();
        for i in 0..t.len() {
            if gender[i] == 1 {
                let s = scores[i];
                match country[i] {
                    0 => assert!(s >= 0.8),
                    1 => assert!((0.5..0.8).contains(&s)),
                    _ => assert!(s < 0.2),
                }
            }
        }
    }

    #[test]
    fn f9_uses_year_of_birth() {
        let t = generate_uniform(500, 14);
        let scores = RuleBasedScore::f9(42).score_all(&t).unwrap();
        let eth = t
            .column_by_name(names::ETHNICITY)
            .unwrap()
            .as_categorical()
            .unwrap();
        let lang = t
            .column_by_name(names::LANGUAGE)
            .unwrap()
            .as_categorical()
            .unwrap();
        let yob = t
            .column_by_name(names::YEAR_OF_BIRTH)
            .unwrap()
            .as_integer()
            .unwrap();
        for i in 0..t.len() {
            let s = scores[i];
            if eth[i] == 0 && lang[i] == 0 {
                assert!(s >= 0.8);
            } else if eth[i] == 2 && lang[i] == 1 {
                assert!((0.5..0.7).contains(&s));
            } else if yob[i] >= 1990 {
                assert!(s < 0.2);
            } else {
                assert!((0.3..0.6).contains(&s));
            }
        }
    }

    #[test]
    fn rule_scores_deterministic_in_seed() {
        let t = generate_uniform(100, 15);
        let a = RuleBasedScore::f7(42).score_all(&t).unwrap();
        let b = RuleBasedScore::f7(42).score_all(&t).unwrap();
        let c = RuleBasedScore::f7(43).score_all(&t).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bad_ranges_rejected() {
        assert!(matches!(
            RuleBasedScore::new("x", vec![], (0.5, 0.2), 0),
            Err(ScoreError::BadRange { .. })
        ));
        assert!(matches!(
            RuleBasedScore::new("x", vec![], (0.0, 1.5), 0),
            Err(ScoreError::BadRange { .. })
        ));
    }

    #[test]
    fn int_condition_on_non_integer_rejected() {
        let t = generate_uniform(10, 16);
        let f = RuleBasedScore::new(
            "x",
            vec![Rule {
                conditions: vec![Condition::IntInRange {
                    attribute: names::GENDER.into(),
                    lo: 0,
                    hi: 1,
                }],
                lo: 0.0,
                hi: 1.0,
            }],
            (0.0, 1.0),
            0,
        )
        .unwrap();
        assert!(matches!(f.score_all(&t), Err(ScoreError::BadRule { .. })));
    }

    #[test]
    fn degenerate_range_is_constant() {
        let t = generate_uniform(10, 17);
        let f = RuleBasedScore::new("x", vec![], (0.5, 0.5), 0).unwrap();
        let scores = f.score_all(&t).unwrap();
        assert!(scores.iter().all(|&s| s == 0.5));
    }
}
