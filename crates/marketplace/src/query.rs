//! Requester queries: skill requirements + ranking.
//!
//! On real platforms a requester does not rank the whole worker pool —
//! they "formulate a query" (paper, introduction): hard requirements on
//! observed attributes narrow the pool first, and the qualification
//! function ranks the eligible workers. Requirements interact with
//! fairness: a threshold on a skill correlated with a protected
//! attribute can exclude a group *before* the scoring function ever
//! runs, which is why audits should run on the eligible set of each
//! query, not just the global pool.

use crate::scoring::{ScoreError, ScoringFunction};
use fairjob_store::schema::{AttributeKind, DataType};
use fairjob_store::{RowSet, StoreError, Table};

/// A hard requirement on an observed numeric/integer attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Requirement {
    /// Attribute name.
    pub attribute: String,
    /// Minimum acceptable value (inclusive).
    pub min: f64,
}

/// A requester query: requirements plus the ranking function.
pub struct Query {
    /// Human-readable title.
    pub title: String,
    /// Conjunction of minimum-skill requirements.
    pub requirements: Vec<Requirement>,
    /// Ranking function over the eligible pool.
    pub scorer: Box<dyn ScoringFunction>,
}

/// The outcome of evaluating a query against a worker pool.
pub struct QueryResult {
    /// Rows meeting every requirement.
    pub eligible: RowSet,
    /// Scores for eligible rows (aligned with `eligible` iteration
    /// order); ineligible rows carry `f64::NAN`.
    pub scores: Vec<f64>,
    /// The displayed ranking (eligible rows only, best first).
    pub ranking: Vec<crate::ranking::Ranked>,
}

/// Errors from query evaluation.
#[derive(Debug)]
pub enum QueryError {
    /// A requirement references a missing/unusable attribute.
    Requirement {
        /// The attribute name.
        attribute: String,
        /// Why it cannot be used.
        reason: String,
    },
    /// The scoring function failed.
    Score(ScoreError),
    /// Underlying store failure.
    Store(StoreError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Requirement { attribute, reason } => {
                write!(f, "requirement on `{attribute}`: {reason}")
            }
            QueryError::Score(e) => write!(f, "score: {e}"),
            QueryError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ScoreError> for QueryError {
    fn from(e: ScoreError) -> Self {
        QueryError::Score(e)
    }
}

impl From<StoreError> for QueryError {
    fn from(e: StoreError) -> Self {
        QueryError::Store(e)
    }
}

impl Query {
    /// Evaluate the query: filter by requirements, score the eligible
    /// pool, rank the top `k` (or everyone with `None`).
    ///
    /// # Errors
    ///
    /// [`QueryError`] for bad requirements or scoring failures.
    pub fn evaluate(&self, workers: &Table, k: Option<usize>) -> Result<QueryResult, QueryError> {
        // Resolve requirements: observed numeric/integer attributes only.
        let mut resolved = Vec::with_capacity(self.requirements.len());
        for req in &self.requirements {
            let idx =
                workers
                    .schema()
                    .index_of(&req.attribute)
                    .map_err(|e| QueryError::Requirement {
                        attribute: req.attribute.clone(),
                        reason: e.to_string(),
                    })?;
            let attr = workers.schema().attribute(idx);
            if attr.kind != AttributeKind::Observed
                || matches!(attr.dtype, DataType::Categorical { .. })
            {
                return Err(QueryError::Requirement {
                    attribute: req.attribute.clone(),
                    reason: "requirements may only constrain observed numeric attributes".into(),
                });
            }
            if !req.min.is_finite() {
                return Err(QueryError::Requirement {
                    attribute: req.attribute.clone(),
                    reason: "minimum must be finite".into(),
                });
            }
            resolved.push((idx, req.min));
        }
        // Filter.
        let mut rows = Vec::new();
        'rows: for row in 0..workers.len() {
            for &(idx, min) in &resolved {
                if workers.f64_at(idx, row)? < min {
                    continue 'rows;
                }
            }
            rows.push(row as u32);
        }
        let eligible = RowSet::from_sorted(rows);
        // Score everyone, then mask out ineligible rows with NaN so the
        // ranking (which drops NaN) only shows the eligible pool.
        let all_scores = self.scorer.score_all(workers)?;
        let mut scores = vec![f64::NAN; workers.len()];
        for row in eligible.iter() {
            scores[row] = all_scores[row];
        }
        let ranking = crate::ranking::rank(&scores, k);
        Ok(QueryResult {
            eligible,
            scores,
            ranking,
        })
    }
}

impl QueryResult {
    /// Of each group (code) of a categorical attribute: what fraction of
    /// its members is eligible? The "who got filtered out before
    /// ranking even started" diagnostic.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotCategorical`] for non-categorical attributes.
    pub fn eligibility_by_group(
        &self,
        workers: &Table,
        attr: usize,
    ) -> Result<Vec<(u32, f64, usize)>, StoreError> {
        let all = RowSet::all(workers.len());
        let groups = fairjob_store::groupby::group_by(workers, &all, attr)?;
        Ok(groups
            .into_iter()
            .map(|(code, rows)| {
                let eligible = rows.intersect(&self.eligible).len();
                (code, eligible as f64 / rows.len() as f64, rows.len())
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_correlated, generate_uniform, CorrelationConfig};
    use crate::schema::names;
    use crate::scoring::LinearScore;

    fn query(min_test: f64) -> Query {
        Query {
            title: "html gig".into(),
            requirements: vec![Requirement {
                attribute: names::LANGUAGE_TEST.into(),
                min: min_test,
            }],
            scorer: Box::new(LinearScore::alpha("f", 0.5)),
        }
    }

    #[test]
    fn requirements_filter_the_pool() {
        let workers = generate_uniform(300, 1);
        let result = query(80.0).evaluate(&workers, None).unwrap();
        let tests = workers
            .column_by_name(names::LANGUAGE_TEST)
            .unwrap()
            .as_numeric()
            .unwrap();
        for (row, &test_score) in tests.iter().enumerate() {
            let eligible = result.eligible.contains(row as u32);
            assert_eq!(eligible, test_score >= 80.0, "row {row}");
            if !eligible {
                assert!(result.scores[row].is_nan());
            }
        }
        // Ranking only contains eligible rows.
        assert_eq!(result.ranking.len(), result.eligible.len());
    }

    #[test]
    fn no_requirements_means_everyone() {
        let workers = generate_uniform(50, 2);
        let q = Query {
            title: "open call".into(),
            requirements: vec![],
            scorer: Box::new(LinearScore::alpha("f", 0.5)),
        };
        let result = q.evaluate(&workers, Some(10)).unwrap();
        assert_eq!(result.eligible.len(), 50);
        assert_eq!(result.ranking.len(), 10);
    }

    #[test]
    fn bad_requirements_rejected() {
        let workers = generate_uniform(10, 3);
        for (attr, reason_fragment) in [
            ("nope", "no attribute"),
            (names::GENDER, "observed numeric"),
            (names::YEAR_OF_BIRTH, "observed numeric"),
        ] {
            let q = Query {
                title: "x".into(),
                requirements: vec![Requirement {
                    attribute: attr.into(),
                    min: 1.0,
                }],
                scorer: Box::new(LinearScore::alpha("f", 0.5)),
            };
            match q.evaluate(&workers, None) {
                Err(QueryError::Requirement { reason, .. }) => {
                    assert!(reason.contains(reason_fragment), "{attr}: {reason}")
                }
                other => panic!(
                    "{attr}: expected requirement error, got {other:?}",
                    other = other.map(|_| ())
                ),
            }
        }
        let q = Query {
            title: "x".into(),
            requirements: vec![Requirement {
                attribute: names::LANGUAGE_TEST.into(),
                min: f64::NAN,
            }],
            scorer: Box::new(LinearScore::alpha("f", 0.5)),
        };
        assert!(q.evaluate(&workers, None).is_err());
    }

    #[test]
    fn correlated_requirement_skews_eligibility() {
        // A high language-test floor on a language-correlated population
        // filters non-English speakers disproportionately — bias before
        // any ranking happens.
        let cfg = CorrelationConfig {
            language_to_test: 0.8,
            ..Default::default()
        };
        let workers = generate_correlated(1000, 4, &cfg);
        let result = query(70.0).evaluate(&workers, None).unwrap();
        let language = workers.schema().index_of(names::LANGUAGE).unwrap();
        let by_group = result.eligibility_by_group(&workers, language).unwrap();
        let rate = |code: u32| by_group.iter().find(|(c, _, _)| *c == code).unwrap().1;
        assert!(
            rate(0) > rate(1) + 0.3,
            "English eligibility {} should far exceed Indian {}",
            rate(0),
            rate(1)
        );
    }

    #[test]
    fn impossible_requirement_empties_the_ranking() {
        let workers = generate_uniform(20, 5);
        let result = query(100.5).evaluate(&workers, Some(5));
        // min above the attribute range: nobody qualifies, not an error.
        let result = result.unwrap();
        assert!(result.eligible.is_empty());
        assert!(result.ranking.is_empty());
    }
}
