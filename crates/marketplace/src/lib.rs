//! Simulation of an online job marketplace / crowdsourcing platform.
//!
//! The paper evaluates its unfairness-exploration algorithms on "a
//! simulation of a crowdsourcing platform using two sets of active
//! workers and various scoring functions". This crate is that platform:
//!
//! * [`schema`] — the paper's worker schema: six protected attributes
//!   (Gender, Country, Year of Birth, Language, Ethnicity, Years of
//!   Experience) and two observed attributes (LanguageTest,
//!   ApprovalRate), plus the ≤5-value bucketisation of the numeric
//!   protected attributes that splitting requires.
//! * [`generate`] — population generators: uniform-at-random (the paper's
//!   setting, "to avoid injecting any bias in the data ourselves") and a
//!   correlated generator standing in for real marketplace data.
//! * [`scoring`] — task-qualification functions: the linear family
//!   `f = α·LanguageTest + (1-α)·ApprovalRate` (f1–f5) and the
//!   biased-by-design rule-based functions f6–f9 of the qualitative
//!   experiment.
//! * [`ranking`] — top-k ranking with deterministic tie-breaking and
//!   position-bias exposure accounting.
//! * [`platform`] — a task/query event loop producing ranking logs.
//! * [`toy`] — the reconstructed 10-worker toy example of Figure 1.

pub mod generate;
pub mod hiring;
pub mod platform;
pub mod query;
pub mod ranking;
pub mod schema;
pub mod scoring;
pub mod stream;
pub mod taskgen;
pub mod toy;

pub use generate::{generate_correlated, generate_uniform, CorrelationConfig};
pub use schema::{amt_schema, bucketise_numeric_protected};
pub use scoring::{LinearScore, RuleBasedScore, ScoreError, ScoringFunction};
pub use stream::{generate_stream, Event, EventLog, StreamConfig, StreamScenario};
