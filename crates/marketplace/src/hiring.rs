//! Multi-round hiring dynamics with reputation feedback.
//!
//! Ranking unfairness compounds: workers shown higher get hired more,
//! hires raise the observed reputation signals (approval rate), and the
//! next ranking amplifies the gap. This module simulates that loop —
//! the mechanism that turns a *slightly* biased scoring function into a
//! strongly stratified marketplace, and the reason auditing scoring
//! functions (this library's core) matters before the loop runs.
//!
//! Each round:
//! 1. every worker is scored by the task-qualification function;
//! 2. the top-k are shown; a requester makes `hires_per_round` hires,
//!    sampling shown workers proportionally to a position-bias weight;
//! 3. each hired worker's approval rate rises by `approval_boost`
//!    (clamped to the schema range).

use crate::ranking::{rank, ExposureModel};
use crate::schema::names;
use crate::scoring::{ScoreError, ScoringFunction};
use fairjob_store::{StoreError, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Configuration of a hiring simulation.
#[derive(Debug, Clone, Copy)]
pub struct HiringConfig {
    /// Number of rounds (posted tasks) to simulate.
    pub rounds: usize,
    /// Size of the displayed ranking per task.
    pub top_k: usize,
    /// Hires made per round.
    pub hires_per_round: usize,
    /// Position-bias model governing which shown worker gets hired.
    pub position_bias: ExposureModel,
    /// Approval-rate increase per successful hire.
    pub approval_boost: f64,
    /// RNG seed (hire sampling).
    pub seed: u64,
}

impl Default for HiringConfig {
    fn default() -> Self {
        HiringConfig {
            rounds: 50,
            top_k: 20,
            hires_per_round: 5,
            position_bias: ExposureModel::Logarithmic,
            approval_boost: 2.0,
            seed: 0,
        }
    }
}

/// Errors from the hiring simulation.
#[derive(Debug)]
pub enum HiringError {
    /// The scoring function failed.
    Score(ScoreError),
    /// The store rejected an update.
    Store(StoreError),
    /// Config asks for zero rounds/hires/slots.
    BadConfig(&'static str),
}

impl fmt::Display for HiringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HiringError::Score(e) => write!(f, "score: {e}"),
            HiringError::Store(e) => write!(f, "store: {e}"),
            HiringError::BadConfig(reason) => write!(f, "bad config: {reason}"),
        }
    }
}

impl std::error::Error for HiringError {}

impl From<ScoreError> for HiringError {
    fn from(e: ScoreError) -> Self {
        HiringError::Score(e)
    }
}

impl From<StoreError> for HiringError {
    fn from(e: StoreError) -> Self {
        HiringError::Store(e)
    }
}

/// Outcome of a hiring simulation.
#[derive(Debug, Clone)]
pub struct HiringOutcome {
    /// Total hires per worker row.
    pub hires: Vec<usize>,
    /// Per-round hires per group code of the tracked attribute:
    /// `hires_by_group[round][code]`.
    pub hires_by_group: Vec<Vec<usize>>,
    /// Scores at the final round (after all reputation updates).
    pub final_scores: Vec<f64>,
    /// Scores at round zero (before any update).
    pub initial_scores: Vec<f64>,
}

impl HiringOutcome {
    /// Cumulative hire share of a group code over all rounds.
    pub fn hire_share(&self, code: u32) -> f64 {
        let group: usize = self.hires_by_group.iter().map(|r| r[code as usize]).sum();
        let total: usize = self
            .hires_by_group
            .iter()
            .map(|r| r.iter().sum::<usize>())
            .sum();
        if total == 0 {
            0.0
        } else {
            group as f64 / total as f64
        }
    }
}

/// Run the feedback-loop simulation. Mutates `workers`' approval-rate
/// column in place (callers wanting the original table should clone).
/// `group_attr` is the categorical attribute to break hires down by.
///
/// # Errors
///
/// [`HiringError`] for config/scoring/store failures.
pub fn simulate_hiring(
    workers: &mut Table,
    scorer: &dyn ScoringFunction,
    group_attr: usize,
    config: &HiringConfig,
) -> Result<HiringOutcome, HiringError> {
    if config.rounds == 0 || config.top_k == 0 || config.hires_per_round == 0 {
        return Err(HiringError::BadConfig(
            "rounds, top_k and hires_per_round must be positive",
        ));
    }
    let approval_idx = workers.schema().index_of(names::APPROVAL_RATE)?;
    let cardinality =
        workers
            .schema()
            .attribute(group_attr)
            .cardinality()
            .ok_or(HiringError::Store(StoreError::NotCategorical {
                attribute: workers.schema().attribute(group_attr).name.clone(),
            }))?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut hires = vec![0usize; workers.len()];
    let mut hires_by_group = Vec::with_capacity(config.rounds);
    let mut initial_scores = Vec::new();
    let mut final_scores = Vec::new();

    for round in 0..config.rounds {
        let scores = scorer.score_all(workers)?;
        if round == 0 {
            initial_scores = scores.clone();
        }
        let shown = rank(&scores, Some(config.top_k));
        let weights: Vec<f64> = (0..shown.len())
            .map(|pos| config.position_bias.weight(pos))
            .collect();
        let total_weight: f64 = weights.iter().sum();

        let mut round_hires = vec![0usize; cardinality];
        for _ in 0..config.hires_per_round {
            if total_weight <= 0.0 || shown.is_empty() {
                break;
            }
            // Sample a shown position proportional to its weight.
            let mut target = rng.gen::<f64>() * total_weight;
            let mut pick = shown.len() - 1;
            for (pos, &w) in weights.iter().enumerate() {
                if target < w {
                    pick = pos;
                    break;
                }
                target -= w;
            }
            let row = shown[pick].row as usize;
            hires[row] += 1;
            let code = workers.code_at(group_attr, row)?;
            round_hires[code as usize] += 1;
            // Reputation feedback: approval rate rises, clamped to range.
            let current = workers.f64_at(approval_idx, row)?;
            let boosted = (current + config.approval_boost).min(100.0);
            workers.set_f64(approval_idx, row, boosted)?;
        }
        hires_by_group.push(round_hires);
        if round + 1 == config.rounds {
            final_scores = scorer.score_all(workers)?;
        }
    }
    Ok(HiringOutcome {
        hires,
        hires_by_group,
        final_scores,
        initial_scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_correlated, generate_uniform, CorrelationConfig};
    use crate::scoring::LinearScore;

    #[test]
    fn config_validation() {
        let mut t = generate_uniform(20, 1);
        let f = LinearScore::alpha("f", 0.5);
        let bad = HiringConfig {
            rounds: 0,
            ..Default::default()
        };
        assert!(matches!(
            simulate_hiring(&mut t, &f, 0, &bad),
            Err(HiringError::BadConfig(_))
        ));
    }

    #[test]
    fn non_categorical_group_attr_rejected() {
        let mut t = generate_uniform(20, 1);
        let f = LinearScore::alpha("f", 0.5);
        let yob = t.schema().index_of(names::YEAR_OF_BIRTH).unwrap();
        assert!(simulate_hiring(&mut t, &f, yob, &HiringConfig::default()).is_err());
    }

    #[test]
    fn hires_accumulate_and_boost_reputation() {
        let mut t = generate_uniform(100, 2);
        let f = LinearScore::alpha("f", 0.0); // approval rate only
        let gender = t.schema().index_of(names::GENDER).unwrap();
        let cfg = HiringConfig {
            rounds: 10,
            hires_per_round: 3,
            ..Default::default()
        };
        let before: Vec<f64> = t
            .column_by_name(names::APPROVAL_RATE)
            .unwrap()
            .as_numeric()
            .unwrap()
            .to_vec();
        let outcome = simulate_hiring(&mut t, &f, gender, &cfg).unwrap();
        let total: usize = outcome.hires.iter().sum();
        assert_eq!(total, 30);
        assert_eq!(outcome.hires_by_group.len(), 10);
        // Someone's approval rate rose.
        let after = t
            .column_by_name(names::APPROVAL_RATE)
            .unwrap()
            .as_numeric()
            .unwrap();
        assert!(before.iter().zip(after).any(|(b, a)| a > b));
        // Shares sum to one.
        let share_sum: f64 = (0..2).map(|c| outcome.hire_share(c)).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_in_seed() {
        let f = LinearScore::alpha("f", 0.3);
        let cfg = HiringConfig {
            rounds: 5,
            ..Default::default()
        };
        let run = |seed: u64| {
            let mut t = generate_uniform(80, 3);
            let gender = t.schema().index_of(names::GENDER).unwrap();
            simulate_hiring(&mut t, &f, gender, &HiringConfig { seed, ..cfg })
                .unwrap()
                .hires
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn feedback_amplifies_initial_advantage() {
        // Strongly language-correlated tests + a language-test-heavy
        // scorer: English speakers dominate the top; hiring boosts their
        // approval too, compounding under a blended scorer.
        let cfg_pop = CorrelationConfig {
            language_to_test: 0.9,
            ..Default::default()
        };
        let mut t = generate_correlated(300, 4, &cfg_pop);
        let lang = t.schema().index_of(names::LANGUAGE).unwrap();
        let f = LinearScore::alpha("f", 0.7);
        let cfg = HiringConfig {
            rounds: 60,
            hires_per_round: 5,
            top_k: 15,
            ..Default::default()
        };
        let outcome = simulate_hiring(&mut t, &f, lang, &cfg).unwrap();
        let english_share = outcome.hire_share(0);
        assert!(
            english_share > 0.7,
            "English speakers (1/3 of workers) should take most hires: {english_share}"
        );
        // The score gap between hired and never-hired workers widened.
        let gap = |scores: &[f64]| {
            let hired_mean: f64 = outcome
                .hires
                .iter()
                .zip(scores)
                .filter(|(h, _)| **h > 0)
                .map(|(_, s)| *s)
                .sum::<f64>()
                / outcome.hires.iter().filter(|h| **h > 0).count().max(1) as f64;
            let rest_mean: f64 = outcome
                .hires
                .iter()
                .zip(scores)
                .filter(|(h, _)| **h == 0)
                .map(|(_, s)| *s)
                .sum::<f64>()
                / outcome.hires.iter().filter(|h| **h == 0).count().max(1) as f64;
            hired_mean - rest_mean
        };
        assert!(
            gap(&outcome.final_scores) > gap(&outcome.initial_scores),
            "reputation feedback should widen the hired/rest score gap"
        );
    }
}
