//! The reconstructed toy example of Figure 1.
//!
//! The paper's Figure 1 shows 10 workers on a freelancing platform whose
//! optimum (most unfair) partitioning splits on Gender first and then
//! splits only the Male partition on Language, yielding {Male-English,
//! Male-Indian, Male-Other, Female}. The figure does not print the
//! individual worker values, so this module reconstructs a 10-worker
//! dataset with that exact optimum (verified by the exhaustive search in
//! the integration tests):
//!
//! * Male-English workers score very high, Male-Indian mid, Male-Other
//!   low — splitting males by language separates three distinct score
//!   distributions.
//! * Female workers all score in the bottom histogram bin regardless of
//!   language — splitting females gains nothing and dilutes the average
//!   pairwise EMD, so the optimum keeps them whole. Keeping all female
//!   mass far from every male group also makes Gender the worst (first)
//!   split attribute, as in the figure.

use fairjob_store::schema::{AttributeKind, Schema};
use fairjob_store::table::{Table, Value};

/// Attribute names of the toy schema.
pub mod names {
    /// Gender (protected).
    pub const GENDER: &str = "gender";
    /// Language (protected).
    pub const LANGUAGE: &str = "language";
    /// The pre-computed task-qualification score (observed).
    pub const SCORE: &str = "score";
}

/// The toy schema: Gender, Language, and the scoring function's output.
pub fn toy_schema() -> Schema {
    Schema::builder()
        .categorical(names::GENDER, AttributeKind::Protected, &["Male", "Female"])
        .categorical(
            names::LANGUAGE,
            AttributeKind::Protected,
            &["English", "Indian", "Other"],
        )
        .numeric(names::SCORE, AttributeKind::Observed, 0.0, 1.0)
        .build()
        .expect("static schema is valid")
}

/// The 10 toy workers and their scores, in row order.
pub fn toy_workers() -> (Table, Vec<f64>) {
    let rows: [(&str, &str, f64); 10] = [
        ("Male", "English", 0.92),
        ("Male", "English", 0.97),
        ("Male", "Indian", 0.55),
        ("Male", "Indian", 0.58),
        ("Male", "Other", 0.12),
        ("Male", "Other", 0.17),
        ("Female", "English", 0.02),
        ("Female", "Indian", 0.04),
        ("Female", "Other", 0.06),
        ("Female", "Other", 0.08),
    ];
    let mut table = Table::new(toy_schema());
    let mut scores = Vec::with_capacity(rows.len());
    for (gender, language, score) in rows {
        table
            .push_row(&[Value::cat(gender), Value::cat(language), Value::num(score)])
            .expect("toy rows satisfy the schema");
        scores.push(score);
    }
    (table, scores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_workers() {
        let (t, scores) = toy_workers();
        assert_eq!(t.len(), 10);
        assert_eq!(scores.len(), 10);
    }

    #[test]
    fn scores_column_matches_returned_scores() {
        let (t, scores) = toy_workers();
        let col = t
            .column_by_name(names::SCORE)
            .unwrap()
            .as_numeric()
            .unwrap();
        assert_eq!(col, &scores[..]);
    }

    #[test]
    fn females_share_one_bin_under_ten_bins() {
        let (t, scores) = toy_workers();
        let gender = t
            .column_by_name(names::GENDER)
            .unwrap()
            .as_categorical()
            .unwrap();
        for (i, &g) in gender.iter().enumerate() {
            if g == 1 {
                assert_eq!((scores[i] * 10.0) as usize, 0, "female scores all in bin 0");
            }
        }
    }

    #[test]
    fn male_language_groups_are_separated() {
        let (t, scores) = toy_workers();
        let gender = t
            .column_by_name(names::GENDER)
            .unwrap()
            .as_categorical()
            .unwrap();
        let lang = t
            .column_by_name(names::LANGUAGE)
            .unwrap()
            .as_categorical()
            .unwrap();
        let mut bins: Vec<Vec<usize>> = vec![Vec::new(); 3];
        for i in 0..t.len() {
            if gender[i] == 0 {
                bins[lang[i] as usize].push((scores[i] * 10.0) as usize);
            }
        }
        // English 0.9s, Indian 0.5s, Other 0.1s: three distinct bins.
        assert!(bins[0].iter().all(|&b| b == 9));
        assert!(bins[1].iter().all(|&b| b == 5));
        assert!(bins[2].iter().all(|&b| b == 1));
    }
}
