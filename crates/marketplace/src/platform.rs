//! The crowdsourcing-platform event loop.
//!
//! A minimal but realistic simulation of the marketplace the paper
//! audits: requesters post tasks, each task ranks the worker pool with
//! its qualification function, and the platform records who was shown
//! where. The resulting logs feed the audit layer (scores per task) and
//! the examples (exposure summaries per demographic group).

use crate::ranking::{accumulate_exposure, rank, ExposureModel, Ranked};
use crate::scoring::{ScoreError, ScoringFunction};
use fairjob_store::Table;

/// A task posted to the platform.
pub struct Task {
    /// Task identifier.
    pub id: u64,
    /// Human-readable title ("help with HTML/CSS", "assemble furniture").
    pub title: String,
    /// The qualification function used to rank workers for this task.
    pub scorer: Box<dyn ScoringFunction>,
    /// How many workers the requester sees.
    pub top_k: usize,
}

/// What the platform recorded for one task.
#[derive(Debug, Clone)]
pub struct RankingLog {
    /// The task id.
    pub task_id: u64,
    /// The scoring-function name used.
    pub function: String,
    /// Scores for every worker (row-aligned with the table).
    pub scores: Vec<f64>,
    /// The top-k ranking that was shown.
    pub shown: Vec<Ranked>,
}

/// The simulated platform: a worker pool plus accumulated logs.
pub struct Platform {
    workers: Table,
    exposure_model: ExposureModel,
    exposure: Vec<f64>,
    logs: Vec<RankingLog>,
    next_task_id: u64,
}

impl Platform {
    /// Create a platform over a worker pool.
    pub fn new(workers: Table, exposure_model: ExposureModel) -> Self {
        let n = workers.len();
        Platform {
            workers,
            exposure_model,
            exposure: vec![0.0; n],
            logs: Vec::new(),
            next_task_id: 0,
        }
    }

    /// The worker pool.
    pub fn workers(&self) -> &Table {
        &self.workers
    }

    /// Post a task: scores all workers, records the shown ranking and
    /// its exposure, and returns the log entry.
    ///
    /// # Errors
    ///
    /// [`ScoreError`] when the task's scoring function cannot evaluate
    /// the worker table.
    pub fn post_task(
        &mut self,
        title: &str,
        scorer: &dyn ScoringFunction,
        top_k: usize,
    ) -> Result<&RankingLog, ScoreError> {
        let scores = scorer.score_all(&self.workers)?;
        let shown = rank(&scores, Some(top_k));
        accumulate_exposure(&shown, self.exposure_model, &mut self.exposure);
        let log = RankingLog {
            task_id: self.next_task_id,
            function: scorer.name().to_string(),
            scores,
            shown,
        };
        self.next_task_id += 1;
        let _ = title; // titles are informational; kept in the signature for callers' logs
        self.logs.push(log);
        Ok(self.logs.last().expect("just pushed"))
    }

    /// Post a [`crate::query::Query`]: requirements filter the pool
    /// first, then the query's scorer ranks the eligible workers.
    /// Exposure accrues only to shown (eligible) workers. Ineligible
    /// workers carry NaN scores in the log, so audits of query logs can
    /// restrict themselves to the eligible pool.
    ///
    /// # Errors
    ///
    /// [`crate::query::QueryError`] from query evaluation.
    pub fn post_query(
        &mut self,
        query: &crate::query::Query,
        top_k: usize,
    ) -> Result<&RankingLog, crate::query::QueryError> {
        let result = query.evaluate(&self.workers, Some(top_k))?;
        accumulate_exposure(&result.ranking, self.exposure_model, &mut self.exposure);
        let log = RankingLog {
            task_id: self.next_task_id,
            function: query.scorer.name().to_string(),
            scores: result.scores,
            shown: result.ranking,
        };
        self.next_task_id += 1;
        self.logs.push(log);
        Ok(self.logs.last().expect("just pushed"))
    }

    /// All logs so far.
    pub fn logs(&self) -> &[RankingLog] {
        &self.logs
    }

    /// Accumulated exposure per worker row.
    pub fn exposure(&self) -> &[f64] {
        &self.exposure
    }

    /// Mean accumulated exposure of each value of a categorical
    /// attribute: `(code, mean exposure, group size)` per non-empty
    /// group. The coarse "is attention flowing evenly?" signal the
    /// examples display alongside the EMD audit.
    ///
    /// # Errors
    ///
    /// [`fairjob_store::StoreError::NotCategorical`] for non-categorical
    /// attributes.
    pub fn exposure_by_group(
        &self,
        attr: usize,
    ) -> Result<Vec<(u32, f64, usize)>, fairjob_store::StoreError> {
        let groups = fairjob_store::groupby::group_by(
            &self.workers,
            &fairjob_store::RowSet::all(self.workers.len()),
            attr,
        )?;
        Ok(groups
            .into_iter()
            .map(|(code, rows)| {
                let total: f64 = rows.iter().map(|r| self.exposure[r]).sum();
                let n = rows.len();
                (code, total / n as f64, n)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_uniform;
    use crate::schema::names;
    use crate::scoring::{LinearScore, RuleBasedScore};

    #[test]
    fn post_task_logs_and_ranks() {
        let mut p = Platform::new(generate_uniform(50, 1), ExposureModel::Logarithmic);
        let f = LinearScore::alpha("f1", 0.5);
        let log = p.post_task("quickstart gig", &f, 10).unwrap();
        assert_eq!(log.task_id, 0);
        assert_eq!(log.function, "f1");
        assert_eq!(log.scores.len(), 50);
        assert_eq!(log.shown.len(), 10);
        // Shown ranking is sorted descending.
        for w in log.shown.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn exposure_accumulates_across_tasks() {
        let mut p = Platform::new(generate_uniform(30, 2), ExposureModel::TopK { k: 5 });
        let f = LinearScore::alpha("f4", 1.0);
        p.post_task("a", &f, 5).unwrap();
        p.post_task("b", &f, 5).unwrap();
        let total: f64 = p.exposure().iter().sum();
        assert!((total - 10.0).abs() < 1e-9); // 2 tasks x 5 slots x weight 1
        assert_eq!(p.logs().len(), 2);
    }

    #[test]
    fn biased_function_skews_group_exposure() {
        let mut p = Platform::new(generate_uniform(400, 3), ExposureModel::TopK { k: 50 });
        let f6 = RuleBasedScore::f6(9);
        p.post_task("biased gig", &f6, 50).unwrap();
        let gender = p.workers().schema().index_of(names::GENDER).unwrap();
        let by_group = p.exposure_by_group(gender).unwrap();
        let male = by_group.iter().find(|(c, _, _)| *c == 0).unwrap().1;
        let female = by_group.iter().find(|(c, _, _)| *c == 1).unwrap().1;
        assert!(male > 0.0);
        assert_eq!(female, 0.0, "f6 keeps every female out of the top 50");
    }

    #[test]
    fn post_query_filters_and_accrues_exposure() {
        use crate::query::{Query, Requirement};
        let mut p = Platform::new(generate_uniform(200, 5), ExposureModel::TopK { k: 10 });
        let q = Query {
            title: "needs strong language test".into(),
            requirements: vec![Requirement {
                attribute: names::LANGUAGE_TEST.into(),
                min: 90.0,
            }],
            scorer: Box::new(LinearScore::alpha("f", 0.5)),
        };
        let log = p.post_query(&q, 10).unwrap();
        // Every shown worker meets the requirement.
        let shown_rows: Vec<usize> = log.shown.iter().map(|r| r.row as usize).collect();
        let tests = p.workers().column_by_name(names::LANGUAGE_TEST).unwrap();
        for row in shown_rows {
            assert!(tests.value_as_f64(row).unwrap() >= 90.0);
        }
        // Ineligible rows have NaN in the score log.
        let n_nan = p.logs()[0].scores.iter().filter(|s| s.is_nan()).count();
        assert!(n_nan > 0, "some workers must be filtered");
        // Exposure only on shown workers.
        let exposed = p.exposure().iter().filter(|&&e| e > 0.0).count();
        assert!(exposed <= 10);
    }

    #[test]
    fn task_ids_increment() {
        let mut p = Platform::new(generate_uniform(10, 4), ExposureModel::Reciprocal);
        let f = LinearScore::alpha("f1", 0.5);
        assert_eq!(p.post_task("a", &f, 3).unwrap().task_id, 0);
        assert_eq!(p.post_task("b", &f, 3).unwrap().task_id, 1);
    }
}
