//! The paper's worker schema.
//!
//! Each worker has 6 protected attributes — Gender = {Male, Female},
//! Country = {America, India, Other}, Year of Birth = [1950, 2009],
//! Language = {English, Indian, Other}, Ethnicity = {White,
//! African-American, Indian, Other}, Years of Experience = [0, 30] — and
//! two observed attributes: LanguageTest = [25, 100] and ApprovalRate =
//! [25, 100].

use fairjob_store::bucketize::{bucketize, BucketSpec};
use fairjob_store::schema::{AttributeKind, Schema};
use fairjob_store::{StoreError, Table};

/// Attribute names, so callers never spell them ad hoc.
pub mod names {
    /// Gender (protected, categorical).
    pub const GENDER: &str = "gender";
    /// Country (protected, categorical).
    pub const COUNTRY: &str = "country";
    /// Year of birth (protected, integer 1950–2009).
    pub const YEAR_OF_BIRTH: &str = "year_of_birth";
    /// Language (protected, categorical).
    pub const LANGUAGE: &str = "language";
    /// Ethnicity (protected, categorical).
    pub const ETHNICITY: &str = "ethnicity";
    /// Years of experience (protected, integer 0–30).
    pub const EXPERIENCE: &str = "years_experience";
    /// Language-test score (observed, 25–100).
    pub const LANGUAGE_TEST: &str = "language_test";
    /// Approval rate (observed, 25–100).
    pub const APPROVAL_RATE: &str = "approval_rate";
    /// Derived ≤5-value band of [`YEAR_OF_BIRTH`].
    pub const YOB_BAND: &str = "yob_band";
    /// Derived ≤5-value band of [`EXPERIENCE`].
    pub const EXPERIENCE_BAND: &str = "experience_band";
}

/// Domain of the Gender attribute.
pub const GENDERS: [&str; 2] = ["Male", "Female"];
/// Domain of the Country attribute.
pub const COUNTRIES: [&str; 3] = ["America", "India", "Other"];
/// Domain of the Language attribute.
pub const LANGUAGES: [&str; 3] = ["English", "Indian", "Other"];
/// Domain of the Ethnicity attribute.
pub const ETHNICITIES: [&str; 4] = ["White", "African-American", "Indian", "Other"];

/// The worker schema of the paper's simulation.
pub fn amt_schema() -> Schema {
    Schema::builder()
        .categorical(names::GENDER, AttributeKind::Protected, &GENDERS)
        .categorical(names::COUNTRY, AttributeKind::Protected, &COUNTRIES)
        .integer(names::YEAR_OF_BIRTH, AttributeKind::Protected, 1950, 2009)
        .categorical(names::LANGUAGE, AttributeKind::Protected, &LANGUAGES)
        .categorical(names::ETHNICITY, AttributeKind::Protected, &ETHNICITIES)
        .integer(names::EXPERIENCE, AttributeKind::Protected, 0, 30)
        .numeric(names::LANGUAGE_TEST, AttributeKind::Observed, 25.0, 100.0)
        .numeric(names::APPROVAL_RATE, AttributeKind::Observed, 25.0, 100.0)
        .build()
        .expect("static schema is valid")
}

/// Discretise the two numeric protected attributes into 5 bands each
/// (matching the paper's "maximum of 5 values" per attribute), making
/// all six protected attributes splittable.
///
/// Appends [`names::YOB_BAND`] and [`names::EXPERIENCE_BAND`]; idempotent
/// callers should only invoke this once per table.
///
/// # Errors
///
/// Propagates [`StoreError`] (duplicate column names on double
/// invocation).
pub fn bucketise_numeric_protected(table: &mut Table) -> Result<(), StoreError> {
    bucketize(
        table,
        names::YEAR_OF_BIRTH,
        names::YOB_BAND,
        &BucketSpec::EqualWidth { n: 5 },
    )?;
    bucketize(
        table,
        names::EXPERIENCE,
        names::EXPERIENCE_BAND,
        &BucketSpec::EqualWidth { n: 5 },
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairjob_store::table::Value;

    #[test]
    fn schema_shape_matches_paper() {
        let s = amt_schema();
        assert_eq!(s.width(), 8);
        assert_eq!(s.indexes_of_kind(AttributeKind::Protected).len(), 6);
        assert_eq!(s.indexes_of_kind(AttributeKind::Observed).len(), 2);
        // Only the 4 categorical protected attributes split before
        // bucketisation.
        assert_eq!(s.splittable().len(), 4);
    }

    #[test]
    fn bucketisation_makes_six_splittable() {
        let mut t = Table::new(amt_schema());
        t.push_row(&[
            Value::cat("Male"),
            Value::cat("America"),
            Value::int(1980),
            Value::cat("English"),
            Value::cat("White"),
            Value::int(10),
            Value::num(80.0),
            Value::num(90.0),
        ])
        .unwrap();
        bucketise_numeric_protected(&mut t).unwrap();
        assert_eq!(t.schema().splittable().len(), 6);
        let yob_band = t.schema().index_of(names::YOB_BAND).unwrap();
        assert_eq!(t.schema().attribute(yob_band).cardinality(), Some(5));
        // 1980 falls in the middle band [1974, 1985.4).
        assert_eq!(t.code_at(yob_band, 0).unwrap(), 2);
    }

    #[test]
    fn double_bucketisation_fails_cleanly() {
        let mut t = Table::new(amt_schema());
        t.push_row(&[
            Value::cat("Male"),
            Value::cat("America"),
            Value::int(1980),
            Value::cat("English"),
            Value::cat("White"),
            Value::int(10),
            Value::num(80.0),
            Value::num(90.0),
        ])
        .unwrap();
        bucketise_numeric_protected(&mut t).unwrap();
        assert!(bucketise_numeric_protected(&mut t).is_err());
    }
}
