//! Worker-population generators.
//!
//! The paper populates all attribute values "randomly so as to avoid
//! injecting any bias in the data ourselves" — that is
//! [`generate_uniform`]. [`generate_correlated`] injects controllable
//! skill↔demographic correlations and stands in for the real Qapa /
//! TaskRabbit data the paper leaves to future work.

use crate::schema::{amt_schema, COUNTRIES, ETHNICITIES, GENDERS, LANGUAGES};
use fairjob_store::table::{Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate `size` workers with all attributes uniform at random
/// (the paper's simulation setting). Deterministic in `seed`.
pub fn generate_uniform(size: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = Table::new(amt_schema());
    let rows: Vec<Vec<Value>> = (0..size)
        .map(|_| {
            vec![
                Value::cat(GENDERS[rng.gen_range(0..GENDERS.len())]),
                Value::cat(COUNTRIES[rng.gen_range(0..COUNTRIES.len())]),
                Value::int(rng.gen_range(1950..=2009)),
                Value::cat(LANGUAGES[rng.gen_range(0..LANGUAGES.len())]),
                Value::cat(ETHNICITIES[rng.gen_range(0..ETHNICITIES.len())]),
                Value::int(rng.gen_range(0..=30)),
                Value::num(rng.gen_range(25.0..=100.0)),
                Value::num(rng.gen_range(25.0..=100.0)),
            ]
        })
        .collect();
    table
        .push_rows(&rows)
        .expect("generated rows satisfy the schema");
    table
}

/// Correlation knobs for [`generate_correlated`].
///
/// Each strength is in `[0, 1]`: 0 reproduces the uniform generator, 1
/// pushes the correlated group's observed scores to the top of the range
/// and the complementary group's to the bottom.
#[derive(Debug, Clone, Copy)]
pub struct CorrelationConfig {
    /// How strongly `language = English` lifts the language-test score.
    pub language_to_test: f64,
    /// How strongly experience lifts the approval rate.
    pub experience_to_approval: f64,
    /// How strongly `country = America` lifts the approval rate
    /// (a requester-familiarity effect observed on real platforms).
    pub country_to_approval: f64,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        CorrelationConfig {
            language_to_test: 0.6,
            experience_to_approval: 0.4,
            country_to_approval: 0.2,
        }
    }
}

/// Generate `size` workers whose observed attributes correlate with
/// protected ones per `config` — the synthetic stand-in for real
/// marketplace data. Deterministic in `seed`.
pub fn generate_correlated(size: usize, seed: u64, config: &CorrelationConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = Table::new(amt_schema());
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(size);
    for _ in 0..size {
        let gender = GENDERS[rng.gen_range(0..GENDERS.len())];
        let country = COUNTRIES[rng.gen_range(0..COUNTRIES.len())];
        let yob = rng.gen_range(1950..=2009);
        let language = LANGUAGES[rng.gen_range(0..LANGUAGES.len())];
        let ethnicity = ETHNICITIES[rng.gen_range(0..ETHNICITIES.len())];
        let experience = rng.gen_range(0..=30i64);

        // Base signals, uniform in [0, 1].
        let base_test: f64 = rng.gen();
        let base_approval: f64 = rng.gen();

        // Blend towards group-dependent targets.
        let lang_target = if language == "English" { 1.0 } else { 0.25 };
        let test = blend(base_test, lang_target, config.language_to_test);

        let exp_target = experience as f64 / 30.0;
        let country_target = if country == "America" { 1.0 } else { 0.4 };
        let approval_mid = blend(base_approval, exp_target, config.experience_to_approval);
        let approval = blend(approval_mid, country_target, config.country_to_approval);

        rows.push(vec![
            Value::cat(gender),
            Value::cat(country),
            Value::int(yob),
            Value::cat(language),
            Value::cat(ethnicity),
            Value::int(experience),
            Value::num(25.0 + 75.0 * test),
            Value::num(25.0 + 75.0 * approval),
        ]);
    }
    table
        .push_rows(&rows)
        .expect("generated rows satisfy the schema");
    table
}

fn blend(base: f64, target: f64, strength: f64) -> f64 {
    base * (1.0 - strength) + target * strength
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::names;
    use fairjob_store::RowSet;

    #[test]
    fn uniform_is_deterministic_in_seed() {
        let a = generate_uniform(50, 7);
        let b = generate_uniform(50, 7);
        let c = generate_uniform(50, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_schema_ranges() {
        let t = generate_uniform(200, 1);
        assert_eq!(t.len(), 200);
        let yob = t
            .column_by_name(names::YEAR_OF_BIRTH)
            .unwrap()
            .as_integer()
            .unwrap();
        assert!(yob.iter().all(|&y| (1950..=2009).contains(&y)));
        let lt = t
            .column_by_name(names::LANGUAGE_TEST)
            .unwrap()
            .as_numeric()
            .unwrap();
        assert!(lt.iter().all(|&v| (25.0..=100.0).contains(&v)));
    }

    #[test]
    fn uniform_uses_every_category() {
        let t = generate_uniform(500, 2);
        for attr in [
            names::GENDER,
            names::COUNTRY,
            names::LANGUAGE,
            names::ETHNICITY,
        ] {
            let idx = t.schema().index_of(attr).unwrap();
            let counts =
                fairjob_store::groupby::value_counts(&t, &RowSet::all(t.len()), idx).unwrap();
            assert!(counts.iter().all(|&c| c > 0), "{attr}: {counts:?}");
        }
    }

    #[test]
    fn correlated_lifts_english_language_tests() {
        let cfg = CorrelationConfig {
            language_to_test: 0.8,
            ..Default::default()
        };
        let t = generate_correlated(2000, 3, &cfg);
        let lang_idx = t.schema().index_of(names::LANGUAGE).unwrap();
        let test = t
            .column_by_name(names::LANGUAGE_TEST)
            .unwrap()
            .as_numeric()
            .unwrap();
        let codes = t.column(lang_idx).as_categorical().unwrap();
        let mean = |code: u32| {
            let vals: Vec<f64> = codes
                .iter()
                .zip(test)
                .filter(|(c, _)| **c == code)
                .map(|(_, v)| *v)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let english = mean(0);
        let indian = mean(1);
        assert!(
            english > indian + 20.0,
            "expected a strong lift for English speakers: {english} vs {indian}"
        );
    }

    #[test]
    fn zero_strength_correlation_stays_in_range() {
        let cfg = CorrelationConfig {
            language_to_test: 0.0,
            experience_to_approval: 0.0,
            country_to_approval: 0.0,
        };
        let t = generate_correlated(300, 4, &cfg);
        let ap = t
            .column_by_name(names::APPROVAL_RATE)
            .unwrap()
            .as_numeric()
            .unwrap();
        assert!(ap.iter().all(|&v| (25.0..=100.0).contains(&v)));
    }

    #[test]
    fn correlated_is_deterministic_in_seed() {
        let cfg = CorrelationConfig::default();
        assert_eq!(
            generate_correlated(40, 9, &cfg),
            generate_correlated(40, 9, &cfg)
        );
    }
}
