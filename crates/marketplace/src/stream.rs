//! Event streams over a worker population.
//!
//! The paper audits a static snapshot, but a real marketplace mutates
//! continuously: workers join and leave, finish tasks (score updates)
//! and edit their profiles (attribute changes). This module defines the
//! replayable, versioned event log those mutations are recorded in —
//! [`Event`] / [`EventLog`] with a line-based text format — plus a
//! seeded scenario generator ([`generate_stream`]) producing an initial
//! population and a plausible mix of follow-on events for the
//! `fairjob-stream` ingestion layer to replay.
//!
//! Worker ids are row indices in the *append-only* streamed table: ids
//! are assigned in arrival order and never reused, so a log replays to
//! the same state regardless of when removals happen.

use crate::generate::generate_uniform;
use crate::schema::{
    bucketise_numeric_protected, names, COUNTRIES, ETHNICITIES, GENDERS, LANGUAGES,
};
use crate::scoring::{LinearScore, ScoringFunction};
use fairjob_store::csv::{parse_records, render_record};
use fairjob_store::schema::{DataType, Schema};
use fairjob_store::table::{Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Version header of the event-file format; the first line of every log.
pub const EVENT_FILE_HEADER: &str = "fairjob-events v1";

/// One mutation of the marketplace population.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A worker joins. `values` is a full row in the streamed table's
    /// (bucketised) layout; the id assigned is the next row index.
    WorkerAdded {
        /// Full row of attribute values, one per schema attribute.
        values: Vec<Value>,
        /// The worker's qualification score in `[0, 1]`.
        score: f64,
    },
    /// A worker's qualification score changes (task completed, review
    /// posted, …).
    ScoreUpdated {
        /// Row id of the worker.
        worker: u32,
        /// New score in `[0, 1]`.
        score: f64,
    },
    /// A worker edits a categorical attribute of their profile.
    AttributeChanged {
        /// Row id of the worker.
        worker: u32,
        /// Attribute name (must be categorical).
        attribute: String,
        /// New label; must be in the attribute's domain.
        value: String,
    },
    /// A worker leaves the platform.
    WorkerRemoved {
        /// Row id of the worker.
        worker: u32,
    },
}

/// Error from parsing an event file.
#[derive(Debug, Clone, PartialEq)]
pub struct EventParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for EventParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event file line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for EventParseError {}

/// A replayable log of events grouped into epochs. The stream layer
/// applies one epoch at a time and re-audits at each epoch boundary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    epochs: Vec<Vec<Event>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Build a log from pre-grouped epochs.
    pub fn from_epochs(epochs: Vec<Vec<Event>>) -> Self {
        EventLog { epochs }
    }

    /// The epochs, in replay order.
    pub fn epochs(&self) -> &[Vec<Event>] {
        &self.epochs
    }

    /// Append an epoch.
    pub fn push_epoch(&mut self, events: Vec<Event>) {
        self.epochs.push(events);
    }

    /// Total number of events across all epochs.
    pub fn total_events(&self) -> usize {
        self.epochs.iter().map(|e| e.len()).sum()
    }

    /// Serialise to the versioned text format. One record per line:
    /// `add,<score>,<fields…>` (fields in `schema` order),
    /// `score,<worker>,<s>`, `set,<worker>,<attr>,<label>`,
    /// `remove,<worker>`; an `epoch` record closes each epoch. Fields
    /// are CSV-quoted, so labels may embed commas or quotes.
    pub fn render(&self, schema: &Schema) -> String {
        let mut out = String::from(EVENT_FILE_HEADER);
        out.push('\n');
        for epoch in &self.epochs {
            for event in epoch {
                let fields = match event {
                    Event::WorkerAdded { values, score } => {
                        let mut f = vec!["add".to_string(), format!("{score}")];
                        debug_assert_eq!(values.len(), schema.width());
                        f.extend(values.iter().map(|v| match v {
                            Value::Cat(s) => s.clone(),
                            Value::Num(x) => format!("{x}"),
                            Value::Int(x) => x.to_string(),
                        }));
                        f
                    }
                    Event::ScoreUpdated { worker, score } => {
                        vec!["score".into(), worker.to_string(), format!("{score}")]
                    }
                    Event::AttributeChanged {
                        worker,
                        attribute,
                        value,
                    } => vec![
                        "set".into(),
                        worker.to_string(),
                        attribute.clone(),
                        value.clone(),
                    ],
                    Event::WorkerRemoved { worker } => {
                        vec!["remove".into(), worker.to_string()]
                    }
                };
                out.push_str(&render_record(&fields));
                out.push('\n');
            }
            out.push_str("epoch\n");
        }
        out
    }

    /// Parse the text format produced by [`EventLog::render`]. `schema`
    /// resolves the field layout of `add` records. Blank lines and lines
    /// starting with `#` are skipped; a trailing un-closed epoch (events
    /// after the last `epoch` record) becomes a final epoch.
    ///
    /// # Errors
    ///
    /// [`EventParseError`] with the 1-based line number for a missing or
    /// wrong version header, unknown record kinds, arity mismatches, or
    /// unparseable numbers.
    pub fn parse(text: &str, schema: &Schema) -> Result<EventLog, EventParseError> {
        let err = |line: usize, reason: String| EventParseError { line, reason };
        let mut records = parse_records(text).enumerate();
        let header = loop {
            match records.next() {
                None => return Err(err(1, "missing version header".into())),
                Some((lineno, record)) => {
                    let fields = record.map_err(|reason| err(lineno + 1, reason))?;
                    if is_skippable(&fields) {
                        continue;
                    }
                    break (lineno + 1, fields);
                }
            }
        };
        if header.1 != [EVENT_FILE_HEADER] {
            return Err(err(
                header.0,
                format!(
                    "expected header `{EVENT_FILE_HEADER}`, found {:?}",
                    header.1
                ),
            ));
        }
        let mut epochs = Vec::new();
        let mut current = Vec::new();
        for (lineno, record) in records {
            let line = lineno + 1;
            let fields = record.map_err(|reason| err(line, reason))?;
            if is_skippable(&fields) {
                continue;
            }
            match fields[0].as_str() {
                "epoch" => {
                    if fields.len() != 1 {
                        return Err(err(line, "epoch record takes no fields".into()));
                    }
                    epochs.push(std::mem::take(&mut current));
                }
                "add" => {
                    if fields.len() != 2 + schema.width() {
                        return Err(err(
                            line,
                            format!(
                                "add record needs {} fields, found {}",
                                2 + schema.width(),
                                fields.len()
                            ),
                        ));
                    }
                    let score = parse_f64(&fields[1], line)?;
                    let mut values = Vec::with_capacity(schema.width());
                    for (attr, field) in schema.attributes().iter().zip(&fields[2..]) {
                        values.push(match &attr.dtype {
                            DataType::Categorical { .. } => Value::Cat(field.clone()),
                            DataType::Numeric { .. } => Value::Num(parse_f64(field, line)?),
                            DataType::Integer { .. } => {
                                Value::Int(field.parse::<i64>().map_err(|e| {
                                    err(line, format!("bad integer `{field}`: {e}"))
                                })?)
                            }
                        });
                    }
                    current.push(Event::WorkerAdded { values, score });
                }
                "score" => {
                    if fields.len() != 3 {
                        return Err(err(line, "score record needs 3 fields".into()));
                    }
                    current.push(Event::ScoreUpdated {
                        worker: parse_worker(&fields[1], line)?,
                        score: parse_f64(&fields[2], line)?,
                    });
                }
                "set" => {
                    if fields.len() != 4 {
                        return Err(err(line, "set record needs 4 fields".into()));
                    }
                    current.push(Event::AttributeChanged {
                        worker: parse_worker(&fields[1], line)?,
                        attribute: fields[2].clone(),
                        value: fields[3].clone(),
                    });
                }
                "remove" => {
                    if fields.len() != 2 {
                        return Err(err(line, "remove record needs 2 fields".into()));
                    }
                    current.push(Event::WorkerRemoved {
                        worker: parse_worker(&fields[1], line)?,
                    });
                }
                other => {
                    return Err(err(line, format!("unknown record kind `{other}`")));
                }
            }
        }
        if !current.is_empty() {
            epochs.push(current);
        }
        Ok(EventLog { epochs })
    }
}

fn is_skippable(fields: &[String]) -> bool {
    fields.is_empty() || (fields.len() == 1 && (fields[0].is_empty() || fields[0].starts_with('#')))
}

fn parse_f64(field: &str, line: usize) -> Result<f64, EventParseError> {
    field.parse::<f64>().map_err(|e| EventParseError {
        line,
        reason: format!("bad float `{field}`: {e}"),
    })
}

fn parse_worker(field: &str, line: usize) -> Result<u32, EventParseError> {
    field.parse::<u32>().map_err(|e| EventParseError {
        line,
        reason: format!("bad worker id `{field}`: {e}"),
    })
}

/// Knobs for the seeded scenario generator.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Size of the initial population.
    pub initial: usize,
    /// Number of epochs of events to generate.
    pub epochs: usize,
    /// Events per epoch.
    pub events_per_epoch: usize,
    /// Seed for the population and the event stream.
    pub seed: u64,
    /// The `α` of the linear scoring function
    /// `f = α·LanguageTest + (1-α)·ApprovalRate` used for all scores.
    pub alpha: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            initial: 500,
            epochs: 4,
            events_per_epoch: 5,
            seed: 42,
            alpha: 0.5,
        }
    }
}

/// A generated scenario: the bucketised initial population with its
/// scores, plus the event log to replay on top of it.
#[derive(Debug, Clone)]
pub struct StreamScenario {
    /// Initial population in the streamed (bucketised) layout.
    pub initial: Table,
    /// Initial scores, aligned with `initial`.
    pub scores: Vec<f64>,
    /// The events, grouped into epochs.
    pub events: EventLog,
}

/// Generate a deterministic marketplace scenario: a uniform initial
/// population (bucketised, with scores from `LinearScore::alpha`) and
/// `epochs × events_per_epoch` follow-on events mixing score updates
/// (~50%), profile edits (~20%), arrivals (~20%) and departures (~10%).
///
/// # Panics
///
/// Panics if `config.initial` is zero (event targets need at least one
/// live worker).
pub fn generate_stream(config: &StreamConfig) -> StreamScenario {
    assert!(config.initial > 0, "initial population must be non-empty");
    let mut initial = generate_uniform(config.initial, config.seed);
    bucketise_numeric_protected(&mut initial).expect("fresh table has no band columns");
    let scorer = LinearScore::alpha("stream", config.alpha);
    let scores = scorer
        .score_all(&initial)
        .expect("generated table carries the observed attributes");

    // Independent RNG stream for the events so the initial population
    // matches `generate_uniform(initial, seed)` exactly.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
    let alpha = config.alpha.clamp(0.0, 1.0);
    let mut live: Vec<u32> = (0..config.initial as u32).collect();
    let mut next_id = config.initial as u32;
    let mut events = EventLog::new();
    let schema = initial.schema().clone();

    for _ in 0..config.epochs {
        let mut epoch = Vec::with_capacity(config.events_per_epoch);
        for _ in 0..config.events_per_epoch {
            let mut roll = rng.gen_range(0..10u32);
            if roll == 9 && live.len() <= 2 {
                // Keep the population auditable: turn departures into
                // arrivals when almost everyone has left.
                roll = 7;
            }
            match roll {
                0..=4 => {
                    let worker = live[rng.gen_range(0..live.len())];
                    let test: f64 = rng.gen_range(25.0..=100.0);
                    let approval: f64 = rng.gen_range(25.0..=100.0);
                    epoch.push(Event::ScoreUpdated {
                        worker,
                        score: blend_score(alpha, test, approval),
                    });
                }
                5..=6 => {
                    let worker = live[rng.gen_range(0..live.len())];
                    let (attribute, value) = random_profile_edit(&mut rng);
                    epoch.push(Event::AttributeChanged {
                        worker,
                        attribute,
                        value,
                    });
                }
                7..=8 => {
                    let (values, score) = random_arrival(&mut rng, &schema, alpha);
                    live.push(next_id);
                    next_id += 1;
                    epoch.push(Event::WorkerAdded { values, score });
                }
                _ => {
                    let idx = rng.gen_range(0..live.len());
                    let worker = live.swap_remove(idx);
                    epoch.push(Event::WorkerRemoved { worker });
                }
            }
        }
        events.push_epoch(epoch);
    }

    StreamScenario {
        initial,
        scores,
        events,
    }
}

/// The score `LinearScore::alpha` would assign to these observed values.
fn blend_score(alpha: f64, test: f64, approval: f64) -> f64 {
    (alpha * (test - 25.0) / 75.0 + (1.0 - alpha) * (approval - 25.0) / 75.0).clamp(0.0, 1.0)
}

/// A random edit of one of the four raw categorical protected
/// attributes (the derived bands stay consistent with their sources).
fn random_profile_edit(rng: &mut StdRng) -> (String, String) {
    match rng.gen_range(0..4u32) {
        0 => (
            names::GENDER.into(),
            GENDERS[rng.gen_range(0..GENDERS.len())].into(),
        ),
        1 => (
            names::COUNTRY.into(),
            COUNTRIES[rng.gen_range(0..COUNTRIES.len())].into(),
        ),
        2 => (
            names::LANGUAGE.into(),
            LANGUAGES[rng.gen_range(0..LANGUAGES.len())].into(),
        ),
        _ => (
            names::ETHNICITY.into(),
            ETHNICITIES[rng.gen_range(0..ETHNICITIES.len())].into(),
        ),
    }
}

/// One new worker in the full bucketised layout: raw attributes drawn
/// like [`generate_uniform`], band columns derived through the same
/// data-independent bucketisation, score from the same linear blend.
fn random_arrival(rng: &mut StdRng, schema: &Schema, alpha: f64) -> (Vec<Value>, f64) {
    let yob = rng.gen_range(1950..=2009i64);
    let experience = rng.gen_range(0..=30i64);
    let test: f64 = rng.gen_range(25.0..=100.0);
    let approval: f64 = rng.gen_range(25.0..=100.0);
    let raw = [
        Value::cat(GENDERS[rng.gen_range(0..GENDERS.len())]),
        Value::cat(COUNTRIES[rng.gen_range(0..COUNTRIES.len())]),
        Value::int(yob),
        Value::cat(LANGUAGES[rng.gen_range(0..LANGUAGES.len())]),
        Value::cat(ETHNICITIES[rng.gen_range(0..ETHNICITIES.len())]),
        Value::int(experience),
        Value::num(test),
        Value::num(approval),
    ];
    let mut one = Table::new(crate::schema::amt_schema());
    one.push_row(&raw).expect("arrival satisfies the schema");
    bucketise_numeric_protected(&mut one).expect("fresh table has no band columns");
    let values = one.row(0).expect("row 0 exists");
    debug_assert_eq!(values.len(), schema.width());
    (values, blend_score(alpha, test, approval))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::amt_schema;

    fn banded_schema() -> Schema {
        let mut t = Table::new(amt_schema());
        t.push_row(&[
            Value::cat("Male"),
            Value::cat("America"),
            Value::int(1980),
            Value::cat("English"),
            Value::cat("White"),
            Value::int(10),
            Value::num(80.0),
            Value::num(90.0),
        ])
        .unwrap();
        bucketise_numeric_protected(&mut t).unwrap();
        t.schema().clone()
    }

    #[test]
    fn log_roundtrips_through_text() {
        let scenario = generate_stream(&StreamConfig {
            initial: 30,
            epochs: 3,
            events_per_epoch: 6,
            seed: 11,
            alpha: 0.5,
        });
        let schema = scenario.initial.schema();
        let text = scenario.events.render(schema);
        assert!(text.starts_with(EVENT_FILE_HEADER));
        let back = EventLog::parse(&text, schema).unwrap();
        assert_eq!(scenario.events, back);
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let schema = banded_schema();
        let text = format!(
            "# a comment\n\n{EVENT_FILE_HEADER}\nscore,3,0.25\n# mid comment\nremove,1\nepoch\n"
        );
        let log = EventLog::parse(&text, &schema).unwrap();
        assert_eq!(log.epochs().len(), 1);
        assert_eq!(log.epochs()[0].len(), 2);
    }

    #[test]
    fn trailing_events_form_a_final_epoch() {
        let schema = banded_schema();
        let text = format!("{EVENT_FILE_HEADER}\nscore,0,0.5\nepoch\nremove,2\n");
        let log = EventLog::parse(&text, &schema).unwrap();
        assert_eq!(log.epochs().len(), 2);
        assert_eq!(log.epochs()[1], vec![Event::WorkerRemoved { worker: 2 }]);
    }

    #[test]
    fn parse_rejects_bad_input() {
        let schema = banded_schema();
        for (text, needle) in [
            ("".to_string(), "missing version header"),
            ("not-a-header\n".to_string(), "expected header"),
            (
                format!("{EVENT_FILE_HEADER}\nfrobnicate,1\n"),
                "unknown record",
            ),
            (format!("{EVENT_FILE_HEADER}\nscore,1\n"), "3 fields"),
            (
                format!("{EVENT_FILE_HEADER}\nscore,x,0.5\n"),
                "bad worker id",
            ),
            (
                format!("{EVENT_FILE_HEADER}\nadd,0.5,Male\n"),
                "add record needs",
            ),
            (format!("{EVENT_FILE_HEADER}\nepoch,extra\n"), "no fields"),
        ] {
            let err = EventLog::parse(&text, &schema).unwrap_err();
            assert!(
                err.reason.contains(needle) || err.to_string().contains(needle),
                "for {text:?}: {err}"
            );
        }
    }

    #[test]
    fn generator_is_deterministic_and_respects_shape() {
        let cfg = StreamConfig {
            initial: 40,
            epochs: 5,
            events_per_epoch: 4,
            seed: 3,
            alpha: 0.3,
        };
        let a = generate_stream(&cfg);
        let b = generate_stream(&cfg);
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.events, b.events);
        assert_eq!(a.events.epochs().len(), 5);
        assert!(a.events.epochs().iter().all(|e| e.len() == 4));
        assert_eq!(a.initial.len(), 40);
        assert_eq!(a.scores.len(), 40);
        // The initial table matches the plain generator plus banding.
        let mut plain = generate_uniform(40, 3);
        bucketise_numeric_protected(&mut plain).unwrap();
        assert_eq!(a.initial, plain);
    }

    #[test]
    fn generated_adds_carry_full_banded_rows_and_consistent_scores() {
        let scenario = generate_stream(&StreamConfig {
            initial: 10,
            epochs: 6,
            events_per_epoch: 8,
            seed: 99,
            alpha: 0.7,
        });
        let schema = scenario.initial.schema();
        let mut saw_add = false;
        for event in scenario.events.epochs().iter().flatten() {
            if let Event::WorkerAdded { values, score } = event {
                saw_add = true;
                assert_eq!(values.len(), schema.width());
                // Replaying the row through a fresh table accepts it.
                let mut t = Table::new(schema.clone());
                t.push_row(values).unwrap();
                // The carried score matches the linear function on the row.
                let expected = LinearScore::alpha("f", 0.7).score_all(&t).unwrap()[0];
                assert!((score - expected).abs() < 1e-12);
            }
        }
        assert!(saw_add, "expected at least one arrival in 48 events");
    }
}
