//! Workload generation: streams of requester tasks.
//!
//! The simulation experiments score one function at a time; a live
//! platform sees a *mix* of task categories, each with its own
//! qualification weights and requirements, arriving over time. This
//! module generates such workloads so the platform / audit layers can be
//! exercised under realistic traffic (and so throughput benches have a
//! driver).

use crate::query::{Query, Requirement};
use crate::schema::names;
use crate::scoring::LinearScore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A task category: how requesters of this kind weigh skills and what
/// they require.
#[derive(Debug, Clone)]
pub struct TaskCategory {
    /// Category name ("web-dev", "moving", …).
    pub name: String,
    /// Relative arrival frequency (any positive weight).
    pub frequency: f64,
    /// The α of the category's `α·LanguageTest + (1-α)·ApprovalRate`
    /// qualification blend.
    pub alpha: f64,
    /// Minimum language-test requirement, if any.
    pub min_language_test: Option<f64>,
    /// Minimum approval-rate requirement, if any.
    pub min_approval_rate: Option<f64>,
}

/// The default category mix: language-heavy virtual gigs, skill-light
/// physical gigs, and a demanding professional category.
pub fn default_categories() -> Vec<TaskCategory> {
    vec![
        TaskCategory {
            name: "virtual-gig".into(),
            frequency: 5.0,
            alpha: 0.7,
            min_language_test: Some(50.0),
            min_approval_rate: None,
        },
        TaskCategory {
            name: "physical-gig".into(),
            frequency: 3.0,
            alpha: 0.1,
            min_language_test: None,
            min_approval_rate: Some(40.0),
        },
        TaskCategory {
            name: "professional".into(),
            frequency: 1.0,
            alpha: 0.5,
            min_language_test: Some(80.0),
            min_approval_rate: Some(80.0),
        },
    ]
}

/// Deterministic generator of a task stream over a category mix.
pub struct TaskStream {
    categories: Vec<TaskCategory>,
    total_frequency: f64,
    rng: StdRng,
    produced: usize,
}

impl TaskStream {
    /// Build a stream over `categories` (weights need not sum to 1).
    ///
    /// # Panics
    ///
    /// When `categories` is empty or any frequency is non-positive /
    /// non-finite — workload configs are program constants, not user
    /// data.
    pub fn new(categories: Vec<TaskCategory>, seed: u64) -> Self {
        assert!(!categories.is_empty(), "need at least one task category");
        for c in &categories {
            assert!(
                c.frequency.is_finite() && c.frequency > 0.0,
                "category {} has invalid frequency",
                c.name
            );
        }
        let total_frequency = categories.iter().map(|c| c.frequency).sum();
        TaskStream {
            categories,
            total_frequency,
            rng: StdRng::seed_from_u64(seed),
            produced: 0,
        }
    }

    /// Number of tasks produced so far.
    pub fn produced(&self) -> usize {
        self.produced
    }

    /// Draw the next task as a ready-to-evaluate [`Query`].
    pub fn next_task(&mut self) -> Query {
        let mut pick = self.rng.gen::<f64>() * self.total_frequency;
        let mut category = &self.categories[self.categories.len() - 1];
        for c in &self.categories {
            if pick < c.frequency {
                category = c;
                break;
            }
            pick -= c.frequency;
        }
        let mut requirements = Vec::new();
        if let Some(min) = category.min_language_test {
            requirements.push(Requirement {
                attribute: names::LANGUAGE_TEST.into(),
                min,
            });
        }
        if let Some(min) = category.min_approval_rate {
            requirements.push(Requirement {
                attribute: names::APPROVAL_RATE.into(),
                min,
            });
        }
        self.produced += 1;
        Query {
            title: format!("{} #{}", category.name, self.produced),
            requirements,
            scorer: Box::new(LinearScore::alpha(&category.name, category.alpha)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_uniform;
    use crate::platform::Platform;
    use crate::ranking::ExposureModel;

    #[test]
    fn stream_respects_category_mix() {
        let mut stream = TaskStream::new(default_categories(), 7);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..900 {
            let task = stream.next_task();
            let cat = task.title.split(' ').next().unwrap().to_string();
            *counts.entry(cat).or_insert(0usize) += 1;
        }
        assert_eq!(stream.produced(), 900);
        // Frequencies 5:3:1 -> roughly 500/300/100.
        let virtual_gigs = counts["virtual-gig"];
        let physical = counts["physical-gig"];
        let professional = counts["professional"];
        assert!(
            virtual_gigs > physical && physical > professional,
            "{counts:?}"
        );
        assert!((400..600).contains(&virtual_gigs), "{virtual_gigs}");
    }

    #[test]
    fn deterministic_in_seed() {
        let titles = |seed: u64| {
            let mut s = TaskStream::new(default_categories(), seed);
            (0..20).map(|_| s.next_task().title).collect::<Vec<_>>()
        };
        assert_eq!(titles(3), titles(3));
        assert_ne!(titles(3), titles(4));
    }

    #[test]
    fn stream_drives_the_platform() {
        let mut platform = Platform::new(generate_uniform(300, 9), ExposureModel::Logarithmic);
        let mut stream = TaskStream::new(default_categories(), 11);
        for _ in 0..25 {
            let task = stream.next_task();
            platform.post_query(&task, 10).unwrap();
        }
        assert_eq!(platform.logs().len(), 25);
        // The professional category filters hard: some logs should show
        // fewer than 10 shown workers or NaN-masked scores.
        let filtered_logs = platform
            .logs()
            .iter()
            .filter(|l| l.scores.iter().any(|s| s.is_nan()))
            .count();
        assert!(
            filtered_logs > 0,
            "requirement-bearing tasks must filter someone"
        );
    }

    #[test]
    #[should_panic(expected = "at least one task category")]
    fn empty_mix_panics() {
        let _ = TaskStream::new(vec![], 0);
    }

    #[test]
    #[should_panic(expected = "invalid frequency")]
    fn bad_frequency_panics() {
        let mut cats = default_categories();
        cats[0].frequency = 0.0;
        let _ = TaskStream::new(cats, 0);
    }
}
