//! Offline vendored subset of the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace pins
//! this path crate in place of crates.io `proptest`. It covers exactly
//! what the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * numeric range strategies, tuple strategies, [`prop::collection::vec`],
//! * [`Strategy::prop_map`] / [`Strategy::prop_filter`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics immediately and prints the
//!   full generated input (all strategy values here are `Debug`).
//! * **No regression-file persistence.** `*.proptest-regressions` files
//!   are not read; checked-in shrunk cases should be re-run as explicit
//!   unit tests (see `tests/invariants.rs`).
//! * Case generation is deterministic per test (seeded from the test's
//!   module path and case index), so failures always reproduce.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    //! Test configuration and the per-case RNG.

    use super::*;

    /// Subset of proptest's config: the number of cases per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// RNG for case `case` of the test named `name` (stable across
        /// runs so failures reproduce).
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ (u64::from(case) << 32) ^ u64::from(case),
            ))
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Retry generation until `f` accepts the value (up to an
        /// attempt cap, then panic with `whence`).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive candidates: {}",
                self.whence
            );
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod prop {
    //! The `prop::` namespace re-exported by the prelude.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Element-count specification for [`vec`]: an exact length or a
        /// (half-open / inclusive) length range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_exclusive: n + 1,
                }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_exclusive: *r.end() + 1,
                }
            }
        }

        /// Strategy for vectors of `element` values with a length drawn
        /// from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.0.gen_range(self.size.lo..self.size.hi_exclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs, mirroring
    //! `proptest::prelude`.

    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property (panics and lets the harness report the
/// failing input; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case when `cond` is false. Real proptest rejects
/// and redraws; this vendored stub simply ends the case early (each
/// case body runs inside its own closure), which keeps the same
/// semantics for tests that merely guard a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// The property-test macro: runs each body over `cases` random inputs
/// drawn from the given strategies, printing the full failing input on
/// panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config); $($rest)*);
    };
    (@with_config ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategy = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let value = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let described = format!("{:?}", value);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let ($($pat,)+) = value;
                    $body
                }));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (no shrinking in the vendored \
                         proptest); input:\n{}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        described,
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn masses(n: usize) -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(0.0f64..10.0, n)
            .prop_filter("non-zero total", |v| v.iter().sum::<f64>() > 1e-6)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u32..7, y in 0.25f64..=0.75, (a, b) in (1usize..4, -3i64..=3)) {
            prop_assert!(x < 7);
            prop_assert!((0.25..=0.75).contains(&y));
            prop_assert!((1..4).contains(&a));
            prop_assert!((-3..=3).contains(&b), "b = {b}");
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn filter_and_map_compose(m in masses(6)) {
            prop_assert_eq!(m.len(), 6);
            prop_assert!(m.iter().sum::<f64>() > 1e-6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = prop::collection::vec(0.0f64..1.0, 8);
        let a = strat.generate(&mut TestRng::for_case("x", 3));
        let b = strat.generate(&mut TestRng::for_case("x", 3));
        assert_eq!(a, b);
        let c = strat.generate(&mut TestRng::for_case("x", 4));
        assert_ne!(a, c);
    }
}
