//! `fairjob` — the command-line interface.
//!
//! Subcommands:
//!
//! * `generate` — create a worker population CSV (uniform or correlated).
//! * `describe` — per-attribute summary of a population CSV.
//! * `audit` — find the most-unfair partitioning for a scoring function.
//! * `query` — run FairQL statements (AUDIT/SELECT/DESCRIBE/EXPLAIN).
//! * `stream` — replay an event file, re-auditing incrementally each epoch.
//! * `serve` — resident audit daemon over TCP (`fairjob-serve v1`).
//! * `repair` — quantile-align scores against the audited partitioning.
//!
//! Run `fairjob help` (or any subcommand with `--help`) for usage. The
//! command logic lives in [`commands`]; [`args`] is the dependency-free
//! flag parser. Everything returns `Result<String, CliError>` so the
//! whole surface is unit-testable without spawning processes.

pub mod args;
pub mod commands;

use std::fmt;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line (unknown flag, missing value, unparsable number).
    Usage(String),
    /// File I/O failure.
    Io(std::io::Error),
    /// Any library-level failure, stringified with context.
    Run(String),
}

impl CliError {
    /// The process exit code for this failure class, so scripts can
    /// tell a typo (`2`) from a missing file (`3`) from a failed audit
    /// or serve run (`4`) without parsing stderr.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Run(_) => 4,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Run(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
fairjob — explore fairness of ranking in online job marketplaces (EDBT 2019)

USAGE:
  fairjob generate --size N [--seed S] [--correlated] --out FILE.csv
                   [--events N --events-out FILE [--epochs E] [--alpha A]]
  fairjob describe --workers FILE.csv [--schema FILE]
  fairjob audit    (--workers FILE.csv (--function f1..f9 | --alpha A)
                    | --paged FILE.fjp [--mem-budget BYTES])
                   [--algorithm balanced|unbalanced|r-balanced|r-unbalanced|all-attributes|subset-exact]
                   [--bins N] [--metric emd|emd-exact|tv|ks|jsd|hellinger|chi2]
                   [--permutations N] [--histograms] [--json] [--seed S]
                   [--shards auto|off|N]
  fairjob query    (--workers FILE.csv (--function f1..f9 | --alpha A)
                    | --paged FILE.fjp [--mem-budget BYTES])
                   [-e QUERY | --query QUERY | --file FILE.fql]
                   [--algorithm ...] [--metric ...] [--bins N]
                   [--threads N] [--seed S] [--shards auto|off|N]
  fairjob snapshot --workers FILE.csv (--function f1..f9 | --alpha A)
                   [--bins N] [--seed S] --out FILE.fjp
  fairjob snapshot --info FILE.fjp
  fairjob stream   --workers FILE.csv --events FILE (--function f1..f9 | --alpha A)
                   [--algorithm ...] [--bins N] [--metric ...]
                   [--cold-check] [--json] [--seed S] [--shards auto|off|N]
  fairjob serve    (--workers FILE.csv (--function f1..f9 | --alpha A)
                    | --snapshot FILE.fjp [--mem-budget BYTES])
                   [--algorithm ...] [--bins N] [--metric ...]
                   [--addr HOST:PORT] [--addr-file FILE]
                   [--max-inflight N] [--max-sessions N] [--seed S]
                   [--shards auto|off|N]
  fairjob repair   --workers FILE.csv (--function f1..f9 | --alpha A)
                   [--lambda L] [--target median|pooled] --out SCORES.csv [--seed S]
  fairjob rerank   --workers FILE.csv (--function f1..f9 | --alpha A)
                   [--attribute NAME] [--quota Q] [--top K] [--seed S]
  fairjob help

Scoring functions: f1..f5 are the paper's linear blends of the two
observed attributes (alpha = 0.5, 0.3, 0.7, 1.0, 0.0); f6..f9 are the
biased-by-design rule scorers of the qualitative experiment; --alpha A
builds a custom blend a*language_test + (1-a)*approval_rate.

`snapshot` persists a scored population to the paged columnar format
(64 KiB pages, per-page zone maps, buffer-managed reads). `audit
--paged` and `query --paged` stream audits through a bounded page
cache (--mem-budget, k/m/g suffixes, default 64m) — bit-identical to
the in-memory audit at every budget — and `serve --snapshot`
cold-starts the daemon from the file at its recorded epoch, no event
replay. `snapshot --info` prints a file's header facts.

--shards picks the shard layout for the audit context's data-parallel
split/classify kernels (auto = from row count and thread budget, off =
the legacy scalar path, N = exactly N row-range shards). Results are
bit-identical under every setting; only speed changes.

Every command reading --workers also accepts --schema FILE: a schema
descriptor (see fairjob_store::schema_text) describing a non-default
population layout; numeric protected attributes are auto-bucketised
into 5 bands. Without --schema the paper's AMT worker schema is assumed.

`serve` starts the resident audit daemon: a TCP server speaking the
line-delimited fairjob-serve v1 protocol (AUDIT, EPOCH, METRICS,
HEALTH, STATS, PING, QUIT, SHUTDOWN). One writer session appends
epochs; concurrent readers audit the published snapshot; --max-inflight
bounds concurrent audits (excess gets `ERR overloaded`). --addr
defaults to 127.0.0.1:0; the bound address is printed on startup and,
with --addr-file, written to a file for scripts. --max-sessions serves
a bounded number of sessions then drains and exits.

`query` runs FairQL: `AUDIT workers [WHERE a = 'v' ...] [PROTECT cols]
[USING alg] [METRIC m] [BINS n]`, `SELECT ... FROM workers [GROUP BY
col] [LIMIT n]`, `DESCRIBE [col]`, and `EXPLAIN [ANALYZE] <stmt>`.
Statements come from -e/--query, --file, or stdin; defaults for
omitted USING/METRIC/BINS are the audit flags, so `query -e 'AUDIT
workers'` is bit-identical to `audit` with the same flags.

Exit codes: 0 success, 2 usage error (including FairQL parse and
analysis errors, reported with their byte offset), 3 I/O error,
4 run failure (including query execution failures).

`stream` replays a fairjob-events v1 file (generate one alongside a
population with `generate --events N --events-out FILE`): it audits the
initial population, then re-audits after every epoch of arrivals,
departures, score updates and profile edits, reusing the previous
epoch's engine caches via selective invalidation. --cold-check verifies
each incremental audit bit-for-bit against a from-scratch rebuild.
";

/// Dispatch a full argument vector (excluding `argv[0]`).
///
/// # Errors
///
/// [`CliError`] for bad usage or failed runs; the caller prints it and
/// exits non-zero.
pub fn dispatch(argv: &[String]) -> Result<String, CliError> {
    let Some(command) = argv.first() else {
        return Err(CliError::Usage(format!("missing subcommand\n\n{USAGE}")));
    };
    let rest = &argv[1..];
    match command.as_str() {
        "generate" => commands::generate::run(rest),
        "describe" => commands::describe::run(rest),
        "audit" => commands::audit::run(rest),
        "query" => commands::query::run(rest),
        "stream" => commands::stream::run(rest),
        "serve" => commands::serve::run(rest),
        "snapshot" => commands::snapshot::run(rest),
        "repair" => commands::repair::run(rest),
        "rerank" => commands::rerank::run(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!(
            "unknown subcommand `{other}`\n\n{USAGE}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_prints_usage() {
        let out = dispatch(&["help".to_string()]).unwrap();
        assert!(out.contains("fairjob generate"));
    }

    #[test]
    fn missing_subcommand_is_usage_error() {
        assert!(matches!(dispatch(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn exit_codes_distinguish_failure_classes() {
        assert_eq!(CliError::Usage("bad flag".into()).exit_code(), 2);
        assert_eq!(
            CliError::Io(std::io::Error::from(std::io::ErrorKind::NotFound)).exit_code(),
            3
        );
        assert_eq!(CliError::Run("audit failed".into()).exit_code(), 4);
    }

    #[test]
    fn missing_input_file_maps_to_io_exit_code() {
        let err = dispatch(&[
            "describe".to_string(),
            "--workers".to_string(),
            "/nonexistent/workers.csv".to_string(),
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn unknown_subcommand_is_usage_error() {
        let err = dispatch(&["frobnicate".to_string()]).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }
}
