//! `fairjob rerank` — quota-constrained re-ranking of a scored top-k
//! list: show what the displayed ranking looks like after enforcing
//! proportional representation on one protected attribute.

use crate::args::Args;
use crate::CliError;
use fairjob_marketplace::ranking::rank;
use fairjob_repair::rerank::{first_quota_violation, rerank_proportional, RankedItem};

/// Run the subcommand; returns the before/after rendering.
///
/// # Errors
///
/// [`CliError`] on bad flags or re-ranking failure.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    let workers =
        crate::commands::load_workers(args.required("workers")?, args.optional("schema"))?;
    let seed: u64 = args.parsed_or("seed", 0xBEEF)?;
    let scorer =
        crate::commands::resolve_scorer(args.optional("function"), args.optional("alpha"), seed)?;
    let attribute = args.optional("attribute").unwrap_or("gender");
    let alpha: f64 = args.parsed_or("quota", 1.0)?;
    let k: usize = args.parsed_or("top", 20)?;

    let attr_idx = workers
        .schema()
        .index_of(attribute)
        .map_err(|e| CliError::Usage(format!("--attribute: {e}")))?;
    let cardinality = workers
        .schema()
        .attribute(attr_idx)
        .cardinality()
        .ok_or_else(|| CliError::Usage(format!("`{attribute}` is not categorical")))?
        as u32;

    let scores = scorer
        .score_all(&workers)
        .map_err(|e| CliError::Run(format!("scoring with {}: {e}", scorer.name())))?;
    // Re-rank the FULL ranking so quotas reflect population shares and
    // excluded groups can actually be surfaced; display the top-k.
    let full = rank(&scores, None);
    let items: Vec<RankedItem> = full
        .iter()
        .map(|r| {
            Ok(RankedItem {
                id: r.row,
                score: r.score,
                group: workers
                    .code_at(attr_idx, r.row as usize)
                    .map_err(|e| CliError::Run(e.to_string()))?,
            })
        })
        .collect::<Result<_, CliError>>()?;
    let reranked = rerank_proportional(&items, cardinality, alpha)
        .map_err(|e| CliError::Run(format!("rerank: {e}")))?;

    let label = |code: u32| -> String {
        workers
            .schema()
            .attribute(attr_idx)
            .label_of(code)
            .unwrap_or("?")
            .to_string()
    };
    let mut out = format!(
        "top-{k} for {} re-ranked with quota {alpha} on `{attribute}`\n\n{:<5} {:<28} {:<28}\n",
        scorer.name(),
        "pos",
        "before",
        "after"
    );
    for (pos, (before, after)) in items.iter().zip(&reranked).take(k).enumerate() {
        out.push_str(&format!(
            "{:<5} {:<28} {:<28}\n",
            pos + 1,
            format!(
                "#{} {} ({:.3})",
                before.id,
                label(before.group),
                before.score
            ),
            format!("#{} {} ({:.3})", after.id, label(after.group), after.score),
        ));
    }
    out.push_str(&format!(
        "\nquota check before: {}\nquota check after:  {}\n",
        match first_quota_violation(&items, cardinality, alpha) {
            Some((prefix, group)) =>
                format!("violated at prefix {prefix} (group {})", label(group)),
            None => "satisfied".to_string(),
        },
        match first_quota_violation(&reranked, cardinality, alpha) {
            Some((prefix, group)) =>
                format!("violated at prefix {prefix} (group {})", label(group)),
            None => "satisfied".to_string(),
        }
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::{argv, TempFile};

    fn population() -> TempFile {
        let tmp = TempFile::new("rerank.csv");
        crate::commands::generate::run(&argv(&["--size", "150", "--out", &tmp.path_str()]))
            .unwrap();
        tmp
    }

    #[test]
    fn reranks_biased_top_list() {
        let tmp = population();
        let out = run(&argv(&[
            "--workers",
            &tmp.path_str(),
            "--function",
            "f6",
            "--attribute",
            "gender",
            "--top",
            "10",
        ]))
        .unwrap();
        // f6 puts only males on top; before violates, after satisfies.
        assert!(out.contains("quota check before: violated"));
        assert!(out.contains("quota check after:  satisfied"));
        assert!(
            out.contains("Female"),
            "re-ranked list must surface females:\n{out}"
        );
    }

    #[test]
    fn bad_attribute_rejected() {
        let tmp = population();
        assert!(run(&argv(&[
            "--workers",
            &tmp.path_str(),
            "--function",
            "f6",
            "--attribute",
            "approval_rate",
        ]))
        .is_err());
        assert!(run(&argv(&[
            "--workers",
            &tmp.path_str(),
            "--function",
            "f6",
            "--attribute",
            "nope",
        ]))
        .is_err());
    }
}
