//! `fairjob describe` — per-attribute summary of a population CSV.

use crate::args::Args;
use crate::CliError;

/// Run the subcommand; returns the description text.
///
/// # Errors
///
/// [`CliError`] on bad flags or unreadable input.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    let workers =
        crate::commands::load_workers(args.required("workers")?, args.optional("schema"))?;
    Ok(fairjob_store::stats::describe(&workers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::{argv, TempFile};

    #[test]
    fn describes_generated_population() {
        let tmp = TempFile::new("describe.csv");
        crate::commands::generate::run(&argv(&["--size", "30", "--out", &tmp.path_str()])).unwrap();
        let text = run(&argv(&["--workers", &tmp.path_str()])).unwrap();
        assert!(text.contains("30 rows"));
        assert!(text.contains("gender"));
        assert!(text.contains("yob_band"), "derived bands are described too");
    }

    #[test]
    fn workers_required() {
        assert!(run(&argv(&[])).is_err());
    }

    #[test]
    fn custom_schema_population() {
        // A non-AMT marketplace: drivers with a region and a rating.
        let schema_file = TempFile::new("drivers.schema");
        std::fs::write(
            &schema_file.0,
            "# drivers\nregion protected categorical North,South\nage protected integer 18 70\nrating observed numeric 1 5\n",
        )
        .unwrap();
        let csv_file = TempFile::new("drivers.csv");
        std::fs::write(
            &csv_file.0,
            "region,age,rating\nNorth,30,4.5\nSouth,55,3.2\n",
        )
        .unwrap();
        let text = run(&argv(&[
            "--workers",
            &csv_file.path_str(),
            "--schema",
            &schema_file.path_str(),
        ]))
        .unwrap();
        assert!(text.contains("2 rows"));
        assert!(text.contains("region"));
        assert!(
            text.contains("age_band"),
            "numeric protected attrs are auto-bucketised"
        );
    }
}
