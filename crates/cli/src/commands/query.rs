//! `fairjob query` — run FairQL statements against a population CSV.
//!
//! The query text comes from `-e`/`--query` (one-shot), `--file`, or
//! stdin (when neither is given). Session defaults for `AUDIT`
//! statements that omit `USING`/`METRIC`/`BINS` come from the same
//! flags `fairjob audit` takes, so
//! `fairjob query -e 'AUDIT workers'` is bit-identical to
//! `fairjob audit` with the same flags.
//!
//! Failure classes map to the CLI's exit codes: a FairQL parse or
//! analysis error is a usage error (exit 2, with the byte offset), an
//! unreadable file is an I/O error (exit 3), and an execution failure
//! is a run error (exit 4).

use crate::args::Args;
use crate::CliError;
use fairjob_fairql::{Defaults, QueryError, Session, Source};
use std::io::Read;
use std::sync::Arc;

fn map_query_error(e: QueryError) -> CliError {
    match e {
        QueryError::Parse { offset, message } => {
            CliError::Usage(format!("parse error at byte {offset}: {message}"))
        }
        QueryError::Exec(message) => CliError::Run(format!("query failed: {message}")),
    }
}

/// Rewrite the short `-e QUERY` spelling to `--query QUERY` so the
/// flag parser (which only knows `--` flags) accepts it.
fn expand_short_flags(argv: &[String]) -> Vec<String> {
    argv.iter()
        .map(|a| {
            if a == "-e" {
                "--query".to_string()
            } else {
                a.clone()
            }
        })
        .collect()
}

/// Run the subcommand; returns the rendered outputs of every statement.
///
/// # Errors
///
/// [`CliError::Usage`] (exit 2) on bad flags or FairQL parse/analysis
/// errors, [`CliError::Io`] (exit 3) on unreadable inputs,
/// [`CliError::Run`] (exit 4) on execution failures.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(&expand_short_flags(argv))?;
    let seed: u64 = args.parsed_or("seed", 0xBEEF)?;
    // Paged sources bring their own scores; batch sources load + score.
    let paged = match args.optional("paged") {
        Some(path) => Some(crate::commands::open_paged(
            path,
            crate::commands::parse_mem_budget(&args)?,
        )?),
        None => None,
    };
    let workers;
    let scores;
    let source = match &paged {
        Some(store) => Source::Paged(store),
        None => {
            workers =
                crate::commands::load_workers(args.required("workers")?, args.optional("schema"))?;
            let scorer = crate::commands::resolve_scorer(
                args.optional("function"),
                args.optional("alpha"),
                seed,
            )?;
            scores = scorer
                .score_all(&workers)
                .map_err(|e| CliError::Run(format!("scoring with {}: {e}", scorer.name())))?;
            Source::Batch {
                table: &workers,
                scores: &scores,
            }
        }
    };

    let text = match (args.optional("query"), args.optional("file")) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "give either --query/-e or --file, not both".into(),
            ))
        }
        (Some(q), None) => q.to_string(),
        (None, Some(path)) => std::fs::read_to_string(path)?,
        (None, None) => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            buf
        }
    };

    let defaults = Defaults {
        algorithm: Arc::from(super::audit::resolve_algorithm(
            args.optional("algorithm").unwrap_or("balanced"),
            seed,
        )?),
        metric: super::audit::resolve_metric(args.optional("metric").unwrap_or("emd"))?,
        bins: args.parsed_or("bins", 10)?,
        seed,
        threads: match args.optional("threads") {
            None => None,
            Some(_) => Some(args.parsed_or("threads", 0usize)?),
        },
        shards: crate::commands::parse_shards(&args)?,
        ..Defaults::default()
    };
    let mut session = Session::new(source, defaults).map_err(map_query_error)?;

    let outputs = session.execute(&text).map_err(map_query_error)?;
    let mut out = String::new();
    for output in &outputs {
        out.push_str(&output.render());
        if !out.ends_with('\n') {
            out.push('\n');
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::{argv, TempFile};

    fn population() -> TempFile {
        let tmp = TempFile::new("query.csv");
        crate::commands::generate::run(&argv(&["--size", "150", "--out", &tmp.path_str()]))
            .unwrap();
        tmp
    }

    #[test]
    fn one_shot_audit_matches_direct_audit_bits() {
        use fairjob_core::{algorithms, AuditConfig, AuditContext};
        use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};

        let tmp = population();
        // The same population, scorer and defaults through the direct
        // audit path (what `fairjob audit` runs).
        let workers = crate::commands::load_workers(&tmp.path_str(), None).unwrap();
        let scores = LinearScore::alpha("f1", 0.5).score_all(&workers).unwrap();
        let ctx = AuditContext::new(&workers, &scores, AuditConfig::default()).unwrap();
        let direct = algorithms::by_name("balanced", 0xBEEF)
            .unwrap()
            .run(&ctx)
            .unwrap();

        let out = run(&argv(&[
            "--workers",
            &tmp.path_str(),
            "--function",
            "f1",
            "-e",
            "AUDIT workers",
        ]))
        .unwrap();
        assert!(
            out.contains(&format!(
                "unfairness_bits={:016x}",
                direct.unfairness.to_bits()
            )),
            "query bits diverged from the direct audit:\n{out}"
        );
    }

    #[test]
    fn select_and_describe_render_rows() {
        let tmp = population();
        let out = run(&argv(&[
            "--workers",
            &tmp.path_str(),
            "--function",
            "f1",
            "-e",
            "SELECT gender, COUNT(*) FROM workers GROUP BY gender; DESCRIBE gender",
        ]))
        .unwrap();
        assert!(out.contains("gender\tcount"), "{out}");
        assert!(out.contains("cardinality"), "{out}");
    }

    #[test]
    fn query_file_flag_reads_statements() {
        let tmp = population();
        let script = TempFile::new("script.fql");
        std::fs::write(&script.0, "EXPLAIN AUDIT workers WHERE country = 'India'\n").unwrap();
        let out = run(&argv(&[
            "--workers",
            &tmp.path_str(),
            "--function",
            "f1",
            "--file",
            &script.path_str(),
        ]))
        .unwrap();
        assert!(out.contains("IndexScan"), "{out}");
    }

    #[test]
    fn error_classes_map_to_exit_codes() {
        let tmp = population();
        let path = tmp.path_str();
        let base = ["--workers", &path, "--function", "f1"];
        let with = |extra: &[&str]| {
            let mut full: Vec<&str> = base.to_vec();
            full.extend_from_slice(extra);
            run(&argv(&full)).unwrap_err()
        };

        let parse = with(&["-e", "FROB workers"]);
        assert_eq!(parse.exit_code(), 2);
        assert!(parse.to_string().contains("byte 0"), "{parse}");

        // Analysis errors (bad value, contradictory filter) are parse
        // errors too: the query itself is wrong.
        assert_eq!(
            with(&["-e", "AUDIT workers WHERE gender = 'Robot'"]).exit_code(),
            2
        );
        assert_eq!(
            with(&[
                "-e",
                "AUDIT workers WHERE gender = 'Male' AND gender = 'Female'"
            ])
            .exit_code(),
            2
        );

        assert_eq!(with(&["--file", "/nonexistent/x.fql"]).exit_code(), 3);
        assert_eq!(with(&["-e", "DESCRIBE", "--file", "x.fql"]).exit_code(), 2);
    }

    #[test]
    fn execution_failures_map_to_run_exit_code() {
        let err = map_query_error(QueryError::Exec("WHERE matches no rows".into()));
        assert_eq!(err.exit_code(), 4);
        assert!(err.to_string().contains("query failed"));
    }
}
