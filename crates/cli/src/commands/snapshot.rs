//! `fairjob snapshot` — write or inspect paged snapshot files.
//!
//! Write mode loads and scores a population exactly like
//! `fairjob serve`, builds the epoch-0 stream view, and persists it to
//! the paged columnar format (`--out`). The file is what
//! `fairjob serve --snapshot` cold-starts from and what
//! `fairjob audit --paged` / `fairjob query --paged` stream audits
//! over without materialising the population in memory.
//!
//! Info mode (`--info FILE`) prints the file's header facts — rows,
//! live count, epoch, bins, pages — without touching the data pages
//! beyond the directory.

use crate::args::Args;
use crate::CliError;
use fairjob_stream::{StreamError, StreamView};

/// Run the subcommand; returns a one-line summary (write) or the
/// header facts (info).
///
/// # Errors
///
/// [`CliError::Usage`] (exit 2) on bad flags, [`CliError::Io`] (exit
/// 3) on unreadable or unwritable files, [`CliError::Run`] (exit 4) on
/// corrupt files or scoring failures.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    if let Some(path) = args.optional("info") {
        return info(&args, path);
    }

    let workers =
        crate::commands::load_workers(args.required("workers")?, args.optional("schema"))?;
    let seed: u64 = args.parsed_or("seed", 0xBEEF)?;
    let scorer =
        crate::commands::resolve_scorer(args.optional("function"), args.optional("alpha"), seed)?;
    let bins: usize = args.parsed_or("bins", 10)?;
    let out = args.required("out")?;
    let scores = scorer
        .score_all(&workers)
        .map_err(|e| CliError::Run(format!("scoring with {}: {e}", scorer.name())))?;
    let view = StreamView::new(workers, scores, bins)
        .map_err(|e| CliError::Run(format!("snapshot setup: {e}")))?;
    let summary = view
        .snapshot()
        .write_paged(std::path::Path::new(out))
        .map_err(|e| match e {
            StreamError::Paged(fairjob_store::paged::PagedError::Io(io)) => CliError::Io(io),
            other => CliError::Run(format!("{out}: {other}")),
        })?;
    Ok(format!(
        "snapshot: wrote {} rows in {} pages ({} bytes) to {out}\n",
        summary.rows, summary.pages, summary.bytes
    ))
}

fn info(args: &Args, path: &str) -> Result<String, CliError> {
    let store = crate::commands::open_paged(path, crate::commands::parse_mem_budget(args)?)?;
    let live = store.live().map_or(store.rows(), |rows| rows.len());
    let mut out = format!("paged snapshot {path}\n");
    out.push_str(&format!("rows: {}\n", store.rows()));
    out.push_str(&format!("live: {live}\n"));
    out.push_str(&format!("epoch: {}\n", store.epoch()));
    out.push_str(&format!("bins: {}\n", store.bins()));
    out.push_str(&format!("scores: {}\n", store.has_scores()));
    out.push_str(&format!("pages: {}\n", store.directory_len()));
    out.push_str(&format!("columns: {}\n", store.schema().width()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::{argv, TempFile};

    fn population(size: &str) -> TempFile {
        let csv = TempFile::new("snapshot.csv");
        crate::commands::generate::run(&argv(&[
            "--size",
            size,
            "--seed",
            "21",
            "--out",
            &csv.path_str(),
        ]))
        .unwrap();
        csv
    }

    #[test]
    fn write_then_info_roundtrip() {
        let csv = population("90");
        let snap = TempFile::new("snapshot.fjp");
        let out = run(&argv(&[
            "--workers",
            &csv.path_str(),
            "--function",
            "f1",
            "--out",
            &snap.path_str(),
        ]))
        .unwrap();
        assert!(out.contains("wrote 90 rows"), "{out}");
        let info = run(&argv(&["--info", &snap.path_str()])).unwrap();
        assert!(info.contains("rows: 90"), "{info}");
        assert!(info.contains("live: 90"), "{info}");
        assert!(info.contains("epoch: 0"), "{info}");
        assert!(info.contains("scores: true"), "{info}");
    }

    #[test]
    fn exit_codes_by_failure_class() {
        // Usage (2): missing required flags.
        assert_eq!(run(&argv(&[])).unwrap_err().exit_code(), 2);
        let csv = population("20");
        assert_eq!(
            run(&argv(&["--workers", &csv.path_str(), "--function", "f1"]))
                .unwrap_err()
                .exit_code(),
            2,
            "missing --out is a usage error"
        );
        // Io (3): missing input files.
        assert_eq!(
            run(&argv(&["--info", "/nonexistent/x.fjp"]))
                .unwrap_err()
                .exit_code(),
            3
        );
        // Run (4): a file that exists but is not a paged snapshot.
        assert_eq!(
            run(&argv(&["--info", &csv.path_str()]))
                .unwrap_err()
                .exit_code(),
            4
        );
    }
}
