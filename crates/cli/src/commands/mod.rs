//! Subcommand implementations.

pub mod audit;
pub mod describe;
pub mod generate;
pub mod query;
pub mod repair;
pub mod rerank;
pub mod serve;
pub mod snapshot;
pub mod stream;

use crate::args::Args;
use crate::CliError;
use fairjob_marketplace::scoring::{LinearScore, RuleBasedScore, ScoringFunction};
use fairjob_store::{ShardPolicy, Table};

/// Load a worker population CSV and bucketise its numeric protected
/// attributes so they are splittable. With `schema_path = None` the
/// paper's AMT schema is assumed; otherwise the schema descriptor file
/// (see `fairjob_store::schema_text`) defines the layout.
pub(crate) fn load_workers(path: &str, schema_path: Option<&str>) -> Result<Table, CliError> {
    let text = std::fs::read_to_string(path)?;
    let schema = match schema_path {
        None => fairjob_marketplace::amt_schema(),
        Some(sp) => {
            let schema_text = std::fs::read_to_string(sp)?;
            fairjob_store::schema_text::from_text(&schema_text)
                .map_err(|e| CliError::Run(format!("{sp}: {e}")))?
        }
    };
    let mut table = fairjob_store::csv::from_csv(schema, &text)
        .map_err(|e| CliError::Run(format!("{path}: {e}")))?;
    if table.is_empty() {
        return Err(CliError::Run(format!("{path}: no rows")));
    }
    match schema_path {
        // The AMT wrapper keeps the paper's stable band names.
        None => fairjob_marketplace::bucketise_numeric_protected(&mut table)
            .map_err(|e| CliError::Run(format!("bucketise: {e}")))?,
        Some(_) => {
            fairjob_store::bucketize::bucketize_all_protected(&mut table, 5)
                .map_err(|e| CliError::Run(format!("bucketise: {e}")))?;
        }
    }
    Ok(table)
}

/// Resolve the `--shards` flag (`auto` | `off` | a positive count;
/// default `auto`). Audit results are bit-identical under every
/// setting — the flag only chooses how the context's split/classify
/// kernels execute.
pub(crate) fn parse_shards(args: &Args) -> Result<ShardPolicy, CliError> {
    match args.optional("shards") {
        None => Ok(ShardPolicy::default()),
        Some(raw) => ShardPolicy::parse(raw).ok_or_else(|| {
            CliError::Usage(format!(
                "cannot parse `--shards {raw}` (auto | off | count)"
            ))
        }),
    }
}

/// Parse a byte count with an optional binary `k`/`m`/`g` suffix
/// (`64m` = 64 MiB).
pub(crate) fn parse_bytes(raw: &str) -> Option<usize> {
    let lower = raw.trim().to_ascii_lowercase();
    let (digits, unit) = match lower.chars().last()? {
        'k' => (&lower[..lower.len() - 1], 1usize << 10),
        'm' => (&lower[..lower.len() - 1], 1 << 20),
        'g' => (&lower[..lower.len() - 1], 1 << 30),
        _ => (lower.as_str(), 1),
    };
    digits.parse::<usize>().ok()?.checked_mul(unit)
}

/// Resolve `--mem-budget` — the paged buffer manager's cache cap in
/// bytes, `k`/`m`/`g` suffixes accepted. Default 64 MiB. Audits stay
/// bit-identical under every budget; the knob only trades memory for
/// page re-reads.
pub(crate) fn parse_mem_budget(args: &Args) -> Result<usize, CliError> {
    match args.optional("mem-budget") {
        None => Ok(64 << 20),
        Some(raw) => parse_bytes(raw).ok_or_else(|| {
            CliError::Usage(format!(
                "cannot parse `--mem-budget {raw}` (bytes, with k/m/g suffixes)"
            ))
        }),
    }
}

/// Open a paged store file, mapping failures to the CLI's exit
/// classes: unreadable file → I/O (exit 3), corrupt file → run
/// failure (exit 4).
pub(crate) fn open_paged(path: &str, budget: usize) -> Result<fairjob_store::PagedStore, CliError> {
    fairjob_store::PagedStore::open(std::path::Path::new(path), budget).map_err(|e| match e {
        fairjob_store::paged::PagedError::Io(io) => CliError::Io(io),
        other => CliError::Run(format!("{path}: {other}")),
    })
}

/// Resolve `--function`/`--alpha` into a scoring function.
pub(crate) fn resolve_scorer(
    function: Option<&str>,
    alpha: Option<&str>,
    seed: u64,
) -> Result<Box<dyn ScoringFunction>, CliError> {
    match (function, alpha) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "give either --function or --alpha, not both".into(),
        )),
        (None, None) => Err(CliError::Usage("need --function or --alpha".into())),
        (None, Some(raw)) => {
            let a: f64 = raw
                .parse()
                .map_err(|_| CliError::Usage(format!("cannot parse `--alpha {raw}`")))?;
            if !(0.0..=1.0).contains(&a) {
                return Err(CliError::Usage("--alpha must be in [0, 1]".into()));
            }
            Ok(Box::new(LinearScore::alpha(&format!("alpha-{a}"), a)))
        }
        (Some(name), None) => match name {
            "f1" => Ok(Box::new(LinearScore::alpha("f1", 0.5))),
            "f2" => Ok(Box::new(LinearScore::alpha("f2", 0.3))),
            "f3" => Ok(Box::new(LinearScore::alpha("f3", 0.7))),
            "f4" => Ok(Box::new(LinearScore::alpha("f4", 1.0))),
            "f5" => Ok(Box::new(LinearScore::alpha("f5", 0.0))),
            "f6" => Ok(Box::new(RuleBasedScore::f6(seed))),
            "f7" => Ok(Box::new(RuleBasedScore::f7(seed))),
            "f8" => Ok(Box::new(RuleBasedScore::f8(seed))),
            "f9" => Ok(Box::new(RuleBasedScore::f9(seed))),
            other => Err(CliError::Usage(format!(
                "unknown function `{other}` (f1..f9)"
            ))),
        },
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    /// A scratch file path in the target-adjacent temp dir; removed on
    /// drop.
    pub struct TempFile(pub std::path::PathBuf);

    impl TempFile {
        pub fn new(name: &str) -> Self {
            let mut path = std::env::temp_dir();
            path.push(format!("fairjob-cli-test-{}-{name}", std::process::id()));
            TempFile(path)
        }

        pub fn path_str(&self) -> String {
            self.0.to_string_lossy().into_owned()
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    pub fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_scorer_matrix() {
        assert!(resolve_scorer(None, None, 0).is_err());
        assert!(resolve_scorer(Some("f1"), Some("0.5"), 0).is_err());
        assert!(resolve_scorer(Some("f99"), None, 0).is_err());
        assert!(resolve_scorer(None, Some("nan"), 0).is_err());
        assert!(resolve_scorer(None, Some("1.5"), 0).is_err());
        assert_eq!(resolve_scorer(Some("f6"), None, 0).unwrap().name(), "f6");
        assert_eq!(
            resolve_scorer(None, Some("0.25"), 0).unwrap().name(),
            "alpha-0.25"
        );
    }

    #[test]
    fn load_workers_reports_missing_file() {
        assert!(matches!(
            load_workers("/nonexistent/x.csv", None),
            Err(CliError::Io(_))
        ));
    }
}
