//! `fairjob stream` — replay an event file over a worker population,
//! re-auditing incrementally after every epoch.
//!
//! The command loads a population CSV (the epoch-0 state), scores it,
//! parses a `fairjob-events v1` file against the loaded schema, and
//! drives a [`StreamAuditor`]: one initial warm-up audit, then one
//! incremental audit per epoch with selective cache invalidation.
//! `--cold-check` additionally rebuilds the live population from
//! scratch after each epoch and verifies the warm result is
//! bit-identical.

use crate::args::Args;
use crate::CliError;
use fairjob_core::AuditConfig;
use fairjob_marketplace::stream::EventLog;
use fairjob_stream::{same_partitioning, EpochReport, StreamAuditor, StreamView};

fn render_epoch(report: &EpochReport, initial: bool, checked: bool) -> String {
    let mut out = if initial {
        format!(
            "epoch {} (initial): live {}",
            report.epoch, report.live_workers
        )
    } else {
        format!(
            "epoch {}: {} events, {} row changes, live {}\n  invalidation: distances {} evicted / {} retained; splits {} evicted / {} patched / {} retained",
            report.epoch,
            report.events,
            report.changes,
            report.live_workers,
            report.invalidation.distances_evicted,
            report.invalidation.distances_retained,
            report.invalidation.splits_evicted,
            report.invalidation.splits_patched,
            report.invalidation.splits_retained,
        )
    };
    out.push_str(&format!(
        "\n  engine: {} distances computed, {} cache hits, {} rows scanned\n  bounds: {} pairs screened, {} exact solves, {} pool tasks\n  solver: {} ground cache hits, {} scratch reuses, {} warm starts\n  unfairness {:.6} over {} partitions\n",
        report.audit.engine.distances_computed,
        report.audit.engine.cache_hits,
        report.audit.engine.rows_scanned,
        report.audit.engine.bounds_screened,
        report.audit.engine.exact_solves,
        report.audit.engine.pool_tasks,
        report.audit.engine.ground_cache_hits,
        report.audit.engine.scratch_reuses,
        report.audit.engine.warm_starts,
        report.audit.unfairness,
        report.audit.partitioning.partitions().len(),
    ));
    if checked {
        out.push_str("  cold check: ok (bit-identical to cold rebuild)\n");
    }
    out
}

fn json_epoch(report: &EpochReport) -> String {
    format!(
        "{{\"epoch\":{},\"events\":{},\"changes\":{},\"live\":{},\"unfairness\":{},\"partitions\":{},\
\"invalidation\":{{\"distances_evicted\":{},\"distances_retained\":{},\"splits_evicted\":{},\"splits_patched\":{},\"splits_retained\":{}}},\
\"engine\":{{\"distances_computed\":{},\"cache_hits\":{},\"rows_scanned\":{},\"bounds_screened\":{},\"exact_solves\":{},\"pool_tasks\":{},\"ground_cache_hits\":{},\"scratch_reuses\":{},\"warm_starts\":{}}}}}",
        report.epoch,
        report.events,
        report.changes,
        report.live_workers,
        report.audit.unfairness,
        report.audit.partitioning.partitions().len(),
        report.invalidation.distances_evicted,
        report.invalidation.distances_retained,
        report.invalidation.splits_evicted,
        report.invalidation.splits_patched,
        report.invalidation.splits_retained,
        report.audit.engine.distances_computed,
        report.audit.engine.cache_hits,
        report.audit.engine.rows_scanned,
        report.audit.engine.bounds_screened,
        report.audit.engine.exact_solves,
        report.audit.engine.pool_tasks,
        report.audit.engine.ground_cache_hits,
        report.audit.engine.scratch_reuses,
        report.audit.engine.warm_starts,
    )
}

/// Run the subcommand; returns the replay report.
///
/// # Errors
///
/// [`CliError`] on bad flags, unreadable or unparsable input, event
/// application failures, or a failed `--cold-check`.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    let workers =
        crate::commands::load_workers(args.required("workers")?, args.optional("schema"))?;
    let events_path = args.required("events")?;
    let seed: u64 = args.parsed_or("seed", 0xBEEF)?;
    let scorer =
        crate::commands::resolve_scorer(args.optional("function"), args.optional("alpha"), seed)?;
    let algorithm = crate::commands::audit::resolve_algorithm(
        args.optional("algorithm").unwrap_or("balanced"),
        seed,
    )?;
    let bins: usize = args.parsed_or("bins", 10)?;
    let metric = crate::commands::audit::resolve_metric(args.optional("metric").unwrap_or("emd"))?;
    let cold_check = args.switch("cold-check");

    let scores = scorer
        .score_all(&workers)
        .map_err(|e| CliError::Run(format!("scoring with {}: {e}", scorer.name())))?;
    let events_text = std::fs::read_to_string(events_path)?;
    let log = EventLog::parse(&events_text, workers.schema())
        .map_err(|e| CliError::Run(format!("{events_path}: {e}")))?;

    let config = AuditConfig {
        bins,
        distance: metric,
        shards: crate::commands::parse_shards(&args)?,
        ..Default::default()
    };
    let view = StreamView::new(workers, scores, bins)
        .map_err(|e| CliError::Run(format!("stream setup: {e}")))?;
    let mut auditor = StreamAuditor::new(view, config)
        .map_err(|e| CliError::Run(format!("stream setup: {e}")))?;

    let verify = |auditor: &StreamAuditor, report: &EpochReport| -> Result<(), CliError> {
        if !cold_check {
            return Ok(());
        }
        let cold = auditor
            .cold_audit(&*algorithm)
            .map_err(|e| CliError::Run(format!("cold check epoch {}: {e}", report.epoch)))?;
        if !same_partitioning(&report.audit.partitioning, &cold.partitioning)
            || report.audit.unfairness.to_bits() != cold.unfairness.to_bits()
        {
            return Err(CliError::Run(format!(
                "cold check failed at epoch {}: incremental unfairness {} != cold rebuild {}",
                report.epoch, report.audit.unfairness, cold.unfairness
            )));
        }
        Ok(())
    };

    let mut reports = Vec::with_capacity(log.epochs().len() + 1);
    let initial = auditor
        .audit(&*algorithm)
        .map_err(|e| CliError::Run(format!("initial audit: {e}")))?;
    verify(&auditor, &initial)?;
    reports.push(initial);
    for events in log.epochs() {
        let report = auditor
            .run_epoch(events, &*algorithm)
            .map_err(|e| CliError::Run(format!("epoch replay: {e}")))?;
        verify(&auditor, &report)?;
        reports.push(report);
    }

    if args.switch("json") {
        let epochs: Vec<String> = reports.iter().map(json_epoch).collect();
        return Ok(format!(
            "{{\"algorithm\":\"{}\",\"function\":\"{}\",\"cold_checked\":{},\"epochs\":[{}]}}\n",
            algorithm.name(),
            scorer.name(),
            cold_check,
            epochs.join(",")
        ));
    }

    let mut out = format!(
        "stream audit: {} with {} over {} epochs ({} events)\n",
        algorithm.name(),
        scorer.name(),
        log.epochs().len(),
        log.total_events()
    );
    for (i, report) in reports.iter().enumerate() {
        out.push_str(&render_epoch(report, i == 0, cold_check));
    }
    let last = reports.last().expect("at least the initial audit");
    out.push_str(&format!(
        "final: {} live workers, unfairness {:.6}\n",
        last.live_workers, last.audit.unfairness
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::{argv, TempFile};

    /// A raw population CSV plus a matching event file, generated at the
    /// same size/seed so the event stream's implied initial state equals
    /// the CSV after bucketisation.
    fn scenario(size: &str, events: &str, epochs: &str) -> (TempFile, TempFile) {
        let csv = TempFile::new("stream.csv");
        let evf = TempFile::new("stream.events");
        crate::commands::generate::run(&argv(&[
            "--size",
            size,
            "--seed",
            "11",
            "--out",
            &csv.path_str(),
            "--events",
            events,
            "--epochs",
            epochs,
            "--events-out",
            &evf.path_str(),
        ]))
        .unwrap();
        (csv, evf)
    }

    #[test]
    fn replays_and_cold_checks() {
        let (csv, evf) = scenario("90", "5", "3");
        let out = run(&argv(&[
            "--workers",
            &csv.path_str(),
            "--events",
            &evf.path_str(),
            "--alpha",
            "0.5",
            "--cold-check",
        ]))
        .unwrap();
        assert!(out.contains("stream audit: balanced"));
        assert!(out.contains("epoch 0 (initial): live 90"));
        assert!(out.contains("epoch 3:"));
        assert!(out.contains("invalidation: distances"));
        assert!(out.contains("solver: "));
        assert!(out.contains("ground cache hits"));
        assert_eq!(out.matches("cold check: ok").count(), 4);
        assert!(out.contains("final:"));
    }

    #[test]
    fn json_output_structure() {
        let (csv, evf) = scenario("70", "4", "2");
        let out = run(&argv(&[
            "--workers",
            &csv.path_str(),
            "--events",
            &evf.path_str(),
            "--function",
            "f1",
            "--json",
        ]))
        .unwrap();
        assert!(out.trim_start().starts_with('{') && out.trim_end().ends_with('}'));
        assert!(out.contains("\"algorithm\":\"balanced\""));
        assert!(out.contains("\"function\":\"f1\""));
        assert!(out.contains("\"cold_checked\":false"));
        assert!(out.contains("\"epoch\":2"));
        assert!(out.contains("\"invalidation\":{\"distances_evicted\":"));
        assert!(out.contains("\"ground_cache_hits\":"));
        assert!(out.contains("\"scratch_reuses\":"));
        assert!(out.contains("\"warm_starts\":"));
    }

    #[test]
    fn bad_event_file_rejected() {
        let (csv, _) = scenario("40", "3", "1");
        let bad = TempFile::new("bad.events");
        std::fs::write(&bad.0, "not-an-event-file\n").unwrap();
        let err = run(&argv(&[
            "--workers",
            &csv.path_str(),
            "--events",
            &bad.path_str(),
            "--function",
            "f1",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn events_flag_required() {
        let (csv, _) = scenario("40", "3", "1");
        assert!(run(&argv(&["--workers", &csv.path_str(), "--function", "f1"])).is_err());
    }
}
