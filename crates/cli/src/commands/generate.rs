//! `fairjob generate` — create a worker-population CSV.

use crate::args::Args;
use crate::CliError;
use fairjob_marketplace::stream::{generate_stream, StreamConfig};
use fairjob_marketplace::{generate_correlated, generate_uniform, CorrelationConfig};

/// Run the subcommand; returns the text to print.
///
/// # Errors
///
/// [`CliError`] on bad flags or file I/O.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    let size: usize = args.parsed_or("size", 0)?;
    if size == 0 {
        return Err(CliError::Usage("--size must be a positive integer".into()));
    }
    let seed: u64 = args.parsed_or("seed", 0xEDB7_2019)?;
    let out = args.required("out")?;
    let workers = if args.switch("correlated") {
        generate_correlated(size, seed, &CorrelationConfig::default())
    } else {
        generate_uniform(size, seed)
    };
    // Persist the raw (un-bucketised) population: derived bands are
    // recomputed on load so the CSV stays minimal and canonical.
    std::fs::write(out, fairjob_store::csv::to_csv(&workers))?;
    let mut message = format!(
        "wrote {size} {} workers to {out} (seed {seed})\n",
        if args.switch("correlated") {
            "correlated"
        } else {
            "uniform"
        }
    );

    // Optionally emit a matching event stream: same size and seed, so
    // the stream's implied epoch-0 state is exactly this population.
    let events_per_epoch: usize = args.parsed_or("events", 0)?;
    match args.optional("events-out") {
        None => {
            if events_per_epoch > 0 {
                return Err(CliError::Usage("--events needs --events-out FILE".into()));
            }
        }
        Some(events_out) => {
            if args.switch("correlated") {
                return Err(CliError::Usage(
                    "--events-out only supports uniform populations".into(),
                ));
            }
            if events_per_epoch == 0 {
                return Err(CliError::Usage(
                    "--events-out needs --events N (events per epoch)".into(),
                ));
            }
            let epochs: usize = args.parsed_or("epochs", 4)?;
            let alpha: f64 = args.parsed_or("alpha", 0.5)?;
            if !(0.0..=1.0).contains(&alpha) {
                return Err(CliError::Usage("--alpha must be in [0, 1]".into()));
            }
            let scenario = generate_stream(&StreamConfig {
                initial: size,
                epochs,
                events_per_epoch,
                seed,
                alpha,
            });
            std::fs::write(
                events_out,
                scenario.events.render(scenario.initial.schema()),
            )?;
            message.push_str(&format!(
                "wrote {} epochs x {events_per_epoch} events to {events_out} (alpha {alpha})\n",
                epochs
            ));
        }
    }
    Ok(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::{argv, TempFile};

    #[test]
    fn generates_and_roundtrips() {
        let tmp = TempFile::new("gen.csv");
        let out = run(&argv(&[
            "--size",
            "25",
            "--seed",
            "3",
            "--out",
            &tmp.path_str(),
        ]))
        .unwrap();
        assert!(out.contains("25"));
        let loaded = crate::commands::load_workers(&tmp.path_str(), None).unwrap();
        assert_eq!(loaded.len(), 25);
        assert_eq!(loaded.schema().splittable().len(), 6);
    }

    #[test]
    fn correlated_switch() {
        let tmp = TempFile::new("gen-corr.csv");
        let out = run(&argv(&[
            "--size",
            "10",
            "--correlated",
            "--out",
            &tmp.path_str(),
        ]))
        .unwrap();
        assert!(out.contains("correlated"));
    }

    #[test]
    fn event_stream_roundtrip() {
        let csv = TempFile::new("gen-ev.csv");
        let evf = TempFile::new("gen-ev.events");
        let out = run(&argv(&[
            "--size",
            "30",
            "--seed",
            "9",
            "--out",
            &csv.path_str(),
            "--events",
            "4",
            "--epochs",
            "2",
            "--events-out",
            &evf.path_str(),
        ]))
        .unwrap();
        assert!(out.contains("2 epochs x 4 events"));
        let text = std::fs::read_to_string(&evf.0).unwrap();
        assert!(text.starts_with("fairjob-events v1"));
        // The events parse against the bucketised schema of the CSV.
        let loaded = crate::commands::load_workers(&csv.path_str(), None).unwrap();
        let log = fairjob_marketplace::stream::EventLog::parse(&text, loaded.schema()).unwrap();
        assert_eq!(log.epochs().len(), 2);
        assert_eq!(log.total_events(), 8);
    }

    #[test]
    fn event_flags_validated() {
        let csv = TempFile::new("gen-ev-bad.csv");
        let evf = TempFile::new("gen-ev-bad.events");
        // --events without --events-out
        assert!(run(&argv(&[
            "--size",
            "10",
            "--out",
            &csv.path_str(),
            "--events",
            "3"
        ]))
        .is_err());
        // --events-out without --events
        assert!(run(&argv(&[
            "--size",
            "10",
            "--out",
            &csv.path_str(),
            "--events-out",
            &evf.path_str()
        ]))
        .is_err());
        // correlated populations have no event generator
        assert!(run(&argv(&[
            "--size",
            "10",
            "--correlated",
            "--out",
            &csv.path_str(),
            "--events",
            "3",
            "--events-out",
            &evf.path_str()
        ]))
        .is_err());
    }

    #[test]
    fn size_required() {
        assert!(run(&argv(&["--out", "x.csv"])).is_err());
        assert!(run(&argv(&["--size", "0", "--out", "x.csv"])).is_err());
    }

    #[test]
    fn out_required() {
        assert!(run(&argv(&["--size", "5"])).is_err());
    }
}
