//! `fairjob generate` — create a worker-population CSV.

use crate::args::Args;
use crate::CliError;
use fairjob_marketplace::{generate_correlated, generate_uniform, CorrelationConfig};

/// Run the subcommand; returns the text to print.
///
/// # Errors
///
/// [`CliError`] on bad flags or file I/O.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    let size: usize = args.parsed_or("size", 0)?;
    if size == 0 {
        return Err(CliError::Usage("--size must be a positive integer".into()));
    }
    let seed: u64 = args.parsed_or("seed", 0xEDB7_2019)?;
    let out = args.required("out")?;
    let workers = if args.switch("correlated") {
        generate_correlated(size, seed, &CorrelationConfig::default())
    } else {
        generate_uniform(size, seed)
    };
    // Persist the raw (un-bucketised) population: derived bands are
    // recomputed on load so the CSV stays minimal and canonical.
    std::fs::write(out, fairjob_store::csv::to_csv(&workers))?;
    Ok(format!(
        "wrote {size} {} workers to {out} (seed {seed})\n",
        if args.switch("correlated") {
            "correlated"
        } else {
            "uniform"
        }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::{argv, TempFile};

    #[test]
    fn generates_and_roundtrips() {
        let tmp = TempFile::new("gen.csv");
        let out = run(&argv(&[
            "--size",
            "25",
            "--seed",
            "3",
            "--out",
            &tmp.path_str(),
        ]))
        .unwrap();
        assert!(out.contains("25"));
        let loaded = crate::commands::load_workers(&tmp.path_str(), None).unwrap();
        assert_eq!(loaded.len(), 25);
        assert_eq!(loaded.schema().splittable().len(), 6);
    }

    #[test]
    fn correlated_switch() {
        let tmp = TempFile::new("gen-corr.csv");
        let out = run(&argv(&[
            "--size",
            "10",
            "--correlated",
            "--out",
            &tmp.path_str(),
        ]))
        .unwrap();
        assert!(out.contains("correlated"));
    }

    #[test]
    fn size_required() {
        assert!(run(&argv(&["--out", "x.csv"])).is_err());
        assert!(run(&argv(&["--size", "0", "--out", "x.csv"])).is_err());
    }

    #[test]
    fn out_required() {
        assert!(run(&argv(&["--size", "5"])).is_err());
    }
}
