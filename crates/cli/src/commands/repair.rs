//! `fairjob repair` — audit a scoring function, quantile-align its
//! scores against the found partitioning, and write the repaired scores.

use crate::args::Args;
use crate::CliError;
use fairjob_core::algorithms::{balanced::Balanced, Algorithm, AttributeChoice};
use fairjob_core::{AuditConfig, AuditContext};
use fairjob_repair::{repair_scores, RepairConfig, RepairTarget};
use fairjob_store::{Predicate, RowSet};

/// Run the subcommand; returns a summary line.
///
/// # Errors
///
/// [`CliError`] on bad flags or failed repair.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    let workers =
        crate::commands::load_workers(args.required("workers")?, args.optional("schema"))?;
    let seed: u64 = args.parsed_or("seed", 0xBEEF)?;
    let scorer =
        crate::commands::resolve_scorer(args.optional("function"), args.optional("alpha"), seed)?;
    let lambda: f64 = args.parsed_or("lambda", 1.0)?;
    let target = match args.optional("target").unwrap_or("median") {
        "median" => RepairTarget::Median,
        "pooled" => RepairTarget::Pooled,
        other => {
            return Err(CliError::Usage(format!(
                "unknown target `{other}` (median | pooled)"
            )))
        }
    };
    let out = args.required("out")?;

    let scores = scorer
        .score_all(&workers)
        .map_err(|e| CliError::Run(format!("scoring with {}: {e}", scorer.name())))?;
    let ctx = AuditContext::new(&workers, &scores, AuditConfig::default())
        .map_err(|e| CliError::Run(format!("audit setup: {e}")))?;
    let audit = Balanced::new(AttributeChoice::Worst)
        .run(&ctx)
        .map_err(|e| CliError::Run(format!("audit: {e}")))?;
    let groups: Vec<RowSet> = audit
        .partitioning
        .partitions()
        .iter()
        .map(|p| p.rows.clone())
        .collect();
    let repaired = repair_scores(&scores, &groups, &RepairConfig { lambda, target })
        .map_err(|e| CliError::Run(format!("repair: {e}")))?;

    // Residual unfairness of the audited partitioning under the new
    // scores.
    let rctx = AuditContext::new(&workers, &repaired, AuditConfig::default())
        .map_err(|e| CliError::Run(format!("re-audit setup: {e}")))?;
    let parts: Vec<_> = groups
        .iter()
        .map(|g| rctx.partition(Predicate::always(), g.clone()))
        .collect();
    let residual = rctx
        .unfairness(&parts)
        .map_err(|e| CliError::Run(format!("re-audit: {e}")))?;

    // Write one score per line, header `score`.
    let mut csv = String::from("score\n");
    for s in &repaired {
        csv.push_str(&format!("{s}\n"));
    }
    std::fs::write(out, csv)?;
    Ok(format!(
        "audited {} -> unfairness {:.4} on {} partitions; repaired (lambda {lambda}, {:?}) -> residual {:.4}; wrote {} scores to {out}",
        scorer.name(),
        audit.unfairness,
        audit.partitioning.len(),
        target,
        residual,
        repaired.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::{argv, TempFile};

    #[test]
    fn repairs_f6_to_near_zero_residual() {
        let workers = TempFile::new("repair-workers.csv");
        crate::commands::generate::run(&argv(&["--size", "200", "--out", &workers.path_str()]))
            .unwrap();
        let out = TempFile::new("repair-scores.csv");
        let summary = run(&argv(&[
            "--workers",
            &workers.path_str(),
            "--function",
            "f6",
            "--out",
            &out.path_str(),
        ]))
        .unwrap();
        assert!(summary.contains("residual 0.0"), "{summary}");
        let written = std::fs::read_to_string(out.0.clone()).unwrap();
        assert_eq!(written.lines().count(), 201); // header + 200 scores
        assert_eq!(written.lines().next(), Some("score"));
    }

    #[test]
    fn lambda_and_target_flags() {
        let workers = TempFile::new("repair-w2.csv");
        crate::commands::generate::run(&argv(&["--size", "80", "--out", &workers.path_str()]))
            .unwrap();
        let out = TempFile::new("repair-s2.csv");
        let summary = run(&argv(&[
            "--workers",
            &workers.path_str(),
            "--function",
            "f7",
            "--lambda",
            "0.5",
            "--target",
            "pooled",
            "--out",
            &out.path_str(),
        ]))
        .unwrap();
        assert!(summary.contains("lambda 0.5"));
        assert!(summary.contains("Pooled"));
        // Bad target rejected.
        assert!(run(&argv(&[
            "--workers",
            &workers.path_str(),
            "--function",
            "f7",
            "--target",
            "average",
            "--out",
            &out.path_str(),
        ]))
        .is_err());
    }
}
