//! `fairjob audit` — find the most-unfair partitioning for a scoring
//! function over a population CSV.

use crate::args::Args;
use crate::CliError;
use fairjob_core::algorithms::{self, Algorithm};
use fairjob_core::stats::permutation_test;
use fairjob_core::{AuditConfig, AuditContext};
use fairjob_hist::distance as hd;
use fairjob_hist::HistogramDistance;
use std::sync::Arc;

pub(crate) fn resolve_algorithm(
    name: &str,
    seed: u64,
) -> Result<Box<dyn Algorithm + Send + Sync>, CliError> {
    algorithms::by_name(name, seed).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown algorithm `{name}` ({})",
            algorithms::ALGORITHM_NAMES.join(" | ")
        ))
    })
}

pub(crate) fn resolve_metric(name: &str) -> Result<Arc<dyn HistogramDistance>, CliError> {
    hd::by_name(name).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown metric `{name}` ({})",
            hd::METRIC_NAMES.join(" | ")
        ))
    })
}

/// Run the subcommand; returns the audit report.
///
/// # Errors
///
/// [`CliError`] on bad flags, unreadable input, or audit failure.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    if let Some(path) = args.optional("paged") {
        return run_paged(&args, path);
    }
    let workers =
        crate::commands::load_workers(args.required("workers")?, args.optional("schema"))?;
    let seed: u64 = args.parsed_or("seed", 0xBEEF)?;
    let scorer =
        crate::commands::resolve_scorer(args.optional("function"), args.optional("alpha"), seed)?;
    let algorithm = resolve_algorithm(args.optional("algorithm").unwrap_or("balanced"), seed)?;
    let bins: usize = args.parsed_or("bins", 10)?;
    let metric = resolve_metric(args.optional("metric").unwrap_or("emd"))?;
    let permutations: usize = args.parsed_or("permutations", 0)?;

    let scores = scorer
        .score_all(&workers)
        .map_err(|e| CliError::Run(format!("scoring with {}: {e}", scorer.name())))?;
    let config = AuditConfig {
        bins,
        distance: metric,
        shards: crate::commands::parse_shards(&args)?,
        ..Default::default()
    };
    let ctx = AuditContext::new(&workers, &scores, config)
        .map_err(|e| CliError::Run(format!("audit setup: {e}")))?;
    let result = algorithm
        .run(&ctx)
        .map_err(|e| CliError::Run(format!("{}: {e}", algorithm.name())))?;

    if args.switch("json") {
        return Ok(format!("{}\n", result.to_json(&ctx)));
    }
    let mut out = format!("scoring function: {}\n", scorer.name());
    out.push_str(&result.render(&ctx, args.switch("histograms")));
    if permutations > 0 {
        let test = permutation_test(&ctx, &result.partitioning, permutations, seed)
            .map_err(|e| CliError::Run(format!("permutation test: {e}")))?;
        out.push_str(&format!(
            "permutation test ({} replicates): null mean {:.4}, null max {:.4}, p = {:.4}\n",
            test.replicates, test.null_mean, test.null_max, test.p_value
        ));
    }
    Ok(out)
}

/// The out-of-core path: stream the audit off a paged snapshot file
/// through a bounded page cache instead of loading the population.
/// Scores come from the file, so `--function`/`--alpha` do not apply;
/// results are bit-identical to the in-memory audit of the same
/// population at every `--mem-budget`.
fn run_paged(args: &Args, path: &str) -> Result<String, CliError> {
    let seed: u64 = args.parsed_or("seed", 0xBEEF)?;
    let algorithm = resolve_algorithm(args.optional("algorithm").unwrap_or("balanced"), seed)?;
    let bins: usize = args.parsed_or("bins", 10)?;
    let metric = resolve_metric(args.optional("metric").unwrap_or("emd"))?;
    let store = crate::commands::open_paged(path, crate::commands::parse_mem_budget(args)?)?;
    let config = AuditConfig {
        bins,
        distance: metric,
        shards: crate::commands::parse_shards(args)?,
        ..Default::default()
    };
    let ctx = AuditContext::from_paged(&store, config, None, None)
        .map_err(|e| CliError::Run(format!("audit setup: {e}")))?;
    let result = algorithm
        .run(&ctx)
        .map_err(|e| CliError::Run(format!("{}: {e}", algorithm.name())))?;
    if args.switch("json") {
        return Ok(format!("{}\n", result.to_json(&ctx)));
    }
    let mut out = format!("paged store: {path} ({} rows)\n", ctx.rows());
    out.push_str(&result.render(&ctx, args.switch("histograms")));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::{argv, TempFile};

    fn population() -> TempFile {
        let tmp = TempFile::new("audit.csv");
        crate::commands::generate::run(&argv(&["--size", "120", "--out", &tmp.path_str()]))
            .unwrap();
        tmp
    }

    #[test]
    fn audits_biased_function() {
        let tmp = population();
        let out = run(&argv(&[
            "--workers",
            &tmp.path_str(),
            "--function",
            "f6",
            "--permutations",
            "19",
        ]))
        .unwrap();
        assert!(out.contains("scoring function: f6"));
        assert!(out.contains("gender=Male"));
        assert!(out.contains("permutation test"));
    }

    #[test]
    fn alpha_and_algorithm_and_metric_flags() {
        let tmp = population();
        let out = run(&argv(&[
            "--workers",
            &tmp.path_str(),
            "--alpha",
            "0.5",
            "--algorithm",
            "unbalanced",
            "--metric",
            "tv",
            "--bins",
            "20",
        ]))
        .unwrap();
        assert!(out.contains("unbalanced"));
        assert!(out.contains("total-variation"));
    }

    #[test]
    fn json_output() {
        let tmp = population();
        let out = run(&argv(&[
            "--workers",
            &tmp.path_str(),
            "--function",
            "f6",
            "--json",
        ]))
        .unwrap();
        assert!(out.trim_start().starts_with('{') && out.trim_end().ends_with('}'));
        assert!(out.contains("\"algorithm\":\"balanced\""));
        assert!(out.contains("\"unfairness\":"));
    }

    #[test]
    fn bad_flags_rejected() {
        let tmp = population();
        assert!(run(&argv(&["--workers", &tmp.path_str()])).is_err()); // no function
        assert!(run(&argv(&[
            "--workers",
            &tmp.path_str(),
            "--function",
            "f1",
            "--algorithm",
            "quantum"
        ]))
        .is_err());
        assert!(run(&argv(&[
            "--workers",
            &tmp.path_str(),
            "--function",
            "f1",
            "--metric",
            "cosine"
        ]))
        .is_err());
    }
}
