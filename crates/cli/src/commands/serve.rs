//! `fairjob serve` — start the resident audit daemon.
//!
//! Loads and scores a population exactly like `fairjob stream`, then
//! hands the [`fairjob_stream::StreamView`] to a
//! [`fairjob_serve::Server`] and blocks until the daemon drains
//! (`SHUTDOWN` from the wire, `--max-sessions` reached, or a listener
//! failure — which still drains every in-flight session before this
//! command returns an error, instead of aborting mid-request).
//!
//! The bound address is printed to stdout as soon as the listener is
//! up (port 0 resolves to an ephemeral port) and, with `--addr-file`,
//! also written to a file so scripts can discover it without parsing
//! output.

use crate::args::Args;
use crate::CliError;
use fairjob_core::AuditConfig;
use fairjob_serve::{ServeConfig, Server};
use fairjob_stream::StreamView;
use std::io::Write;
use std::sync::Arc;

/// Run the subcommand; blocks while the daemon serves and returns the
/// drain summary.
///
/// # Errors
///
/// [`CliError::Usage`] on bad flags, [`CliError::Io`] on unreadable
/// input, [`CliError::Run`] when the daemon stops on a listener
/// failure (after draining in-flight sessions).
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    let seed: u64 = args.parsed_or("seed", 0xBEEF)?;
    let algorithm: Arc<dyn fairjob_core::algorithms::Algorithm + Send + Sync> =
        crate::commands::audit::resolve_algorithm(
            args.optional("algorithm").unwrap_or("balanced"),
            seed,
        )?
        .into();
    let metric = crate::commands::audit::resolve_metric(args.optional("metric").unwrap_or("emd"))?;
    let addr = args.optional("addr").unwrap_or("127.0.0.1:0").to_string();
    let max_inflight: usize = args.parsed_or("max-inflight", 4)?;
    let max_sessions: Option<u64> = match args.optional("max-sessions") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| CliError::Usage(format!("cannot parse `--max-sessions {raw}`")))?,
        ),
    };
    let addr_file = args.optional("addr-file").map(str::to_string);

    // Cold-start from a paged snapshot file (the recorded epoch, no
    // event-log replay) or load + score a fresh population.
    let view = match args.optional("snapshot") {
        Some(path) => {
            let store =
                crate::commands::open_paged(path, crate::commands::parse_mem_budget(&args)?)?;
            StreamView::from_paged(&store)
                .map_err(|e| CliError::Run(format!("snapshot restore: {e}")))?
        }
        None => {
            let workers =
                crate::commands::load_workers(args.required("workers")?, args.optional("schema"))?;
            let scorer = crate::commands::resolve_scorer(
                args.optional("function"),
                args.optional("alpha"),
                seed,
            )?;
            let bins: usize = args.parsed_or("bins", 10)?;
            let scores = scorer
                .score_all(&workers)
                .map_err(|e| CliError::Run(format!("scoring with {}: {e}", scorer.name())))?;
            StreamView::new(workers, scores, bins)
                .map_err(|e| CliError::Run(format!("serve setup: {e}")))?
        }
    };
    // The daemon's audit config must match the view's maintained bin
    // layout — for a restored snapshot that is the writer's bin count,
    // not the `--bins` flag.
    let config = AuditConfig {
        bins: view.spec().len(),
        distance: metric,
        shards: crate::commands::parse_shards(&args)?,
        ..Default::default()
    };
    let live = view.live_count();
    let epoch = view.epoch();

    let server = Server::start(
        view,
        algorithm,
        config,
        ServeConfig {
            addr,
            max_inflight,
            max_sessions,
            seed,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| CliError::Run(format!("serve start: {e}")))?;

    // Announce the bound address eagerly — the summary string below is
    // only printed after the daemon drains.
    let bound = server.addr();
    println!("fairjob-serve listening on {bound} ({live} live workers, epoch {epoch})");
    let _ = std::io::stdout().flush();
    if let Some(path) = addr_file {
        std::fs::write(&path, format!("{bound}\n"))?;
    }

    let sessions = server
        .join()
        .map_err(|e| CliError::Run(format!("serve: {e}")))?;
    Ok(format!("serve: drained after {sessions} sessions\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::{argv, TempFile};
    use fairjob_serve::{protocol, ServeClient};
    use std::time::Duration;

    fn population(size: &str) -> TempFile {
        let csv = TempFile::new("serve.csv");
        crate::commands::generate::run(&argv(&[
            "--size",
            size,
            "--seed",
            "17",
            "--out",
            &csv.path_str(),
        ]))
        .unwrap();
        csv
    }

    #[test]
    fn serves_a_bounded_session_workload_end_to_end() {
        let csv = population("50");
        let addr_file = TempFile::new("serve.addr");
        let (csv_path, addr_path) = (csv.path_str(), addr_file.path_str());
        let daemon = std::thread::spawn(move || {
            run(&argv(&[
                "--workers",
                &csv_path,
                "--function",
                "f1",
                "--max-sessions",
                "1",
                "--addr-file",
                &addr_path,
            ]))
        });
        let addr = {
            let mut waited = 0;
            loop {
                if let Ok(text) = std::fs::read_to_string(&addr_file.0) {
                    if text.trim().parse::<std::net::SocketAddr>().is_ok() {
                        break text.trim().parse().unwrap();
                    }
                }
                waited += 1;
                assert!(waited < 500, "daemon never wrote its address");
                std::thread::sleep(Duration::from_millis(10));
            }
        };
        let mut client = ServeClient::connect(addr).unwrap();
        let audit = client.audit().unwrap();
        assert_eq!(protocol::kv(&audit, "epoch"), Some("0"));
        assert_eq!(protocol::kv(&audit, "live"), Some("50"));
        client.quit();
        let summary = daemon.join().unwrap().unwrap();
        assert!(summary.contains("drained after 1 sessions"), "{summary}");
        let _ = (csv, addr_file);
    }

    /// Spawn a one-session daemon with `extra` flags appended, wait for
    /// its address file, and return (daemon handle, bound address).
    fn spawn_daemon(
        extra: Vec<String>,
        addr_file: &TempFile,
    ) -> (
        std::thread::JoinHandle<Result<String, CliError>>,
        std::net::SocketAddr,
    ) {
        let addr_path = addr_file.path_str();
        let daemon = std::thread::spawn(move || {
            let mut full = extra;
            full.extend(["--max-sessions".into(), "1".into()]);
            full.extend(["--addr-file".into(), addr_path]);
            run(&full)
        });
        let addr = {
            let mut waited = 0;
            loop {
                if let Ok(text) = std::fs::read_to_string(&addr_file.0) {
                    if let Ok(addr) = text.trim().parse::<std::net::SocketAddr>() {
                        break addr;
                    }
                }
                waited += 1;
                assert!(waited < 500, "daemon never wrote its address");
                std::thread::sleep(Duration::from_millis(10));
            }
        };
        (daemon, addr)
    }

    /// Cold-starting from a paged snapshot is indistinguishable from a
    /// fresh boot over the same population: same epoch, same live
    /// count, and the first AUDIT returns the same unfairness bits —
    /// with no event replay and no CSV anywhere near the restored
    /// daemon.
    #[test]
    fn snapshot_restore_audits_bit_identically_to_fresh_boot() {
        let csv = population("60");
        let snapshot = TempFile::new("serve.fjp");
        crate::commands::snapshot::run(&argv(&[
            "--workers",
            &csv.path_str(),
            "--function",
            "f1",
            "--out",
            &snapshot.path_str(),
        ]))
        .unwrap();

        let audit_of = |extra: Vec<String>| {
            let addr_file = TempFile::new("serve.addr");
            let (daemon, addr) = spawn_daemon(extra, &addr_file);
            let mut client = ServeClient::connect(addr).unwrap();
            let audit = client.audit().unwrap();
            client.quit();
            daemon.join().unwrap().unwrap();
            audit
        };
        let fresh = audit_of(argv(&["--workers", &csv.path_str(), "--function", "f1"]));
        let restored = audit_of(argv(&["--snapshot", &snapshot.path_str()]));

        for key in ["epoch", "live", "unfairness_bits"] {
            assert_eq!(
                protocol::kv(&restored, key),
                protocol::kv(&fresh, key),
                "{key} diverged after snapshot restore:\nfresh:    {fresh}\nrestored: {restored}"
            );
        }
        assert_eq!(protocol::kv(&restored, "live"), Some("60"));
    }

    #[test]
    fn rejects_bad_flags_as_usage() {
        assert!(matches!(
            run(&argv(&[
                "--workers",
                "x.csv",
                "--function",
                "f1",
                "--max-sessions",
                "many"
            ])),
            Err(CliError::Io(_) | CliError::Usage(_))
        ));
        let csv = population("30");
        assert!(matches!(
            run(&argv(&[
                "--workers",
                &csv.path_str(),
                "--function",
                "f1",
                "--max-sessions",
                "many"
            ])),
            Err(CliError::Usage(_))
        ));
    }
}
