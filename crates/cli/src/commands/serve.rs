//! `fairjob serve` — start the resident audit daemon.
//!
//! Loads and scores a population exactly like `fairjob stream`, then
//! hands the [`fairjob_stream::StreamView`] to a
//! [`fairjob_serve::Server`] and blocks until the daemon drains
//! (`SHUTDOWN` from the wire, `--max-sessions` reached, or a listener
//! failure — which still drains every in-flight session before this
//! command returns an error, instead of aborting mid-request).
//!
//! The bound address is printed to stdout as soon as the listener is
//! up (port 0 resolves to an ephemeral port) and, with `--addr-file`,
//! also written to a file so scripts can discover it without parsing
//! output.

use crate::args::Args;
use crate::CliError;
use fairjob_core::AuditConfig;
use fairjob_serve::{ServeConfig, Server};
use fairjob_stream::StreamView;
use std::io::Write;
use std::sync::Arc;

/// Run the subcommand; blocks while the daemon serves and returns the
/// drain summary.
///
/// # Errors
///
/// [`CliError::Usage`] on bad flags, [`CliError::Io`] on unreadable
/// input, [`CliError::Run`] when the daemon stops on a listener
/// failure (after draining in-flight sessions).
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    let workers =
        crate::commands::load_workers(args.required("workers")?, args.optional("schema"))?;
    let seed: u64 = args.parsed_or("seed", 0xBEEF)?;
    let scorer =
        crate::commands::resolve_scorer(args.optional("function"), args.optional("alpha"), seed)?;
    let algorithm: Arc<dyn fairjob_core::algorithms::Algorithm + Send + Sync> =
        crate::commands::audit::resolve_algorithm(
            args.optional("algorithm").unwrap_or("balanced"),
            seed,
        )?
        .into();
    let bins: usize = args.parsed_or("bins", 10)?;
    let metric = crate::commands::audit::resolve_metric(args.optional("metric").unwrap_or("emd"))?;
    let addr = args.optional("addr").unwrap_or("127.0.0.1:0").to_string();
    let max_inflight: usize = args.parsed_or("max-inflight", 4)?;
    let max_sessions: Option<u64> = match args.optional("max-sessions") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| CliError::Usage(format!("cannot parse `--max-sessions {raw}`")))?,
        ),
    };
    let addr_file = args.optional("addr-file").map(str::to_string);

    let scores = scorer
        .score_all(&workers)
        .map_err(|e| CliError::Run(format!("scoring with {}: {e}", scorer.name())))?;
    let config = AuditConfig {
        bins,
        distance: metric,
        shards: crate::commands::parse_shards(&args)?,
        ..Default::default()
    };
    let view = StreamView::new(workers, scores, bins)
        .map_err(|e| CliError::Run(format!("serve setup: {e}")))?;
    let live = view.live_count();

    let server = Server::start(
        view,
        algorithm,
        config,
        ServeConfig {
            addr,
            max_inflight,
            max_sessions,
            seed,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| CliError::Run(format!("serve start: {e}")))?;

    // Announce the bound address eagerly — the summary string below is
    // only printed after the daemon drains.
    let bound = server.addr();
    println!("fairjob-serve listening on {bound} ({live} live workers)");
    let _ = std::io::stdout().flush();
    if let Some(path) = addr_file {
        std::fs::write(&path, format!("{bound}\n"))?;
    }

    let sessions = server
        .join()
        .map_err(|e| CliError::Run(format!("serve: {e}")))?;
    Ok(format!("serve: drained after {sessions} sessions\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::testutil::{argv, TempFile};
    use fairjob_serve::{protocol, ServeClient};
    use std::time::Duration;

    fn population(size: &str) -> TempFile {
        let csv = TempFile::new("serve.csv");
        crate::commands::generate::run(&argv(&[
            "--size",
            size,
            "--seed",
            "17",
            "--out",
            &csv.path_str(),
        ]))
        .unwrap();
        csv
    }

    #[test]
    fn serves_a_bounded_session_workload_end_to_end() {
        let csv = population("50");
        let addr_file = TempFile::new("serve.addr");
        let (csv_path, addr_path) = (csv.path_str(), addr_file.path_str());
        let daemon = std::thread::spawn(move || {
            run(&argv(&[
                "--workers",
                &csv_path,
                "--function",
                "f1",
                "--max-sessions",
                "1",
                "--addr-file",
                &addr_path,
            ]))
        });
        let addr = {
            let mut waited = 0;
            loop {
                if let Ok(text) = std::fs::read_to_string(&addr_file.0) {
                    if text.trim().parse::<std::net::SocketAddr>().is_ok() {
                        break text.trim().parse().unwrap();
                    }
                }
                waited += 1;
                assert!(waited < 500, "daemon never wrote its address");
                std::thread::sleep(Duration::from_millis(10));
            }
        };
        let mut client = ServeClient::connect(addr).unwrap();
        let audit = client.audit().unwrap();
        assert_eq!(protocol::kv(&audit, "epoch"), Some("0"));
        assert_eq!(protocol::kv(&audit, "live"), Some("50"));
        client.quit();
        let summary = daemon.join().unwrap().unwrap();
        assert!(summary.contains("drained after 1 sessions"), "{summary}");
        let _ = (csv, addr_file);
    }

    #[test]
    fn rejects_bad_flags_as_usage() {
        assert!(matches!(
            run(&argv(&[
                "--workers",
                "x.csv",
                "--function",
                "f1",
                "--max-sessions",
                "many"
            ])),
            Err(CliError::Io(_) | CliError::Usage(_))
        ));
        let csv = population("30");
        assert!(matches!(
            run(&argv(&[
                "--workers",
                &csv.path_str(),
                "--function",
                "f1",
                "--max-sessions",
                "many"
            ])),
            Err(CliError::Usage(_))
        ));
    }
}
