//! The `fairjob` binary: thin wrapper around [`fairjob_cli::dispatch`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match fairjob_cli::dispatch(&argv) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("fairjob: {err}");
            std::process::exit(err.exit_code());
        }
    }
}
