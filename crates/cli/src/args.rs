//! Dependency-free `--flag value` argument parsing.

use crate::CliError;
use std::collections::BTreeMap;

/// Parsed arguments: `--key value` options and bare `--switch` flags.
#[derive(Debug, Default)]
pub struct Args {
    options: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Flags that take no value, per subcommand surface.
const SWITCHES: &[&str] = &["correlated", "histograms", "json", "cold-check", "help"];

impl Args {
    /// Parse an argument list.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] on non-flag tokens, repeated flags or a
    /// trailing flag with no value.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            let Some(name) = token.strip_prefix("--") else {
                return Err(CliError::Usage(format!("unexpected argument `{token}`")));
            };
            if SWITCHES.contains(&name) {
                args.switches.push(name.to_string());
                i += 1;
                continue;
            }
            let Some(value) = argv.get(i + 1) else {
                return Err(CliError::Usage(format!("flag `--{name}` needs a value")));
            };
            if args
                .options
                .insert(name.to_string(), value.clone())
                .is_some()
            {
                return Err(CliError::Usage(format!("flag `--{name}` given twice")));
            }
            i += 2;
        }
        Ok(args)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] when absent.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.options
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required flag `--{name}`")))
    }

    /// An optional string option.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// An optional parsed option with a default.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] when present but unparsable.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("cannot parse `--{name} {raw}`"))),
        }
    }

    /// Is a bare switch present?
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_and_switches() {
        let a = Args::parse(&argv(&["--size", "100", "--correlated", "--out", "x.csv"])).unwrap();
        assert_eq!(a.required("size").unwrap(), "100");
        assert_eq!(a.required("out").unwrap(), "x.csv");
        assert!(a.switch("correlated"));
        assert!(!a.switch("histograms"));
        assert_eq!(a.parsed_or("size", 0usize).unwrap(), 100);
        assert_eq!(a.parsed_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Args::parse(&argv(&["positional"])).is_err());
        assert!(Args::parse(&argv(&["--size"])).is_err());
        assert!(Args::parse(&argv(&["--size", "1", "--size", "2"])).is_err());
    }

    #[test]
    fn missing_required_reported() {
        let a = Args::parse(&argv(&[])).unwrap();
        let err = a.required("workers").unwrap_err();
        assert!(err.to_string().contains("--workers"));
    }

    #[test]
    fn parse_failure_reported() {
        let a = Args::parse(&argv(&["--bins", "lots"])).unwrap();
        assert!(a.parsed_or("bins", 10usize).is_err());
    }
}
