//! Property tests: pretty-print → re-parse round-trip identity over
//! random ASTs, and planner determinism (same query + same store ⇒
//! bit-identical `QueryResult` rows across engine thread counts).

use fairjob_fairql::ast::{AuditStmt, Condition, Ident, SelectItem, SelectStmt, Statement};
use fairjob_fairql::{parse, Defaults, QueryOutput, Session, Source, Value};
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};
use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};
use fairjob_store::ShardPolicy;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// Round-trip: print(parse(print(ast))) == print(ast) and the re-parsed
// AST equals the original (Ident equality ignores offsets).
//
// The vendored proptest has no recursive/enum strategies, so the AST is
// generated from a seed with a hand-rolled generator. Identifiers are
// drawn from a keyword-free pool — a column literally named `where`
// would need quoting the grammar does not have.
// ---------------------------------------------------------------------

const NAMES: &[&str] = &[
    "gender",
    "country",
    "language",
    "ethnicity",
    "yob_band",
    "experience_band",
    "approval_rate",
    "language_test",
    "x",
    "very_long_column_name",
];
const VALUES: &[&str] = &["Male", "Female", "America", "India", "Other", "English"];
const ALGORITHMS: &[&str] = &["balanced", "r-balanced", "unbalanced", "all-attributes"];
const METRICS: &[&str] = &["emd", "emd-exact", "tv", "jsd"];

fn gen_ident(rng: &mut StdRng) -> Ident {
    Ident::new(NAMES[rng.gen_range(0..NAMES.len())])
}

fn gen_filter(rng: &mut StdRng) -> Vec<Condition> {
    (0..rng.gen_range(0..3))
        .map(|_| Condition {
            attr: gen_ident(rng),
            value: VALUES[rng.gen_range(0..VALUES.len())].to_string(),
            value_at: 0,
        })
        .collect()
}

fn gen_audit(rng: &mut StdRng) -> AuditStmt {
    AuditStmt {
        source: Ident::new("workers"),
        filter: gen_filter(rng),
        protect: (0..rng.gen_range(0..3)).map(|_| gen_ident(rng)).collect(),
        algorithm: (rng.gen_range(0..2) == 0)
            .then(|| Ident::new(ALGORITHMS[rng.gen_range(0..ALGORITHMS.len())])),
        metric: (rng.gen_range(0..2) == 0)
            .then(|| Ident::new(METRICS[rng.gen_range(0..METRICS.len())])),
        bins: (rng.gen_range(0..2) == 0).then(|| rng.gen_range(1..64)),
    }
}

fn gen_item(rng: &mut StdRng) -> SelectItem {
    match rng.gen_range(0..6) {
        0 => SelectItem::Star,
        1 => SelectItem::Count,
        2 => SelectItem::Mean(gen_ident(rng)),
        3 => SelectItem::Min(gen_ident(rng)),
        4 => SelectItem::Max(gen_ident(rng)),
        _ => SelectItem::Column(gen_ident(rng)),
    }
}

fn gen_select(rng: &mut StdRng) -> SelectStmt {
    SelectStmt {
        items: (0..rng.gen_range(1..4)).map(|_| gen_item(rng)).collect(),
        from: Ident::new("workers"),
        filter: gen_filter(rng),
        group_by: (rng.gen_range(0..2) == 0).then(|| gen_ident(rng)),
        limit: (rng.gen_range(0..2) == 0).then(|| rng.gen_range(0..1000)),
    }
}

fn gen_statement(rng: &mut StdRng) -> Statement {
    let inner = match rng.gen_range(0..4) {
        0 => Statement::Audit(gen_audit(rng)),
        1 => Statement::Select(gen_select(rng)),
        2 => Statement::Describe(None),
        _ => Statement::Describe(Some(gen_ident(rng))),
    };
    if rng.gen_range(0..3) == 0 {
        Statement::Explain {
            analyze: rng.gen_range(0..2) == 0,
            inner: Box::new(inner),
        }
    } else {
        inner
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Canonical text re-parses to the same AST, and printing is a
    /// fixpoint.
    #[test]
    fn pretty_print_reparses_to_the_same_ast(seed in 0u64..1 << 48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let stmt = gen_statement(&mut rng);
        let printed = stmt.to_string();
        let reparsed = parse(&printed);
        prop_assert!(reparsed.is_ok(), "`{}` failed to re-parse: {:?}", printed, reparsed);
        let reparsed = reparsed.unwrap();
        prop_assert_eq!(reparsed.len(), 1);
        prop_assert_eq!(&reparsed[0], &stmt, "`{}` re-parsed differently", printed);
        prop_assert_eq!(reparsed[0].to_string(), printed);
    }

    /// Scripts of several statements round-trip through `;` joins too.
    #[test]
    fn scripts_round_trip(seed in 0u64..1 << 48, count in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let stmts: Vec<Statement> = (0..count).map(|_| gen_statement(&mut rng)).collect();
        let printed = stmts
            .iter()
            .map(Statement::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        let reparsed = parse(&printed).unwrap();
        prop_assert_eq!(reparsed, stmts);
    }
}

// ---------------------------------------------------------------------
// Planner determinism: the same query over the same store produces
// bit-identical `QueryResult` rows regardless of the engine's thread
// count (the engine guarantees value determinism; this pins the whole
// query pipeline on top of it).
// ---------------------------------------------------------------------

fn value_bits(v: &Value) -> String {
    match v {
        Value::Float(x) => format!("f{:016x}", x.to_bits()),
        other => format!("{other:?}"),
    }
}

fn run_with_threads(query: &str, size: usize, threads: usize) -> Vec<String> {
    let mut table = generate_uniform(size, 23);
    bucketise_numeric_protected(&mut table).unwrap();
    let scores = LinearScore::alpha("f1", 0.5).score_all(&table).unwrap();
    let defaults = Defaults {
        threads: Some(threads),
        ..Defaults::default()
    };
    let mut session = Session::new(
        Source::Batch {
            table: &table,
            scores: &scores,
        },
        defaults,
    )
    .unwrap();
    let outputs = session.execute(query).unwrap();
    outputs
        .iter()
        .flat_map(|out| match out {
            QueryOutput::Rows(rows) => rows
                .rows
                .iter()
                .flat_map(|r| r.iter().map(value_bits))
                .collect::<Vec<_>>(),
            QueryOutput::Audit { summary, rows } => {
                let mut cells: Vec<String> =
                    vec![format!("bits{:016x}", summary.unfairness_bits())];
                cells.extend(rows.rows.iter().flat_map(|r| r.iter().map(value_bits)));
                cells
            }
            QueryOutput::Explain { text } => vec![text.clone()],
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same query + same store ⇒ bit-identical results at 1, 2, and 3
    /// engine threads.
    #[test]
    fn results_are_bit_identical_across_thread_counts(
        size in 120usize..260,
        which in 0usize..3,
    ) {
        let query = match which {
            0 => "AUDIT workers PROTECT gender, country",
            1 => "AUDIT workers WHERE country = 'India' METRIC emd-exact BINS 8",
            _ => "SELECT gender, COUNT(*), MEAN(approval_rate) FROM workers GROUP BY gender",
        };
        let baseline = run_with_threads(query, size, 1);
        for threads in [2usize, 3] {
            let other = run_with_threads(query, size, threads);
            prop_assert_eq!(&baseline, &other, "threads={} diverged", threads);
        }
    }
}

// ---------------------------------------------------------------------
// Shard-layout parity through the whole query pipeline: EXPLAIN ANALYZE
// must report identical actual counters under every shard policy, save
// for the two shard-work meters (which are layout-dependent by
// definition) and the plan's own `shards=` label.
// ---------------------------------------------------------------------

/// Run EXPLAIN ANALYZE and strip the tokens allowed to differ between
/// shard layouts (the `shards=`/`threads=` plan labels and the two
/// shard-work counters) or between any two runs (`elapsed_us=`).
fn explain_analyze_lines(
    query: &str,
    size: usize,
    shards: ShardPolicy,
    threads: usize,
) -> Vec<String> {
    let mut table = generate_uniform(size, 23);
    bucketise_numeric_protected(&mut table).unwrap();
    let scores = LinearScore::alpha("f1", 0.5).score_all(&table).unwrap();
    let defaults = Defaults {
        threads: Some(threads),
        shards,
        ..Defaults::default()
    };
    let mut session = Session::new(
        Source::Batch {
            table: &table,
            scores: &scores,
        },
        defaults,
    )
    .unwrap();
    let outputs = session.execute(query).unwrap();
    let [QueryOutput::Explain { text }] = outputs.as_slice() else {
        panic!("expected one EXPLAIN output");
    };
    const VARIABLE: &[&str] = &[
        "shards=",
        "threads=",
        "shard_tasks=",
        "rows_classified_parallel=",
        "elapsed_us=",
    ];
    text.lines()
        .map(|line| {
            line.split(' ')
                .filter(|tok| !VARIABLE.iter().any(|p| tok.starts_with(p)))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// EXPLAIN ANALYZE counter parity: every actual counter except the
    /// shard-work meters is identical across shard policies and thread
    /// counts.
    #[test]
    fn explain_analyze_counters_are_shard_layout_independent(
        size in 120usize..240,
        which in 0usize..2,
    ) {
        let query = match which {
            0 => "EXPLAIN ANALYZE AUDIT workers PROTECT gender, country",
            _ => "EXPLAIN ANALYZE AUDIT workers WHERE country = 'India' BINS 8",
        };
        let baseline = explain_analyze_lines(query, size, ShardPolicy::Disabled, 1);
        for shards in [ShardPolicy::Fixed(1), ShardPolicy::Fixed(3), ShardPolicy::Fixed(7), ShardPolicy::Auto] {
            for threads in [1usize, 2, 8] {
                let other = explain_analyze_lines(query, size, shards, threads);
                prop_assert_eq!(
                    &baseline, &other,
                    "EXPLAIN ANALYZE diverged at shards={} threads={}", shards, threads
                );
            }
        }
    }
}
