//! End-to-end FairQL tests: equivalence with direct audit runs, the
//! planner's pushdown contract, warm-cache hand-off, and the
//! `EXPLAIN ANALYZE` counter attribution.

use fairjob_core::algorithms::by_name;
use fairjob_core::{AuditConfig, AuditContext, EngineStats};
use fairjob_fairql::physical::{PhysicalPlan, PlannerOptions, ScanKind};
use fairjob_fairql::{parse, Defaults, QueryError, QueryOutput, Session, Source, Value};
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};
use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};
use fairjob_store::Table;
use fairjob_stream::StreamView;

fn population(size: usize) -> (Table, Vec<f64>) {
    let mut table = generate_uniform(size, 7);
    bucketise_numeric_protected(&mut table).unwrap();
    let scores = LinearScore::alpha("f1", 0.5).score_all(&table).unwrap();
    (table, scores)
}

fn session<'a>(table: &'a Table, scores: &'a [f64]) -> Session<'a> {
    Session::new(Source::Batch { table, scores }, Defaults::default()).unwrap()
}

fn direct_audit(table: &Table, scores: &[f64]) -> fairjob_core::AuditResult {
    let ctx = AuditContext::new(table, scores, AuditConfig::default()).unwrap();
    by_name("balanced", 0xBEEF).unwrap().run(&ctx).unwrap()
}

fn assert_stats_eq(a: &EngineStats, b: &EngineStats) {
    for ((name, x), (_, y)) in a.as_pairs().iter().zip(b.as_pairs().iter()) {
        assert_eq!(x, y, "counter {name} diverged");
    }
}

#[test]
fn unfiltered_audit_is_bit_identical_to_direct_run() {
    let (table, scores) = population(400);
    let direct = direct_audit(&table, &scores);
    let mut session = session(&table, &scores);
    let outputs = session.execute("AUDIT workers").unwrap();
    let QueryOutput::Audit { summary, rows } = &outputs[0] else {
        panic!("not an audit output")
    };
    assert_eq!(summary.unfairness_bits(), direct.unfairness.to_bits());
    assert_eq!(summary.candidates_evaluated, direct.candidates_evaluated);
    assert_eq!(summary.partitions, direct.partitioning.len());
    assert_stats_eq(&summary.engine, &direct.engine);
    assert_eq!(rows.rows.len(), direct.partitioning.len());
}

#[test]
fn explain_analyze_reports_the_direct_runs_counters() {
    let (table, scores) = population(400);
    let direct = direct_audit(&table, &scores);
    let mut session = session(&table, &scores);
    let outputs = session.execute("EXPLAIN ANALYZE AUDIT workers").unwrap();
    let QueryOutput::Explain { text } = &outputs[0] else {
        panic!("not an explain output")
    };
    assert!(
        text.contains(&format!(
            "unfairness_bits={:016x}",
            direct.unfairness.to_bits()
        )),
        "bits missing from:\n{text}"
    );
    for (name, value) in direct.engine.as_pairs() {
        assert!(
            text.contains(&format!(" {name}={value}")),
            "{name}={value} missing from:\n{text}"
        );
    }
}

#[test]
fn snapshot_audit_matches_snapshot_context_run() {
    let (table, scores) = population(300);
    let view = StreamView::new(table, scores, 10).unwrap();
    let snapshot = view.snapshot();
    let ctx = snapshot.context(AuditConfig::default()).unwrap();
    let direct = by_name("balanced", 0xBEEF).unwrap().run(&ctx).unwrap();

    let mut session = Session::new(Source::Snapshot(&snapshot), Defaults::default()).unwrap();
    let outputs = session.execute("AUDIT workers").unwrap();
    let QueryOutput::Audit { summary, .. } = &outputs[0] else {
        panic!("not an audit output")
    };
    assert_eq!(summary.unfairness_bits(), direct.unfairness.to_bits());
    assert_stats_eq(&summary.engine, &direct.engine);
}

#[test]
fn filtered_audit_audits_only_matching_rows() {
    let (table, scores) = population(500);
    let mut session = session(&table, &scores);
    let outputs = session
        .execute("AUDIT workers WHERE country = 'India' PROTECT gender, language")
        .unwrap();
    let QueryOutput::Audit { summary, rows } = &outputs[0] else {
        panic!("not an audit output")
    };
    let india = table
        .column_by_name("country")
        .unwrap()
        .as_categorical()
        .unwrap()
        .iter()
        .filter(|&&c| c == 1)
        .count();
    assert_eq!(summary.population, india);
    let total: i64 = rows
        .rows
        .iter()
        .map(|r| match &r[1] {
            Value::Int(n) => *n,
            other => panic!("unexpected {other:?}"),
        })
        .sum();
    assert_eq!(total as usize, india);
}

#[test]
fn repeated_audit_reuses_warm_caches() {
    let (table, scores) = population(400);
    let mut session = session(&table, &scores);
    let outputs = session.execute("AUDIT workers; AUDIT workers").unwrap();
    let (QueryOutput::Audit { summary: cold, .. }, QueryOutput::Audit { summary: warm, .. }) =
        (&outputs[0], &outputs[1])
    else {
        panic!("not audit outputs")
    };
    assert_eq!(cold.unfairness_bits(), warm.unfairness_bits());
    assert_eq!(warm.engine.splits_computed, 0, "warm run re-split");
    assert!(warm.engine.split_cache_hits >= cold.engine.splits_computed);
    assert!(warm.engine.distances_computed < cold.engine.distances_computed);
}

#[test]
fn changing_the_filter_invalidates_warm_caches() {
    let (table, scores) = population(400);
    let mut session = session(&table, &scores);
    let outputs = session
        .execute("AUDIT workers; AUDIT workers WHERE country = 'India'")
        .unwrap();
    let QueryOutput::Audit { summary, .. } = &outputs[1] else {
        panic!("not an audit output")
    };
    // A different population must not be served from the old caches.
    assert!(summary.engine.splits_computed > 0);
}

#[test]
fn pushed_scan_examines_fewer_rows_than_naive() {
    let (table, scores) = population(600);
    let query = "SELECT COUNT(*) FROM workers WHERE country = 'India'";

    let mut pushed = session(&table, &scores);
    let analyzed =
        fairjob_fairql::analyze_statement(&parse(query).unwrap()[0], table.schema()).unwrap();
    let plan = pushed.plan_of(&analyzed);
    let PhysicalPlan::Select { scan, .. } = &plan else {
        panic!("not a select plan")
    };
    assert!(matches!(scan.kind, ScanKind::Index(_)));
    assert!(scan.est_examined * 2 <= table.len());

    let mut naive = session(&table, &scores).with_planner_options(PlannerOptions {
        push_predicates: false,
    });
    let a = pushed.execute(query).unwrap();
    let b = naive.execute(query).unwrap();
    let (QueryOutput::Rows(ra), QueryOutput::Rows(rb)) = (&a[0], &b[0]) else {
        panic!("not row outputs")
    };
    assert_eq!(ra, rb, "pushdown changed the result");
}

#[test]
fn select_group_by_counts_cover_the_population() {
    let (table, scores) = population(250);
    let mut session = session(&table, &scores);
    let outputs = session
        .execute("SELECT gender, COUNT(*) FROM workers GROUP BY gender")
        .unwrap();
    let QueryOutput::Rows(result) = &outputs[0] else {
        panic!("not rows")
    };
    assert_eq!(result.columns, vec!["gender", "count"]);
    let total: i64 = result
        .rows
        .iter()
        .map(|r| match &r[1] {
            Value::Int(n) => *n,
            other => panic!("unexpected {other:?}"),
        })
        .sum();
    assert_eq!(total as usize, table.len());
}

#[test]
fn select_aggregates_and_limit() {
    let (table, scores) = population(120);
    let mut session = session(&table, &scores);
    let outputs = session
        .execute(
            "SELECT COUNT(*), MEAN(approval_rate), MIN(approval_rate), MAX(approval_rate) \
             FROM workers; \
             SELECT gender FROM workers LIMIT 5",
        )
        .unwrap();
    let QueryOutput::Rows(aggs) = &outputs[0] else {
        panic!("not rows")
    };
    assert_eq!(aggs.rows.len(), 1);
    assert_eq!(aggs.rows[0][0], Value::Int(table.len() as i64));
    let (Value::Float(min), Value::Float(max)) = (&aggs.rows[0][2], &aggs.rows[0][3]) else {
        panic!("min/max not floats")
    };
    assert!(min <= max);
    let QueryOutput::Rows(limited) = &outputs[1] else {
        panic!("not rows")
    };
    assert_eq!(limited.rows.len(), 5);
}

#[test]
fn describe_reports_cardinality_and_split_bins() {
    let (table, scores) = population(150);
    let mut session = session(&table, &scores);
    let outputs = session.execute("DESCRIBE gender").unwrap();
    let QueryOutput::Rows(result) = &outputs[0] else {
        panic!("not rows")
    };
    assert_eq!(result.rows.len(), 1);
    let row = &result.rows[0];
    assert_eq!(row[0], Value::Str("gender".to_string()));
    assert_eq!(row[1], Value::Str("protected".to_string()));
    assert_eq!(row[3], Value::Int(2));
    assert_eq!(row[4], Value::Int(2));
}

#[test]
fn explain_without_analyze_does_not_execute() {
    let (table, scores) = population(200);
    let mut session = session(&table, &scores);
    let outputs = session
        .execute("EXPLAIN AUDIT workers WHERE country = 'India'")
        .unwrap();
    let QueryOutput::Explain { text } = &outputs[0] else {
        panic!("not an explain output")
    };
    assert!(text.contains("IndexScan"), "{text}");
    assert!(text.contains("est:"), "{text}");
    assert!(!text.contains("actual:"), "{text}");
}

#[test]
fn errors_carry_byte_offsets_and_classes() {
    let (table, scores) = population(60);
    let mut session = session(&table, &scores);
    assert!(matches!(
        session.execute("AUDIT workers WHERE gender = 'Robot'"),
        Err(QueryError::Parse { offset: 29, .. })
    ));
    assert!(matches!(
        session.execute("FROB workers"),
        Err(QueryError::Parse { offset: 0, .. })
    ));
    // A LIMIT 0 match is still a well-formed query, not an error.
    assert!(session
        .execute("SELECT COUNT(*) FROM workers WHERE gender = 'Male' LIMIT 0")
        .is_ok());
}
