//! FairQL over a paged source: zone-mapped predicate pushdown must
//! actually skip pages (and say so in `EXPLAIN ANALYZE`), audits must
//! stay bit-identical to the in-memory session over the same rows, and
//! row-returning statements must fail cleanly rather than panic.

use fairjob_core::algorithms::by_name;
use fairjob_fairql::{Defaults, QueryError, QueryOutput, Session, Source};
use fairjob_marketplace::scoring::{LinearScore, ScoringFunction};
use fairjob_marketplace::{bucketise_numeric_protected, generate_uniform};
use fairjob_store::paged::write_paged;
use fairjob_store::{PagedStore, Table};
use std::path::PathBuf;
use std::sync::Arc;

/// A population **clustered on `gender`** (rows sorted by its code), so
/// the per-page zone maps become selective: whole pages hold a single
/// gender and a `WHERE gender = …` scan can prune them. Sized so every
/// column spans several pages.
fn clustered_population(size: usize) -> (Table, Vec<f64>) {
    let mut table = generate_uniform(size, 7);
    bucketise_numeric_protected(&mut table).unwrap();
    let scores = LinearScore::alpha("f1", 0.5).score_all(&table).unwrap();
    let gender = table.schema().index_of("gender").unwrap();
    let mut order: Vec<usize> = (0..table.len()).collect();
    order.sort_by_key(|&row| table.code_at(gender, row).unwrap());
    let mut sorted = Table::new(table.schema().clone());
    let mut sorted_scores = Vec::with_capacity(size);
    for &row in &order {
        sorted.push_row(&table.row(row).unwrap()).unwrap();
        sorted_scores.push(scores[row]);
    }
    (sorted, sorted_scores)
}

/// A scratch paged file, removed on drop.
struct TempPaged(PathBuf);

impl TempPaged {
    fn write(tag: &str, table: &Table, scores: &[f64]) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "fairjob-fairql-paged-{}-{tag}.fjp",
            std::process::id()
        ));
        write_paged(&path, table, Some(scores), None, 0, 10).unwrap();
        TempPaged(path)
    }
}

impl Drop for TempPaged {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Session defaults with the (cheaper) unbalanced search.
fn defaults() -> Defaults {
    Defaults {
        algorithm: Arc::from(by_name("unbalanced", 0xBEEF).unwrap()),
        ..Defaults::default()
    }
}

fn counter(text: &str, name: &str) -> u64 {
    let key = format!(" {name}=");
    let at = text
        .find(&key)
        .unwrap_or_else(|| panic!("no {name} in:\n{text}"));
    text[at + key.len()..]
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn zone_maps_skip_pages_and_explain_analyze_reports_it() {
    let (table, scores) = clustered_population(40_000);
    let tmp = TempPaged::write("zones", &table, &scores);
    let store = PagedStore::open(&tmp.0, 1 << 22).unwrap();
    let mut session = Session::new(Source::Paged(&store), defaults()).unwrap();

    // The plan itself names the zone-mapped access path.
    let outputs = session
        .execute("EXPLAIN AUDIT workers WHERE gender = 'Female'")
        .unwrap();
    let QueryOutput::Explain { text } = &outputs[0] else {
        panic!("not an explain output")
    };
    assert!(text.contains("ZoneMapScan"), "{text}");

    // Running it skips at least one page: the data is clustered on
    // gender, so some gender pages hold only the other value and their
    // zone map rules the wanted code out without a read.
    let outputs = session
        .execute("EXPLAIN ANALYZE AUDIT workers WHERE gender = 'Female'")
        .unwrap();
    let QueryOutput::Explain { text } = &outputs[0] else {
        panic!("not an explain output")
    };
    let skipped = counter(text, "pages_skipped");
    let scanned = counter(text, "pages_scanned");
    assert!(skipped >= 1, "no pages skipped:\n{text}");
    assert!(scanned >= 1, "no pages scanned:\n{text}");
    // Truthfulness: the audit streams each live column once, so the
    // total page traffic stays within a couple of passes over the file.
    assert!(
        (skipped + scanned) as usize <= 2 * store.directory_len(),
        "implausible page accounting (skipped {skipped} + scanned {scanned} \
         vs {} directory pages):\n{text}",
        store.directory_len()
    );
}

#[test]
fn paged_audit_is_bit_identical_to_the_batch_session() {
    let (table, scores) = clustered_population(20_000);
    let tmp = TempPaged::write("parity", &table, &scores);
    let store = PagedStore::open(&tmp.0, 1 << 20).unwrap();

    let query = "AUDIT workers WHERE gender = 'Female'";
    let mut batch = Session::new(
        Source::Batch {
            table: &table,
            scores: &scores,
        },
        defaults(),
    )
    .unwrap();
    let batch_out = batch.execute(query).unwrap();
    let QueryOutput::Audit { summary: want, .. } = &batch_out[0] else {
        panic!("not an audit output")
    };

    let mut paged = Session::new(Source::Paged(&store), defaults()).unwrap();
    let paged_out = paged.execute(query).unwrap();
    let QueryOutput::Audit { summary: got, .. } = &paged_out[0] else {
        panic!("not an audit output")
    };
    assert_eq!(got.unfairness_bits(), want.unfairness_bits());
    assert_eq!(got.partitions, want.partitions);
    assert_eq!(got.candidates_evaluated, want.candidates_evaluated);
}

#[test]
fn row_returning_statements_fail_cleanly_on_paged_sources() {
    let (table, scores) = clustered_population(100);
    let tmp = TempPaged::write("rows", &table, &scores);
    let store = PagedStore::open(&tmp.0, 1 << 20).unwrap();
    let mut session = Session::new(Source::Paged(&store), defaults()).unwrap();
    for query in [
        "SELECT gender, COUNT(*) FROM workers GROUP BY gender",
        "DESCRIBE gender",
    ] {
        match session.execute(query) {
            Err(QueryError::Exec(message)) => {
                assert!(message.contains("paged"), "{message}")
            }
            other => panic!("expected a clean exec error, got {other:?}"),
        }
    }
}
