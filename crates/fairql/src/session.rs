//! The FairQL session: parse → analyze → plan → execute.
//!
//! A [`Session`] borrows a data source (a batch table + scores, or a
//! published [`StreamSnapshot`]) and executes scripts against it. Audit
//! execution routes through the exact same [`AuditContext`] entry
//! points as a direct `fairjob audit` / serve `AUDIT` run, so an
//! unfiltered `AUDIT workers` is **bit-identical** to the direct run —
//! same `unfairness` bits, same [`EngineStats`] counters.
//!
//! Between statements the session keeps the engine's caches warm: a
//! repeated audit shape (same source epoch, same `WHERE`, same bins,
//! metric, and size floor) re-adopts the previous run's distance memo
//! and split cache, so `EXPLAIN ANALYZE` on the second statement shows
//! `split_cache_hits`/`cache_hits` climbing instead of recomputation.
//! The caches are keyed by partition-predicate fingerprints, which do
//! not encode the population — reusing them across a *different*
//! filter or epoch would alias, so the warm hand-off is gated on an
//! exact [`CacheKey`] match and dropped otherwise.

use crate::analyze::{analyze, Analyzed, AnalyzedAudit, AnalyzedSelect, OutItem};
use crate::error::QueryError;
use crate::logical;
use crate::parse::parse;
use crate::physical::{
    plan, Actuals, AuditActuals, AuditNode, Catalog, PhysicalPlan, PlanDefaults, PlannerOptions,
    ScanKind, ScanNode,
};
use crate::result::{AuditSummary, QueryOutput, QueryResult, Value};
use fairjob_core::algorithms::{self, Algorithm};
use fairjob_core::{AuditConfig, AuditContext, EngineCaches};
use fairjob_hist::distance::{self, HistogramDistance};
use fairjob_hist::BinSpec;
use fairjob_store::column::Column;
use fairjob_store::index::IndexSet;
use fairjob_store::stats::{cardinality_present, summarise, ColumnSummary};
use fairjob_store::{PagedStore, RowSet, Schema, ShardPolicy, Table};
use fairjob_stream::StreamSnapshot;
use std::collections::HashMap;
use std::sync::Arc;

/// Where a session's rows come from.
pub enum Source<'a> {
    /// An in-memory table with row-aligned scores (the CLI's batch
    /// path).
    Batch {
        /// The population.
        table: &'a Table,
        /// Row-aligned scores in `[0, 1]`.
        scores: &'a [f64],
    },
    /// A published stream snapshot (the serve daemon's path).
    Snapshot(&'a StreamSnapshot),
    /// An out-of-core paged store (the `--paged` path). Audits stream
    /// pages through the buffer manager; `WHERE` clauses run as
    /// zone-map scans. Row-materializing statements (`SELECT`,
    /// `DESCRIBE`) are rejected with a clean error rather than paging
    /// the whole table in.
    Paged(&'a PagedStore),
}

impl Source<'_> {
    /// The in-memory table, when the source has one. Paged sources do
    /// not — callers that need row data go through
    /// [`Session::require_table`].
    fn table(&self) -> Option<&Table> {
        match self {
            Source::Batch { table, .. } => Some(table),
            Source::Snapshot(snap) => Some(snap.table()),
            Source::Paged(_) => None,
        }
    }

    fn schema(&self) -> &Schema {
        match self {
            Source::Batch { table, .. } => table.schema(),
            Source::Snapshot(snap) => snap.table().schema(),
            Source::Paged(store) => store.schema(),
        }
    }

    fn rows(&self) -> usize {
        match self {
            Source::Batch { table, .. } => table.len(),
            Source::Snapshot(snap) => snap.table().len(),
            Source::Paged(store) => store.rows(),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            Source::Batch { .. } => 0,
            Source::Snapshot(snap) => snap.epoch(),
            Source::Paged(store) => store.epoch(),
        }
    }

    fn live(&self) -> Option<&RowSet> {
        match self {
            Source::Batch { .. } => None,
            Source::Snapshot(snap) => Some(snap.live_rows()),
            Source::Paged(store) => store.live(),
        }
    }

    fn scores(&self) -> Option<&[f64]> {
        match self {
            Source::Batch { scores, .. } => Some(scores),
            Source::Snapshot(snap) => Some(snap.scores()),
            Source::Paged(_) => None,
        }
    }
}

/// Session defaults for clauses an `AUDIT` statement omits. The serve
/// daemon fills these from its own audit config so a `QUERY` with a
/// bare `AUDIT workers` is indistinguishable from the `AUDIT` verb.
#[derive(Clone)]
pub struct Defaults {
    /// Algorithm when `USING` is absent (shared, so the serve daemon's
    /// own algorithm instance is reused verbatim).
    pub algorithm: Arc<dyn Algorithm + Send + Sync>,
    /// Metric when `METRIC` is absent.
    pub metric: Arc<dyn HistogramDistance>,
    /// Bin count when `BINS` is absent.
    pub bins: usize,
    /// Seed for `USING r-…` algorithms named in queries.
    pub seed: u64,
    /// Engine thread cap.
    pub threads: Option<usize>,
    /// Minimum split-child size.
    pub min_partition_size: usize,
    /// Shard layout for the context's split/classify kernels. Results
    /// are bit-identical under every policy, so — like `threads` — it
    /// is not part of [`CacheKey`].
    pub shards: ShardPolicy,
}

impl Default for Defaults {
    fn default() -> Self {
        let config = AuditConfig::default();
        Defaults {
            algorithm: Arc::from(
                algorithms::by_name("balanced", 0xBEEF).expect("balanced is registered"),
            ),
            metric: config.distance,
            bins: config.bins,
            seed: 0xBEEF,
            threads: config.threads,
            min_partition_size: config.min_partition_size,
            shards: config.shards,
        }
    }
}

/// Identity of an audit shape, for safe warm-cache reuse. The engine's
/// caches are keyed by predicate fingerprint only, so they are valid
/// exactly when population and histogram layout are unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CacheKey {
    /// Source table identity (address — sources outlive the session).
    table: usize,
    /// Source scores identity.
    scores: usize,
    /// Snapshot epoch (0 for batch).
    epoch: u64,
    /// `WHERE` fingerprint (population subset).
    filter: u128,
    /// Histogram bin count.
    bins: usize,
    /// Metric name.
    metric: String,
    /// Split-viability floor.
    min_partition_size: usize,
}

/// Warm engine caches carried between statements (and, by the serve
/// daemon, between `QUERY` requests of one connection). Opaque; obtain
/// one from [`Session::into_warm`] and thread it into the next session
/// with [`Session::with_warm`].
#[derive(Default)]
pub struct WarmCache {
    key: Option<CacheKey>,
    caches: Option<EngineCaches>,
}

/// An executable FairQL session over one source.
pub struct Session<'a> {
    source: Source<'a>,
    defaults: Defaults,
    options: PlannerOptions,
    /// Lazily built inverted indexes (batch sources only; snapshots
    /// bring their own).
    batch_indexes: Option<Arc<IndexSet>>,
    /// Lazily built score→bin arrays, per bin count (batch only).
    batch_bin_of: HashMap<usize, Arc<Vec<u32>>>,
    warm: WarmCache,
}

impl<'a> Session<'a> {
    /// Open a session. Batch scores are validated eagerly (row-aligned,
    /// finite, in `[0, 1]`) because the filtered-audit path enters the
    /// audit layer through the validation-skipping
    /// [`AuditContext::from_parts`].
    ///
    /// # Errors
    ///
    /// [`QueryError::Exec`] on misaligned or out-of-range batch scores.
    pub fn new(source: Source<'a>, defaults: Defaults) -> Result<Self, QueryError> {
        if let Source::Batch { table, scores } = &source {
            if scores.len() != table.len() {
                return Err(QueryError::Exec(format!(
                    "{} scores for {} rows",
                    scores.len(),
                    table.len()
                )));
            }
            for (row, &s) in scores.iter().enumerate() {
                if !s.is_finite() || !(0.0..=1.0).contains(&s) {
                    return Err(QueryError::Exec(format!(
                        "score {s} at row {row} not in [0, 1]"
                    )));
                }
            }
        }
        Ok(Session {
            source,
            defaults,
            options: PlannerOptions::default(),
            batch_indexes: None,
            batch_bin_of: HashMap::new(),
            warm: WarmCache::default(),
        })
    }

    /// Override planner options (the bench's naive baseline).
    pub fn with_planner_options(mut self, options: PlannerOptions) -> Self {
        self.options = options;
        self
    }

    /// Adopt warm caches from a previous session over the same source.
    pub fn with_warm(mut self, warm: WarmCache) -> Self {
        self.warm = warm;
        self
    }

    /// Extract the warm caches for the next session.
    pub fn into_warm(self) -> WarmCache {
        self.warm
    }

    /// Parse, analyze, plan, and execute a script; one output per
    /// statement.
    ///
    /// # Errors
    ///
    /// [`QueryError::Parse`] (with byte offset) from the front half of
    /// the pipeline, [`QueryError::Exec`] from execution.
    pub fn execute(&mut self, text: &str) -> Result<Vec<QueryOutput>, QueryError> {
        let statements = parse(text)?;
        let schema = self.source.schema().clone();
        let mut outputs = Vec::with_capacity(statements.len());
        for statement in &statements {
            let analyzed = analyze(statement, &schema)?;
            outputs.push(self.run(&analyzed)?);
        }
        Ok(outputs)
    }

    /// Plan (without executing) a single already-analyzed statement —
    /// the `EXPLAIN` path, public for the bench and tests.
    pub fn plan_of(&mut self, analyzed: &Analyzed) -> PhysicalPlan {
        let logical = logical::build(analyzed);
        // A filtered plan needs indexes at execution time; building
        // them here also sharpens the planner's estimates.
        if self.needs_indexes(analyzed) {
            self.ensure_batch_indexes();
        }
        let catalog = Catalog {
            schema: self.source.schema(),
            indexes: match &self.source {
                Source::Batch { .. } => self.batch_indexes.as_deref(),
                Source::Snapshot(snap) => Some(snap.indexes()),
                Source::Paged(_) => None,
            },
            table_rows: self.source.rows(),
            live: self.source.live(),
            paged: match &self.source {
                Source::Paged(store) => Some(store),
                _ => None,
            },
        };
        let defaults = PlanDefaults {
            algorithm: self.defaults.algorithm.name(),
            metric: self.defaults.metric.name().to_string(),
            bins: self.defaults.bins,
            threads: self.defaults.threads,
            shards: self.defaults.shards,
        };
        plan(&logical, &catalog, &defaults, self.options)
    }

    fn needs_indexes(&self, analyzed: &Analyzed) -> bool {
        match analyzed {
            Analyzed::Audit(a) => !a.filter.is_always(),
            Analyzed::Select(s) => !s.filter.is_always(),
            Analyzed::Describe(_) => false,
            Analyzed::Explain { inner, .. } => self.needs_indexes(inner),
        }
    }

    fn ensure_batch_indexes(&mut self) {
        if let (Source::Batch { table, .. }, None) = (&self.source, &self.batch_indexes) {
            self.batch_indexes = Some(Arc::new(
                IndexSet::build(table).expect("schema-valid table indexes"),
            ));
        }
    }

    /// The in-memory table, or a clean error naming the statement that
    /// needed it (paged sources hold no row data).
    fn require_table(&self, what: &str) -> Result<&Table, QueryError> {
        self.source.table().ok_or_else(|| {
            QueryError::Exec(format!(
                "{what} needs row data in memory; paged sources support AUDIT and EXPLAIN only"
            ))
        })
    }

    fn run(&mut self, analyzed: &Analyzed) -> Result<QueryOutput, QueryError> {
        match analyzed {
            Analyzed::Describe(attr) => Ok(QueryOutput::Rows(self.describe(*attr)?)),
            Analyzed::Select(select) => {
                let physical = self.plan_of(analyzed);
                let PhysicalPlan::Select { scan, .. } = &physical else {
                    unreachable!("select lowers to a select plan")
                };
                let (rows, _) = self.run_scan(scan)?;
                let (result, _) = self.run_select(select, &rows)?;
                Ok(QueryOutput::Rows(result))
            }
            Analyzed::Audit(audit) => {
                let physical = self.plan_of(analyzed);
                let PhysicalPlan::Audit { scan, audit: node } = &physical else {
                    unreachable!("audit lowers to an audit plan")
                };
                let (summary, rows, _) = self.run_audit(audit, scan, node)?;
                Ok(QueryOutput::Audit { summary, rows })
            }
            Analyzed::Explain { analyze, inner } => {
                let physical = self.plan_of(inner);
                if !*analyze {
                    return Ok(QueryOutput::Explain {
                        text: physical.render(self.source.schema(), None),
                    });
                }
                let actuals = match (&physical, inner.as_ref()) {
                    (PhysicalPlan::Audit { scan, audit: node }, Analyzed::Audit(audit)) => {
                        let (summary, _, scan_actuals) = self.run_audit(audit, scan, node)?;
                        Actuals {
                            scan_matched: scan_actuals.0,
                            scan_examined: scan_actuals.1,
                            rows_out: summary.partitions,
                            audit: Some(AuditActuals {
                                unfairness: summary.unfairness,
                                partitions: summary.partitions,
                                candidates: summary.candidates_evaluated,
                                elapsed_us: summary.elapsed_us,
                                engine: summary.engine,
                            }),
                        }
                    }
                    (PhysicalPlan::Select { scan, .. }, Analyzed::Select(select)) => {
                        let (rows, examined) = self.run_scan(scan)?;
                        let matched = rows.len();
                        let (result, _) = self.run_select(select, &rows)?;
                        Actuals {
                            scan_matched: matched,
                            scan_examined: examined,
                            rows_out: result.rows.len(),
                            audit: None,
                        }
                    }
                    (PhysicalPlan::Describe { .. }, Analyzed::Describe(attr)) => {
                        let result = self.describe(*attr)?;
                        Actuals {
                            rows_out: result.rows.len(),
                            ..Actuals::default()
                        }
                    }
                    _ => unreachable!("plan shape mirrors the statement"),
                };
                Ok(QueryOutput::Explain {
                    text: physical.render(self.source.schema(), Some(&actuals)),
                })
            }
        }
    }

    /// Execute a scan: the matching rows plus the number of rows
    /// examined to find them.
    fn run_scan(&self, scan: &ScanNode) -> Result<(RowSet, usize), QueryError> {
        let base = || {
            self.source
                .live()
                .cloned()
                .unwrap_or_else(|| RowSet::all(self.source.rows()))
        };
        match &scan.kind {
            ScanKind::All => Ok((base(), 0)),
            ScanKind::Full => {
                let table = self.require_table("a row-walk filter")?;
                let within = base();
                let examined = within.len();
                let rows = scan
                    .filter
                    .filter(table, &within)
                    .map_err(|e| QueryError::Exec(e.to_string()))?;
                Ok((rows, examined))
            }
            ScanKind::ZoneMap(constraints) => {
                let Source::Paged(store) = &self.source else {
                    unreachable!("zone-map scans are planned only for paged sources")
                };
                let (rows, summary) = store
                    .scan_matching(constraints)
                    .map_err(|e| QueryError::Exec(e.to_string()))?;
                Ok((rows, summary.rows_examined))
            }
            ScanKind::Index(postings) => {
                let indexes = match &self.source {
                    Source::Batch { .. } => self
                        .batch_indexes
                        .as_deref()
                        .expect("planner built indexes for a pushed scan"),
                    Source::Snapshot(snap) => snap.indexes(),
                    Source::Paged(_) => {
                        unreachable!("paged sources plan zone-map scans, never index scans")
                    }
                };
                let mut examined = 0;
                let mut acc: Option<RowSet> = None;
                for &(attr, code, _) in postings {
                    let posting = indexes
                        .get(attr)
                        .expect("analyzer resolved a categorical attribute")
                        .rows_with_code(code);
                    examined += posting.len();
                    acc = Some(match acc {
                        None => match self.source.live() {
                            Some(live) => posting.intersect(live),
                            None => posting.clone(),
                        },
                        Some(acc) => acc.intersect(posting),
                    });
                }
                Ok((
                    acc.expect("pushed scans have at least one posting"),
                    examined,
                ))
            }
        }
    }

    fn batch_bin_of(&mut self, bins: usize) -> Result<Arc<Vec<u32>>, QueryError> {
        if let Some(cached) = self.batch_bin_of.get(&bins) {
            return Ok(Arc::clone(cached));
        }
        let spec = BinSpec::equal_width(0.0, 1.0, bins)
            .map_err(|e| QueryError::Exec(format!("bins: {e}")))?;
        let scores = self.source.scores().expect("bin arrays are batch-only");
        let bin_of: Arc<Vec<u32>> = Arc::new(spec.bin_indices(scores));
        self.batch_bin_of.insert(bins, Arc::clone(&bin_of));
        Ok(bin_of)
    }

    /// Execute an audit plan. Returns the summary, the partition rows,
    /// and the scan's `(matched, examined)` actuals.
    fn run_audit(
        &mut self,
        audit: &AnalyzedAudit,
        scan: &ScanNode,
        node: &AuditNode,
    ) -> Result<(AuditSummary, QueryResult, (usize, usize)), QueryError> {
        let algorithm: Arc<dyn Algorithm + Send + Sync> = match &audit.algorithm {
            None => Arc::clone(&self.defaults.algorithm),
            Some(name) => Arc::from(
                algorithms::by_name(name, self.defaults.seed).expect("analyzer checked the name"),
            ),
        };
        let metric: Arc<dyn HistogramDistance> = match &audit.metric {
            None => Arc::clone(&self.defaults.metric),
            Some(name) => distance::by_name(name).expect("analyzer checked the name"),
        };
        let config = AuditConfig {
            bins: node.bins,
            distance: metric,
            attributes: audit.attributes.clone(),
            min_partition_size: self.defaults.min_partition_size,
            threads: self.defaults.threads,
            shards: self.defaults.shards,
        };

        let trivial = scan.filter.is_always();
        // Snapshot the page-cache counters *before* the WHERE scan so
        // `EXPLAIN ANALYZE` attributes the filter's page traffic (zone
        // skips included) to this audit.
        let paged_baseline = match &self.source {
            Source::Paged(store) => Some(store.stats().snapshot()),
            _ => None,
        };
        let (rows, examined) = self.run_scan(scan)?;
        let matched = rows.len();
        if matched == 0 {
            return Err(QueryError::Exec("WHERE matches no rows".to_string()));
        }

        // Identity of the backing memory: for paged sources the store
        // address stands in for both (its pages and scores live behind
        // one allocation).
        let (table_id, scores_id) = match &self.source {
            Source::Batch { table, scores } => {
                (*table as *const Table as usize, scores.as_ptr() as usize)
            }
            Source::Snapshot(snap) => (
                snap.table() as *const Table as usize,
                snap.scores().as_ptr() as usize,
            ),
            Source::Paged(store) => {
                let id = *store as *const PagedStore as usize;
                (id, id)
            }
        };
        let key = CacheKey {
            table: table_id,
            scores: scores_id,
            epoch: self.source.epoch(),
            filter: scan.filter.fingerprint(),
            bins: node.bins,
            metric: node.metric.clone(),
            min_partition_size: self.defaults.min_partition_size,
        };
        // Seeding empty caches is behaviourally identical to letting
        // the engine create its own (same default capacity) — it only
        // makes the engine hand them back for the next statement.
        let seeded = if self.warm.key.as_ref() == Some(&key) {
            self.warm.caches.take().unwrap_or_default()
        } else {
            EngineCaches::new()
        };

        // The filtered batch path needs prebuilt parts; build them
        // before the source match below takes its shared borrow.
        let batch_parts = if !trivial && matches!(self.source, Source::Batch { .. }) {
            self.ensure_batch_indexes();
            Some((
                Arc::clone(self.batch_indexes.as_ref().expect("just built")),
                self.batch_bin_of(node.bins)?,
            ))
        } else {
            None
        };

        let setup = |e: fairjob_core::AuditError| QueryError::Exec(format!("audit setup: {e}"));
        let stream_setup =
            |e: fairjob_stream::StreamError| QueryError::Exec(format!("audit setup: {e}"));
        let (result, partition_rows, caches) = match (&self.source, trivial) {
            // The pristine batch path: identical to `fairjob audit`.
            (Source::Batch { table, scores }, true) => {
                let ctx = AuditContext::new(table, scores, config).map_err(setup)?;
                finish_audit(&algorithm, &ctx, seeded)?
            }
            (Source::Batch { table, scores }, false) => {
                let (indexes, bin_of) = batch_parts.expect("built above");
                let ctx =
                    AuditContext::from_parts(table, scores, config, indexes, bin_of, Some(rows), 0)
                        .map_err(setup)?;
                finish_audit(&algorithm, &ctx, seeded)?
            }
            // The pristine snapshot path: identical to the serve
            // daemon's `AUDIT` verb.
            (Source::Snapshot(snap), true) => {
                let ctx = snap.context(config).map_err(stream_setup)?;
                finish_audit(&algorithm, &ctx, seeded)?
            }
            (Source::Snapshot(snap), false) => {
                let ctx = snap.context_over(config, rows).map_err(stream_setup)?;
                finish_audit(&algorithm, &ctx, seeded)?
            }
            // The paged paths: same streaming context either way —
            // trivial filters let the store's own live set stand.
            (Source::Paged(store), trivial) => {
                let live = if trivial { None } else { Some(rows) };
                let ctx =
                    AuditContext::from_paged(store, config, live, paged_baseline).map_err(setup)?;
                finish_audit(&algorithm, &ctx, seeded)?
            }
        };
        if let Some(caches) = caches {
            self.warm = WarmCache {
                key: Some(key),
                caches: Some(caches),
            };
        }

        let summary = AuditSummary {
            algorithm: result.algorithm.clone(),
            metric: node.metric.clone(),
            bins: node.bins,
            population: matched,
            epoch: self.source.epoch(),
            partitions: result.partitioning.len(),
            unfairness: result.unfairness,
            candidates_evaluated: result.candidates_evaluated,
            elapsed_us: result.elapsed.as_micros(),
            engine: result.engine,
        };
        Ok((
            summary,
            QueryResult {
                columns: vec!["partition".to_string(), "size".to_string()],
                rows: partition_rows,
            },
            (matched, examined),
        ))
    }

    fn cell(table: &Table, attr: usize, row: usize) -> Value {
        match table.column(attr) {
            Column::Categorical(codes) => Value::Str(
                table
                    .schema()
                    .attribute(attr)
                    .label_of(codes[row])
                    .unwrap_or("?")
                    .to_string(),
            ),
            Column::Numeric(values) => Value::Float(values[row]),
            Column::Integer(values) => Value::Int(values[row]),
        }
    }

    fn run_select(
        &mut self,
        select: &AnalyzedSelect,
        rows: &RowSet,
    ) -> Result<(QueryResult, usize), QueryError> {
        let table = self.require_table("SELECT")?;
        let schema = table.schema();
        let columns: Vec<String> = select.items.iter().map(|i| i.header(schema)).collect();
        let limit = select.limit.unwrap_or(usize::MAX);
        let examined = rows.len();

        let out_rows: Vec<Vec<Value>> = if let Some(group) = select.group_by {
            let Column::Categorical(codes) = table.column(group) else {
                unreachable!("analyzer enforced a categorical grouping column")
            };
            let cardinality = schema
                .attribute(group)
                .cardinality()
                .expect("categorical has cardinality");
            let mut groups: Vec<Option<Vec<Agg>>> = vec![None; cardinality];
            for row in rows.iter() {
                let slot = groups[codes[row] as usize]
                    .get_or_insert_with(|| select.items.iter().map(Agg::new).collect());
                for (agg, item) in slot.iter_mut().zip(&select.items) {
                    agg.feed(item, table, row)?;
                }
            }
            groups
                .into_iter()
                .enumerate()
                .filter_map(|(code, slot)| slot.map(|aggs| (code, aggs)))
                .map(|(code, aggs)| {
                    aggs.iter()
                        .zip(&select.items)
                        .map(|(agg, item)| match item {
                            OutItem::Column(_) => Value::Str(
                                schema
                                    .attribute(group)
                                    .label_of(code as u32)
                                    .unwrap_or("?")
                                    .to_string(),
                            ),
                            _ => agg.finish(item),
                        })
                        .collect()
                })
                .take(limit)
                .collect()
        } else if select
            .items
            .iter()
            .any(|i| !matches!(i, OutItem::Column(_)))
        {
            let mut aggs: Vec<Agg> = select.items.iter().map(Agg::new).collect();
            for row in rows.iter() {
                for (agg, item) in aggs.iter_mut().zip(&select.items) {
                    agg.feed(item, table, row)?;
                }
            }
            vec![aggs
                .iter()
                .zip(&select.items)
                .map(|(agg, item)| agg.finish(item))
                .collect()]
        } else {
            rows.iter()
                .take(limit)
                .map(|row| {
                    select
                        .items
                        .iter()
                        .map(|item| match item {
                            OutItem::Column(attr) => Self::cell(table, *attr, row),
                            _ => unreachable!("no aggregates on this path"),
                        })
                        .collect()
                })
                .collect()
        };
        Ok((
            QueryResult {
                columns,
                rows: out_rows,
            },
            examined,
        ))
    }

    fn describe(&self, only: Option<usize>) -> Result<QueryResult, QueryError> {
        let table = self.require_table("DESCRIBE")?;
        let schema = table.schema();
        let columns = [
            "column",
            "kind",
            "type",
            "cardinality",
            "split_bins",
            "min",
            "max",
            "mean",
            "std",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let attrs: Vec<usize> = match only {
            Some(idx) => vec![idx],
            None => (0..schema.width()).collect(),
        };
        let rows = attrs
            .into_iter()
            .map(|idx| {
                let def = schema.attribute(idx);
                let mut row = vec![
                    Value::Str(def.name.clone()),
                    Value::Str(format!("{:?}", def.kind).to_lowercase()),
                    Value::Str(def.dtype.type_name().to_string()),
                ];
                match cardinality_present(table, idx) {
                    Some((cardinality, present)) => {
                        row.push(Value::Int(cardinality as i64));
                        row.push(Value::Int(present as i64));
                    }
                    None => {
                        row.push(Value::Null);
                        row.push(Value::Null);
                    }
                }
                match summarise(table, idx) {
                    ColumnSummary::Numeric {
                        min,
                        max,
                        mean,
                        std,
                    } => {
                        row.extend([
                            Value::Float(min),
                            Value::Float(max),
                            Value::Float(mean),
                            Value::Float(std),
                        ]);
                    }
                    _ => row.extend([Value::Null, Value::Null, Value::Null, Value::Null]),
                }
                row
            })
            .collect();
        Ok(QueryResult { columns, rows })
    }
}

/// What [`finish_audit`] hands back: the audit result, the rendered
/// partition rows, and the engine caches for the warm hand-off.
type FinishedAudit = (
    fairjob_core::AuditResult,
    Vec<Vec<Value>>,
    Option<EngineCaches>,
);

/// Run the resolved algorithm over a prepared context with seeded
/// caches; returns the result, the partition rows, and the caches the
/// engine handed back.
fn finish_audit(
    algorithm: &Arc<dyn Algorithm + Send + Sync>,
    ctx: &AuditContext<'_>,
    seeded: EngineCaches,
) -> Result<FinishedAudit, QueryError> {
    ctx.seed_engine_caches(seeded);
    let result = algorithm
        .run(ctx)
        .map_err(|e| QueryError::Exec(format!("{}: {e}", algorithm.name())))?;
    let caches = ctx.take_engine_caches();
    let schema = ctx.schema();
    let rows: Vec<Vec<Value>> = result
        .partitioning
        .partitions()
        .iter()
        .map(|p| {
            vec![
                Value::Str(p.predicate.describe_in(schema)),
                Value::Int(p.len() as i64),
            ]
        })
        .collect();
    Ok((result, rows, caches))
}

/// One aggregate accumulator.
#[derive(Clone)]
struct Agg {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Agg {
    fn new(_: &OutItem) -> Self {
        Agg {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn feed(&mut self, item: &OutItem, table: &Table, row: usize) -> Result<(), QueryError> {
        self.count += 1;
        let attr = match item {
            OutItem::Mean(a) | OutItem::Min(a) | OutItem::Max(a) => *a,
            OutItem::Count | OutItem::Column(_) => return Ok(()),
        };
        let v = table
            .f64_at(attr, row)
            .map_err(|e| QueryError::Exec(e.to_string()))?;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        Ok(())
    }

    fn finish(&self, item: &OutItem) -> Value {
        match item {
            OutItem::Count => Value::Int(self.count as i64),
            _ if self.count == 0 => Value::Null,
            OutItem::Mean(_) => Value::Float(self.sum / self.count as f64),
            OutItem::Min(_) => Value::Float(self.min),
            OutItem::Max(_) => Value::Float(self.max),
            OutItem::Column(_) => Value::Null,
        }
    }
}
