//! Query-pipeline errors.

use std::fmt;

/// An error from any stage of the FairQL pipeline.
///
/// Parse-time errors (lexing, parsing, *and* analysis — anything
/// detectable before touching data) carry the byte offset of the
/// offending token in the original query text, so clients can point at
/// the exact spot. Execution errors carry only a message.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query text is malformed or names something the schema does
    /// not have. `offset` is a byte offset into the query string.
    Parse {
        /// Byte offset of the offending token in the query text.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The query was well-formed but running it failed.
    Exec(String),
}

impl QueryError {
    /// Shorthand constructor for parse-class errors.
    pub fn parse(offset: usize, message: impl Into<String>) -> Self {
        QueryError::Parse {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            QueryError::Exec(message) => write!(f, "execution error: {message}"),
        }
    }
}

impl std::error::Error for QueryError {}
