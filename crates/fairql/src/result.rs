//! Typed query results.

use fairjob_core::EngineStats;
use std::fmt;

/// One cell of a result row.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent (e.g. `mean` over an empty group).
    Null,
    /// A string (categorical labels, partition predicates, names).
    Str(String),
    /// An integer (counts, sizes, integer columns).
    Int(i64),
    /// A float. Rendered with Rust's shortest round-trip formatting so
    /// the wire form is lossless and deterministic.
    Float(f64),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Str(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
        }
    }
}

/// A typed result table: column headers plus rows of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows; every row has `columns.len()` cells.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Render as tab-separated text: one header line, one line per row.
    pub fn render(&self) -> String {
        let mut out = self.columns.join("\t");
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Value::to_string).collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// Headline numbers of an executed `AUDIT`.
#[derive(Debug, Clone)]
pub struct AuditSummary {
    /// Algorithm that ran (its own reported name).
    pub algorithm: String,
    /// Metric name as resolved by the planner (query spelling).
    pub metric: String,
    /// Histogram bin count used.
    pub bins: usize,
    /// Rows audited (after the `WHERE` filter).
    pub population: usize,
    /// Source epoch (0 for batch sources).
    pub epoch: u64,
    /// Partitions in the winning partitioning.
    pub partitions: usize,
    /// `unfairness(P, f)` of the winner.
    pub unfairness: f64,
    /// Candidate partitionings the algorithm evaluated.
    pub candidates_evaluated: usize,
    /// Wall-clock microseconds of the audit run.
    pub elapsed_us: u128,
    /// Evaluation-engine counters for the run.
    pub engine: EngineStats,
}

impl AuditSummary {
    /// The unfairness value's IEEE-754 bit pattern — the
    /// bit-exactness token used across the CLI, serve protocol, and
    /// tests.
    pub fn unfairness_bits(&self) -> u64 {
        self.unfairness.to_bits()
    }

    /// One-line `key=value` rendering (same keys as the serve
    /// protocol's audit responses, plus the engine counters).
    pub fn render_line(&self) -> String {
        let mut out = format!(
            "audit algorithm={} metric={} bins={} population={} epoch={} partitions={} \
             unfairness={} unfairness_bits={:016x} candidates={} elapsed_us={}",
            self.algorithm,
            self.metric,
            self.bins,
            self.population,
            self.epoch,
            self.partitions,
            self.unfairness,
            self.unfairness_bits(),
            self.candidates_evaluated,
            self.elapsed_us,
        );
        for (name, value) in self.engine.as_pairs() {
            out.push_str(&format!(" {name}={value}"));
        }
        out
    }
}

/// The output of one executed statement.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // outputs are few and short-lived
pub enum QueryOutput {
    /// A row query (`SELECT`, `DESCRIBE`).
    Rows(QueryResult),
    /// An audit: headline summary plus one row per partition.
    Audit {
        /// Headline numbers and engine counters.
        summary: AuditSummary,
        /// One row per partition of the winning partitioning
        /// (`partition`, `size`).
        rows: QueryResult,
    },
    /// An `EXPLAIN [ANALYZE]` plan rendering.
    Explain {
        /// The plan tree text.
        text: String,
    },
}

impl QueryOutput {
    /// Render for humans / the wire.
    pub fn render(&self) -> String {
        match self {
            QueryOutput::Rows(rows) => rows.render(),
            QueryOutput::Audit { summary, rows } => {
                format!("{}\n{}", summary.render_line(), rows.render())
            }
            QueryOutput::Explain { text } => text.clone(),
        }
    }

    /// The result table (partition rows for audits; empty for
    /// `EXPLAIN`).
    pub fn result(&self) -> Option<&QueryResult> {
        match self {
            QueryOutput::Rows(rows) | QueryOutput::Audit { rows, .. } => Some(rows),
            QueryOutput::Explain { .. } => None,
        }
    }
}
