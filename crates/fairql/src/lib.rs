//! FairQL: a small SQL-ish query language over fairness audits.
//!
//! The paper frames auditing as an exploratory workload — "find the
//! partitioning of ranked workers that maximises unfairness" — and
//! this crate gives that workload a declarative surface:
//!
//! ```text
//! AUDIT workers WHERE country = 'America'
//!     PROTECT gender, country USING unbalanced METRIC emd-exact;
//! SELECT gender, COUNT(*), MEAN(approval_rate) FROM workers GROUP BY gender;
//! DESCRIBE;
//! EXPLAIN ANALYZE AUDIT workers;
//! ```
//!
//! The classic pipeline runs in full: [`lex`] → [`ast`] → [`parse`] →
//! [`analyze`] (name/type resolution against the store schema,
//! protected-attribute validation) → [`logical`] plan → [`physical`]
//! plan → execution via a [`Session`]. The physical planner compiles
//! `WHERE` conjunctions to inverted-index posting intersections
//! (predicate pushdown), keeps audit attribute order canonical so the
//! evaluation engine's split cache hits across statements, and selects
//! the bound screen (`emd::bounds`) that runs before exact distance
//! solves. `EXPLAIN` prints the plan tree with cost estimates;
//! `EXPLAIN ANALYZE` executes and re-prints it annotated with the
//! actual [`fairjob_core::EngineStats`] counters per node.
//!
//! Audits execute through the same entry points as direct
//! `fairjob audit` / serve `AUDIT` runs, so an unfiltered
//! `AUDIT workers` is bit-identical to the direct run — same
//! `unfairness` bits, same engine counters. `DESCRIBE` reports
//! whole-table statistics (for snapshot sources this includes
//! tombstoned rows; audits and `SELECT` see only live rows).

pub mod analyze;
pub mod ast;
pub mod error;
pub mod lex;
pub mod logical;
pub mod parse;
pub mod physical;
pub mod result;
pub mod session;

pub use analyze::{analyze as analyze_statement, Analyzed};
pub use ast::Statement;
pub use error::QueryError;
pub use parse::parse;
pub use physical::{PhysicalPlan, PlannerOptions};
pub use result::{AuditSummary, QueryOutput, QueryResult, Value};
pub use session::{Defaults, Session, Source, WarmCache};
