//! The physical planner: access paths, screens, and cost estimates.
//!
//! Three planner rules do the work:
//!
//! 1. **Predicate pushdown.** A non-trivial `WHERE` compiles to an
//!    [`ScanNode`] over the store's inverted indexes: posting lists are
//!    intersected smallest-first (cheapest accumulator), so the rows
//!    *examined* are bounded by the posting lengths instead of the
//!    table length. A full scan is kept as the fallback (and as the
//!    naive baseline the `query_plan` bench gates against).
//! 2. **Cache-aware audit ordering.** An omitted `PROTECT` list stays
//!    `None` so the audit splits every protected attribute in schema
//!    order — the canonical order every other audit in the process
//!    uses, which is what makes the engine's split cache (and the
//!    session's warm-cache hand-off between statements) actually hit.
//!    An explicit `PROTECT` list is preserved verbatim: reordering it
//!    would change worst-attribute tie-breaking and thus the result.
//! 3. **Screen selection.** The metric decides what runs before an
//!    exact distance solve: `emd` has a closed form whose bounds *are*
//!    the answer, `emd-exact` gets the projection/TV sandwich bounds
//!    from `emd::bounds` (branch-and-bound candidate pruning), other
//!    metrics get no screen. The chosen screen is surfaced in the plan
//!    and its effect in `EXPLAIN ANALYZE`'s `bounds_screened` counter.

use crate::analyze::OutItem;
use crate::logical::LogicalPlan;
use fairjob_core::EngineStats;
use fairjob_store::index::IndexSet;
use fairjob_store::schema::Schema;
use fairjob_store::{PagedStore, Predicate, RowSet, ShardPolicy};

/// What the planner knows about the data it plans over.
pub struct Catalog<'a> {
    /// The source schema.
    pub schema: &'a Schema,
    /// Inverted indexes, when the source has them built. Required for
    /// pushed scans of non-trivial predicates; also sharpens estimates.
    pub indexes: Option<&'a IndexSet>,
    /// Rows in the source table (including tombstoned ones).
    pub table_rows: usize,
    /// The live row set, when the source is a snapshot.
    pub live: Option<&'a RowSet>,
    /// The paged store, when the source is out-of-core. Non-trivial
    /// predicates then compile to zone-mapped page scans instead of
    /// posting intersections, and split-children estimates come from
    /// the zone-map code bitsets (no page reads either way).
    pub paged: Option<&'a PagedStore>,
}

impl Catalog<'_> {
    /// Rows a trivial scan would return.
    pub fn base_rows(&self) -> usize {
        self.live.map_or(self.table_rows, RowSet::len)
    }
}

/// Planner knobs.
#[derive(Debug, Clone, Copy)]
pub struct PlannerOptions {
    /// Compile non-trivial predicates to index-posting intersections
    /// (`true`, the default) instead of full scans. The `false` setting
    /// exists for the bench's naive baseline and for A/B-ing the
    /// planner.
    pub push_predicates: bool,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            push_predicates: true,
        }
    }
}

/// Session defaults the planner folds into unspecified audit clauses.
#[derive(Debug, Clone)]
pub struct PlanDefaults {
    /// Default algorithm name.
    pub algorithm: String,
    /// Default metric name.
    pub metric: String,
    /// Default bin count.
    pub bins: usize,
    /// Engine thread cap (`None` = auto).
    pub threads: Option<usize>,
    /// Shard layout for the context's split/classify kernels.
    pub shards: ShardPolicy,
}

/// How the scan will produce its rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanKind {
    /// Every live row (trivial predicate).
    All,
    /// Intersect index postings, smallest first. Each entry is
    /// `(attr, code, posting length)`.
    Index(Vec<(usize, u32, usize)>),
    /// Walk every live row and test the predicate (the naive path).
    Full,
    /// Paged source: stream each constrained column's pages, skipping
    /// pages whose zone map rules the wanted code out or that hold no
    /// surviving candidate row. Entries are `(attr, code)` in
    /// application order.
    ZoneMap(Vec<(usize, u32)>),
}

/// The scan node.
#[derive(Debug, Clone)]
pub struct ScanNode {
    /// The predicate the scan enforces.
    pub filter: Predicate,
    /// Access path.
    pub kind: ScanKind,
    /// Estimated matching rows.
    pub est_matched: usize,
    /// Estimated rows examined to find them.
    pub est_examined: usize,
}

/// What runs before exact distance solves for the chosen metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScreenKind {
    /// Closed-form metric: the bound *is* the exact value.
    ClosedForm,
    /// `emd::bounds` projection/TV sandwich before transportation
    /// solves.
    SandwichBounds,
    /// No screen available.
    None,
}

impl ScreenKind {
    /// The screen the engine will use for a metric name.
    pub fn for_metric(metric: &str) -> Self {
        match metric {
            "emd" | "tv" | "ks" | "jsd" | "hellinger" | "chi2" => ScreenKind::ClosedForm,
            "emd-exact" => ScreenKind::SandwichBounds,
            _ => ScreenKind::None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            ScreenKind::ClosedForm => "closed-form",
            ScreenKind::SandwichBounds => "sandwich-bounds",
            ScreenKind::None => "none",
        }
    }
}

/// The audit node.
#[derive(Debug, Clone)]
pub struct AuditNode {
    /// Resolved algorithm name.
    pub algorithm: String,
    /// Resolved metric name (query spelling).
    pub metric: String,
    /// Resolved bin count.
    pub bins: usize,
    /// `PROTECT` names (`None` = all splittable, schema order) — passed
    /// through to the audit config untouched (planner rule 2).
    pub attributes: Option<Vec<String>>,
    /// Schema indexes of the audited attributes.
    pub attr_indexes: Vec<usize>,
    /// The screen inserted before exact solves.
    pub screen: ScreenKind,
    /// Engine thread cap.
    pub threads: Option<usize>,
    /// Shard layout (audit results do not depend on it; surfaced so
    /// `EXPLAIN` shows how the context will execute).
    pub shards: ShardPolicy,
    /// Estimated split children across one round of candidate
    /// attributes (distinct present values summed over attributes).
    pub est_split_children: usize,
}

/// A full physical plan.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Audit over a scan.
    Audit {
        /// Input rows.
        scan: ScanNode,
        /// The audit spec.
        audit: AuditNode,
    },
    /// Projection/aggregation over a scan.
    Select {
        /// Input rows.
        scan: ScanNode,
        /// Output items.
        items: Vec<OutItem>,
        /// Grouping column.
        group_by: Option<usize>,
        /// Output-row cap.
        limit: Option<usize>,
    },
    /// Schema description (no scan).
    Describe {
        /// Restrict to one column.
        attr: Option<usize>,
    },
}

/// Actual counters recorded while executing a plan, for
/// `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, Default)]
pub struct Actuals {
    /// Rows the scan returned.
    pub scan_matched: usize,
    /// Rows the scan examined to find them.
    pub scan_examined: usize,
    /// Rows the statement output.
    pub rows_out: usize,
    /// Audit actuals, when the plan audited.
    pub audit: Option<AuditActuals>,
}

/// Audit-node actuals.
#[derive(Debug, Clone)]
pub struct AuditActuals {
    /// Winning unfairness.
    pub unfairness: f64,
    /// Partitions in the winner.
    pub partitions: usize,
    /// Candidates evaluated.
    pub candidates: usize,
    /// Wall-clock microseconds.
    pub elapsed_us: u128,
    /// Engine counters for the run.
    pub engine: EngineStats,
}

/// Lower a logical plan to a physical plan.
pub fn plan(
    logical: &LogicalPlan,
    catalog: &Catalog<'_>,
    defaults: &PlanDefaults,
    options: PlannerOptions,
) -> PhysicalPlan {
    match logical {
        LogicalPlan::Audit { input, audit } => {
            let scan = plan_scan(scan_filter(input), catalog, options);
            let metric = audit
                .metric
                .clone()
                .unwrap_or_else(|| defaults.metric.clone());
            let bins = audit.bins.unwrap_or(defaults.bins);
            let est_split_children = audit
                .attr_indexes
                .iter()
                .map(|&attr| present_values(catalog, attr))
                .sum();
            PhysicalPlan::Audit {
                scan,
                audit: AuditNode {
                    algorithm: audit
                        .algorithm
                        .clone()
                        .unwrap_or_else(|| defaults.algorithm.clone()),
                    screen: ScreenKind::for_metric(&metric),
                    metric,
                    bins,
                    attributes: audit.attributes.clone(),
                    attr_indexes: audit.attr_indexes.clone(),
                    threads: defaults.threads,
                    shards: defaults.shards,
                    est_split_children,
                },
            }
        }
        LogicalPlan::Project {
            input,
            items,
            group_by,
            limit,
        } => PhysicalPlan::Select {
            scan: plan_scan(scan_filter(input), catalog, options),
            items: items.clone(),
            group_by: *group_by,
            limit: *limit,
        },
        LogicalPlan::Describe { attr } => PhysicalPlan::Describe { attr: *attr },
        LogicalPlan::Scan { filter } => PhysicalPlan::Select {
            scan: plan_scan(filter, catalog, options),
            items: Vec::new(),
            group_by: None,
            limit: None,
        },
    }
}

fn scan_filter(input: &LogicalPlan) -> &Predicate {
    match input {
        LogicalPlan::Scan { filter } => filter,
        _ => unreachable!("scan is always the leaf"),
    }
}

/// Distinct values of `attr` actually present (posting lists sharpen
/// the estimate; otherwise fall back to the domain cardinality).
fn present_values(catalog: &Catalog<'_>, attr: usize) -> usize {
    if let Some(index) = catalog.indexes.and_then(|set| set.get(attr)) {
        return (0..index.cardinality() as u32)
            .filter(|&code| !index.rows_with_code(code).is_empty())
            .count();
    }
    if let Some(codes) = catalog.paged.and_then(|store| store.present_codes(attr)) {
        return codes.len();
    }
    catalog
        .schema
        .attribute(attr)
        .cardinality()
        .unwrap_or_default()
}

fn plan_scan(filter: &Predicate, catalog: &Catalog<'_>, options: PlannerOptions) -> ScanNode {
    let base = catalog.base_rows();
    if filter.is_always() {
        return ScanNode {
            filter: filter.clone(),
            kind: ScanKind::All,
            est_matched: base,
            est_examined: 0,
        };
    }
    // Selectivity estimate from real posting lengths when indexes are
    // available; independence assumed across constraints.
    let mut postings: Vec<(usize, u32, usize)> = filter
        .constraints()
        .iter()
        .map(|c| {
            let len = catalog
                .indexes
                .and_then(|set| set.get(c.attr))
                .map_or(base, |idx| idx.rows_with_code(c.code).len());
            (c.attr, c.code, len)
        })
        .collect();
    postings.sort_by_key(|&(_, _, len)| len);
    let mut est_matched = base as f64;
    for &(_, _, len) in &postings {
        let selectivity = if catalog.table_rows == 0 {
            0.0
        } else {
            len as f64 / catalog.table_rows as f64
        };
        est_matched *= selectivity;
    }
    let est_matched = est_matched.round() as usize;
    if let Some(store) = catalog.paged {
        // Zone-mapped paged scan: the only access path on an
        // out-of-core source (no resident rows to walk, no posting
        // lists until an audit builds them). Examined rows are bounded
        // by the pages that survive zone-map + candidate pruning.
        let constraints: Vec<(usize, u32)> = filter
            .constraints()
            .iter()
            .map(|c| (c.attr, c.code))
            .collect();
        let zone_prunable = constraints
            .iter()
            .filter(|&&(attr, code)| {
                store
                    .present_codes(attr)
                    .is_some_and(|codes| !codes.contains(&code))
            })
            .count();
        return ScanNode {
            filter: filter.clone(),
            kind: ScanKind::ZoneMap(constraints),
            est_matched: if zone_prunable > 0 { 0 } else { est_matched },
            est_examined: if zone_prunable > 0 { 0 } else { base },
        };
    }
    if options.push_predicates && catalog.indexes.is_some() {
        let est_examined = postings.iter().map(|&(_, _, len)| len).sum();
        ScanNode {
            filter: filter.clone(),
            kind: ScanKind::Index(postings),
            est_matched,
            est_examined,
        }
    } else {
        ScanNode {
            filter: filter.clone(),
            kind: ScanKind::Full,
            est_matched,
            est_examined: base,
        }
    }
}

impl PhysicalPlan {
    /// Render the plan tree against the source schema (no row data is
    /// consulted, so paged sources render identically). With `actuals`,
    /// every node gets an `actual:` line under its `est:` line
    /// (`EXPLAIN ANALYZE`).
    pub fn render(&self, schema: &Schema, actuals: Option<&Actuals>) -> String {
        let mut out = String::new();
        match self {
            PhysicalPlan::Audit { scan, audit } => {
                out.push_str(&format!(
                    "Audit algorithm={} metric={} bins={} protect=[{}] screen={} threads={} shards={}\n",
                    audit.algorithm,
                    audit.metric,
                    audit.bins,
                    audit
                        .attr_indexes
                        .iter()
                        .map(|&i| schema.attribute(i).name.clone())
                        .collect::<Vec<_>>()
                        .join(", "),
                    audit.screen.label(),
                    audit
                        .threads
                        .map_or_else(|| "auto".to_string(), |t| t.to_string()),
                    audit.shards,
                ));
                out.push_str(&format!(
                    "  est: split-children≈{}\n",
                    audit.est_split_children
                ));
                if let Some(a) = actuals.and_then(|a| a.audit.as_ref()) {
                    out.push_str(&format!(
                        "  actual: unfairness={} unfairness_bits={:016x} partitions={} \
                         candidates={} elapsed_us={}\n",
                        a.unfairness,
                        a.unfairness.to_bits(),
                        a.partitions,
                        a.candidates,
                        a.elapsed_us,
                    ));
                    out.push_str("  actual:");
                    for (name, value) in a.engine.as_pairs() {
                        out.push_str(&format!(" {name}={value}"));
                    }
                    out.push('\n');
                }
                render_scan(&mut out, scan, schema, actuals, "  ");
            }
            PhysicalPlan::Select {
                scan,
                items,
                group_by,
                limit,
            } => {
                let aggregated =
                    group_by.is_some() || items.iter().any(|i| !matches!(i, OutItem::Column(_)));
                let stage = if aggregated { "Aggregate" } else { "Project" };
                out.push_str(&format!(
                    "{stage} items={}{}{}\n",
                    items.len(),
                    group_by.map_or(String::new(), |g| format!(
                        " group_by={}",
                        schema.attribute(g).name
                    )),
                    limit.map_or(String::new(), |n| format!(" limit={n}")),
                ));
                if let Some(a) = actuals {
                    out.push_str(&format!("  actual: rows_out={}\n", a.rows_out));
                }
                render_scan(&mut out, scan, schema, actuals, "  ");
            }
            PhysicalPlan::Describe { attr } => {
                out.push_str(&format!(
                    "Describe column={}\n",
                    attr.map_or_else(|| "*".to_string(), |i| schema.attribute(i).name.clone())
                ));
            }
        }
        out
    }
}

fn render_scan(
    out: &mut String,
    scan: &ScanNode,
    schema: &Schema,
    actuals: Option<&Actuals>,
    indent: &str,
) {
    let path = match &scan.kind {
        ScanKind::All => "SeqScan".to_string(),
        ScanKind::Full => "SeqScan".to_string(),
        ScanKind::Index(postings) => format!(
            "IndexScan postings=[{}]",
            postings
                .iter()
                .map(|&(attr, code, len)| {
                    let def = schema.attribute(attr);
                    format!("{}={}:{len}", def.name, def.label_of(code).unwrap_or("?"))
                })
                .collect::<Vec<_>>()
                .join(", ")
        ),
        ScanKind::ZoneMap(constraints) => format!(
            "ZoneMapScan constraints=[{}]",
            constraints
                .iter()
                .map(|&(attr, code)| {
                    let def = schema.attribute(attr);
                    format!("{}={}", def.name, def.label_of(code).unwrap_or("?"))
                })
                .collect::<Vec<_>>()
                .join(", ")
        ),
    };
    out.push_str(&format!(
        "{indent}{path} workers filter=({})\n",
        scan.filter.describe_in(schema)
    ));
    out.push_str(&format!(
        "{indent}  est: matched≈{} examined≈{}\n",
        scan.est_matched, scan.est_examined
    ));
    if let Some(a) = actuals {
        out.push_str(&format!(
            "{indent}  actual: matched={} examined={}\n",
            a.scan_matched, a.scan_examined
        ));
    }
}
