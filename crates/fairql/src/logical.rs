//! The logical plan: what to compute, free of access-path choices.
//!
//! The logical layer is deliberately thin — FairQL's statements are
//! simple enough that each maps to a two-node tree — but it is a real
//! stage: the physical planner consumes *this*, never the AST, so
//! access-path decisions (index vs full scan, screen selection) stay
//! isolated from name resolution.

use crate::analyze::{Analyzed, AnalyzedAudit, OutItem};
use fairjob_store::Predicate;

/// A logical plan node.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Produce the rows matching `filter` (⊤ = the whole live
    /// population).
    Scan {
        /// The compiled `WHERE` conjunction.
        filter: Predicate,
    },
    /// Run a partitioning-search audit over the input rows.
    Audit {
        /// The scanned input.
        input: Box<LogicalPlan>,
        /// The resolved audit spec.
        audit: AnalyzedAudit,
    },
    /// Project columns / compute aggregates over the input rows.
    Project {
        /// The scanned input.
        input: Box<LogicalPlan>,
        /// Output items.
        items: Vec<OutItem>,
        /// Optional grouping column.
        group_by: Option<usize>,
        /// Optional output-row cap.
        limit: Option<usize>,
    },
    /// Schema + summary statistics.
    Describe {
        /// Restrict to one column.
        attr: Option<usize>,
    },
}

/// Lower a resolved statement to a logical plan. `EXPLAIN` is not a
/// plan node — the session unwraps it and renders the inner plan.
pub fn build(analyzed: &Analyzed) -> LogicalPlan {
    match analyzed {
        Analyzed::Audit(a) => LogicalPlan::Audit {
            input: Box::new(LogicalPlan::Scan {
                filter: a.filter.clone(),
            }),
            audit: a.clone(),
        },
        Analyzed::Select(s) => LogicalPlan::Project {
            input: Box::new(LogicalPlan::Scan {
                filter: s.filter.clone(),
            }),
            items: s.items.clone(),
            group_by: s.group_by,
            limit: s.limit,
        },
        Analyzed::Describe(attr) => LogicalPlan::Describe { attr: *attr },
        Analyzed::Explain { inner, .. } => build(inner),
    }
}
