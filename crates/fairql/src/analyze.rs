//! The FairQL analyzer: name/type resolution against [`Schema`].
//!
//! Everything the analyzer rejects is a *parse-class* error
//! ([`QueryError::Parse`] with a byte offset): unknown tables and
//! columns, non-categorical `WHERE` columns, values outside a domain,
//! non-protected `PROTECT` attributes, unknown algorithm/metric names.
//! Execution never sees an unresolved name.

use crate::ast::{Condition, SelectItem, Statement};
use crate::error::QueryError;
use fairjob_store::schema::{AttributeKind, DataType, Schema};
use fairjob_store::Predicate;

/// The one table a FairQL session exposes.
pub const TABLE_NAME: &str = "workers";

/// A resolved projection item (columns by schema index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutItem {
    /// A plain column.
    Column(usize),
    /// `COUNT(*)`.
    Count,
    /// `MEAN(col)`.
    Mean(usize),
    /// `MIN(col)`.
    Min(usize),
    /// `MAX(col)`.
    Max(usize),
}

impl OutItem {
    /// The output column header for this item against `schema`.
    pub fn header(&self, schema: &Schema) -> String {
        let name = |idx: &usize| schema.attribute(*idx).name.clone();
        match self {
            OutItem::Column(i) => name(i),
            OutItem::Count => "count".to_string(),
            OutItem::Mean(i) => format!("mean({})", name(i)),
            OutItem::Min(i) => format!("min({})", name(i)),
            OutItem::Max(i) => format!("max({})", name(i)),
        }
    }
}

/// A resolved `AUDIT`.
#[derive(Debug, Clone)]
pub struct AnalyzedAudit {
    /// The compiled `WHERE` conjunction (⊤ when absent).
    pub filter: Predicate,
    /// `PROTECT` names in user order; `None` means every splittable
    /// protected attribute in schema order — kept as `None` so the
    /// audit config is indistinguishable from a direct
    /// [`fairjob_core::AuditConfig`] run with default attributes.
    pub attributes: Option<Vec<String>>,
    /// The schema indexes the audit will actually split on (resolved
    /// from `attributes`, used for plan cost estimates).
    pub attr_indexes: Vec<usize>,
    /// `USING` algorithm name (session default when `None`).
    pub algorithm: Option<String>,
    /// `METRIC` distance name (session default when `None`).
    pub metric: Option<String>,
    /// `BINS` override (session default when `None`).
    pub bins: Option<usize>,
}

/// A resolved `SELECT`.
#[derive(Debug, Clone)]
pub struct AnalyzedSelect {
    /// Projection items (`*` already expanded to every column).
    pub items: Vec<OutItem>,
    /// The compiled `WHERE` conjunction (⊤ when absent).
    pub filter: Predicate,
    /// `GROUP BY` column index (categorical).
    pub group_by: Option<usize>,
    /// `LIMIT` row cap.
    pub limit: Option<usize>,
}

/// A resolved statement.
#[derive(Debug, Clone)]
pub enum Analyzed {
    /// An audit.
    Audit(AnalyzedAudit),
    /// A row query.
    Select(AnalyzedSelect),
    /// `DESCRIBE [column index]`.
    Describe(Option<usize>),
    /// `EXPLAIN [ANALYZE] <inner>`.
    Explain {
        /// Execute and annotate with actuals.
        analyze: bool,
        /// The explained statement.
        inner: Box<Analyzed>,
    },
}

/// Resolve one statement against `schema`.
///
/// # Errors
///
/// [`QueryError::Parse`] for every resolution failure, positioned at
/// the offending token.
pub fn analyze(stmt: &Statement, schema: &Schema) -> Result<Analyzed, QueryError> {
    match stmt {
        Statement::Audit(a) => {
            check_table(&a.source)?;
            let filter = compile_filter(&a.filter, schema)?;
            let splittable = schema.splittable();
            let (attributes, attr_indexes) = if a.protect.is_empty() {
                (None, splittable)
            } else {
                let mut names = Vec::with_capacity(a.protect.len());
                let mut indexes = Vec::with_capacity(a.protect.len());
                for ident in &a.protect {
                    let idx = resolve_column(schema, &ident.text, ident.at)?;
                    let def = schema.attribute(idx);
                    if def.kind != AttributeKind::Protected
                        || !matches!(def.dtype, DataType::Categorical { .. })
                    {
                        return Err(QueryError::parse(
                            ident.at,
                            format!(
                                "`{}` is not a splittable protected attribute (PROTECT accepts: {})",
                                ident.text,
                                splittable
                                    .iter()
                                    .map(|&i| schema.attribute(i).name.as_str())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                        ));
                    }
                    if indexes.contains(&idx) {
                        return Err(QueryError::parse(
                            ident.at,
                            format!("duplicate protected attribute `{}`", ident.text),
                        ));
                    }
                    names.push(ident.text.clone());
                    indexes.push(idx);
                }
                (Some(names), indexes)
            };
            if let Some(name) = &a.algorithm {
                if !fairjob_core::algorithms::ALGORITHM_NAMES.contains(&name.text.as_str()) {
                    return Err(QueryError::parse(
                        name.at,
                        format!(
                            "unknown algorithm `{}` ({})",
                            name.text,
                            fairjob_core::algorithms::ALGORITHM_NAMES.join(" | ")
                        ),
                    ));
                }
            }
            if let Some(name) = &a.metric {
                if !fairjob_hist::distance::METRIC_NAMES.contains(&name.text.as_str()) {
                    return Err(QueryError::parse(
                        name.at,
                        format!(
                            "unknown metric `{}` ({})",
                            name.text,
                            fairjob_hist::distance::METRIC_NAMES.join(" | ")
                        ),
                    ));
                }
            }
            if a.bins == Some(0) {
                return Err(QueryError::parse(0, "BINS must be at least 1"));
            }
            Ok(Analyzed::Audit(AnalyzedAudit {
                filter,
                attributes,
                attr_indexes,
                algorithm: a.algorithm.as_ref().map(|i| i.text.clone()),
                metric: a.metric.as_ref().map(|i| i.text.clone()),
                bins: a.bins,
            }))
        }
        Statement::Select(s) => {
            check_table(&s.from)?;
            let filter = compile_filter(&s.filter, schema)?;
            let group_by = match &s.group_by {
                Some(g) => {
                    let idx = resolve_column(schema, &g.text, g.at)?;
                    if !matches!(schema.attribute(idx).dtype, DataType::Categorical { .. }) {
                        return Err(QueryError::parse(
                            g.at,
                            format!("GROUP BY column `{}` must be categorical", g.text),
                        ));
                    }
                    Some(idx)
                }
                None => None,
            };
            let mut items = Vec::new();
            let mut has_aggregate = false;
            let mut has_plain = false;
            for item in &s.items {
                match item {
                    SelectItem::Star => {
                        if group_by.is_some() {
                            return Err(QueryError::parse(
                                s.from.at,
                                "`*` cannot be combined with GROUP BY",
                            ));
                        }
                        has_plain = true;
                        items.extend((0..schema.width()).map(OutItem::Column));
                    }
                    SelectItem::Column(c) => {
                        let idx = resolve_column(schema, &c.text, c.at)?;
                        if let Some(g) = group_by {
                            if idx != g {
                                return Err(QueryError::parse(
                                    c.at,
                                    format!(
                                        "column `{}` must appear in GROUP BY or an aggregate",
                                        c.text
                                    ),
                                ));
                            }
                        }
                        has_plain = true;
                        items.push(OutItem::Column(idx));
                    }
                    SelectItem::Count => {
                        has_aggregate = true;
                        items.push(OutItem::Count);
                    }
                    SelectItem::Mean(c) | SelectItem::Min(c) | SelectItem::Max(c) => {
                        let idx = resolve_column(schema, &c.text, c.at)?;
                        if matches!(schema.attribute(idx).dtype, DataType::Categorical { .. }) {
                            return Err(QueryError::parse(
                                c.at,
                                format!("aggregate over categorical column `{}`", c.text),
                            ));
                        }
                        has_aggregate = true;
                        items.push(match item {
                            SelectItem::Mean(_) => OutItem::Mean(idx),
                            SelectItem::Min(_) => OutItem::Min(idx),
                            _ => OutItem::Max(idx),
                        });
                    }
                }
            }
            if group_by.is_none() && has_aggregate && has_plain {
                return Err(QueryError::parse(
                    s.from.at,
                    "cannot mix plain columns and aggregates without GROUP BY",
                ));
            }
            Ok(Analyzed::Select(AnalyzedSelect {
                items,
                filter,
                group_by,
                limit: s.limit,
            }))
        }
        Statement::Describe(column) => {
            let idx = match column {
                Some(c) => Some(resolve_column(schema, &c.text, c.at)?),
                None => None,
            };
            Ok(Analyzed::Describe(idx))
        }
        Statement::Explain { analyze: a, inner } => Ok(Analyzed::Explain {
            analyze: *a,
            inner: Box::new(analyze(inner, schema)?),
        }),
    }
}

fn check_table(source: &crate::ast::Ident) -> Result<(), QueryError> {
    if source.text == TABLE_NAME {
        Ok(())
    } else {
        Err(QueryError::parse(
            source.at,
            format!(
                "unknown table `{}` (the session exposes `{TABLE_NAME}`)",
                source.text
            ),
        ))
    }
}

fn resolve_column(schema: &Schema, name: &str, at: usize) -> Result<usize, QueryError> {
    schema
        .index_of(name)
        .map_err(|_| QueryError::parse(at, format!("unknown column `{name}`")))
}

/// Compile a `WHERE` conjunction into a [`Predicate`]. Exact duplicate
/// constraints are dropped; contradictory ones (same attribute, two
/// different values) are rejected — the query could only ever return
/// nothing, which is always a mistake.
fn compile_filter(conditions: &[Condition], schema: &Schema) -> Result<Predicate, QueryError> {
    let mut predicate = Predicate::always();
    for cond in conditions {
        let idx = resolve_column(schema, &cond.attr.text, cond.attr.at)?;
        let def = schema.attribute(idx);
        if !matches!(def.dtype, DataType::Categorical { .. }) {
            return Err(QueryError::parse(
                cond.attr.at,
                format!(
                    "WHERE supports equality on categorical columns only; `{}` is {}",
                    cond.attr.text,
                    def.dtype.type_name()
                ),
            ));
        }
        let code = def.code_of(&cond.value).map_err(|_| {
            QueryError::parse(
                cond.value_at,
                format!(
                    "no value `{}` in the domain of `{}`",
                    cond.value, cond.attr.text
                ),
            )
        })?;
        if predicate
            .constraints()
            .iter()
            .any(|c| c.attr == idx && c.code == code)
        {
            continue;
        }
        if predicate.constrains(idx) {
            return Err(QueryError::parse(
                cond.value_at,
                format!(
                    "contradictory constraint on `{}` (already fixed to a different value)",
                    cond.attr.text
                ),
            ));
        }
        predicate = predicate.and(idx, code);
    }
    Ok(predicate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use fairjob_store::schema::Schema;

    fn schema() -> Schema {
        Schema::builder()
            .categorical("gender", AttributeKind::Protected, &["Male", "Female"])
            .categorical(
                "country",
                AttributeKind::Protected,
                &["America", "India", "Other"],
            )
            .numeric("approval_rate", AttributeKind::Observed, 0.0, 100.0)
            .build()
            .unwrap()
    }

    fn check(text: &str) -> Result<Analyzed, QueryError> {
        analyze(&parse(text).unwrap()[0], &schema())
    }

    #[test]
    fn resolves_filter_and_protect() {
        let Analyzed::Audit(a) =
            check("AUDIT workers WHERE country = 'India' PROTECT gender").unwrap()
        else {
            panic!("not an audit")
        };
        assert_eq!(a.filter.constraints().len(), 1);
        assert_eq!(a.attributes, Some(vec!["gender".to_string()]));
        assert_eq!(a.attr_indexes, vec![0]);
    }

    #[test]
    fn no_protect_means_all_splittable_but_stays_none() {
        let Analyzed::Audit(a) = check("AUDIT workers").unwrap() else {
            panic!("not an audit")
        };
        assert_eq!(a.attributes, None);
        assert_eq!(a.attr_indexes, vec![0, 1]);
    }

    #[test]
    fn unknown_table_and_column_are_parse_errors() {
        assert!(matches!(
            check("AUDIT jobs"),
            Err(QueryError::Parse { offset: 6, .. })
        ));
        assert!(matches!(
            check("AUDIT workers WHERE nope = 'x'"),
            Err(QueryError::Parse { offset: 20, .. })
        ));
    }

    #[test]
    fn domain_violation_points_at_value() {
        let err = check("AUDIT workers WHERE gender = 'Robot'").unwrap_err();
        assert!(
            matches!(err, QueryError::Parse { offset: 29, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn protect_rejects_observed_columns() {
        assert!(check("AUDIT workers PROTECT approval_rate").is_err());
    }

    #[test]
    fn contradictory_filter_rejected_duplicates_dropped() {
        assert!(check("AUDIT workers WHERE gender = 'Male' AND gender = 'Female'").is_err());
        let Analyzed::Audit(a) =
            check("AUDIT workers WHERE gender = 'Male' AND gender = 'Male'").unwrap()
        else {
            panic!("not an audit")
        };
        assert_eq!(a.filter.constraints().len(), 1);
    }

    #[test]
    fn unknown_algorithm_and_metric_rejected() {
        assert!(check("AUDIT workers USING quantum").is_err());
        assert!(check("AUDIT workers METRIC cosine").is_err());
    }

    #[test]
    fn select_star_expands() {
        let Analyzed::Select(s) = check("SELECT * FROM workers").unwrap() else {
            panic!("not a select")
        };
        assert_eq!(s.items.len(), 3);
    }

    #[test]
    fn group_by_rules() {
        assert!(check("SELECT gender, COUNT(*) FROM workers GROUP BY gender").is_ok());
        assert!(check("SELECT country FROM workers GROUP BY gender").is_err());
        assert!(check("SELECT * FROM workers GROUP BY gender").is_err());
        assert!(check("SELECT gender, COUNT(*) FROM workers").is_err());
        assert!(check("SELECT MEAN(gender) FROM workers").is_err());
    }
}
