//! The FairQL lexer: query text → tokens with byte offsets.
//!
//! Tokens carry the byte offset they start at so every later stage
//! (parser *and* analyzer) can report machine-actionable positions —
//! the serve protocol's `ERR parse <position> <message>` class depends
//! on this.

use crate::error::QueryError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text. For [`TokenKind::Str`] this is the *unquoted*
    /// content.
    pub text: String,
    /// Byte offset of the token's first character in the query text.
    pub at: usize,
}

/// Token kinds. Keywords are not distinguished here — the parser
/// matches [`TokenKind::Word`] case-insensitively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword: `[A-Za-z_][A-Za-z0-9_-]*`. Hyphens are
    /// word characters so metric and algorithm names (`emd-exact`,
    /// `r-balanced`, `all-attributes`) lex as single words.
    Word,
    /// Quoted string literal (single or double quotes, no escapes).
    Str,
    /// Unsigned integer literal.
    Num,
    /// `,`
    Comma,
    /// `=`
    Equals,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semicolon,
}

fn is_word_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_word_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-'
}

/// Lex `text` into tokens.
///
/// Whitespace separates tokens; `--` starts a comment running to end of
/// line (a lone `-` only continues a word, it never starts one).
///
/// # Errors
///
/// [`QueryError::Parse`] on an unterminated string or a character no
/// token can start with, positioned at the offending byte.
pub fn lex(text: &str) -> Result<Vec<Token>, QueryError> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let at = i;
        let simple = match c {
            b',' => Some(TokenKind::Comma),
            b'=' => Some(TokenKind::Equals),
            b'*' => Some(TokenKind::Star),
            b'(' => Some(TokenKind::LParen),
            b')' => Some(TokenKind::RParen),
            b';' => Some(TokenKind::Semicolon),
            _ => None,
        };
        if let Some(kind) = simple {
            tokens.push(Token {
                kind,
                text: (c as char).to_string(),
                at,
            });
            i += 1;
            continue;
        }
        if c == b'\'' || c == b'"' {
            let quote = c;
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != quote {
                j += 1;
            }
            if j >= bytes.len() {
                return Err(QueryError::parse(at, "unterminated string literal"));
            }
            tokens.push(Token {
                kind: TokenKind::Str,
                text: text[i + 1..j].to_string(),
                at,
            });
            i = j + 1;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Num,
                text: text[i..j].to_string(),
                at,
            });
            i = j;
            continue;
        }
        if is_word_start(c) {
            let mut j = i;
            while j < bytes.len() && is_word_char(bytes[j]) {
                j += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Word,
                text: text[i..j].to_string(),
                at,
            });
            i = j;
            continue;
        }
        return Err(QueryError::parse(
            at,
            format!("unexpected character `{}`", c as char),
        ));
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<TokenKind> {
        lex(text).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_numbers_punctuation() {
        assert_eq!(
            kinds("AUDIT workers WHERE x = 'y', 10 (*);"),
            vec![
                TokenKind::Word,
                TokenKind::Word,
                TokenKind::Word,
                TokenKind::Word,
                TokenKind::Equals,
                TokenKind::Str,
                TokenKind::Comma,
                TokenKind::Num,
                TokenKind::LParen,
                TokenKind::Star,
                TokenKind::RParen,
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn hyphenated_words_are_single_tokens() {
        let toks = lex("emd-exact r-balanced all-attributes").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].text, "r-balanced");
    }

    #[test]
    fn comments_run_to_end_of_line() {
        let toks = lex("a -- rest is ignored\nb").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].text, "b");
        assert_eq!(toks[1].at, 21);
    }

    #[test]
    fn offsets_are_byte_positions() {
        let toks = lex("ab  cd").unwrap();
        assert_eq!(toks[0].at, 0);
        assert_eq!(toks[1].at, 4);
    }

    #[test]
    fn unterminated_string_reports_open_quote() {
        let err = lex("x = 'oops").unwrap_err();
        assert_eq!(
            err,
            QueryError::parse(4, "unterminated string literal".to_string())
        );
    }

    #[test]
    fn double_quotes_accepted() {
        let toks = lex("\"America\"").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert_eq!(toks[0].text, "America");
    }

    #[test]
    fn stray_character_rejected_with_offset() {
        let err = lex("a ? b").unwrap_err();
        assert!(matches!(err, QueryError::Parse { offset: 2, .. }));
    }
}
