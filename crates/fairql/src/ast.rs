//! The FairQL abstract syntax tree and its canonical pretty-printer.
//!
//! The pretty-printer is total and canonical: for every AST the printed
//! text re-parses to an equal AST (property-tested in
//! `tests/proptests.rs`). Equality on [`Ident`] ignores source offsets
//! so a printed-then-reparsed tree compares equal even though its
//! tokens moved.

use std::fmt;
use std::hash::{Hash, Hasher};

/// An identifier with the byte offset it was parsed at. Offsets are
/// carried for error reporting only — they do not participate in
/// equality or hashing.
#[derive(Debug, Clone, Eq)]
pub struct Ident {
    /// The identifier text.
    pub text: String,
    /// Byte offset in the query text (0 for synthesised idents).
    pub at: usize,
}

impl Ident {
    /// An identifier with no source position (for programmatic ASTs).
    pub fn new(text: impl Into<String>) -> Self {
        Ident {
            text: text.into(),
            at: 0,
        }
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        self.text == other.text
    }
}

impl Hash for Ident {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.text.hash(state);
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// One `attribute = 'value'` equality in a `WHERE` conjunction.
#[derive(Debug, Clone)]
pub struct Condition {
    /// The attribute name.
    pub attr: Ident,
    /// The value it must equal (always printed quoted).
    pub value: String,
    /// Byte offset of the value token (for analyzer errors).
    pub value_at: usize,
}

impl PartialEq for Condition {
    /// Offset-blind, like [`Ident`]: only the attribute and value
    /// matter.
    fn eq(&self, other: &Self) -> bool {
        self.attr == other.attr && self.value == other.value
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = '{}'", self.attr, self.value)
    }
}

/// `AUDIT <source> [WHERE ...] [PROTECT a, b] [USING alg] [METRIC m]
/// [BINS n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditStmt {
    /// The audited source (the session's table, named `workers`).
    pub source: Ident,
    /// `WHERE` conjunction (empty = audit everyone).
    pub filter: Vec<Condition>,
    /// `PROTECT` attribute list (empty = every splittable protected
    /// attribute, in schema order).
    pub protect: Vec<Ident>,
    /// `USING` algorithm name (session default when absent).
    pub algorithm: Option<Ident>,
    /// `METRIC` distance name (session default when absent).
    pub metric: Option<Ident>,
    /// `BINS` histogram bin count (session default when absent).
    pub bins: Option<usize>,
}

/// One projection item in a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — every column.
    Star,
    /// A plain column reference.
    Column(Ident),
    /// `COUNT(*)`.
    Count,
    /// `MEAN(col)` over a numeric column.
    Mean(Ident),
    /// `MIN(col)` over a numeric column.
    Min(Ident),
    /// `MAX(col)` over a numeric column.
    Max(Ident),
}

impl SelectItem {
    /// True for aggregate items (`COUNT`/`MEAN`/`MIN`/`MAX`).
    pub fn is_aggregate(&self) -> bool {
        !matches!(self, SelectItem::Star | SelectItem::Column(_))
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star => f.write_str("*"),
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Count => f.write_str("COUNT(*)"),
            SelectItem::Mean(c) => write!(f, "MEAN({c})"),
            SelectItem::Min(c) => write!(f, "MIN({c})"),
            SelectItem::Max(c) => write!(f, "MAX({c})"),
        }
    }
}

/// `SELECT items FROM <source> [WHERE ...] [GROUP BY col] [LIMIT n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// The projection list (never empty).
    pub items: Vec<SelectItem>,
    /// The source table.
    pub from: Ident,
    /// `WHERE` conjunction (empty = all rows).
    pub filter: Vec<Condition>,
    /// `GROUP BY` column.
    pub group_by: Option<Ident>,
    /// `LIMIT` row cap.
    pub limit: Option<usize>,
}

/// A FairQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// An audit.
    Audit(AuditStmt),
    /// A row query.
    Select(SelectStmt),
    /// `DESCRIBE [column]` — schema and summary statistics.
    Describe(Option<Ident>),
    /// `EXPLAIN [ANALYZE] <audit|select>`.
    Explain {
        /// When true, execute the inner statement and annotate the plan
        /// with actual counters.
        analyze: bool,
        /// The explained statement (never itself an `EXPLAIN`).
        inner: Box<Statement>,
    },
}

impl fmt::Display for AuditStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AUDIT {}", self.source)?;
        write_filter(f, &self.filter)?;
        if !self.protect.is_empty() {
            f.write_str(" PROTECT ")?;
            write_list(f, &self.protect)?;
        }
        if let Some(a) = &self.algorithm {
            write!(f, " USING {a}")?;
        }
        if let Some(m) = &self.metric {
            write!(f, " METRIC {m}")?;
        }
        if let Some(b) = self.bins {
            write!(f, " BINS {b}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        write_list(f, &self.items)?;
        write!(f, " FROM {}", self.from)?;
        write_filter(f, &self.filter)?;
        if let Some(g) = &self.group_by {
            write!(f, " GROUP BY {g}")?;
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Audit(a) => write!(f, "{a}"),
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Describe(None) => f.write_str("DESCRIBE"),
            Statement::Describe(Some(c)) => write!(f, "DESCRIBE {c}"),
            Statement::Explain { analyze, inner } => {
                if *analyze {
                    write!(f, "EXPLAIN ANALYZE {inner}")
                } else {
                    write!(f, "EXPLAIN {inner}")
                }
            }
        }
    }
}

fn write_filter(f: &mut fmt::Formatter<'_>, filter: &[Condition]) -> fmt::Result {
    for (i, cond) in filter.iter().enumerate() {
        f.write_str(if i == 0 { " WHERE " } else { " AND " })?;
        write!(f, "{cond}")?;
    }
    Ok(())
}

fn write_list<T: fmt::Display>(f: &mut fmt::Formatter<'_>, items: &[T]) -> fmt::Result {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{item}")?;
    }
    Ok(())
}
