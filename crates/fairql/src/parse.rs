//! The FairQL recursive-descent parser: tokens → [`Statement`]s.
//!
//! Keywords are case-insensitive; identifiers are case-sensitive.
//! Statements are separated by `;` (a trailing one is allowed). Every
//! error carries the byte offset of the token it tripped on.

use crate::ast::{AuditStmt, Condition, Ident, SelectItem, SelectStmt, Statement};
use crate::error::QueryError;
use crate::lex::{lex, Token, TokenKind};

/// Parse a FairQL script (one or more `;`-separated statements).
///
/// # Errors
///
/// [`QueryError::Parse`] with the byte offset of the offending token.
pub fn parse(text: &str) -> Result<Vec<Statement>, QueryError> {
    let tokens = lex(text)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        end: text.len(),
    };
    let mut statements = Vec::new();
    loop {
        while parser.eat_kind(TokenKind::Semicolon) {}
        if parser.peek().is_none() {
            break;
        }
        statements.push(parser.statement()?);
        if parser.peek().is_some() {
            parser.expect_kind(TokenKind::Semicolon, "`;` between statements")?;
        }
    }
    if statements.is_empty() {
        return Err(QueryError::parse(0, "empty query"));
    }
    Ok(statements)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Byte length of the source, used as the offset for
    /// unexpected-end-of-input errors.
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn here(&self) -> usize {
        self.peek().map_or(self.end, |t| t.at)
    }

    fn advance(&mut self) -> Option<Token> {
        let tok = self.tokens.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    /// Consume the next token if it is the given keyword
    /// (case-insensitive).
    fn eat_keyword(&mut self, kw: &str) -> bool {
        let matches = self
            .peek()
            .is_some_and(|t| t.kind == TokenKind::Word && t.text.eq_ignore_ascii_case(kw));
        if matches {
            self.pos += 1;
        }
        matches
    }

    fn eat_kind(&mut self, kind: TokenKind) -> bool {
        let matches = self.peek().is_some_and(|t| t.kind == kind);
        if matches {
            self.pos += 1;
        }
        matches
    }

    fn expect_kind(&mut self, kind: TokenKind, what: &str) -> Result<Token, QueryError> {
        match self.peek() {
            Some(t) if t.kind == kind => Ok(self.advance().expect("peeked")),
            Some(t) => Err(QueryError::parse(
                t.at,
                format!("expected {what}, found `{}`", t.text),
            )),
            None => Err(QueryError::parse(
                self.end,
                format!("expected {what}, found end of query"),
            )),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{kw}`")))
        }
    }

    fn unexpected(&self, what: &str) -> QueryError {
        match self.peek() {
            Some(t) => QueryError::parse(t.at, format!("expected {what}, found `{}`", t.text)),
            None => QueryError::parse(self.end, format!("expected {what}, found end of query")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<Ident, QueryError> {
        let tok = self.expect_kind(TokenKind::Word, what)?;
        Ok(Ident {
            text: tok.text,
            at: tok.at,
        })
    }

    fn number(&mut self, what: &str) -> Result<usize, QueryError> {
        let tok = self.expect_kind(TokenKind::Num, what)?;
        tok.text
            .parse()
            .map_err(|_| QueryError::parse(tok.at, format!("number `{}` out of range", tok.text)))
    }

    fn statement(&mut self) -> Result<Statement, QueryError> {
        if self.eat_keyword("EXPLAIN") {
            let analyze = self.eat_keyword("ANALYZE");
            let at = self.here();
            let inner = self.statement()?;
            if matches!(inner, Statement::Explain { .. }) {
                return Err(QueryError::parse(at, "EXPLAIN cannot be nested"));
            }
            return Ok(Statement::Explain {
                analyze,
                inner: Box::new(inner),
            });
        }
        if self.eat_keyword("AUDIT") {
            return self.audit();
        }
        if self.eat_keyword("SELECT") {
            return self.select();
        }
        if self.eat_keyword("DESCRIBE") {
            let column = match self.peek() {
                Some(t) if t.kind == TokenKind::Word => Some(self.ident("column")?),
                _ => None,
            };
            return Ok(Statement::Describe(column));
        }
        Err(self.unexpected("`AUDIT`, `SELECT`, `DESCRIBE` or `EXPLAIN`"))
    }

    fn filter(&mut self) -> Result<Vec<Condition>, QueryError> {
        let mut conditions = Vec::new();
        if !self.eat_keyword("WHERE") {
            return Ok(conditions);
        }
        loop {
            let attr = self.ident("attribute name")?;
            self.expect_kind(TokenKind::Equals, "`=`")?;
            let value = match self.peek() {
                Some(t) if matches!(t.kind, TokenKind::Str | TokenKind::Word | TokenKind::Num) => {
                    self.advance().expect("peeked")
                }
                _ => return Err(self.unexpected("a value")),
            };
            conditions.push(Condition {
                attr,
                value: value.text,
                value_at: value.at,
            });
            if !self.eat_keyword("AND") {
                break;
            }
        }
        Ok(conditions)
    }

    fn audit(&mut self) -> Result<Statement, QueryError> {
        let source = self.ident("source name")?;
        let filter = self.filter()?;
        let mut protect = Vec::new();
        if self.eat_keyword("PROTECT") {
            loop {
                protect.push(self.ident("protected attribute")?);
                if !self.eat_kind(TokenKind::Comma) {
                    break;
                }
            }
        }
        let algorithm = if self.eat_keyword("USING") {
            Some(self.ident("algorithm name")?)
        } else {
            None
        };
        let metric = if self.eat_keyword("METRIC") {
            Some(self.ident("metric name")?)
        } else {
            None
        };
        let bins = if self.eat_keyword("BINS") {
            Some(self.number("bin count")?)
        } else {
            None
        };
        Ok(Statement::Audit(AuditStmt {
            source,
            filter,
            protect,
            algorithm,
            metric,
            bins,
        }))
    }

    fn select_item(&mut self) -> Result<SelectItem, QueryError> {
        if self.eat_kind(TokenKind::Star) {
            return Ok(SelectItem::Star);
        }
        let name = self.ident("a column or aggregate")?;
        // `word(` is an aggregate call; a bare word is a column.
        if !self.peek().is_some_and(|t| t.kind == TokenKind::LParen) {
            return Ok(SelectItem::Column(name));
        }
        self.expect_kind(TokenKind::LParen, "`(`")?;
        let item = if name.text.eq_ignore_ascii_case("COUNT") {
            self.expect_kind(TokenKind::Star, "`*`")?;
            SelectItem::Count
        } else {
            let arg = self.ident("column name")?;
            match name.text.to_ascii_uppercase().as_str() {
                "MEAN" => SelectItem::Mean(arg),
                "MIN" => SelectItem::Min(arg),
                "MAX" => SelectItem::Max(arg),
                _ => {
                    return Err(QueryError::parse(
                        name.at,
                        format!(
                            "unknown aggregate `{}` (COUNT | MEAN | MIN | MAX)",
                            name.text
                        ),
                    ))
                }
            }
        };
        self.expect_kind(TokenKind::RParen, "`)`")?;
        Ok(item)
    }

    fn select(&mut self) -> Result<Statement, QueryError> {
        let mut items = vec![self.select_item()?];
        while self.eat_kind(TokenKind::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let from = self.ident("source name")?;
        let filter = self.filter()?;
        let group_by = if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            Some(self.ident("grouping column")?)
        } else {
            None
        };
        let limit = if self.eat_keyword("LIMIT") {
            Some(self.number("row limit")?)
        } else {
            None
        };
        Ok(Statement::Select(SelectStmt {
            items,
            from,
            filter,
            group_by,
            limit,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(text: &str) -> Statement {
        let mut stmts = parse(text).unwrap();
        assert_eq!(stmts.len(), 1);
        stmts.pop().unwrap()
    }

    #[test]
    fn parses_full_audit() {
        let s = one("AUDIT workers WHERE country = 'America' AND gender = Male \
             PROTECT gender, country USING unbalanced METRIC emd-exact BINS 8");
        let Statement::Audit(a) = s else {
            panic!("not an audit")
        };
        assert_eq!(a.filter.len(), 2);
        assert_eq!(a.filter[1].value, "Male");
        assert_eq!(a.protect.len(), 2);
        assert_eq!(a.algorithm.as_ref().unwrap().text, "unbalanced");
        assert_eq!(a.metric.as_ref().unwrap().text, "emd-exact");
        assert_eq!(a.bins, Some(8));
    }

    #[test]
    fn parses_select_with_aggregates() {
        let s = one("SELECT gender, COUNT(*), MEAN(approval_rate) FROM workers GROUP BY gender");
        let Statement::Select(sel) = s else {
            panic!("not a select")
        };
        assert_eq!(sel.items.len(), 3);
        assert!(sel.items[1].is_aggregate());
        assert_eq!(sel.group_by.as_ref().unwrap().text, "gender");
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let a = one("audit workers where gender = 'Male'");
        let b = one("AUDIT workers WHERE gender = 'Male'");
        assert_eq!(a, b);
    }

    #[test]
    fn explain_analyze_wraps_statement() {
        let s = one("EXPLAIN ANALYZE AUDIT workers");
        assert!(matches!(s, Statement::Explain { analyze: true, .. }));
    }

    #[test]
    fn explain_cannot_nest() {
        assert!(matches!(
            parse("EXPLAIN EXPLAIN AUDIT workers"),
            Err(QueryError::Parse { .. })
        ));
    }

    #[test]
    fn multiple_statements_split_on_semicolons() {
        let stmts = parse("DESCRIBE; AUDIT workers;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn error_offset_points_at_bad_token() {
        let err = parse("AUDIT workers BOGUS x").unwrap_err();
        assert!(
            matches!(err, QueryError::Parse { offset: 14, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn eof_errors_use_text_length() {
        let err = parse("SELECT gender FROM").unwrap_err();
        assert!(
            matches!(err, QueryError::Parse { offset: 18, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn display_round_trips() {
        let text = "AUDIT workers WHERE country = 'America' PROTECT gender USING balanced METRIC emd BINS 10";
        let stmt = one(text);
        assert_eq!(stmt.to_string(), text);
        assert_eq!(one(&stmt.to_string()), stmt);
    }
}
