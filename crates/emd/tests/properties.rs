//! Property-based tests: the EMD solvers agree with each other and the
//! closed form, and EMD is a metric on normalised histograms.

use fairjob_emd::bounds::{
    cdf_l1_grid, cdf_l1_positions, projection_lower, tv_lower, tv_upper, PrefixCdf,
};
use fairjob_emd::{
    emd_1d_grid, emd_1d_samples, emd_between, emd_cost_in, normalise, solve_emd, solve_emd_in,
    EmdConfig, GridL1, GroundDistance, PositionsL1, SolveScratch, Solver, TransportProblem,
};
use proptest::prelude::*;

/// Strategy: a mass vector of length `n` with at least one positive entry.
fn masses(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..10.0, n)
        .prop_filter("non-zero total", |v| v.iter().sum::<f64>() > 1e-6)
}

/// Strategy: a sparse mass vector — each bin is either exactly empty or
/// substantial, so support compaction and degenerate (zero-mass-row)
/// handling both get exercised, including single-bin instances.
fn sparse_masses(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0.0f64..1.0, 0.5f64..10.0), n)
        .prop_map(|v| {
            v.into_iter()
                .map(|(gate, x)| if gate < 0.6 { 0.0 } else { x })
                .collect::<Vec<f64>>()
        })
        .prop_filter("non-zero total", |v| v.iter().sum::<f64>() > 1e-6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn closed_form_matches_flow_solver(a in masses(8), b in masses(8)) {
        let exact = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        let flow = emd_between(&a, &b, &EmdConfig::grid_l1(0.0, 1.0).with_solver(Solver::Flow))
            .unwrap();
        prop_assert!((exact - flow).abs() < 1e-7, "closed={exact} flow={flow}");
    }

    #[test]
    fn closed_form_matches_simplex_solver(a in masses(6), b in masses(6)) {
        let exact = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        // Force the exact solver by going through an explicit matrix ground.
        let g = GridL1::new(0.0, 1.0, 6).unwrap();
        let m: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..6).map(|j| fairjob_emd::GroundDistance::cost(&g, i, j)).collect())
            .collect();
        let simplex = emd_between(&a, &b, &EmdConfig::matrix(m).with_solver(Solver::Simplex))
            .unwrap();
        prop_assert!((exact - simplex).abs() < 1e-7, "closed={exact} simplex={simplex}");
    }

    #[test]
    fn flow_and_simplex_agree_on_arbitrary_metric_grounds(
        a in masses(5),
        b in masses(5),
        pos in prop::collection::vec(0.0f64..100.0, 5),
    ) {
        // |xi - xj| for arbitrary positions is a metric ground distance.
        let m: Vec<Vec<f64>> = (0..5)
            .map(|i| (0..5).map(|j| (pos[i] - pos[j]).abs()).collect())
            .collect();
        let flow = emd_between(&a, &b, &EmdConfig::matrix(m.clone()).with_solver(Solver::Flow))
            .unwrap();
        let simplex = emd_between(&a, &b, &EmdConfig::matrix(m).with_solver(Solver::Simplex))
            .unwrap();
        prop_assert!((flow - simplex).abs() < 1e-7, "flow={flow} simplex={simplex}");
    }

    #[test]
    fn emd_is_nonnegative_and_bounded(a in masses(10), b in masses(10)) {
        let d = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        prop_assert!(d >= 0.0);
        // Max possible distance: span between extreme bin centres.
        prop_assert!(d <= 0.9 + 1e-12);
    }

    #[test]
    fn emd_symmetry(a in masses(10), b in masses(10)) {
        let d1 = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        let d2 = emd_1d_grid(&b, &a, 0.0, 1.0).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn emd_identity(a in masses(10)) {
        let d = emd_1d_grid(&a, &a, 0.0, 1.0).unwrap();
        prop_assert!(d.abs() < 1e-12);
    }

    #[test]
    fn emd_triangle_inequality(a in masses(8), b in masses(8), c in masses(8)) {
        let dab = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        let dbc = emd_1d_grid(&b, &c, 0.0, 1.0).unwrap();
        let dac = emd_1d_grid(&a, &c, 0.0, 1.0).unwrap();
        prop_assert!(dac <= dab + dbc + 1e-9, "d(a,c)={dac} > d(a,b)+d(b,c)={}", dab + dbc);
    }

    #[test]
    fn scale_invariance_of_normalised_emd(a in masses(6), b in masses(6), k in 0.1f64..50.0) {
        let d1 = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        let scaled: Vec<f64> = a.iter().map(|x| x * k).collect();
        let d2 = emd_1d_grid(&scaled, &b, 0.0, 1.0).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn sample_emd_matches_fine_histogram_emd(
        xs in prop::collection::vec(0.0f64..1.0, 1..40),
        ys in prop::collection::vec(0.0f64..1.0, 1..40),
    ) {
        // Binning error is bounded by one bin width per side.
        let exact = emd_1d_samples(&xs, &ys).unwrap();
        let bins = 1000usize;
        let mut ha = vec![0.0; bins];
        let mut hb = vec![0.0; bins];
        for &x in &xs { ha[((x * bins as f64) as usize).min(bins - 1)] += 1.0; }
        for &y in &ys { hb[((y * bins as f64) as usize).min(bins - 1)] += 1.0; }
        let approx = emd_1d_grid(&ha, &hb, 0.0, 1.0).unwrap();
        prop_assert!((exact - approx).abs() < 2.0 / bins as f64 + 1e-9,
            "exact={exact} approx={approx}");
    }

    #[test]
    fn normalise_produces_unit_mass(a in masses(12)) {
        let n = normalise(&a).unwrap();
        let t: f64 = n.iter().sum();
        prop_assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn signature_emd_properties(
        pa in prop::collection::vec((0.0f64..1.0, 0.1f64..5.0), 1..6),
        pb in prop::collection::vec((0.0f64..1.0, 0.1f64..5.0), 1..6),
    ) {
        use fairjob_emd::signature::{diameter, emd_hat, emd_signatures, Signature};
        let a = Signature::new(pa.iter().map(|p| p.0).collect(), pa.iter().map(|p| p.1).collect())
            .unwrap();
        let b = Signature::new(pb.iter().map(|p| p.0).collect(), pb.iter().map(|p| p.1).collect())
            .unwrap();
        // Partial-matching EMD: symmetric, non-negative, zero on self.
        let dab = emd_signatures(&a, &b).unwrap();
        let dba = emd_signatures(&b, &a).unwrap();
        prop_assert!(dab >= -1e-12);
        prop_assert!((dab - dba).abs() < 1e-8);
        prop_assert!(emd_signatures(&a, &a).unwrap().abs() < 1e-9);
        // EMD-hat with penalty >= diameter dominates the matched cost
        // and is symmetric.
        let pen = diameter(&a, &b).max(1.0);
        let hab = emd_hat(&a, &b, pen).unwrap();
        let hba = emd_hat(&b, &a, pen).unwrap();
        prop_assert!((hab - hba).abs() < 1e-8);
        prop_assert!(hab + 1e-9 >= dab * a.total().min(b.total()) / a.total().max(b.total()).max(1.0) * 0.0);
    }

    #[test]
    fn emd_hat_triangle_inequality(
        pa in prop::collection::vec((0.0f64..1.0, 0.1f64..5.0), 1..5),
        pb in prop::collection::vec((0.0f64..1.0, 0.1f64..5.0), 1..5),
        pc in prop::collection::vec((0.0f64..1.0, 0.1f64..5.0), 1..5),
    ) {
        use fairjob_emd::signature::{emd_hat, Signature};
        let mk = |pts: &[(f64, f64)]| {
            Signature::new(pts.iter().map(|p| p.0).collect(), pts.iter().map(|p| p.1).collect())
                .unwrap()
        };
        let (a, b, c) = (mk(&pa), mk(&pb), mk(&pc));
        // Positions live in [0,1], so penalty 1.0 >= the diameter.
        let ab = emd_hat(&a, &b, 1.0).unwrap();
        let bc = emd_hat(&b, &c, 1.0).unwrap();
        let ac = emd_hat(&a, &c, 1.0).unwrap();
        prop_assert!(ac <= ab + bc + 1e-8, "triangle violated: {ac} > {ab} + {bc}");
    }

    #[test]
    fn cdf_closed_form_is_bit_identical_on_grids(a in masses(10), b in masses(10)) {
        let pa = PrefixCdf::build(&a).unwrap();
        let pb = PrefixCdf::build(&b).unwrap();
        let exact = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        let cached = cdf_l1_grid(&pa, &pb, 0.0, 1.0).unwrap();
        prop_assert_eq!(exact.to_bits(), cached.to_bits(),
            "exact={} cached={}", exact, cached);
    }

    #[test]
    fn cdf_closed_form_matches_positions_solver(
        a in masses(8),
        b in masses(8),
        gaps in prop::collection::vec(0.0f64..5.0, 8),
    ) {
        // Arbitrary sorted positions built from non-negative gaps.
        let mut pos = Vec::with_capacity(8);
        let mut x = 0.0;
        for g in gaps { x += g; pos.push(x); }
        let pa = PrefixCdf::build(&a).unwrap();
        let pb = PrefixCdf::build(&b).unwrap();
        let exact = fairjob_emd::emd_1d_positions(&a, &b, &pos).unwrap();
        let cached = cdf_l1_positions(&pa, &pb, &pos).unwrap();
        prop_assert_eq!(exact.to_bits(), cached.to_bits(),
            "exact={} cached={}", exact, cached);
        prop_assert!((exact - cached).abs() <= 1e-12);
    }

    #[test]
    fn bounds_sandwich_exact_emd_on_line_grounds(a in masses(9), b in masses(9)) {
        // 9 bins over [0,1]: centres lo + (i + 0.5)/9.
        let centres: Vec<f64> = (0..9).map(|i| (i as f64 + 0.5) / 9.0).collect();
        let pa = PrefixCdf::build(&a).unwrap();
        let pb = PrefixCdf::build(&b).unwrap();
        let exact = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        let lower = projection_lower(&pa, &pb, &centres).unwrap()
            .max(tv_lower(&pa, &pb, 1.0 / 9.0).unwrap());
        let upper = tv_upper(&pa, &pb, centres[8] - centres[0]).unwrap();
        prop_assert!(lower <= exact + 1e-12, "lower {lower} > exact {exact}");
        prop_assert!(exact <= upper + 1e-12, "exact {exact} > upper {upper}");
    }

    #[test]
    fn bounds_sandwich_exact_emd_on_all_grounds(
        a in masses(6),
        b in masses(6),
        t in 0.05f64..1.0,
    ) {
        // The TV sandwich must hold for every ground-distance family the
        // solvers support: plain grid L1, thresholded grid, and a dense
        // matrix ground (here |i - j|^1.5, a metric on indices).
        let pa = PrefixCdf::build(&a).unwrap();
        let pb = PrefixCdf::build(&b).unwrap();
        let width = 1.0 / 6.0;

        let plain = emd_between(&a, &b, &EmdConfig::grid_l1(0.0, 1.0)).unwrap();
        let span = 5.0 * width;
        prop_assert!(tv_lower(&pa, &pb, width).unwrap() <= plain + 1e-9);
        prop_assert!(plain <= tv_upper(&pa, &pb, span).unwrap() + 1e-9);

        let thresh = emd_between(&a, &b, &EmdConfig::thresholded_grid(0.0, 1.0, t)).unwrap();
        prop_assert!(tv_lower(&pa, &pb, width.min(t)).unwrap() <= thresh + 1e-9);
        prop_assert!(thresh <= tv_upper(&pa, &pb, span.min(t)).unwrap() + 1e-9);

        let m: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..6).map(|j| ((i as f64) - (j as f64)).abs().powf(1.5)).collect())
            .collect();
        let matrix = emd_between(&a, &b, &EmdConfig::matrix(m)).unwrap();
        let d_max = 5.0f64.powf(1.5);
        prop_assert!(tv_lower(&pa, &pb, 1.0).unwrap() <= matrix + 1e-9);
        prop_assert!(matrix <= tv_upper(&pa, &pb, d_max).unwrap() + 1e-9);
    }

    #[test]
    fn flow_and_simplex_agree_on_sparse_degenerate_instances(
        a in sparse_masses(7),
        b in sparse_masses(7),
        pos_idx in prop::collection::vec(0usize..4, 7),
    ) {
        // Positions drawn from only four distinct values: duplicates give
        // zero-cost edges and massively degenerate optimal plans, the
        // worst case for solver agreement.
        let levels = [0.0, 0.25, 0.5, 1.0];
        let pos: Vec<f64> = pos_idx.iter().map(|&i| levels[i]).collect();
        let g = PositionsL1::new(pos);
        let na = normalise(&a).unwrap();
        let nb = normalise(&b).unwrap();
        let f = solve_emd(&na, &nb, &g, Solver::Flow).unwrap();
        let s = solve_emd(&na, &nb, &g, Solver::Simplex).unwrap();
        prop_assert!((f.cost - s.cost).abs() < 1e-9, "flow={} simplex={}", f.cost, s.cost);
    }

    #[test]
    fn compacted_solve_matches_uncompacted_problem(
        a in sparse_masses(6),
        b in sparse_masses(6),
    ) {
        // solve_emd compacts onto the non-empty supports; a raw
        // TransportProblem keeps the zero-mass rows/columns. The optimum
        // must not depend on which formulation ran.
        let na = normalise(&a).unwrap();
        let nb = normalise(&b).unwrap();
        let g = GridL1::new(0.0, 1.0, 6).unwrap();
        let p = TransportProblem {
            supplies: na.clone(),
            demands: nb.clone(),
            costs: (0..6)
                .map(|i| (0..6).map(|j| g.cost(i, j)).collect())
                .collect(),
        };
        for solver in [Solver::Flow, Solver::Simplex] {
            let compacted = solve_emd(&na, &nb, &g, solver).unwrap();
            let full = p.solve(solver).unwrap();
            prop_assert!(
                (compacted.cost - full.cost).abs() < 1e-9,
                "{solver:?}: compacted={} full={}", compacted.cost, full.cost
            );
        }
    }

    #[test]
    fn arena_scratch_is_bit_identical_to_legacy_path(
        pairs in prop::collection::vec((sparse_masses(6), sparse_masses(6)), 1..5),
    ) {
        // One long-lived scratch across pairs and solver switches must
        // reproduce the fresh-scratch path bit for bit, flows included.
        let g = GridL1::new(0.0, 1.0, 6).unwrap();
        let mut scratch = SolveScratch::new();
        for (a, b) in &pairs {
            let na = normalise(a).unwrap();
            let nb = normalise(b).unwrap();
            for solver in [Solver::Flow, Solver::Simplex] {
                let fresh = solve_emd(&na, &nb, &g, solver).unwrap();
                let reused = solve_emd_in(&mut scratch, &na, &nb, &g, solver).unwrap();
                prop_assert_eq!(fresh.cost.to_bits(), reused.cost.to_bits(),
                    "{:?}: fresh={} reused={}", solver, fresh.cost, reused.cost);
                prop_assert_eq!(&fresh.flows, &reused.flows);
            }
        }
    }

    #[test]
    fn warm_replay_is_bit_identical_to_cold(
        mask in prop::collection::vec(0.0f64..1.0, 6)
            .prop_map(|v| v.into_iter().map(|g| g < 0.5).collect::<Vec<bool>>()),
        vals in prop::collection::vec(prop::collection::vec(0.5f64..10.0, 6), 2..6),
    ) {
        // Every histogram shares one support pattern, so each solve after
        // the first replays the previous round-1 Dijkstra — and must
        // still match a cold solve bit for bit.
        prop_assume!(mask.iter().any(|&m| m));
        let g = GridL1::new(0.0, 1.0, 6).unwrap();
        let hists: Vec<Vec<f64>> = vals
            .iter()
            .map(|v| {
                let raw: Vec<f64> = v
                    .iter()
                    .zip(&mask)
                    .map(|(&x, &m)| if m { x } else { 0.0 })
                    .collect();
                normalise(&raw).unwrap()
            })
            .collect();
        let mut warm = SolveScratch::new();
        warm.begin_chunk();
        for w in hists.windows(2) {
            let hot = emd_cost_in(&mut warm, &w[0], &w[1], &g, Solver::Flow).unwrap();
            let cold = emd_cost_in(&mut SolveScratch::new(), &w[0], &w[1], &g, Solver::Flow)
                .unwrap();
            prop_assert_eq!(hot.to_bits(), cold.to_bits(), "hot={} cold={}", hot, cold);
        }
        // Solves 2..k share supports and costs with their predecessor.
        prop_assert_eq!(warm.stats().warm_starts as usize, hists.len() - 2);
        prop_assert_eq!(warm.stats().scratch_reuses as usize, hists.len() - 2);
    }

    #[test]
    fn thresholded_emd_never_exceeds_plain_emd(a in masses(8), b in masses(8), t in 0.01f64..1.0) {
        let plain = emd_between(&a, &b, &EmdConfig::grid_l1(0.0, 1.0)).unwrap();
        let thresh = emd_between(&a, &b, &EmdConfig::thresholded_grid(0.0, 1.0, t)).unwrap();
        prop_assert!(thresh <= plain + 1e-9, "thresholded {thresh} > plain {plain}");
        prop_assert!(thresh <= t + 1e-9, "thresholded EMD exceeds the threshold");
    }
}
