//! Transportation simplex (north-west-corner start + MODI pivoting).
//!
//! An entirely independent exact solver for the transportation problem,
//! used both as a differential-testing oracle for the min-cost-flow path
//! and as an alternative backend (it is competitive on dense instances).
//!
//! The implementation follows the classical tableau method:
//!
//! 1. Build a basic feasible solution with the north-west-corner rule,
//!    keeping exactly `m + n - 1` basis cells (degenerate cells carry zero
//!    flow).
//! 2. Compute dual potentials `u`, `v` from the basis spanning tree.
//! 3. Find the non-basic cell with the most negative reduced cost; if none
//!    exists the plan is optimal.
//! 4. Pivot around the unique cycle the entering cell closes in the basis
//!    tree, remove the leaving cell, repeat.
//!
//! All working storage lives in [`SimplexScratch`]: the basis, the
//! `in_basis` membership bitmap (maintained incrementally across pivots
//! instead of being rebuilt every iteration), one shared basis-tree
//! adjacency (built once per MODI iteration and used by both the
//! potential solve and the cycle search), and the DFS/BFS scratch. A
//! reused scratch makes repeated solves allocation-free at steady state;
//! the plain [`solve`] entry point spins up a fresh scratch per call.

use crate::{EmdError, TransportSolution, MASS_EPS};

/// Reduced costs above `-OPT_EPS` are considered non-improving.
const OPT_EPS: f64 = 1e-10;

/// Reusable working storage for the transportation simplex.
#[derive(Debug, Clone, Default)]
pub struct SimplexScratch {
    /// Basis cells `(i, j, flow)` — exactly `m + n - 1` entries.
    basis: Vec<(usize, usize, f64)>,
    /// Working copies of supplies/demands for the north-west corner.
    s: Vec<f64>,
    d: Vec<f64>,
    /// Dual potentials.
    u: Vec<f64>,
    v: Vec<f64>,
    /// `m * n` basis-membership bitmap, maintained across pivots.
    in_basis: Vec<bool>,
    /// Basis-tree adjacency over bipartite nodes (rows `0..m`, columns
    /// `m..m + n`); entries are `(next node, basis index)`. Built once
    /// per MODI iteration, shared by the potential DFS and the cycle
    /// BFS.
    adj: Vec<Vec<(usize, usize)>>,
    /// Live adjacency row count (rows beyond it are left clean).
    adj_live: usize,
    seen: Vec<bool>,
    stack: Vec<usize>,
    /// BFS predecessors `(prev node, basis index)`; `usize::MAX` = unset.
    prev: Vec<(usize, usize)>,
    queue: std::collections::VecDeque<usize>,
    path: Vec<usize>,
}

impl SimplexScratch {
    /// An empty scratch; buffers grow on first use and are kept after.
    pub fn new() -> Self {
        SimplexScratch::default()
    }

    /// Total element capacity of every buffer (allocation probe).
    pub fn footprint(&self) -> usize {
        self.basis.capacity()
            + self.s.capacity()
            + self.d.capacity()
            + self.u.capacity()
            + self.v.capacity()
            + self.in_basis.capacity()
            + self.adj.capacity()
            + self.adj.iter().map(Vec::capacity).sum::<usize>()
            + self.seen.capacity()
            + self.stack.capacity()
            + self.prev.capacity()
            + self.queue.capacity()
            + self.path.capacity()
    }

    /// Clear and rebuild the shared basis-tree adjacency from the
    /// current basis.
    fn rebuild_adj(&mut self, m: usize, n: usize) {
        let nodes = m + n;
        let dirty = self.adj_live.min(self.adj.len());
        for row in self.adj.iter_mut().take(dirty) {
            row.clear();
        }
        if self.adj.len() < nodes {
            self.adj.resize_with(nodes, Vec::new);
        }
        self.adj_live = nodes;
        for (bi, &(i, j, _)) in self.basis.iter().enumerate() {
            self.adj[i].push((m + j, bi));
            self.adj[m + j].push((i, bi));
        }
    }
}

/// Solve a balanced transportation problem to optimality.
///
/// `supplies` and `demands` must be non-negative with equal totals (the
/// caller — [`crate::TransportProblem::solve`] — validates this).
///
/// # Errors
///
/// [`EmdError::SolverStalled`] if pivoting exceeds its iteration budget
/// (cycling); does not occur on validated inputs in practice.
pub fn solve(
    supplies: &[f64],
    demands: &[f64],
    costs: &[Vec<f64>],
) -> Result<TransportSolution, EmdError> {
    let mut scratch = SimplexScratch::new();
    solve_in(&mut scratch, supplies, demands, |i, j| costs[i][j])
}

/// [`solve`] over caller-owned scratch and an arbitrary cost lookup —
/// the allocation-free path. Produces bit-identical results to [`solve`]
/// on the same instance regardless of what the scratch was used for
/// before.
///
/// # Errors
///
/// As [`solve`].
pub fn solve_in(
    scratch: &mut SimplexScratch,
    supplies: &[f64],
    demands: &[f64],
    cost: impl Fn(usize, usize) -> f64,
) -> Result<TransportSolution, EmdError> {
    let cost_total = optimise(scratch, supplies, demands, &cost)?;
    let flows: Vec<_> = scratch
        .basis
        .iter()
        .copied()
        .filter(|&(_, _, f)| f > MASS_EPS)
        .collect();
    Ok(TransportSolution {
        cost: cost_total,
        flows,
    })
}

/// [`solve_in`] without materialising the flow list: just the optimal
/// cost. The hot audit path only needs the scalar.
///
/// # Errors
///
/// As [`solve`].
pub fn solve_cost_in(
    scratch: &mut SimplexScratch,
    supplies: &[f64],
    demands: &[f64],
    cost: impl Fn(usize, usize) -> f64,
) -> Result<f64, EmdError> {
    optimise(scratch, supplies, demands, &cost)
}

/// Run NW-corner + MODI to optimality, leaving the optimal basis in
/// `scratch.basis`, and return the optimal cost.
fn optimise(
    scratch: &mut SimplexScratch,
    supplies: &[f64],
    demands: &[f64],
    cost: &impl Fn(usize, usize) -> f64,
) -> Result<f64, EmdError> {
    let m = supplies.len();
    let n = demands.len();
    debug_assert!(m > 0 && n > 0);

    // --- Phase 1: north-west-corner basic feasible solution. ---
    scratch.basis.clear();
    scratch.basis.reserve(m + n - 1);
    {
        let s = &mut scratch.s;
        let d = &mut scratch.d;
        s.clear();
        s.extend_from_slice(supplies);
        d.clear();
        d.extend_from_slice(demands);
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            let q = s[i].min(d[j]);
            scratch.basis.push((i, j, q));
            s[i] -= q;
            d[j] -= q;
            if i == m - 1 && j == n - 1 {
                break;
            }
            // Advance exactly one index per step so the basis stays a tree
            // with m + n - 1 cells even under degeneracy (q exhausts both).
            if s[i] <= MASS_EPS && i < m - 1 {
                i += 1;
            } else {
                j += 1;
            }
        }
    }
    debug_assert_eq!(scratch.basis.len(), m + n - 1);

    // Basis membership, maintained incrementally across pivots instead of
    // being rebuilt from the basis every iteration.
    scratch.in_basis.clear();
    scratch.in_basis.resize(m * n, false);
    for &(i, j, _) in &scratch.basis {
        scratch.in_basis[i * n + j] = true;
    }

    // --- Phase 2: MODI iterations. ---
    let max_iters = 64 * (m + n) * (m + n) + 256;
    for _ in 0..max_iters {
        // One adjacency build serves both the potential solve and the
        // cycle search this iteration.
        scratch.rebuild_adj(m, n);
        potentials(scratch, m, n, cost)?;

        // Entering cell: most negative reduced cost among non-basic cells.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..m {
            for j in 0..n {
                if scratch.in_basis[i * n + j] {
                    continue;
                }
                let rc = cost(i, j) - scratch.u[i] - scratch.v[j];
                if rc < -OPT_EPS && best.is_none_or(|(_, _, b)| rc < b) {
                    best = Some((i, j, rc));
                }
            }
        }
        let Some((ei, ej, _)) = best else {
            // Optimal.
            return Ok(scratch.basis.iter().map(|&(i, j, f)| f * cost(i, j)).sum());
        };

        // The entering cell (ei, ej) closes a unique cycle in the basis
        // tree: entering cell, then the tree path from column ej back to
        // row ei. Flow alternates +theta on the entering cell, -theta on
        // the first path cell, +theta on the next, ...
        if !tree_path(scratch, m, n, ei, ej) {
            return Err(EmdError::SolverStalled {
                solver: "transportation simplex (no cycle)",
            });
        }
        let mut theta = f64::INFINITY;
        let mut leave_pos = usize::MAX;
        for (k, &bi) in scratch.path.iter().enumerate() {
            if k % 2 == 0 && scratch.basis[bi].2 < theta {
                theta = scratch.basis[bi].2;
                leave_pos = bi;
            }
        }
        debug_assert!(leave_pos != usize::MAX);
        for (k, &bi) in scratch.path.iter().enumerate() {
            if k % 2 == 0 {
                scratch.basis[bi].2 -= theta;
            } else {
                scratch.basis[bi].2 += theta;
            }
        }
        let (li, lj, _) = scratch.basis[leave_pos];
        scratch.in_basis[li * n + lj] = false;
        scratch.in_basis[ei * n + ej] = true;
        scratch.basis[leave_pos] = (ei, ej, theta);
    }
    Err(EmdError::SolverStalled {
        solver: "transportation simplex",
    })
}

/// Solve `u[i] + v[j] = c[i][j]` over the basis spanning tree (using the
/// prebuilt `scratch.adj`), `u[0] = 0`.
fn potentials(
    scratch: &mut SimplexScratch,
    m: usize,
    n: usize,
    cost: &impl Fn(usize, usize) -> f64,
) -> Result<(), EmdError> {
    scratch.u.clear();
    scratch.u.resize(m, 0.0);
    scratch.v.clear();
    scratch.v.resize(n, 0.0);
    scratch.seen.clear();
    scratch.seen.resize(m + n, false);
    scratch.seen[0] = true;
    scratch.stack.clear();
    scratch.stack.push(0);
    let mut visited = 1usize;
    while let Some(node) = scratch.stack.pop() {
        for idx in 0..scratch.adj[node].len() {
            let (next, bi) = scratch.adj[node][idx];
            if scratch.seen[next] {
                continue;
            }
            scratch.seen[next] = true;
            visited += 1;
            let (i, j, _) = scratch.basis[bi];
            if next >= m {
                scratch.v[j] = cost(i, j) - scratch.u[i];
            } else {
                scratch.u[i] = cost(i, j) - scratch.v[j];
            }
            scratch.stack.push(next);
        }
    }
    if visited != m + n {
        // Basis does not span all nodes — broken invariant.
        return Err(EmdError::SolverStalled {
            solver: "transportation simplex (basis not a tree)",
        });
    }
    Ok(())
}

/// Tree path (as basis-cell indices, left in `scratch.path`) from column
/// node `ej` back to row node `ei`, ordered starting at the cell that
/// shares column `ej` with the entering cell. Along the cycle
/// entering(+) → path[0](−) → path[1](+) → …, parity alternates exactly
/// in returned order. Returns `false` when no path exists.
fn tree_path(scratch: &mut SimplexScratch, m: usize, n: usize, ei: usize, ej: usize) -> bool {
    const UNSET: (usize, usize) = (usize::MAX, usize::MAX);
    let start = ei;
    let goal = m + ej;
    scratch.prev.clear();
    scratch.prev.resize(m + n, UNSET);
    scratch.seen.clear();
    scratch.seen.resize(m + n, false);
    scratch.seen[start] = true;
    scratch.queue.clear();
    scratch.queue.push_back(start);
    while let Some(node) = scratch.queue.pop_front() {
        if node == goal {
            break;
        }
        for idx in 0..scratch.adj[node].len() {
            let (next, bi) = scratch.adj[node][idx];
            if !scratch.seen[next] {
                scratch.seen[next] = true;
                scratch.prev[next] = (node, bi);
                scratch.queue.push_back(next);
            }
        }
    }
    if !scratch.seen[goal] {
        return false;
    }
    scratch.path.clear();
    let mut node = goal;
    while node != start {
        let (p, bi) = scratch.prev[node];
        debug_assert!(p != usize::MAX, "path exists");
        scratch.path.push(bi);
        node = p;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_one_by_one() {
        let sol = solve(&[1.0], &[1.0], &[vec![3.0]]).unwrap();
        assert!((sol.cost - 3.0).abs() < 1e-12);
        assert_eq!(sol.flows, vec![(0, 0, 1.0)]);
    }

    #[test]
    fn two_by_two_crossing() {
        // Cheapest is the anti-diagonal; NW corner starts on the diagonal,
        // so at least one pivot is required.
        let costs = vec![vec![10.0, 1.0], vec![1.0, 10.0]];
        let sol = solve(&[1.0, 1.0], &[1.0, 1.0], &costs).unwrap();
        assert!((sol.cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_supplies() {
        // Supply exactly matches the first demand; NW corner degenerates.
        let costs = vec![vec![1.0, 2.0], vec![3.0, 1.0]];
        let sol = solve(&[1.0, 1.0], &[1.0, 1.0], &costs).unwrap();
        assert!((sol.cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn textbook_instance() {
        let sol = solve(
            &[20.0, 30.0],
            &[10.0, 25.0, 15.0],
            &[vec![2.0, 4.0, 6.0], vec![5.0, 1.0, 3.0]],
        )
        .unwrap();
        assert!((sol.cost - 120.0).abs() < 1e-6);
    }

    #[test]
    fn flows_form_valid_plan() {
        let supplies = [5.0, 3.0, 2.0];
        let demands = [4.0, 4.0, 2.0];
        let costs = vec![
            vec![1.0, 5.0, 9.0],
            vec![4.0, 2.0, 7.0],
            vec![8.0, 3.0, 1.0],
        ];
        let sol = solve(&supplies, &demands, &costs).unwrap();
        let mut out = [0.0; 3];
        let mut inn = [0.0; 3];
        for &(i, j, f) in &sol.flows {
            assert!(f > 0.0);
            out[i] += f;
            inn[j] += f;
        }
        for k in 0..3 {
            assert!((out[k] - supplies[k]).abs() < 1e-9);
            assert!((inn[k] - demands[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_costs_any_plan_is_optimal() {
        let costs = vec![vec![2.0; 3]; 3];
        let sol = solve(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0], &costs).unwrap();
        assert!((sol.cost - 6.0).abs() < 1e-9);
    }

    #[test]
    fn reused_scratch_is_bit_identical_to_fresh() {
        type Instance = (Vec<f64>, Vec<f64>, Vec<Vec<f64>>);
        let instances: Vec<Instance> = vec![
            (
                vec![1.0, 1.0],
                vec![1.0, 1.0],
                vec![vec![10.0, 1.0], vec![1.0, 10.0]],
            ),
            (
                vec![20.0, 30.0],
                vec![10.0, 25.0, 15.0],
                vec![vec![2.0, 4.0, 6.0], vec![5.0, 1.0, 3.0]],
            ),
            (vec![1.0], vec![1.0], vec![vec![3.0]]),
            (
                vec![5.0, 3.0, 2.0],
                vec![4.0, 4.0, 2.0],
                vec![
                    vec![1.0, 5.0, 9.0],
                    vec![4.0, 2.0, 7.0],
                    vec![8.0, 3.0, 1.0],
                ],
            ),
        ];
        let mut scratch = SimplexScratch::new();
        for (s, d, c) in &instances {
            let fresh = solve(s, d, c).unwrap();
            let reused = solve_in(&mut scratch, s, d, |i, j| c[i][j]).unwrap();
            assert_eq!(fresh.cost.to_bits(), reused.cost.to_bits());
            assert_eq!(fresh.flows, reused.flows);
            let cost_only = solve_cost_in(&mut scratch, s, d, |i, j| c[i][j]).unwrap();
            assert_eq!(fresh.cost.to_bits(), cost_only.to_bits());
        }
    }
}
