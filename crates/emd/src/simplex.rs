//! Transportation simplex (north-west-corner start + MODI pivoting).
//!
//! An entirely independent exact solver for the transportation problem,
//! used both as a differential-testing oracle for the min-cost-flow path
//! and as an alternative backend (it is competitive on dense instances).
//!
//! The implementation follows the classical tableau method:
//!
//! 1. Build a basic feasible solution with the north-west-corner rule,
//!    keeping exactly `m + n - 1` basis cells (degenerate cells carry zero
//!    flow).
//! 2. Compute dual potentials `u`, `v` from the basis spanning tree.
//! 3. Find the non-basic cell with the most negative reduced cost; if none
//!    exists the plan is optimal.
//! 4. Pivot around the unique cycle the entering cell closes in the basis
//!    tree, remove the leaving cell, repeat.

use crate::{EmdError, TransportSolution, MASS_EPS};

/// Reduced costs above `-OPT_EPS` are considered non-improving.
const OPT_EPS: f64 = 1e-10;

/// Solve a balanced transportation problem to optimality.
///
/// `supplies` and `demands` must be non-negative with equal totals (the
/// caller — [`crate::TransportProblem::solve`] — validates this).
///
/// # Errors
///
/// [`EmdError::SolverStalled`] if pivoting exceeds its iteration budget
/// (cycling); does not occur on validated inputs in practice.
pub fn solve(
    supplies: &[f64],
    demands: &[f64],
    costs: &[Vec<f64>],
) -> Result<TransportSolution, EmdError> {
    let m = supplies.len();
    let n = demands.len();
    debug_assert!(m > 0 && n > 0);

    // --- Phase 1: north-west-corner basic feasible solution. ---
    let mut basis: Vec<(usize, usize, f64)> = Vec::with_capacity(m + n - 1);
    {
        let mut s: Vec<f64> = supplies.to_vec();
        let mut d: Vec<f64> = demands.to_vec();
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            let q = s[i].min(d[j]);
            basis.push((i, j, q));
            s[i] -= q;
            d[j] -= q;
            if i == m - 1 && j == n - 1 {
                break;
            }
            // Advance exactly one index per step so the basis stays a tree
            // with m + n - 1 cells even under degeneracy (q exhausts both).
            if s[i] <= MASS_EPS && i < m - 1 {
                i += 1;
            } else {
                j += 1;
            }
        }
    }
    debug_assert_eq!(basis.len(), m + n - 1);

    // --- Phase 2: MODI iterations. ---
    let max_iters = 64 * (m + n) * (m + n) + 256;
    for _ in 0..max_iters {
        let (u, v) = potentials(m, n, &basis, costs)?;

        // Entering cell: most negative reduced cost among non-basic cells.
        let mut in_basis = vec![false; m * n];
        for &(i, j, _) in &basis {
            in_basis[i * n + j] = true;
        }
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..m {
            for j in 0..n {
                if in_basis[i * n + j] {
                    continue;
                }
                let rc = costs[i][j] - u[i] - v[j];
                if rc < -OPT_EPS && best.is_none_or(|(_, _, b)| rc < b) {
                    best = Some((i, j, rc));
                }
            }
        }
        let Some((ei, ej, _)) = best else {
            // Optimal.
            let cost = basis.iter().map(|&(i, j, f)| f * costs[i][j]).sum();
            let flows: Vec<_> = basis
                .iter()
                .copied()
                .filter(|&(_, _, f)| f > MASS_EPS)
                .collect();
            return Ok(TransportSolution { cost, flows });
        };

        // The entering cell (ei, ej) closes a unique cycle in the basis
        // tree: entering cell, then the tree path from column ej back to
        // row ei. Flow alternates +theta on the entering cell, -theta on
        // the first path cell, +theta on the next, ...
        let path = tree_path(m, n, &basis, ei, ej).ok_or(EmdError::SolverStalled {
            solver: "transportation simplex (no cycle)",
        })?;
        let mut theta = f64::INFINITY;
        let mut leave_pos = usize::MAX;
        for (k, &bi) in path.iter().enumerate() {
            if k % 2 == 0 && basis[bi].2 < theta {
                theta = basis[bi].2;
                leave_pos = bi;
            }
        }
        debug_assert!(leave_pos != usize::MAX);
        for (k, &bi) in path.iter().enumerate() {
            if k % 2 == 0 {
                basis[bi].2 -= theta;
            } else {
                basis[bi].2 += theta;
            }
        }
        basis[leave_pos] = (ei, ej, theta);
    }
    Err(EmdError::SolverStalled {
        solver: "transportation simplex",
    })
}

/// Solve `u[i] + v[j] = c[i][j]` over the basis spanning tree, `u[0] = 0`.
fn potentials(
    m: usize,
    n: usize,
    basis: &[(usize, usize, f64)],
    costs: &[Vec<f64>],
) -> Result<(Vec<f64>, Vec<f64>), EmdError> {
    // Bipartite nodes: rows 0..m, cols m..m+n; basis cells are edges.
    let mut adj: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); m + n]; // (next, i, j)
    for &(i, j, _) in basis {
        adj[i].push((m + j, i, j));
        adj[m + j].push((i, i, j));
    }
    let mut u = vec![0.0f64; m];
    let mut v = vec![0.0f64; n];
    let mut seen = vec![false; m + n];
    seen[0] = true;
    let mut stack = vec![0usize];
    let mut visited = 1usize;
    while let Some(node) = stack.pop() {
        for &(next, i, j) in &adj[node] {
            if seen[next] {
                continue;
            }
            seen[next] = true;
            visited += 1;
            if next >= m {
                v[j] = costs[i][j] - u[i];
            } else {
                u[i] = costs[i][j] - v[j];
            }
            stack.push(next);
        }
    }
    if visited != m + n {
        // Basis does not span all nodes — broken invariant.
        return Err(EmdError::SolverStalled {
            solver: "transportation simplex (basis not a tree)",
        });
    }
    Ok((u, v))
}

/// Tree path (as basis-cell indices) from column node `ej` back to row
/// node `ei`, ordered starting at the cell that shares column `ej` with
/// the entering cell. Along the cycle entering(+) → path[0](−) →
/// path[1](+) → …, parity alternates exactly in returned order.
fn tree_path(
    m: usize,
    n: usize,
    basis: &[(usize, usize, f64)],
    ei: usize,
    ej: usize,
) -> Option<Vec<usize>> {
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); m + n]; // (next, basis idx)
    for (bi, &(i, j, _)) in basis.iter().enumerate() {
        adj[i].push((m + j, bi));
        adj[m + j].push((i, bi));
    }
    let start = ei;
    let goal = m + ej;
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; m + n];
    let mut seen = vec![false; m + n];
    seen[start] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(node) = queue.pop_front() {
        if node == goal {
            break;
        }
        for &(next, bi) in &adj[node] {
            if !seen[next] {
                seen[next] = true;
                prev[next] = Some((node, bi));
                queue.push_back(next);
            }
        }
    }
    if !seen[goal] {
        return None;
    }
    let mut path = Vec::new();
    let mut node = goal;
    while node != start {
        let (p, bi) = prev[node].expect("path exists");
        path.push(bi);
        node = p;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_one_by_one() {
        let sol = solve(&[1.0], &[1.0], &[vec![3.0]]).unwrap();
        assert!((sol.cost - 3.0).abs() < 1e-12);
        assert_eq!(sol.flows, vec![(0, 0, 1.0)]);
    }

    #[test]
    fn two_by_two_crossing() {
        // Cheapest is the anti-diagonal; NW corner starts on the diagonal,
        // so at least one pivot is required.
        let costs = vec![vec![10.0, 1.0], vec![1.0, 10.0]];
        let sol = solve(&[1.0, 1.0], &[1.0, 1.0], &costs).unwrap();
        assert!((sol.cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_supplies() {
        // Supply exactly matches the first demand; NW corner degenerates.
        let costs = vec![vec![1.0, 2.0], vec![3.0, 1.0]];
        let sol = solve(&[1.0, 1.0], &[1.0, 1.0], &costs).unwrap();
        assert!((sol.cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn textbook_instance() {
        let sol = solve(
            &[20.0, 30.0],
            &[10.0, 25.0, 15.0],
            &[vec![2.0, 4.0, 6.0], vec![5.0, 1.0, 3.0]],
        )
        .unwrap();
        assert!((sol.cost - 120.0).abs() < 1e-6);
    }

    #[test]
    fn flows_form_valid_plan() {
        let supplies = [5.0, 3.0, 2.0];
        let demands = [4.0, 4.0, 2.0];
        let costs = vec![
            vec![1.0, 5.0, 9.0],
            vec![4.0, 2.0, 7.0],
            vec![8.0, 3.0, 1.0],
        ];
        let sol = solve(&supplies, &demands, &costs).unwrap();
        let mut out = [0.0; 3];
        let mut inn = [0.0; 3];
        for &(i, j, f) in &sol.flows {
            assert!(f > 0.0);
            out[i] += f;
            inn[j] += f;
        }
        for k in 0..3 {
            assert!((out[k] - supplies[k]).abs() < 1e-9);
            assert!((inn[k] - demands[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_costs_any_plan_is_optimal() {
        let costs = vec![vec![2.0; 3]; 3];
        let sol = solve(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0], &costs).unwrap();
        assert!((sol.cost - 6.0).abs() < 1e-9);
    }
}
