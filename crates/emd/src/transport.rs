//! The transportation problem: EMD as minimum-cost mass transport.
//!
//! [`TransportProblem`] is the general supplies/demands/cost formulation;
//! [`solve_emd`] is the convenience wrapper the rest of the workspace uses
//! (equal-length mass vectors plus a [`GroundDistance`]).

use crate::flow::MinCostFlow;
use crate::ground::GroundDistance;
use crate::{simplex, EmdError, MASS_EPS};

/// Exact solver selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Successive-shortest-paths min-cost flow (default).
    Flow,
    /// Transportation simplex (north-west corner + MODI). Independent code
    /// path used for differential testing; also competitive on dense
    /// instances.
    Simplex,
}

/// A transportation-problem instance: move `supplies` to `demands` at
/// minimum total cost, where moving one unit from supply `i` to demand `j`
/// costs `cost[i][j]`.
#[derive(Debug, Clone)]
pub struct TransportProblem {
    /// Supply at each source.
    pub supplies: Vec<f64>,
    /// Demand at each sink.
    pub demands: Vec<f64>,
    /// Dense cost matrix, `supplies.len()` × `demands.len()`.
    pub costs: Vec<Vec<f64>>,
}

/// An optimal transport plan.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportSolution {
    /// Total transport cost (the EMD when inputs are unit-mass).
    pub cost: f64,
    /// Non-zero flows as `(supply index, demand index, amount)`.
    pub flows: Vec<(usize, usize, f64)>,
}

impl TransportProblem {
    /// Validate shapes, signs and mass balance.
    ///
    /// # Errors
    ///
    /// The usual [`EmdError`] validation variants.
    pub fn validate(&self) -> Result<(), EmdError> {
        crate::validate_masses(&self.supplies)?;
        crate::validate_masses(&self.demands)?;
        if self.supplies.is_empty() || self.demands.is_empty() {
            return Err(EmdError::Empty);
        }
        if self.costs.len() != self.supplies.len() {
            return Err(EmdError::LengthMismatch {
                left: self.costs.len(),
                right: self.supplies.len(),
            });
        }
        for row in &self.costs {
            if row.len() != self.demands.len() {
                return Err(EmdError::LengthMismatch {
                    left: row.len(),
                    right: self.demands.len(),
                });
            }
            for (j, &c) in row.iter().enumerate() {
                if !c.is_finite() {
                    return Err(EmdError::NonFinite { index: j, value: c });
                }
                if c < 0.0 {
                    return Err(EmdError::Negative { index: j, value: c });
                }
            }
        }
        let (ts, td) = (crate::total(&self.supplies), crate::total(&self.demands));
        if (ts - td).abs() > MASS_EPS * ts.max(td).max(1.0) {
            return Err(EmdError::MassMismatch {
                left: ts,
                right: td,
            });
        }
        Ok(())
    }

    /// Solve to optimality with the chosen solver.
    ///
    /// # Errors
    ///
    /// Validation failures, or [`EmdError::SolverStalled`] on internal
    /// failure (never on valid input).
    pub fn solve(&self, solver: Solver) -> Result<TransportSolution, EmdError> {
        self.validate()?;
        match solver {
            Solver::Flow => self.solve_flow(),
            Solver::Simplex => simplex::solve(&self.supplies, &self.demands, &self.costs),
        }
    }

    fn solve_flow(&self) -> Result<TransportSolution, EmdError> {
        let (nl, nr) = (self.supplies.len(), self.demands.len());
        // Node layout: 0 = source, 1..=nl supplies, nl+1..=nl+nr demands, last = sink.
        let source = 0;
        let sink = nl + nr + 1;
        let mut g = MinCostFlow::new(nl + nr + 2);
        let mut want = 0.0;
        for (i, &s) in self.supplies.iter().enumerate() {
            if s > MASS_EPS {
                g.add_edge(source, 1 + i, s, 0.0);
                want += s;
            }
        }
        for (j, &d) in self.demands.iter().enumerate() {
            if d > MASS_EPS {
                g.add_edge(1 + nl + j, sink, d, 0.0);
            }
        }
        let mut edge_ids = Vec::new();
        for (i, &s) in self.supplies.iter().enumerate() {
            if s <= MASS_EPS {
                continue;
            }
            for (j, &d) in self.demands.iter().enumerate() {
                if d <= MASS_EPS {
                    continue;
                }
                let id = g.add_edge(1 + i, 1 + nl + j, s.min(d), self.costs[i][j]);
                edge_ids.push((i, j, id));
            }
        }
        let r = g.solve(source, sink, want)?;
        if (r.flow - want).abs() > 1e-6 * want.max(1.0) {
            return Err(EmdError::SolverStalled {
                solver: "min-cost-flow (unbalanced)",
            });
        }
        let mut flows = Vec::new();
        for (i, j, id) in edge_ids {
            let f = g.flow_on(id);
            if f > MASS_EPS {
                flows.push((i, j, f));
            }
        }
        Ok(TransportSolution {
            cost: r.cost,
            flows,
        })
    }
}

/// Solve the EMD between two equal-length mass vectors under `ground`.
///
/// Both vectors must already carry (numerically) equal total mass; the
/// top-level [`crate::emd_between`] handles normalisation.
///
/// # Errors
///
/// Validation failures as in [`TransportProblem::validate`].
pub fn solve_emd<G: GroundDistance>(
    a: &[f64],
    b: &[f64],
    ground: &G,
    solver: Solver,
) -> Result<TransportSolution, EmdError> {
    if a.len() != b.len() {
        return Err(EmdError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.len() != ground.size() {
        return Err(EmdError::LengthMismatch {
            left: a.len(),
            right: ground.size(),
        });
    }
    // Restrict to non-empty bins to keep instances small: typical score
    // histograms are sparse for small partitions.
    let srcs: Vec<usize> = (0..a.len()).filter(|&i| a[i] > MASS_EPS).collect();
    let dsts: Vec<usize> = (0..b.len()).filter(|&j| b[j] > MASS_EPS).collect();
    if srcs.is_empty() || dsts.is_empty() {
        crate::validate_masses(a)?;
        crate::validate_masses(b)?;
        return Err(EmdError::ZeroMass);
    }
    let problem = TransportProblem {
        supplies: srcs.iter().map(|&i| a[i]).collect(),
        demands: dsts.iter().map(|&j| b[j]).collect(),
        costs: srcs
            .iter()
            .map(|&i| dsts.iter().map(|&j| ground.cost(i, j)).collect())
            .collect(),
    };
    let sol = problem.solve(solver)?;
    Ok(TransportSolution {
        cost: sol.cost,
        flows: sol
            .flows
            .into_iter()
            .map(|(i, j, f)| (srcs[i], dsts[j], f))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::GridL1;

    fn grid(n: usize) -> GridL1 {
        GridL1::new(0.0, 1.0, n).unwrap()
    }

    #[test]
    fn both_solvers_agree_on_simple_instance() {
        let a = [0.5, 0.5, 0.0, 0.0];
        let b = [0.0, 0.0, 0.25, 0.75];
        let g = grid(4);
        let f = solve_emd(&a, &b, &g, Solver::Flow).unwrap();
        let s = solve_emd(&a, &b, &g, Solver::Simplex).unwrap();
        assert!(
            (f.cost - s.cost).abs() < 1e-9,
            "flow={} simplex={}",
            f.cost,
            s.cost
        );
    }

    #[test]
    fn flows_conserve_mass() {
        let a = [0.3, 0.3, 0.4, 0.0];
        let b = [0.0, 0.1, 0.2, 0.7];
        let g = grid(4);
        let sol = solve_emd(&a, &b, &g, Solver::Flow).unwrap();
        let mut out = [0.0; 4];
        let mut inn = [0.0; 4];
        for (i, j, f) in &sol.flows {
            out[*i] += f;
            inn[*j] += f;
        }
        for i in 0..4 {
            assert!((out[i] - a[i]).abs() < 1e-9, "supply {i}");
            assert!((inn[i] - b[i]).abs() < 1e-9, "demand {i}");
        }
    }

    #[test]
    fn matches_closed_form_1d() {
        let a = [0.1, 0.2, 0.3, 0.4];
        let b = [0.4, 0.3, 0.2, 0.1];
        let g = grid(4);
        let exact = crate::d1::emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        for solver in [Solver::Flow, Solver::Simplex] {
            let sol = solve_emd(&a, &b, &g, solver).unwrap();
            assert!((sol.cost - exact).abs() < 1e-9, "{solver:?}");
        }
    }

    #[test]
    fn unbalanced_problem_rejected() {
        let p = TransportProblem {
            supplies: vec![1.0],
            demands: vec![2.0],
            costs: vec![vec![1.0]],
        };
        assert!(matches!(
            p.solve(Solver::Flow),
            Err(EmdError::MassMismatch { .. })
        ));
    }

    #[test]
    fn ragged_cost_matrix_rejected() {
        let p = TransportProblem {
            supplies: vec![1.0, 1.0],
            demands: vec![2.0],
            costs: vec![vec![1.0], vec![]],
        };
        assert!(matches!(
            p.solve(Solver::Flow),
            Err(EmdError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn zero_mass_rejected() {
        let g = grid(2);
        assert!(matches!(
            solve_emd(&[0.0, 0.0], &[1.0, 0.0], &g, Solver::Flow),
            Err(EmdError::ZeroMass)
        ));
    }

    #[test]
    fn identical_histograms_cost_zero() {
        let a = [0.25, 0.25, 0.25, 0.25];
        let g = grid(4);
        for solver in [Solver::Flow, Solver::Simplex] {
            let sol = solve_emd(&a, &a, &g, solver).unwrap();
            assert!(sol.cost.abs() < 1e-9);
        }
    }

    #[test]
    fn general_transport_instance() {
        // Classic 2x3 instance solvable by hand.
        // supplies: [20, 30]; demands: [10, 25, 15]
        // costs: [[2, 4, 6], [5, 1, 3]]
        // Optimal: x11=10, x13=10, x22=25, x23=5 -> 20+60+25+15 = 120.
        let p = TransportProblem {
            supplies: vec![20.0, 30.0],
            demands: vec![10.0, 25.0, 15.0],
            costs: vec![vec![2.0, 4.0, 6.0], vec![5.0, 1.0, 3.0]],
        };
        for solver in [Solver::Flow, Solver::Simplex] {
            let sol = p.solve(solver).unwrap();
            assert!((sol.cost - 120.0).abs() < 1e-6, "{solver:?}: {}", sol.cost);
        }
    }
}
