//! The transportation problem: EMD as minimum-cost mass transport.
//!
//! [`TransportProblem`] is the general supplies/demands/cost formulation;
//! [`solve_emd`] is the convenience wrapper the rest of the workspace uses
//! (equal-length mass vectors plus a [`GroundDistance`]).
//!
//! Every solve runs through a [`SolveScratch`] workspace. The plain
//! entry points ([`TransportProblem::solve`], [`solve_emd`]) spin up a
//! fresh scratch per call; the `_in` variants
//! ([`TransportProblem::solve_in`], [`solve_emd_in`], [`emd_cost_in`])
//! reuse a caller-owned one, which makes a stream of same-sized solves
//! allocation-free and enables the round-1 warm start between
//! consecutive pairs that share a support set. Both paths produce
//! bit-identical results.

use std::mem;

use crate::arena::SolveScratch;
use crate::ground::GroundDistance;
use crate::{simplex, EmdError, MASS_EPS};

/// Exact solver selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Successive-shortest-paths min-cost flow (default).
    Flow,
    /// Transportation simplex (north-west corner + MODI). Independent code
    /// path used for differential testing; also competitive on dense
    /// instances.
    Simplex,
}

/// A transportation-problem instance: move `supplies` to `demands` at
/// minimum total cost, where moving one unit from supply `i` to demand `j`
/// costs `cost[i][j]`.
#[derive(Debug, Clone)]
pub struct TransportProblem {
    /// Supply at each source.
    pub supplies: Vec<f64>,
    /// Demand at each sink.
    pub demands: Vec<f64>,
    /// Dense cost matrix, `supplies.len()` × `demands.len()`.
    pub costs: Vec<Vec<f64>>,
}

/// An optimal transport plan.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportSolution {
    /// Total transport cost (the EMD when inputs are unit-mass).
    pub cost: f64,
    /// Non-zero flows as `(supply index, demand index, amount)`.
    pub flows: Vec<(usize, usize, f64)>,
}

impl TransportProblem {
    /// Validate shapes, signs and mass balance.
    ///
    /// # Errors
    ///
    /// The usual [`EmdError`] validation variants.
    pub fn validate(&self) -> Result<(), EmdError> {
        crate::validate_masses(&self.supplies)?;
        crate::validate_masses(&self.demands)?;
        if self.supplies.is_empty() || self.demands.is_empty() {
            return Err(EmdError::Empty);
        }
        if self.costs.len() != self.supplies.len() {
            return Err(EmdError::LengthMismatch {
                left: self.costs.len(),
                right: self.supplies.len(),
            });
        }
        for row in &self.costs {
            if row.len() != self.demands.len() {
                return Err(EmdError::LengthMismatch {
                    left: row.len(),
                    right: self.demands.len(),
                });
            }
            for (j, &c) in row.iter().enumerate() {
                if !c.is_finite() {
                    return Err(EmdError::NonFinite { index: j, value: c });
                }
                if c < 0.0 {
                    return Err(EmdError::Negative { index: j, value: c });
                }
            }
        }
        let (ts, td) = (crate::total(&self.supplies), crate::total(&self.demands));
        if (ts - td).abs() > MASS_EPS * ts.max(td).max(1.0) {
            return Err(EmdError::MassMismatch {
                left: ts,
                right: td,
            });
        }
        Ok(())
    }

    /// Solve to optimality with the chosen solver.
    ///
    /// # Errors
    ///
    /// Validation failures, or [`EmdError::SolverStalled`] on internal
    /// failure (never on valid input).
    pub fn solve(&self, solver: Solver) -> Result<TransportSolution, EmdError> {
        self.solve_in(&mut SolveScratch::new(), solver)
    }

    /// [`TransportProblem::solve`] on a caller-owned workspace: repeated
    /// same-sized solves reuse every buffer. Results are bit-identical
    /// to `solve`.
    ///
    /// # Errors
    ///
    /// As [`TransportProblem::solve`].
    pub fn solve_in(
        &self,
        scratch: &mut SolveScratch,
        solver: Solver,
    ) -> Result<TransportSolution, EmdError> {
        self.validate()?;
        scratch.note_use();
        match solver {
            Solver::Flow => self.solve_flow_in(scratch),
            Solver::Simplex => simplex::solve_in(
                &mut scratch.simplex,
                &self.supplies,
                &self.demands,
                |i, j| self.costs[i][j],
            ),
        }
    }

    fn solve_flow_in(&self, scratch: &mut SolveScratch) -> Result<TransportSolution, EmdError> {
        let (nl, nr) = (self.supplies.len(), self.demands.len());
        // Node layout: 0 = source, 1..=nl supplies, nl+1..=nl+nr demands, last = sink.
        let source = 0;
        let sink = nl + nr + 1;
        let SolveScratch {
            flow: g, edge_ids, ..
        } = scratch;
        g.reset(nl + nr + 2);
        let mut want = 0.0;
        for (i, &s) in self.supplies.iter().enumerate() {
            if s > MASS_EPS {
                g.add_edge(source, 1 + i, s, 0.0);
                want += s;
            }
        }
        for (j, &d) in self.demands.iter().enumerate() {
            if d > MASS_EPS {
                g.add_edge(1 + nl + j, sink, d, 0.0);
            }
        }
        edge_ids.clear();
        for (i, &s) in self.supplies.iter().enumerate() {
            if s <= MASS_EPS {
                continue;
            }
            for (j, &d) in self.demands.iter().enumerate() {
                if d <= MASS_EPS {
                    continue;
                }
                let id = g.add_edge(1 + i, 1 + nl + j, s.min(d), self.costs[i][j]);
                edge_ids.push((i, j, id));
            }
        }
        let r = g.solve(source, sink, want)?;
        if (r.flow - want).abs() > 1e-6 * want.max(1.0) {
            return Err(EmdError::SolverStalled {
                solver: "min-cost-flow (unbalanced)",
            });
        }
        let mut flows = Vec::new();
        for &(i, j, id) in scratch.edge_ids.iter() {
            let f = scratch.flow.flow_on(id);
            if f > MASS_EPS {
                flows.push((i, j, f));
            }
        }
        Ok(TransportSolution {
            cost: r.cost,
            flows,
        })
    }
}

/// Compact `a`/`b` onto their joint non-empty supports inside `scratch`,
/// materialise the flat compacted cost view, and validate — mirroring
/// [`TransportProblem::validate`] on the compacted instance, except that
/// the O(m·n) cost walk is skipped for grounds that guarantee their costs
/// up front ([`GroundDistance::prevalidated`]). Returns the compacted
/// dimensions plus whether the instance matches the previous solve's
/// supports and costs exactly (the warm-start precondition).
fn prepare_compacted<G: GroundDistance + ?Sized>(
    scratch: &mut SolveScratch,
    a: &[f64],
    b: &[f64],
    ground: &G,
) -> Result<(usize, usize, bool), EmdError> {
    if a.len() != b.len() {
        return Err(EmdError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.len() != ground.size() {
        return Err(EmdError::LengthMismatch {
            left: a.len(),
            right: ground.size(),
        });
    }
    scratch.note_use();
    let had_warm = scratch.warm_valid;
    scratch.warm_valid = false;
    // Retire the previous instance into the warm-start comparands; the
    // swapped-out buffers become this solve's scratch space.
    mem::swap(&mut scratch.srcs, &mut scratch.prev_srcs);
    mem::swap(&mut scratch.dsts, &mut scratch.prev_dsts);
    mem::swap(&mut scratch.costs, &mut scratch.prev_costs);
    // Restrict to non-empty bins to keep instances small: typical score
    // histograms are sparse for small partitions.
    scratch.srcs.clear();
    scratch.supplies.clear();
    for (i, &x) in a.iter().enumerate() {
        if x > MASS_EPS {
            scratch.srcs.push(i);
            scratch.supplies.push(x);
        }
    }
    scratch.dsts.clear();
    scratch.demands.clear();
    for (j, &x) in b.iter().enumerate() {
        if x > MASS_EPS {
            scratch.dsts.push(j);
            scratch.demands.push(x);
        }
    }
    if scratch.srcs.is_empty() || scratch.dsts.is_empty() {
        crate::validate_masses(a)?;
        crate::validate_masses(b)?;
        return Err(EmdError::ZeroMass);
    }
    crate::validate_masses(&scratch.supplies)?;
    crate::validate_masses(&scratch.demands)?;
    let (m, n) = (scratch.srcs.len(), scratch.dsts.len());
    {
        let SolveScratch {
            srcs, dsts, costs, ..
        } = &mut *scratch;
        costs.clear();
        costs.reserve(m * n);
        for &i in srcs.iter() {
            for &j in dsts.iter() {
                costs.push(ground.cost(i, j));
            }
        }
    }
    if !ground.prevalidated() {
        for (k, &c) in scratch.costs.iter().enumerate() {
            if !c.is_finite() {
                return Err(EmdError::NonFinite {
                    index: k % n,
                    value: c,
                });
            }
            if c < 0.0 {
                return Err(EmdError::Negative {
                    index: k % n,
                    value: c,
                });
            }
        }
    }
    let (ts, td) = (
        crate::total(&scratch.supplies),
        crate::total(&scratch.demands),
    );
    if (ts - td).abs() > MASS_EPS * ts.max(td).max(1.0) {
        return Err(EmdError::MassMismatch {
            left: ts,
            right: td,
        });
    }
    let warm = had_warm
        && scratch.srcs == scratch.prev_srcs
        && scratch.dsts == scratch.prev_dsts
        && scratch.costs == scratch.prev_costs;
    Ok((m, n, warm))
}

/// Solve the compacted instance in `scratch` with the transport-
/// specialised flow kernel, replaying the previous round-1 Dijkstra when
/// `warm` holds. Leaves the kernel's flow matrix populated so callers
/// can read flows back.
fn flow_solve_compacted(
    scratch: &mut SolveScratch,
    _m: usize,
    _n: usize,
    warm: bool,
) -> Result<f64, EmdError> {
    let cost = {
        let SolveScratch {
            bip,
            supplies,
            demands,
            costs,
            stats,
            ..
        } = scratch;
        if warm {
            stats.warm_starts += 1;
        }
        let mut want = 0.0;
        for &s in supplies.iter() {
            want += s;
        }
        let r = bip.solve(supplies, demands, costs, want, warm)?;
        if (r.flow - want).abs() > 1e-6 * want.max(1.0) {
            return Err(EmdError::SolverStalled {
                solver: "min-cost-flow (unbalanced)",
            });
        }
        r.cost
    };
    // The kernel's round-1 cache now describes this instance, whose
    // supports and costs will be swapped into `prev_*` at the next
    // prepare.
    scratch.warm_valid = true;
    Ok(cost)
}

/// Solve the EMD between two equal-length mass vectors under `ground`,
/// reusing a caller-owned workspace. Bit-identical to [`solve_emd`];
/// allocation-free at steady state apart from the returned flow list
/// (use [`emd_cost_in`] when only the cost is needed).
///
/// # Errors
///
/// Validation failures as in [`TransportProblem::validate`].
pub fn solve_emd_in<G: GroundDistance + ?Sized>(
    scratch: &mut SolveScratch,
    a: &[f64],
    b: &[f64],
    ground: &G,
    solver: Solver,
) -> Result<TransportSolution, EmdError> {
    let (m, n, warm) = prepare_compacted(scratch, a, b, ground)?;
    match solver {
        Solver::Flow => {
            let cost = flow_solve_compacted(scratch, m, n, warm)?;
            let mut flows = Vec::new();
            for si in 0..m {
                for dj in 0..n {
                    let f = scratch.bip.flow_at(si, dj);
                    if f > MASS_EPS {
                        flows.push((scratch.srcs[si], scratch.dsts[dj], f));
                    }
                }
            }
            Ok(TransportSolution { cost, flows })
        }
        Solver::Simplex => {
            let sol = {
                let SolveScratch {
                    simplex,
                    supplies,
                    demands,
                    costs,
                    ..
                } = scratch;
                simplex::solve_in(simplex, supplies, demands, |si, dj| costs[si * n + dj])?
            };
            Ok(TransportSolution {
                cost: sol.cost,
                flows: sol
                    .flows
                    .into_iter()
                    .map(|(si, dj, f)| (scratch.srcs[si], scratch.dsts[dj], f))
                    .collect(),
            })
        }
    }
}

/// The cost-only hot path: [`solve_emd_in`] without materialising the
/// flow list. Zero heap traffic once the scratch has reached its
/// steady-state size.
///
/// # Errors
///
/// Validation failures as in [`TransportProblem::validate`].
pub fn emd_cost_in<G: GroundDistance + ?Sized>(
    scratch: &mut SolveScratch,
    a: &[f64],
    b: &[f64],
    ground: &G,
    solver: Solver,
) -> Result<f64, EmdError> {
    let (m, n, warm) = prepare_compacted(scratch, a, b, ground)?;
    match solver {
        Solver::Flow => flow_solve_compacted(scratch, m, n, warm),
        Solver::Simplex => {
            let SolveScratch {
                simplex,
                supplies,
                demands,
                costs,
                ..
            } = scratch;
            simplex::solve_cost_in(simplex, supplies, demands, |si, dj| costs[si * n + dj])
        }
    }
}

/// Solve the EMD between two equal-length mass vectors under `ground`.
///
/// Both vectors must already carry (numerically) equal total mass; the
/// top-level [`crate::emd_between`] handles normalisation.
///
/// # Errors
///
/// Validation failures as in [`TransportProblem::validate`].
pub fn solve_emd<G: GroundDistance>(
    a: &[f64],
    b: &[f64],
    ground: &G,
    solver: Solver,
) -> Result<TransportSolution, EmdError> {
    solve_emd_in(&mut SolveScratch::new(), a, b, ground, solver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::GridL1;

    fn grid(n: usize) -> GridL1 {
        GridL1::new(0.0, 1.0, n).unwrap()
    }

    #[test]
    fn both_solvers_agree_on_simple_instance() {
        let a = [0.5, 0.5, 0.0, 0.0];
        let b = [0.0, 0.0, 0.25, 0.75];
        let g = grid(4);
        let f = solve_emd(&a, &b, &g, Solver::Flow).unwrap();
        let s = solve_emd(&a, &b, &g, Solver::Simplex).unwrap();
        assert!(
            (f.cost - s.cost).abs() < 1e-9,
            "flow={} simplex={}",
            f.cost,
            s.cost
        );
    }

    #[test]
    fn flows_conserve_mass() {
        let a = [0.3, 0.3, 0.4, 0.0];
        let b = [0.0, 0.1, 0.2, 0.7];
        let g = grid(4);
        let sol = solve_emd(&a, &b, &g, Solver::Flow).unwrap();
        let mut out = [0.0; 4];
        let mut inn = [0.0; 4];
        for (i, j, f) in &sol.flows {
            out[*i] += f;
            inn[*j] += f;
        }
        for i in 0..4 {
            assert!((out[i] - a[i]).abs() < 1e-9, "supply {i}");
            assert!((inn[i] - b[i]).abs() < 1e-9, "demand {i}");
        }
    }

    #[test]
    fn matches_closed_form_1d() {
        let a = [0.1, 0.2, 0.3, 0.4];
        let b = [0.4, 0.3, 0.2, 0.1];
        let g = grid(4);
        let exact = crate::d1::emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        for solver in [Solver::Flow, Solver::Simplex] {
            let sol = solve_emd(&a, &b, &g, solver).unwrap();
            assert!((sol.cost - exact).abs() < 1e-9, "{solver:?}");
        }
    }

    #[test]
    fn unbalanced_problem_rejected() {
        let p = TransportProblem {
            supplies: vec![1.0],
            demands: vec![2.0],
            costs: vec![vec![1.0]],
        };
        assert!(matches!(
            p.solve(Solver::Flow),
            Err(EmdError::MassMismatch { .. })
        ));
    }

    #[test]
    fn ragged_cost_matrix_rejected() {
        let p = TransportProblem {
            supplies: vec![1.0, 1.0],
            demands: vec![2.0],
            costs: vec![vec![1.0], vec![]],
        };
        assert!(matches!(
            p.solve(Solver::Flow),
            Err(EmdError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn zero_mass_rejected() {
        let g = grid(2);
        assert!(matches!(
            solve_emd(&[0.0, 0.0], &[1.0, 0.0], &g, Solver::Flow),
            Err(EmdError::ZeroMass)
        ));
    }

    #[test]
    fn identical_histograms_cost_zero() {
        let a = [0.25, 0.25, 0.25, 0.25];
        let g = grid(4);
        for solver in [Solver::Flow, Solver::Simplex] {
            let sol = solve_emd(&a, &a, &g, solver).unwrap();
            assert!(sol.cost.abs() < 1e-9);
        }
    }

    #[test]
    fn general_transport_instance() {
        // Classic 2x3 instance solvable by hand.
        // supplies: [20, 30]; demands: [10, 25, 15]
        // costs: [[2, 4, 6], [5, 1, 3]]
        // Optimal: x11=10, x13=10, x22=25, x23=5 -> 20+60+25+15 = 120.
        let p = TransportProblem {
            supplies: vec![20.0, 30.0],
            demands: vec![10.0, 25.0, 15.0],
            costs: vec![vec![2.0, 4.0, 6.0], vec![5.0, 1.0, 3.0]],
        };
        for solver in [Solver::Flow, Solver::Simplex] {
            let sol = p.solve(solver).unwrap();
            assert!((sol.cost - 120.0).abs() < 1e-6, "{solver:?}: {}", sol.cost);
        }
    }
}
