//! EMD between *signatures* — weighted point sets with (possibly)
//! unequal total mass.
//!
//! Rubner's original EMD is defined between signatures `{(xᵢ, wᵢ)}`
//! rather than aligned histograms: the transport plan must move
//! `min(Σw_a, Σw_b)` mass and the cost is normalised by that amount
//! (partial matching — surplus mass on the heavier side stays put).
//! Pele & Werman's ÊMD (EMD-hat) instead *penalises* the unmatched mass
//! at a fixed rate, which restores the triangle inequality for
//! unequal-mass comparisons.
//!
//! Signatures are the natural representation when comparing worker
//! groups of very different sizes without normalising away the size
//! difference — e.g. "how much work would it take to turn group A's
//! score mass into group B's".

use crate::transport::{Solver, TransportProblem};
use crate::{EmdError, MASS_EPS};

/// A weighted point set on the real line.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    positions: Vec<f64>,
    weights: Vec<f64>,
}

impl Signature {
    /// Build a signature from parallel position/weight vectors.
    ///
    /// # Errors
    ///
    /// [`EmdError::LengthMismatch`], [`EmdError::Empty`], or weight/
    /// position validation failures.
    pub fn new(positions: Vec<f64>, weights: Vec<f64>) -> Result<Self, EmdError> {
        if positions.len() != weights.len() {
            return Err(EmdError::LengthMismatch {
                left: positions.len(),
                right: weights.len(),
            });
        }
        if positions.is_empty() {
            return Err(EmdError::Empty);
        }
        crate::validate_masses(&weights)?;
        for (i, &p) in positions.iter().enumerate() {
            if !p.is_finite() {
                return Err(EmdError::NonFinite { index: i, value: p });
            }
        }
        if crate::total(&weights) <= MASS_EPS {
            return Err(EmdError::ZeroMass);
        }
        Ok(Signature { positions, weights })
    }

    /// Signature with unit weight at every sample point.
    ///
    /// # Errors
    ///
    /// As for [`Signature::new`].
    pub fn from_samples(samples: &[f64]) -> Result<Self, EmdError> {
        Signature::new(samples.to_vec(), vec![1.0; samples.len()])
    }

    /// Point positions.
    pub fn positions(&self) -> &[f64] {
        &self.positions
    }

    /// Point weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        crate::total(&self.weights)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Always false (empty signatures are unconstructible).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Rubner partial-matching EMD between two signatures with ground
/// distance `|xᵢ - xⱼ|`: optimal cost of moving `min(total_a, total_b)`
/// mass, divided by that amount.
///
/// # Errors
///
/// Propagates solver/validation failures.
pub fn emd_signatures(a: &Signature, b: &Signature) -> Result<f64, EmdError> {
    let (ta, tb) = (a.total(), b.total());
    let moved = ta.min(tb);
    // Equalise by adding a free-disposal sink/source point: surplus mass
    // on the heavier side flows to a virtual point at zero cost.
    let mut supplies = a.weights.to_vec();
    let mut demands = b.weights.to_vec();
    let mut costs: Vec<Vec<f64>> = a
        .positions
        .iter()
        .map(|&x| b.positions.iter().map(|&y| (x - y).abs()).collect())
        .collect();
    if ta > tb + MASS_EPS {
        // Virtual demand absorbing the surplus at zero cost.
        demands.push(ta - tb);
        for row in &mut costs {
            row.push(0.0);
        }
    } else if tb > ta + MASS_EPS {
        supplies.push(tb - ta);
        costs.push(vec![0.0; demands.len()]);
    }
    let problem = TransportProblem {
        supplies,
        demands,
        costs,
    };
    let solution = problem.solve(Solver::Flow)?;
    Ok(solution.cost / moved)
}

/// Pele–Werman ÊMD (EMD-hat): transport cost of the matched mass plus a
/// penalty of `penalty_per_unit` for every unit of unmatched surplus.
/// With `penalty_per_unit >= half the ground diameter`, ÊMD is a metric
/// on signatures of arbitrary mass.
///
/// Unlike [`emd_signatures`] the result is **not** normalised — it
/// scales with mass, as the metric property requires.
///
/// # Errors
///
/// Propagates solver/validation failures; rejects negative penalties as
/// [`EmdError::Negative`].
pub fn emd_hat(a: &Signature, b: &Signature, penalty_per_unit: f64) -> Result<f64, EmdError> {
    if !penalty_per_unit.is_finite() || penalty_per_unit < 0.0 {
        return Err(EmdError::Negative {
            index: 0,
            value: penalty_per_unit,
        });
    }
    let (ta, tb) = (a.total(), b.total());
    let surplus = (ta - tb).abs();
    let mut supplies = a.weights.to_vec();
    let mut demands = b.weights.to_vec();
    let mut costs: Vec<Vec<f64>> = a
        .positions
        .iter()
        .map(|&x| b.positions.iter().map(|&y| (x - y).abs()).collect())
        .collect();
    if ta > tb + MASS_EPS {
        demands.push(ta - tb);
        for row in &mut costs {
            row.push(0.0);
        }
    } else if tb > ta + MASS_EPS {
        supplies.push(tb - ta);
        costs.push(vec![0.0; demands.len()]);
    }
    let problem = TransportProblem {
        supplies,
        demands,
        costs,
    };
    let solution = problem.solve(Solver::Flow)?;
    Ok(solution.cost + penalty_per_unit * surplus)
}

/// The ground diameter of two signatures (largest pairwise position
/// distance) — the usual reference for choosing an ÊMD penalty.
pub fn diameter(a: &Signature, b: &Signature) -> f64 {
    let all = a.positions.iter().chain(b.positions.iter());
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in all {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    hi - lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(points: &[(f64, f64)]) -> Signature {
        Signature::new(
            points.iter().map(|p| p.0).collect(),
            points.iter().map(|p| p.1).collect(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Signature::new(vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(Signature::new(vec![], vec![]).is_err());
        assert!(Signature::new(vec![0.0], vec![-1.0]).is_err());
        assert!(Signature::new(vec![f64::NAN], vec![1.0]).is_err());
        assert!(Signature::new(vec![0.0], vec![0.0]).is_err());
        let s = Signature::from_samples(&[0.5, 0.7]).unwrap();
        assert_eq!(s.total(), 2.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn equal_mass_matches_plain_emd() {
        let a = sig(&[(0.0, 1.0)]);
        let b = sig(&[(1.0, 1.0)]);
        assert!((emd_signatures(&a, &b).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_matching_ignores_surplus() {
        // a has 2 units at 0; b has 1 unit at 1. Only 1 unit moves.
        let a = sig(&[(0.0, 2.0)]);
        let b = sig(&[(1.0, 1.0)]);
        let d = emd_signatures(&a, &b).unwrap();
        assert!((d - 1.0).abs() < 1e-9, "moved mass averages cost 1: {d}");
        // Surplus placed favourably: extra mass at b's location is free.
        let a2 = sig(&[(0.0, 1.0), (1.0, 1.0)]);
        let d2 = emd_signatures(&a2, &b).unwrap();
        // Optimal partial match: move the co-located unit (cost 0).
        assert!(d2.abs() < 1e-9, "{d2}");
    }

    #[test]
    fn signature_emd_is_symmetric() {
        let a = sig(&[(0.0, 2.0), (0.5, 1.0)]);
        let b = sig(&[(1.0, 1.5)]);
        let d1 = emd_signatures(&a, &b).unwrap();
        let d2 = emd_signatures(&b, &a).unwrap();
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn emd_hat_penalises_surplus() {
        let a = sig(&[(0.0, 2.0)]);
        let b = sig(&[(0.0, 1.0)]);
        // Matched mass moves nowhere; surplus 1 unit × penalty.
        let d = emd_hat(&a, &b, 0.7).unwrap();
        assert!((d - 0.7).abs() < 1e-9);
        // Zero penalty reduces to unnormalised partial cost.
        let d0 = emd_hat(&a, &b, 0.0).unwrap();
        assert!(d0.abs() < 1e-9);
        assert!(emd_hat(&a, &b, -1.0).is_err());
    }

    #[test]
    fn emd_hat_triangle_inequality_with_adequate_penalty() {
        // Penalty >= diameter guarantees the metric property; probe a few
        // fixed triples.
        let triples = [
            (sig(&[(0.0, 1.0)]), sig(&[(0.5, 2.0)]), sig(&[(1.0, 1.5)])),
            (
                sig(&[(0.2, 3.0), (0.8, 1.0)]),
                sig(&[(0.5, 1.0)]),
                sig(&[(0.9, 2.0)]),
            ),
            (sig(&[(0.1, 1.0)]), sig(&[(0.1, 4.0)]), sig(&[(0.7, 2.0)])),
        ];
        for (a, b, c) in &triples {
            let penalty = diameter(a, b)
                .max(diameter(b, c))
                .max(diameter(a, c))
                .max(1.0);
            let ab = emd_hat(a, b, penalty).unwrap();
            let bc = emd_hat(b, c, penalty).unwrap();
            let ac = emd_hat(a, c, penalty).unwrap();
            assert!(
                ac <= ab + bc + 1e-9,
                "triangle violated: {ac} > {ab} + {bc}"
            );
        }
    }

    #[test]
    fn diameter_spans_both_signatures() {
        let a = sig(&[(0.0, 1.0)]);
        let b = sig(&[(2.5, 1.0)]);
        assert!((diameter(&a, &b) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn sample_signatures_match_sample_emd() {
        let xs = [0.1, 0.4, 0.9];
        let ys = [0.2, 0.5, 0.8];
        let a = Signature::from_samples(&xs).unwrap();
        let b = Signature::from_samples(&ys).unwrap();
        let via_sig = emd_signatures(&a, &b).unwrap();
        let via_samples = crate::d1::emd_1d_samples(&xs, &ys).unwrap();
        assert!((via_sig - via_samples).abs() < 1e-9);
    }
}
