//! Ground-distance abstractions for the general EMD solvers.
//!
//! A ground distance assigns a transport cost to every (source bin, sink
//! bin) pair. The solvers are generic over [`GroundDistance`] so the same
//! code handles plain 1-D grids, explicit positions, arbitrary matrices,
//! and thresholded (saturated) variants.

use crate::EmdError;

/// A cost function on pairs of bin indices.
///
/// Implementations must return finite, non-negative costs for all
/// `i, j < size()`. A *metric* ground distance (symmetric, zero on the
/// diagonal, triangle inequality) makes the resulting EMD a metric on
/// distributions, but the solvers themselves only require non-negativity.
pub trait GroundDistance {
    /// Number of bins on each side.
    fn size(&self) -> usize;
    /// Cost of moving one unit of mass from bin `i` to bin `j`.
    fn cost(&self, i: usize, j: usize) -> f64;

    /// Largest pairwise cost; used for normalised variants and bounds.
    fn max_cost(&self) -> f64 {
        let n = self.size();
        let mut m = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                m = m.max(self.cost(i, j));
            }
        }
        m
    }
}

/// Equal-width bins over `[lo, hi]`; cost is |centre(i) - centre(j)|.
#[derive(Debug, Clone)]
pub struct GridL1 {
    lo: f64,
    width: f64,
    n: usize,
}

impl GridL1 {
    /// Create a grid of `n` equal bins spanning `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// [`EmdError::BadGrid`] when `lo >= hi`, bounds are non-finite, or
    /// `n == 0`.
    // `!(lo < hi)` deliberately treats NaN bounds as invalid.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn new(lo: f64, hi: f64, n: usize) -> Result<Self, EmdError> {
        if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(EmdError::BadGrid {
                reason: "require finite lo < hi",
            });
        }
        if n == 0 {
            return Err(EmdError::BadGrid {
                reason: "zero bins",
            });
        }
        Ok(GridL1 {
            lo,
            width: (hi - lo) / n as f64,
            n,
        })
    }

    /// Centre of bin `i`.
    pub fn centre(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }
}

impl GroundDistance for GridL1 {
    fn size(&self) -> usize {
        self.n
    }

    fn cost(&self, i: usize, j: usize) -> f64 {
        (i as f64 - j as f64).abs() * self.width
    }

    fn max_cost(&self) -> f64 {
        (self.n as f64 - 1.0) * self.width
    }
}

/// Bins at explicit 1-D positions; cost is |xi - xj|.
#[derive(Debug, Clone)]
pub struct PositionsL1 {
    positions: Vec<f64>,
}

impl PositionsL1 {
    /// Wrap a vector of bin positions (any order).
    pub fn new(positions: Vec<f64>) -> Self {
        PositionsL1 { positions }
    }
}

impl GroundDistance for PositionsL1 {
    fn size(&self) -> usize {
        self.positions.len()
    }

    fn cost(&self, i: usize, j: usize) -> f64 {
        (self.positions[i] - self.positions[j]).abs()
    }
}

/// An arbitrary dense ground-distance matrix.
#[derive(Debug, Clone)]
pub struct Matrix {
    rows: Vec<Vec<f64>>,
}

impl Matrix {
    /// Validate and wrap a square, finite, non-negative matrix.
    ///
    /// # Errors
    ///
    /// [`EmdError::NotSquare`] for ragged/rectangular input,
    /// [`EmdError::Negative`]/[`EmdError::NonFinite`] for bad entries.
    pub fn new(rows: Vec<Vec<f64>>) -> Result<Self, EmdError> {
        let n = rows.len();
        for row in &rows {
            if row.len() != n {
                return Err(EmdError::NotSquare {
                    rows: n,
                    row_len: row.len(),
                });
            }
            for (j, &c) in row.iter().enumerate() {
                if !c.is_finite() {
                    return Err(EmdError::NonFinite { index: j, value: c });
                }
                if c < 0.0 {
                    return Err(EmdError::Negative { index: j, value: c });
                }
            }
        }
        Ok(Matrix { rows })
    }
}

impl GroundDistance for Matrix {
    fn size(&self) -> usize {
        self.rows.len()
    }

    fn cost(&self, i: usize, j: usize) -> f64 {
        self.rows[i][j]
    }
}

/// A ground distance saturated at a threshold:
/// `cost(i, j) = min(inner.cost(i, j), t)`.
///
/// This is the robust ground distance of Pele & Werman (ICCV 2009): far
/// bins all cost the same, which bounds the influence of outlier mass and
/// empirically improves robustness of histogram comparison.
#[derive(Debug, Clone)]
pub struct Thresholded<D> {
    inner: D,
    threshold: f64,
}

impl<D: GroundDistance> Thresholded<D> {
    /// Saturate `inner` at `threshold`.
    pub fn new(inner: D, threshold: f64) -> Self {
        Thresholded { inner, threshold }
    }
}

impl<D: GroundDistance> GroundDistance for Thresholded<D> {
    fn size(&self) -> usize {
        self.inner.size()
    }

    fn cost(&self, i: usize, j: usize) -> f64 {
        self.inner.cost(i, j).min(self.threshold)
    }

    fn max_cost(&self) -> f64 {
        self.inner.max_cost().min(self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_centres_and_costs() {
        let g = GridL1::new(0.0, 1.0, 4).unwrap();
        assert_eq!(g.size(), 4);
        assert!((g.centre(0) - 0.125).abs() < 1e-12);
        assert!((g.centre(3) - 0.875).abs() < 1e-12);
        assert!((g.cost(0, 3) - 0.75).abs() < 1e-12);
        assert!((g.max_cost() - 0.75).abs() < 1e-12);
        assert_eq!(g.cost(2, 2), 0.0);
    }

    #[test]
    fn grid_rejects_bad_specs() {
        assert!(GridL1::new(1.0, 1.0, 4).is_err());
        assert!(GridL1::new(0.0, 1.0, 0).is_err());
        assert!(GridL1::new(f64::INFINITY, 1.0, 2).is_err());
    }

    #[test]
    fn positions_costs() {
        let p = PositionsL1::new(vec![0.0, 2.0, 5.0]);
        assert_eq!(p.size(), 3);
        assert!((p.cost(0, 2) - 5.0).abs() < 1e-12);
        assert!((p.cost(2, 1) - 3.0).abs() < 1e-12);
        assert!((p.max_cost() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_validation() {
        assert!(Matrix::new(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).is_ok());
        assert!(matches!(
            Matrix::new(vec![vec![0.0, 1.0], vec![1.0]]),
            Err(EmdError::NotSquare { .. })
        ));
        assert!(matches!(
            Matrix::new(vec![vec![0.0, -1.0], vec![1.0, 0.0]]),
            Err(EmdError::Negative { .. })
        ));
        assert!(matches!(
            Matrix::new(vec![vec![0.0, f64::NAN], vec![1.0, 0.0]]),
            Err(EmdError::NonFinite { .. })
        ));
    }

    #[test]
    fn thresholded_saturates() {
        let g = GridL1::new(0.0, 1.0, 10).unwrap();
        let t = Thresholded::new(g, 0.2);
        assert!((t.cost(0, 9) - 0.2).abs() < 1e-12);
        assert!((t.cost(0, 1) - 0.1).abs() < 1e-12);
        assert!((t.max_cost() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn default_max_cost_scans_all_pairs() {
        let m = Matrix::new(vec![vec![0.0, 7.0], vec![7.0, 0.0]]).unwrap();
        assert!((m.max_cost() - 7.0).abs() < 1e-12);
    }
}
