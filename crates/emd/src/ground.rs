//! Ground-distance abstractions for the general EMD solvers.
//!
//! A ground distance assigns a transport cost to every (source bin, sink
//! bin) pair. The solvers are generic over [`GroundDistance`] so the same
//! code handles plain 1-D grids, explicit positions, arbitrary matrices,
//! and thresholded (saturated) variants.
//!
//! [`GroundMatrix`] materialises any ground distance into a flat
//! row-major matrix behind an `Arc<[f64]>`, validated once at build
//! time, and [`GroundCache`] shares those matrices process-wide keyed by
//! an exact bin-grid fingerprint ([`GroundKey`]) — every pair in an
//! audit shares one bin grid, so the matrix is built once per grid per
//! process instead of once per pair.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::EmdError;

/// A cost function on pairs of bin indices.
///
/// Implementations must return finite, non-negative costs for all
/// `i, j < size()`. A *metric* ground distance (symmetric, zero on the
/// diagonal, triangle inequality) makes the resulting EMD a metric on
/// distributions, but the solvers themselves only require non-negativity.
pub trait GroundDistance {
    /// Number of bins on each side.
    fn size(&self) -> usize;
    /// Cost of moving one unit of mass from bin `i` to bin `j`.
    fn cost(&self, i: usize, j: usize) -> f64;

    /// Largest pairwise cost; used for normalised variants and bounds.
    fn max_cost(&self) -> f64 {
        let n = self.size();
        let mut m = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                m = m.max(self.cost(i, j));
            }
        }
        m
    }

    /// Whether every cost this ground can return is known finite and
    /// non-negative by construction, letting solvers skip the O(m·n)
    /// cost-matrix validation walk. Defaults to `false`; only override
    /// for types whose constructor (or build path) already validates.
    fn prevalidated(&self) -> bool {
        false
    }
}

/// Equal-width bins over `[lo, hi]`; cost is |centre(i) - centre(j)|.
#[derive(Debug, Clone)]
pub struct GridL1 {
    lo: f64,
    width: f64,
    n: usize,
}

impl GridL1 {
    /// Create a grid of `n` equal bins spanning `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// [`EmdError::BadGrid`] when `lo >= hi`, bounds are non-finite, or
    /// `n == 0`.
    // `!(lo < hi)` deliberately treats NaN bounds as invalid.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn new(lo: f64, hi: f64, n: usize) -> Result<Self, EmdError> {
        if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(EmdError::BadGrid {
                reason: "require finite lo < hi",
            });
        }
        if n == 0 {
            return Err(EmdError::BadGrid {
                reason: "zero bins",
            });
        }
        Ok(GridL1 {
            lo,
            width: (hi - lo) / n as f64,
            n,
        })
    }

    /// Centre of bin `i`.
    pub fn centre(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }
}

impl GroundDistance for GridL1 {
    fn size(&self) -> usize {
        self.n
    }

    fn cost(&self, i: usize, j: usize) -> f64 {
        (i as f64 - j as f64).abs() * self.width
    }

    fn max_cost(&self) -> f64 {
        (self.n as f64 - 1.0) * self.width
    }

    fn prevalidated(&self) -> bool {
        // `new` guarantees finite lo < hi, so every |i - j| * width is
        // finite and non-negative.
        true
    }
}

/// Bins at explicit 1-D positions; cost is |xi - xj|.
#[derive(Debug, Clone)]
pub struct PositionsL1 {
    positions: Vec<f64>,
}

impl PositionsL1 {
    /// Wrap a vector of bin positions (any order).
    pub fn new(positions: Vec<f64>) -> Self {
        PositionsL1 { positions }
    }
}

impl GroundDistance for PositionsL1 {
    fn size(&self) -> usize {
        self.positions.len()
    }

    fn cost(&self, i: usize, j: usize) -> f64 {
        (self.positions[i] - self.positions[j]).abs()
    }
}

/// An arbitrary dense ground-distance matrix, stored flat row-major.
///
/// The nested-`Vec` constructor is kept as a compatibility shim; internal
/// storage is a single contiguous buffer so cost lookups are one indexed
/// load.
#[derive(Debug, Clone)]
pub struct Matrix {
    data: Vec<f64>,
    n: usize,
}

impl Matrix {
    /// Validate and flatten a square, finite, non-negative matrix.
    ///
    /// # Errors
    ///
    /// [`EmdError::NotSquare`] for ragged/rectangular input,
    /// [`EmdError::Negative`]/[`EmdError::NonFinite`] for bad entries.
    pub fn new(rows: Vec<Vec<f64>>) -> Result<Self, EmdError> {
        let n = rows.len();
        let mut data = Vec::with_capacity(n * n);
        for row in &rows {
            if row.len() != n {
                return Err(EmdError::NotSquare {
                    rows: n,
                    row_len: row.len(),
                });
            }
            for (j, &c) in row.iter().enumerate() {
                if !c.is_finite() {
                    return Err(EmdError::NonFinite { index: j, value: c });
                }
                if c < 0.0 {
                    return Err(EmdError::Negative { index: j, value: c });
                }
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix { data, n })
    }

    /// The flat row-major cost buffer (`n * n` entries).
    pub fn flat(&self) -> &[f64] {
        &self.data
    }
}

impl GroundDistance for Matrix {
    fn size(&self) -> usize {
        self.n
    }

    fn cost(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    fn prevalidated(&self) -> bool {
        // `new` rejects non-finite and negative entries.
        true
    }
}

/// A ground distance saturated at a threshold:
/// `cost(i, j) = min(inner.cost(i, j), t)`.
///
/// This is the robust ground distance of Pele & Werman (ICCV 2009): far
/// bins all cost the same, which bounds the influence of outlier mass and
/// empirically improves robustness of histogram comparison.
#[derive(Debug, Clone)]
pub struct Thresholded<D> {
    inner: D,
    threshold: f64,
}

impl<D: GroundDistance> Thresholded<D> {
    /// Saturate `inner` at `threshold`.
    pub fn new(inner: D, threshold: f64) -> Self {
        Thresholded { inner, threshold }
    }
}

impl<D: GroundDistance> GroundDistance for Thresholded<D> {
    fn size(&self) -> usize {
        self.inner.size()
    }

    fn cost(&self, i: usize, j: usize) -> f64 {
        self.inner.cost(i, j).min(self.threshold)
    }

    fn max_cost(&self) -> f64 {
        self.inner.max_cost().min(self.threshold)
    }

    fn prevalidated(&self) -> bool {
        // `min` with a non-negative finite threshold preserves the inner
        // ground's guarantees; a NaN threshold is ruled out by `>= 0.0`.
        self.inner.prevalidated() && self.threshold >= 0.0 && self.threshold.is_finite()
    }
}

/// A ground-distance matrix materialised once and shared: flat row-major
/// costs behind an `Arc<[f64]>`, validated at build time (so solvers may
/// skip their per-instance cost walk), with the max cost precomputed.
///
/// Cloning is cheap — the cost buffer is shared, which is how
/// [`GroundCache`] hands the same matrix to every solve in the process.
#[derive(Debug, Clone)]
pub struct GroundMatrix {
    costs: Arc<[f64]>,
    n: usize,
    max_cost: f64,
}

impl GroundMatrix {
    /// Materialise `ground` into a validated flat matrix.
    ///
    /// # Errors
    ///
    /// [`EmdError::NonFinite`]/[`EmdError::Negative`] if the ground
    /// produces an invalid cost (the index reported is the column).
    pub fn build<G: GroundDistance + ?Sized>(ground: &G) -> Result<Self, EmdError> {
        let n = ground.size();
        let mut costs = Vec::with_capacity(n * n);
        let mut max_cost = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let c = ground.cost(i, j);
                if !c.is_finite() {
                    return Err(EmdError::NonFinite { index: j, value: c });
                }
                if c < 0.0 {
                    return Err(EmdError::Negative { index: j, value: c });
                }
                max_cost = max_cost.max(c);
                costs.push(c);
            }
        }
        Ok(GroundMatrix {
            costs: costs.into(),
            n,
            max_cost,
        })
    }

    /// The flat row-major cost buffer (`n * n` entries).
    pub fn flat(&self) -> &[f64] {
        &self.costs
    }
}

impl GroundDistance for GroundMatrix {
    fn size(&self) -> usize {
        self.n
    }

    fn cost(&self, i: usize, j: usize) -> f64 {
        self.costs[i * self.n + j]
    }

    fn max_cost(&self) -> f64 {
        self.max_cost
    }

    fn prevalidated(&self) -> bool {
        // `build` rejected non-finite and negative entries.
        true
    }
}

/// An exact fingerprint of a ground distance: the full defining data as
/// `u64` words (a tag plus bit patterns of the defining floats), not a
/// hash — two grids share a cache entry only when they are identical.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroundKey(Box<[u64]>);

impl GroundKey {
    /// Wrap a signature produced by a caller (see the tag constants on
    /// the hist-layer distances for the conventions used there).
    pub fn new(words: &[u64]) -> Self {
        GroundKey(words.into())
    }
}

impl std::borrow::Borrow<[u64]> for GroundKey {
    fn borrow(&self) -> &[u64] {
        &self.0
    }
}

/// Process-wide cache of materialised ground matrices.
///
/// The map lock is held across a build, so a grid is materialised *at
/// most once* per process no matter how many workers race for it; the
/// `hits`/`builds` counters let benches assert exactly that.
pub struct GroundCache {
    map: Mutex<HashMap<GroundKey, GroundMatrix>>,
    hits: AtomicU64,
    builds: AtomicU64,
}

impl GroundCache {
    /// An empty cache. Prefer [`GroundCache::global`].
    pub fn new() -> Self {
        GroundCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            builds: AtomicU64::new(0),
        }
    }

    /// The process-wide shared cache. Audits, streaming epochs and
    /// benches in one process all resolve their bin grids here, so a
    /// grid survives across batches and epochs for free.
    pub fn global() -> &'static GroundCache {
        static CACHE: OnceLock<GroundCache> = OnceLock::new();
        CACHE.get_or_init(GroundCache::new)
    }

    /// Fetch the matrix for `key`, building (and validating) it with
    /// `build` on first use. Returns the matrix and whether it was
    /// served from the cache.
    ///
    /// # Errors
    ///
    /// Whatever `build` returns; failed builds are not cached.
    pub fn get_or_build(
        &self,
        key: &[u64],
        build: impl FnOnce() -> Result<GroundMatrix, EmdError>,
    ) -> Result<(GroundMatrix, bool), EmdError> {
        let mut map = self.map.lock().expect("ground cache lock");
        if let Some(m) = map.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((m.clone(), true));
        }
        let m = build()?;
        self.builds.fetch_add(1, Ordering::Relaxed);
        map.insert(GroundKey::new(key), m.clone());
        Ok((m, false))
    }

    /// Lifetime cache hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime matrix builds — flat across repeated batches on the same
    /// grid, which is the counter the `exact_solver` bench asserts.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }
}

impl Default for GroundCache {
    fn default() -> Self {
        GroundCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_centres_and_costs() {
        let g = GridL1::new(0.0, 1.0, 4).unwrap();
        assert_eq!(g.size(), 4);
        assert!((g.centre(0) - 0.125).abs() < 1e-12);
        assert!((g.centre(3) - 0.875).abs() < 1e-12);
        assert!((g.cost(0, 3) - 0.75).abs() < 1e-12);
        assert!((g.max_cost() - 0.75).abs() < 1e-12);
        assert_eq!(g.cost(2, 2), 0.0);
    }

    #[test]
    fn grid_rejects_bad_specs() {
        assert!(GridL1::new(1.0, 1.0, 4).is_err());
        assert!(GridL1::new(0.0, 1.0, 0).is_err());
        assert!(GridL1::new(f64::INFINITY, 1.0, 2).is_err());
    }

    #[test]
    fn positions_costs() {
        let p = PositionsL1::new(vec![0.0, 2.0, 5.0]);
        assert_eq!(p.size(), 3);
        assert!((p.cost(0, 2) - 5.0).abs() < 1e-12);
        assert!((p.cost(2, 1) - 3.0).abs() < 1e-12);
        assert!((p.max_cost() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_validation() {
        assert!(Matrix::new(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).is_ok());
        assert!(matches!(
            Matrix::new(vec![vec![0.0, 1.0], vec![1.0]]),
            Err(EmdError::NotSquare { .. })
        ));
        assert!(matches!(
            Matrix::new(vec![vec![0.0, -1.0], vec![1.0, 0.0]]),
            Err(EmdError::Negative { .. })
        ));
        assert!(matches!(
            Matrix::new(vec![vec![0.0, f64::NAN], vec![1.0, 0.0]]),
            Err(EmdError::NonFinite { .. })
        ));
    }

    #[test]
    fn thresholded_saturates() {
        let g = GridL1::new(0.0, 1.0, 10).unwrap();
        let t = Thresholded::new(g, 0.2);
        assert!((t.cost(0, 9) - 0.2).abs() < 1e-12);
        assert!((t.cost(0, 1) - 0.1).abs() < 1e-12);
        assert!((t.max_cost() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn default_max_cost_scans_all_pairs() {
        let m = Matrix::new(vec![vec![0.0, 7.0], vec![7.0, 0.0]]).unwrap();
        assert!((m.max_cost() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_flattens_row_major() {
        let m = Matrix::new(vec![vec![0.0, 1.0], vec![2.0, 0.0]]).unwrap();
        assert_eq!(m.flat(), &[0.0, 1.0, 2.0, 0.0]);
        assert_eq!(m.cost(1, 0), 2.0);
    }

    #[test]
    fn ground_matrix_matches_its_source() {
        let g = GridL1::new(0.0, 1.0, 5).unwrap();
        let m = GroundMatrix::build(&g).unwrap();
        assert_eq!(m.size(), 5);
        assert!(m.prevalidated());
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(m.cost(i, j).to_bits(), g.cost(i, j).to_bits());
            }
        }
        assert_eq!(m.max_cost().to_bits(), g.max_cost().to_bits());
    }

    #[test]
    fn ground_matrix_build_rejects_bad_costs() {
        let p = PositionsL1::new(vec![0.0, f64::NAN]);
        assert!(matches!(
            GroundMatrix::build(&p),
            Err(EmdError::NonFinite { .. })
        ));
    }

    #[test]
    fn prevalidated_flags() {
        let g = GridL1::new(0.0, 1.0, 4).unwrap();
        assert!(g.prevalidated());
        assert!(!PositionsL1::new(vec![0.0, 1.0]).prevalidated());
        assert!(Thresholded::new(g.clone(), 0.5).prevalidated());
        assert!(!Thresholded::new(g.clone(), -1.0).prevalidated());
        assert!(!Thresholded::new(g, f64::NAN).prevalidated());
        assert!(!Thresholded::new(PositionsL1::new(vec![0.0]), 0.5).prevalidated());
    }

    #[test]
    fn cache_builds_once_and_hits_after() {
        let cache = GroundCache::new();
        let key = [7u64, 1, 2, 3];
        let build = || GroundMatrix::build(&GridL1::new(0.0, 1.0, 3).unwrap());
        let (first, was_hit) = cache.get_or_build(&key, build).unwrap();
        assert!(!was_hit);
        let (second, was_hit) = cache.get_or_build(&key, build).unwrap();
        assert!(was_hit);
        assert_eq!(first.flat(), second.flat());
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 1);
        // A different key builds its own matrix.
        let (_, was_hit) = cache
            .get_or_build(&[8u64], || {
                GroundMatrix::build(&GridL1::new(0.0, 2.0, 4).unwrap())
            })
            .unwrap();
        assert!(!was_hit);
        assert_eq!(cache.builds(), 2);
    }

    #[test]
    fn cache_does_not_retain_failed_builds() {
        let cache = GroundCache::new();
        let bad = || GroundMatrix::build(&PositionsL1::new(vec![f64::NAN]));
        assert!(cache.get_or_build(&[1u64], bad).is_err());
        assert_eq!(cache.builds(), 0);
        // The key is still free for a good build.
        let (_, was_hit) = cache
            .get_or_build(&[1u64], || {
                GroundMatrix::build(&GridL1::new(0.0, 1.0, 2).unwrap())
            })
            .unwrap();
        assert!(!was_hit);
        assert_eq!(cache.builds(), 1);
    }
}
