//! Closed-form one-dimensional Earth Mover's Distance.
//!
//! On the real line with ground distance `|x - y|`, the EMD between two
//! unit-mass distributions equals the L1 distance between their cumulative
//! distribution functions (a classical result; see e.g. Vallender 1974 for
//! the Wasserstein-1 identity). For histograms on a shared grid this is a
//! single pass over the bins, which is what makes exploring thousands of
//! candidate partitionings feasible for the auditing algorithms.

use crate::EmdError;

/// EMD between two histograms on a shared equal-width grid over `[lo, hi]`.
///
/// Bin `i` of `n` is centred at `lo + (i + 0.5) * (hi - lo) / n`, so the
/// returned distance is in the same units as the score axis (for scores in
/// `[0, 1]` the EMD is itself in `[0, 1 - 1/n]`).
///
/// Inputs are normalised to unit mass internally; they may be raw counts.
///
/// # Errors
///
/// * [`EmdError::LengthMismatch`] / [`EmdError::Empty`] on shape problems.
/// * [`EmdError::BadGrid`] when `lo >= hi`.
/// * [`EmdError::ZeroMass`], [`EmdError::Negative`], [`EmdError::NonFinite`]
///   on invalid masses.
// `!(lo < hi)` deliberately treats NaN bounds as invalid.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn emd_1d_grid(a: &[f64], b: &[f64], lo: f64, hi: f64) -> Result<f64, EmdError> {
    if a.len() != b.len() {
        return Err(EmdError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(EmdError::Empty);
    }
    if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
        return Err(EmdError::BadGrid {
            reason: "require finite lo < hi",
        });
    }
    crate::validate_masses(a)?;
    crate::validate_masses(b)?;
    let (ta, tb) = (crate::total(a), crate::total(b));
    crate::validate_total(ta)?;
    crate::validate_total(tb)?;
    // EMD = sum over the n-1 interior cut points of |CDF_a - CDF_b| * bin_width.
    let width = (hi - lo) / a.len() as f64;
    let mut ca = 0.0;
    let mut cb = 0.0;
    let mut acc = 0.0;
    for i in 0..a.len() - 1 {
        ca += a[i] / ta;
        cb += b[i] / tb;
        acc += (ca - cb).abs();
    }
    Ok(acc * width)
}

/// EMD between two weight vectors located at shared, **sorted** 1-D
/// positions with ground distance `|xi - xj|`.
///
/// Inputs are normalised internally. Positions must be non-decreasing;
/// this is debug-asserted (the public [`crate::emd_between`] entry point
/// checks it and falls back to an exact solver when violated).
///
/// # Errors
///
/// Same validation failures as [`emd_1d_grid`].
pub fn emd_1d_positions(a: &[f64], b: &[f64], positions: &[f64]) -> Result<f64, EmdError> {
    if a.len() != b.len() {
        return Err(EmdError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.len() != positions.len() {
        return Err(EmdError::LengthMismatch {
            left: a.len(),
            right: positions.len(),
        });
    }
    if a.is_empty() {
        return Err(EmdError::Empty);
    }
    debug_assert!(
        positions.windows(2).all(|w| w[0] <= w[1]),
        "positions must be sorted"
    );
    crate::validate_masses(a)?;
    crate::validate_masses(b)?;
    for (i, &p) in positions.iter().enumerate() {
        if !p.is_finite() {
            return Err(EmdError::NonFinite { index: i, value: p });
        }
    }
    let (ta, tb) = (crate::total(a), crate::total(b));
    crate::validate_total(ta)?;
    crate::validate_total(tb)?;
    // Between consecutive positions, |CDF_a - CDF_b| mass must travel the gap.
    let mut ca = 0.0;
    let mut cb = 0.0;
    let mut acc = 0.0;
    for i in 0..a.len() - 1 {
        ca += a[i] / ta;
        cb += b[i] / tb;
        acc += (ca - cb).abs() * (positions[i + 1] - positions[i]);
    }
    Ok(acc)
}

/// EMD (Wasserstein-1) between two raw sample sets on the line.
///
/// No binning: this is the exact distance between the two empirical
/// distributions, useful as a binning-free reference in tests and in the
/// bin-count-sensitivity ablation. Samples need not be sorted and the two
/// sets may have different sizes.
///
/// # Errors
///
/// [`EmdError::Empty`] when either set is empty; [`EmdError::NonFinite`]
/// on NaN/infinite samples.
pub fn emd_1d_samples(xs: &[f64], ys: &[f64]) -> Result<f64, EmdError> {
    if xs.is_empty() || ys.is_empty() {
        return Err(EmdError::Empty);
    }
    for (i, &v) in xs.iter().enumerate() {
        if !v.is_finite() {
            return Err(EmdError::NonFinite { index: i, value: v });
        }
    }
    for (i, &v) in ys.iter().enumerate() {
        if !v.is_finite() {
            return Err(EmdError::NonFinite { index: i, value: v });
        }
    }
    let mut xs = xs.to_vec();
    let mut ys = ys.to_vec();
    xs.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
    ys.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
    // Sweep the merged support; between consecutive events, the CDF gap is
    // constant and contributes gap * |F_x - F_y|.
    let (nx, ny) = (xs.len() as f64, ys.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut acc = 0.0;
    let mut prev = xs[0].min(ys[0]);
    while i < xs.len() || j < ys.len() {
        let next = match (xs.get(i), ys.get(j)) {
            (Some(&x), Some(&y)) => x.min(y),
            (Some(&x), None) => x,
            (None, Some(&y)) => y,
            (None, None) => unreachable!(),
        };
        let fx = i as f64 / nx;
        let fy = j as f64 / ny;
        acc += (fx - fy).abs() * (next - prev);
        prev = next;
        while i < xs.len() && xs[i] <= next {
            i += 1;
        }
        while j < ys.len() && ys[j] <= next {
            j += 1;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn point_masses_at_opposite_ends() {
        // 10 bins over [0,1]: centres 0.05 and 0.95.
        let mut a = vec![0.0; 10];
        let mut b = vec![0.0; 10];
        a[0] = 1.0;
        b[9] = 1.0;
        let d = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        assert!(close(d, 0.9));
    }

    #[test]
    fn adjacent_bins_cost_one_bin_width() {
        let a = [1.0, 0.0, 0.0, 0.0];
        let b = [0.0, 1.0, 0.0, 0.0];
        let d = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        assert!(close(d, 0.25));
    }

    #[test]
    fn grid_range_scales_distance() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let d01 = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        let d0100 = emd_1d_grid(&a, &b, 0.0, 100.0).unwrap();
        assert!(close(d0100, d01 * 100.0));
    }

    #[test]
    fn counts_and_frequencies_agree() {
        let counts = [3.0, 5.0, 2.0, 0.0];
        let freqs = [0.3, 0.5, 0.2, 0.0];
        let other = [0.0, 1.0, 4.0, 5.0];
        let d1 = emd_1d_grid(&counts, &other, 0.0, 1.0).unwrap();
        let d2 = emd_1d_grid(&freqs, &other, 0.0, 1.0).unwrap();
        assert!(close(d1, d2));
    }

    #[test]
    fn symmetry() {
        let a = [0.1, 0.4, 0.3, 0.2];
        let b = [0.7, 0.1, 0.1, 0.1];
        let d1 = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        let d2 = emd_1d_grid(&b, &a, 0.0, 1.0).unwrap();
        assert!(close(d1, d2));
    }

    #[test]
    fn identity_of_indiscernibles() {
        let a = [0.1, 0.4, 0.3, 0.2];
        assert!(close(emd_1d_grid(&a, &a, 0.0, 1.0).unwrap(), 0.0));
    }

    #[test]
    fn bad_grid_rejected() {
        let a = [1.0];
        assert!(matches!(
            emd_1d_grid(&a, &a, 1.0, 0.0),
            Err(EmdError::BadGrid { .. })
        ));
        assert!(matches!(
            emd_1d_grid(&a, &a, f64::NAN, 1.0),
            Err(EmdError::BadGrid { .. })
        ));
    }

    #[test]
    fn single_bin_distance_is_zero() {
        // With one bin everything is in the same place.
        let d = emd_1d_grid(&[5.0], &[2.0], 0.0, 1.0).unwrap();
        assert!(close(d, 0.0));
    }

    #[test]
    fn positions_variant_matches_grid_on_centres() {
        let a = [0.2, 0.3, 0.5, 0.0];
        let b = [0.0, 0.1, 0.2, 0.7];
        let centres: Vec<f64> = (0..4).map(|i| (i as f64 + 0.5) / 4.0).collect();
        let dg = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        let dp = emd_1d_positions(&a, &b, &centres).unwrap();
        assert!(close(dg, dp));
    }

    #[test]
    fn positions_with_uneven_spacing() {
        // All mass moves from 0.0 to 10.0.
        let d = emd_1d_positions(&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0], &[0.0, 1.0, 10.0]).unwrap();
        assert!(close(d, 10.0));
    }

    #[test]
    fn samples_exact_wasserstein() {
        // {0, 0} vs {1, 1}: every unit travels 1.
        assert!(close(
            emd_1d_samples(&[0.0, 0.0], &[1.0, 1.0]).unwrap(),
            1.0
        ));
        // {0, 1} vs {0, 1}: identical.
        assert!(close(
            emd_1d_samples(&[0.0, 1.0], &[1.0, 0.0]).unwrap(),
            0.0
        ));
        // {0} vs {0, 1}: half the mass travels 1.
        assert!(close(emd_1d_samples(&[0.0], &[0.0, 1.0]).unwrap(), 0.5));
    }

    #[test]
    fn samples_unsorted_input_ok() {
        let d1 = emd_1d_samples(&[0.9, 0.1, 0.5], &[0.2, 0.8, 0.4]).unwrap();
        let d2 = emd_1d_samples(&[0.1, 0.5, 0.9], &[0.8, 0.4, 0.2]).unwrap();
        assert!(close(d1, d2));
    }

    #[test]
    fn samples_reject_nan() {
        assert!(matches!(
            emd_1d_samples(&[f64::NAN], &[0.0]),
            Err(EmdError::NonFinite { index: 0, .. })
        ));
    }

    #[test]
    fn samples_duplicate_heavy_inputs() {
        let xs = vec![0.25; 100];
        let ys = vec![0.75; 50];
        assert!(close(emd_1d_samples(&xs, &ys).unwrap(), 0.5));
    }

    #[test]
    fn positions_length_mismatch_reports_the_offending_side() {
        // a vs b mismatch reports b's length...
        assert!(matches!(
            emd_1d_positions(&[1.0, 1.0], &[1.0, 1.0, 1.0], &[0.0, 0.5]),
            Err(EmdError::LengthMismatch { left: 2, right: 3 })
        ));
        // ...and a vs positions mismatch reports positions' length, not
        // max(b.len(), positions.len()).
        assert!(matches!(
            emd_1d_positions(&[1.0, 1.0], &[1.0, 1.0], &[0.0, 0.5, 1.0, 1.5]),
            Err(EmdError::LengthMismatch { left: 2, right: 4 })
        ));
    }

    #[test]
    fn overflowing_totals_are_rejected_not_zeroed() {
        // Every entry is finite, but the totals overflow to +inf; dividing
        // by them used to zero both CDFs and return a silent 0.0.
        let huge = [1e308, 1e308];
        let other = [1.0, 0.0];
        assert!(matches!(
            emd_1d_grid(&huge, &other, 0.0, 1.0),
            Err(EmdError::NonFiniteTotal { .. })
        ));
        assert!(matches!(
            emd_1d_grid(&other, &huge, 0.0, 1.0),
            Err(EmdError::NonFiniteTotal { .. })
        ));
        assert!(matches!(
            emd_1d_positions(&huge, &other, &[0.0, 1.0]),
            Err(EmdError::NonFiniteTotal { .. })
        ));
        assert!(matches!(
            crate::normalise(&huge),
            Err(EmdError::NonFiniteTotal { .. })
        ));
    }

    #[test]
    fn grid_emd_upper_bound() {
        // EMD over [0,1] can never exceed the span between extreme centres.
        let a = [1.0, 0.0, 0.0, 0.0, 0.0];
        let b = [0.0, 0.0, 0.0, 0.0, 1.0];
        let d = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        assert!(d <= 1.0 - 1.0 / 5.0 + 1e-12);
    }
}
