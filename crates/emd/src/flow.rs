//! Minimum-cost flow via successive shortest paths with Johnson potentials.
//!
//! This is a general-purpose solver over real-valued capacities, used by
//! [`crate::transport`] to solve EMD instances with arbitrary ground
//! distances. Edge costs must be non-negative on the initial residual
//! graph (true for any ground distance), which lets every shortest-path
//! computation use Dijkstra on reduced costs.
//!
//! The network owns every buffer the solve needs — Dijkstra `dist`,
//! `prev_edge`, the binary heap, and the node potentials — so a network
//! that is [`MinCostFlow::reset`] and rebuilt between solves allocates
//! nothing at steady state. [`Round1`] additionally caches the *first*
//! Dijkstra round, which is a pure function of topology and costs (never
//! of capacities, which only gate edges above the saturation epsilon):
//! two instances that share a support set and a ground matrix replay it
//! bit-for-bit instead of recomputing it. The replay is deliberately
//! restricted to round 1 because later rounds depend on the residual
//! capacities, and seeding *final* duals from a previous solve shifts
//! Dijkstra's float keys per node, changing tie-breaks on degenerate
//! instances and therefore breaking the bit-identity contract the audit
//! pipeline guarantees. The compacted EMD hot path no longer routes
//! through this graph solver — it runs on the transport-specialised
//! kernel in `crate::bipartite`, which applies the same record/replay
//! idea — but [`MinCostFlow`] remains the solver behind arbitrary
//! [`crate::TransportProblem`] instances.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::EmdError;

/// Capacities below this are treated as saturated (floating-point slack).
pub(crate) const CAP_EPS: f64 = 1e-12;

/// Node-count ceiling for the O(n²) scan Dijkstra. Compacted transport
/// instances are tiny (supports + source + sink), where scanning an
/// array for the next node beats binary-heap traffic by a wide margin;
/// larger networks fall back to the heap. The two variants may pick
/// different (equally optimal) predecessors on distance ties, so the
/// choice is pinned to the node count — a pure function of the instance
/// — keeping every solve of a given instance bit-reproducible.
const SCAN_DIJKSTRA_MAX: usize = 64;

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: f64,
    cost: f64,
}

/// A min-cost-flow network over `f64` capacities and costs.
///
/// Edges are stored in forward/backward pairs (`i` and `i ^ 1`), the
/// standard residual-graph layout. All solver scratch lives on the
/// struct so [`MinCostFlow::reset`] + rebuild between solves is
/// allocation-free once buffers have grown to the working-set size.
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    edges: Vec<Edge>,
    adj: Vec<Vec<usize>>,
    /// Live node count; `adj` may hold spare (cleared) rows beyond it.
    n: usize,
    dist: Vec<f64>,
    prev_edge: Vec<usize>,
    potential: Vec<f64>,
    heap: BinaryHeap<HeapEntry>,
    visited: Vec<bool>,
}

/// The cached first Dijkstra round of a solve: shortest-path distances
/// and predecessor edges from the source over the fresh residual graph.
/// Valid for replay on any instance with the same node layout, edge
/// build order and costs (capacity values do not enter round 1 beyond
/// being positive). Validity tracking is the caller's job.
#[derive(Debug, Clone, Default)]
pub struct Round1 {
    dist: Vec<f64>,
    prev_edge: Vec<usize>,
}

/// Result of a [`MinCostFlow::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowResult {
    /// Total flow actually routed from source to sink.
    pub flow: f64,
    /// Total cost of that flow.
    pub cost: f64,
}

/// Min-heap entry for Dijkstra (`BinaryHeap` is a max-heap, so order is
/// reversed).
#[derive(Debug, Clone, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smallest distance first. Distances are always finite here.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Default for MinCostFlow {
    fn default() -> Self {
        MinCostFlow::new(0)
    }
}

impl Round1 {
    /// Total element capacity of the cached arrays (allocation probe).
    pub fn footprint(&self) -> usize {
        self.dist.capacity() + self.prev_edge.capacity()
    }
}

impl MinCostFlow {
    /// Create a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            n,
            dist: Vec::new(),
            prev_edge: Vec::new(),
            potential: Vec::new(),
            heap: BinaryHeap::new(),
            visited: Vec::new(),
        }
    }

    /// Clear the network down to `n` isolated nodes, keeping every
    /// buffer's capacity so the next build + solve allocates nothing
    /// once the buffers have reached the working-set size.
    pub fn reset(&mut self, n: usize) {
        self.edges.clear();
        // Rows at index >= the live count are always left clean, so only
        // the previously-live rows need clearing.
        let dirty = self.n.min(self.adj.len());
        for row in self.adj.iter_mut().take(dirty) {
            row.clear();
        }
        if self.adj.len() < n {
            self.adj.resize_with(n, Vec::new);
        }
        self.n = n;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Total element capacity of every buffer (allocation probe).
    pub fn footprint(&self) -> usize {
        self.edges.capacity()
            + self.adj.capacity()
            + self.adj.iter().map(Vec::capacity).sum::<usize>()
            + self.dist.capacity()
            + self.prev_edge.capacity()
            + self.potential.capacity()
            + self.heap.capacity()
            + self.visited.capacity()
    }

    /// Add a directed edge `from -> to` with the given capacity and cost.
    ///
    /// Returns the edge id; the flow on it can be read back after solving
    /// with [`MinCostFlow::flow_on`]. Costs must be non-negative.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64, cost: f64) -> usize {
        debug_assert!(from < self.n && to < self.n);
        debug_assert!(
            cap >= 0.0 && cost >= 0.0,
            "capacities and costs must be non-negative"
        );
        let id = self.edges.len();
        self.edges.push(Edge { to, cap, cost });
        self.edges.push(Edge {
            to: from,
            cap: 0.0,
            cost: -cost,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// Flow currently routed through edge `id` (as returned by `add_edge`).
    pub fn flow_on(&self, id: usize) -> f64 {
        // Flow on the forward edge equals residual capacity of its reverse.
        self.edges[id ^ 1].cap
    }

    /// Send up to `want` units of flow from `source` to `sink` at minimum
    /// cost. Returns the routed amount (may be less than `want` if the
    /// network saturates) and its cost.
    ///
    /// # Errors
    ///
    /// [`EmdError::SolverStalled`] if an internal invariant breaks (e.g.
    /// negative reduced cost caused by non-finite input); valid inputs
    /// never trigger it.
    pub fn solve(&mut self, source: usize, sink: usize, want: f64) -> Result<FlowResult, EmdError> {
        self.solve_warm(source, sink, want, None, false)
    }

    /// [`MinCostFlow::solve`] with optional round-1 record/replay.
    ///
    /// When `round1` is provided and `replay` is false, the first
    /// Dijkstra round is copied into it after running. When `replay` is
    /// true, the cached round is copied back in *instead of* running
    /// Dijkstra — the caller asserts (by comparing supports and costs)
    /// that the cache came from an instance with the same node layout,
    /// edge build order and costs, which makes the replay bit-identical
    /// to recomputation.
    ///
    /// # Errors
    ///
    /// As [`MinCostFlow::solve`].
    pub fn solve_warm(
        &mut self,
        source: usize,
        sink: usize,
        want: f64,
        mut round1: Option<&mut Round1>,
        replay: bool,
    ) -> Result<FlowResult, EmdError> {
        let n = self.n;
        self.potential.clear();
        self.potential.resize(n, 0.0);
        let mut flow = 0.0;
        let mut cost = 0.0;
        // Each augmentation saturates >= 1 edge, so iterations are bounded
        // by edge count; add slack for float re-saturation.
        let max_rounds = 4 * self.edges.len() + 16;
        let mut rounds = 0;
        while want - flow > CAP_EPS {
            rounds += 1;
            if rounds > max_rounds {
                return Err(EmdError::SolverStalled {
                    solver: "min-cost-flow",
                });
            }
            if rounds == 1 && replay {
                let r1 = round1
                    .as_deref_mut()
                    .expect("replay requested without a Round1 cache");
                debug_assert_eq!(r1.dist.len(), n, "stale round-1 cache");
                self.dist.clear();
                self.dist.extend_from_slice(&r1.dist);
                self.prev_edge.clear();
                self.prev_edge.extend_from_slice(&r1.prev_edge);
            } else {
                self.dijkstra(source);
                if rounds == 1 {
                    if let Some(r1) = round1.as_deref_mut() {
                        r1.dist.clear();
                        r1.dist.extend_from_slice(&self.dist);
                        r1.prev_edge.clear();
                        r1.prev_edge.extend_from_slice(&self.prev_edge);
                    }
                }
            }
            if !self.dist[sink].is_finite() {
                break; // no augmenting path left
            }
            for v in 0..n {
                if self.dist[v].is_finite() {
                    self.potential[v] += self.dist[v];
                }
            }
            // Find bottleneck along the path.
            let mut push = want - flow;
            let mut v = sink;
            while v != source {
                let eid = self.prev_edge[v];
                push = push.min(self.edges[eid].cap);
                v = self.edges[eid ^ 1].to;
            }
            if push <= CAP_EPS {
                break;
            }
            // Apply.
            let mut v = sink;
            while v != source {
                let eid = self.prev_edge[v];
                self.edges[eid].cap -= push;
                self.edges[eid ^ 1].cap += push;
                cost += push * self.edges[eid].cost;
                v = self.edges[eid ^ 1].to;
            }
            flow += push;
        }
        Ok(FlowResult { flow, cost })
    }

    /// One Dijkstra pass on reduced costs from `source`, filling
    /// `self.dist` / `self.prev_edge` without allocating.
    fn dijkstra(&mut self, source: usize) {
        if self.n <= SCAN_DIJKSTRA_MAX {
            self.dijkstra_scan(source);
        } else {
            self.dijkstra_heap(source);
        }
    }

    /// Scan variant: O(n) linear minimum search per settled node (lowest
    /// index wins distance ties). Far cheaper than heap traffic on the
    /// tiny networks compacted transport instances produce.
    fn dijkstra_scan(&mut self, source: usize) {
        let n = self.n;
        let MinCostFlow {
            edges,
            adj,
            dist,
            prev_edge,
            potential,
            visited,
            ..
        } = self;
        dist.clear();
        dist.resize(n, f64::INFINITY);
        prev_edge.clear();
        prev_edge.resize(n, usize::MAX);
        visited.clear();
        visited.resize(n, false);
        dist[source] = 0.0;
        loop {
            let mut u = usize::MAX;
            let mut best = f64::INFINITY;
            for v in 0..n {
                if !visited[v] && dist[v] < best {
                    best = dist[v];
                    u = v;
                }
            }
            if u == usize::MAX {
                break;
            }
            visited[u] = true;
            let d = dist[u];
            for &eid in &adj[u] {
                let e = &edges[eid];
                if e.cap <= CAP_EPS {
                    continue;
                }
                // Clamp tiny negative values from float error.
                let reduced = (e.cost + potential[u] - potential[e.to]).max(0.0);
                let nd = d + reduced;
                if nd + CAP_EPS < dist[e.to] {
                    dist[e.to] = nd;
                    prev_edge[e.to] = eid;
                }
            }
        }
    }

    /// Heap variant for larger networks.
    fn dijkstra_heap(&mut self, source: usize) {
        let n = self.n;
        let MinCostFlow {
            edges,
            adj,
            dist,
            prev_edge,
            potential,
            heap,
            ..
        } = self;
        dist.clear();
        dist.resize(n, f64::INFINITY);
        prev_edge.clear();
        prev_edge.resize(n, usize::MAX);
        dist[source] = 0.0;
        heap.clear();
        heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if d > dist[u] + CAP_EPS {
                continue;
            }
            for &eid in &adj[u] {
                let e = &edges[eid];
                if e.cap <= CAP_EPS {
                    continue;
                }
                let reduced = e.cost + potential[u] - potential[e.to];
                // Clamp tiny negative values from float error.
                let reduced = reduced.max(0.0);
                let nd = d + reduced;
                if nd + CAP_EPS < dist[e.to] {
                    dist[e.to] = nd;
                    prev_edge[e.to] = eid;
                    heap.push(HeapEntry {
                        dist: nd,
                        node: e.to,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = MinCostFlow::new(2);
        let e = g.add_edge(0, 1, 5.0, 2.0);
        let r = g.solve(0, 1, 3.0).unwrap();
        assert!((r.flow - 3.0).abs() < 1e-9);
        assert!((r.cost - 6.0).abs() < 1e-9);
        assert!((g.flow_on(e) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn prefers_cheap_path() {
        // 0 -> 1 -> 3 (cost 1+1), 0 -> 2 -> 3 (cost 5+5); each path cap 1.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1.0, 1.0);
        g.add_edge(1, 3, 1.0, 1.0);
        g.add_edge(0, 2, 1.0, 5.0);
        g.add_edge(2, 3, 1.0, 5.0);
        let r = g.solve(0, 3, 1.0).unwrap();
        assert!((r.cost - 2.0).abs() < 1e-9);
        // Asking for both units uses the expensive path too.
        let mut g2 = MinCostFlow::new(4);
        g2.add_edge(0, 1, 1.0, 1.0);
        g2.add_edge(1, 3, 1.0, 1.0);
        g2.add_edge(0, 2, 1.0, 5.0);
        g2.add_edge(2, 3, 1.0, 5.0);
        let r2 = g2.solve(0, 3, 2.0).unwrap();
        assert!((r2.cost - 12.0).abs() < 1e-9);
        assert!((r2.flow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_returns_partial_flow() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 1.0, 1.0);
        let r = g.solve(0, 1, 10.0).unwrap();
        assert!((r.flow - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rerouting_through_residual_edges() {
        // Classic case where the greedy first path must be partially undone.
        // 0->1 cap 1 cost 1, 1->3 cap 1 cost 0, 0->2 cap 1 cost 2,
        // 1->2 cap 1 cost 0, 2->3 cap 1 cost 1.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1.0, 1.0);
        g.add_edge(1, 3, 1.0, 0.0);
        g.add_edge(0, 2, 1.0, 2.0);
        g.add_edge(1, 2, 1.0, 0.0);
        g.add_edge(2, 3, 1.0, 1.0);
        let r = g.solve(0, 3, 2.0).unwrap();
        assert!((r.flow - 2.0).abs() < 1e-9);
        // Optimal: 0->1->3 (1) and 0->2->3 (3) = 4 total.
        assert!((r.cost - 4.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_sink_gets_zero_flow() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 1.0, 1.0);
        let r = g.solve(0, 2, 1.0).unwrap();
        assert_eq!(r.flow, 0.0);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn reset_reuses_buffers_across_solves() {
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1.0, 1.0);
        g.add_edge(1, 3, 1.0, 0.0);
        g.add_edge(0, 2, 1.0, 2.0);
        g.add_edge(1, 2, 1.0, 0.0);
        g.add_edge(2, 3, 1.0, 1.0);
        let first = g.solve(0, 3, 2.0).unwrap();
        // Rebuild the identical instance in the same network; the result
        // must be bit-identical to a fresh solve.
        g.reset(4);
        g.add_edge(0, 1, 1.0, 1.0);
        g.add_edge(1, 3, 1.0, 0.0);
        g.add_edge(0, 2, 1.0, 2.0);
        g.add_edge(1, 2, 1.0, 0.0);
        g.add_edge(2, 3, 1.0, 1.0);
        let second = g.solve(0, 3, 2.0).unwrap();
        assert_eq!(first.cost.to_bits(), second.cost.to_bits());
        assert_eq!(first.flow.to_bits(), second.flow.to_bits());
        // Shrinking then growing again must not resurrect stale edges.
        g.reset(2);
        g.add_edge(0, 1, 1.0, 3.0);
        let r = g.solve(0, 1, 1.0).unwrap();
        assert!((r.cost - 3.0).abs() < 1e-12);
        g.reset(4);
        assert_eq!(g.node_count(), 4);
        g.add_edge(0, 3, 1.0, 5.0);
        let r = g.solve(0, 3, 1.0).unwrap();
        assert!((r.cost - 5.0).abs() < 1e-12);
    }

    #[test]
    fn round1_replay_is_bit_identical() {
        let build = |g: &mut MinCostFlow| {
            g.add_edge(0, 1, 0.4, 0.0);
            g.add_edge(0, 2, 0.6, 0.0);
            g.add_edge(3, 5, 0.7, 0.0);
            g.add_edge(4, 5, 0.3, 0.0);
            g.add_edge(1, 3, 0.4, 1.0);
            g.add_edge(1, 4, 0.3, 2.0);
            g.add_edge(2, 3, 0.6, 2.0);
            g.add_edge(2, 4, 0.3, 1.0);
        };
        // Record round 1 on one instance...
        let mut g = MinCostFlow::new(6);
        build(&mut g);
        let mut r1 = Round1::default();
        let cold = g.solve_warm(0, 5, 1.0, Some(&mut r1), false).unwrap();
        // ...and replay it on a same-topology, same-cost instance with
        // different capacities on the interior edges' saturation order.
        let mut h = MinCostFlow::new(6);
        build(&mut h);
        let warm = h.solve_warm(0, 5, 1.0, Some(&mut r1), true).unwrap();
        let mut cold2 = MinCostFlow::new(6);
        build(&mut cold2);
        let reference = cold2.solve(0, 5, 1.0).unwrap();
        assert_eq!(warm.cost.to_bits(), reference.cost.to_bits());
        assert_eq!(warm.flow.to_bits(), reference.flow.to_bits());
        assert_eq!(cold.cost.to_bits(), reference.cost.to_bits());
    }

    #[test]
    fn fractional_capacities() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 0.25, 1.0);
        g.add_edge(0, 1, 0.75, 3.0);
        g.add_edge(1, 2, 1.0, 0.0);
        let r = g.solve(0, 2, 1.0).unwrap();
        assert!((r.flow - 1.0).abs() < 1e-9);
        assert!((r.cost - (0.25 + 2.25)).abs() < 1e-9);
    }
}
