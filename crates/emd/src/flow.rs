//! Minimum-cost flow via successive shortest paths with Johnson potentials.
//!
//! This is a general-purpose solver over real-valued capacities, used by
//! [`crate::transport`] to solve EMD instances with arbitrary ground
//! distances. Edge costs must be non-negative on the initial residual
//! graph (true for any ground distance), which lets every shortest-path
//! computation use Dijkstra on reduced costs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::EmdError;

/// Capacities below this are treated as saturated (floating-point slack).
const CAP_EPS: f64 = 1e-12;

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: f64,
    cost: f64,
}

/// A min-cost-flow network over `f64` capacities and costs.
///
/// Edges are stored in forward/backward pairs (`i` and `i ^ 1`), the
/// standard residual-graph layout.
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    edges: Vec<Edge>,
    adj: Vec<Vec<usize>>,
}

/// Result of a [`MinCostFlow::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowResult {
    /// Total flow actually routed from source to sink.
    pub flow: f64,
    /// Total cost of that flow.
    pub cost: f64,
}

/// Min-heap entry for Dijkstra (`BinaryHeap` is a max-heap, so order is
/// reversed).
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smallest distance first. Distances are always finite here.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl MinCostFlow {
    /// Create a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Add a directed edge `from -> to` with the given capacity and cost.
    ///
    /// Returns the edge id; the flow on it can be read back after solving
    /// with [`MinCostFlow::flow_on`]. Costs must be non-negative.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64, cost: f64) -> usize {
        debug_assert!(from < self.adj.len() && to < self.adj.len());
        debug_assert!(
            cap >= 0.0 && cost >= 0.0,
            "capacities and costs must be non-negative"
        );
        let id = self.edges.len();
        self.edges.push(Edge { to, cap, cost });
        self.edges.push(Edge {
            to: from,
            cap: 0.0,
            cost: -cost,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// Flow currently routed through edge `id` (as returned by `add_edge`).
    pub fn flow_on(&self, id: usize) -> f64 {
        // Flow on the forward edge equals residual capacity of its reverse.
        self.edges[id ^ 1].cap
    }

    /// Send up to `want` units of flow from `source` to `sink` at minimum
    /// cost. Returns the routed amount (may be less than `want` if the
    /// network saturates) and its cost.
    ///
    /// # Errors
    ///
    /// [`EmdError::SolverStalled`] if an internal invariant breaks (e.g.
    /// negative reduced cost caused by non-finite input); valid inputs
    /// never trigger it.
    pub fn solve(&mut self, source: usize, sink: usize, want: f64) -> Result<FlowResult, EmdError> {
        let n = self.adj.len();
        let mut potential = vec![0.0f64; n];
        let mut flow = 0.0;
        let mut cost = 0.0;
        // Each augmentation saturates >= 1 edge, so iterations are bounded
        // by edge count; add slack for float re-saturation.
        let max_rounds = 4 * self.edges.len() + 16;
        let mut rounds = 0;
        while want - flow > CAP_EPS {
            rounds += 1;
            if rounds > max_rounds {
                return Err(EmdError::SolverStalled {
                    solver: "min-cost-flow",
                });
            }
            // Dijkstra on reduced costs.
            let mut dist = vec![f64::INFINITY; n];
            let mut prev_edge = vec![usize::MAX; n];
            dist[source] = 0.0;
            let mut heap = BinaryHeap::new();
            heap.push(HeapEntry {
                dist: 0.0,
                node: source,
            });
            while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
                if d > dist[u] + CAP_EPS {
                    continue;
                }
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid];
                    if e.cap <= CAP_EPS {
                        continue;
                    }
                    let reduced = e.cost + potential[u] - potential[e.to];
                    // Clamp tiny negative values from float error.
                    let reduced = reduced.max(0.0);
                    let nd = d + reduced;
                    if nd + CAP_EPS < dist[e.to] {
                        dist[e.to] = nd;
                        prev_edge[e.to] = eid;
                        heap.push(HeapEntry {
                            dist: nd,
                            node: e.to,
                        });
                    }
                }
            }
            if !dist[sink].is_finite() {
                break; // no augmenting path left
            }
            for v in 0..n {
                if dist[v].is_finite() {
                    potential[v] += dist[v];
                }
            }
            // Find bottleneck along the path.
            let mut push = want - flow;
            let mut v = sink;
            while v != source {
                let eid = prev_edge[v];
                push = push.min(self.edges[eid].cap);
                v = self.edges[eid ^ 1].to;
            }
            if push <= CAP_EPS {
                break;
            }
            // Apply.
            let mut v = sink;
            while v != source {
                let eid = prev_edge[v];
                self.edges[eid].cap -= push;
                self.edges[eid ^ 1].cap += push;
                cost += push * self.edges[eid].cost;
                v = self.edges[eid ^ 1].to;
            }
            flow += push;
        }
        Ok(FlowResult { flow, cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = MinCostFlow::new(2);
        let e = g.add_edge(0, 1, 5.0, 2.0);
        let r = g.solve(0, 1, 3.0).unwrap();
        assert!((r.flow - 3.0).abs() < 1e-9);
        assert!((r.cost - 6.0).abs() < 1e-9);
        assert!((g.flow_on(e) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn prefers_cheap_path() {
        // 0 -> 1 -> 3 (cost 1+1), 0 -> 2 -> 3 (cost 5+5); each path cap 1.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1.0, 1.0);
        g.add_edge(1, 3, 1.0, 1.0);
        g.add_edge(0, 2, 1.0, 5.0);
        g.add_edge(2, 3, 1.0, 5.0);
        let r = g.solve(0, 3, 1.0).unwrap();
        assert!((r.cost - 2.0).abs() < 1e-9);
        // Asking for both units uses the expensive path too.
        let mut g2 = MinCostFlow::new(4);
        g2.add_edge(0, 1, 1.0, 1.0);
        g2.add_edge(1, 3, 1.0, 1.0);
        g2.add_edge(0, 2, 1.0, 5.0);
        g2.add_edge(2, 3, 1.0, 5.0);
        let r2 = g2.solve(0, 3, 2.0).unwrap();
        assert!((r2.cost - 12.0).abs() < 1e-9);
        assert!((r2.flow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_returns_partial_flow() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 1.0, 1.0);
        let r = g.solve(0, 1, 10.0).unwrap();
        assert!((r.flow - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rerouting_through_residual_edges() {
        // Classic case where the greedy first path must be partially undone.
        // 0->1 cap 1 cost 1, 1->3 cap 1 cost 0, 0->2 cap 1 cost 2,
        // 1->2 cap 1 cost 0, 2->3 cap 1 cost 1.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1.0, 1.0);
        g.add_edge(1, 3, 1.0, 0.0);
        g.add_edge(0, 2, 1.0, 2.0);
        g.add_edge(1, 2, 1.0, 0.0);
        g.add_edge(2, 3, 1.0, 1.0);
        let r = g.solve(0, 3, 2.0).unwrap();
        assert!((r.flow - 2.0).abs() < 1e-9);
        // Optimal: 0->1->3 (1) and 0->2->3 (3) = 4 total.
        assert!((r.cost - 4.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_sink_gets_zero_flow() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 1.0, 1.0);
        let r = g.solve(0, 2, 1.0).unwrap();
        assert_eq!(r.flow, 0.0);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn fractional_capacities() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 0.25, 1.0);
        g.add_edge(0, 1, 0.75, 3.0);
        g.add_edge(1, 2, 1.0, 0.0);
        let r = g.solve(0, 2, 1.0).unwrap();
        assert!((r.flow - 1.0).abs() < 1e-9);
        assert!((r.cost - (0.25 + 2.25)).abs() < 1e-9);
    }
}
