//! Transport-specialised successive-shortest-paths kernel.
//!
//! Compacted EMD instances all share one topology: a source feeding `m`
//! supply nodes, a complete `m × n` interior, and `n` demand nodes
//! draining into a sink. [`BipartiteFlow`] exploits that instead of
//! routing through the general [`crate::flow::MinCostFlow`] graph: there
//! is no edge list and no adjacency — residual supplies, residual
//! demands and the interior flow matrix live in flat arrays, and each
//! Dijkstra relaxation is plain index arithmetic over the row-major cost
//! slice. The interior is treated as uncapacitated, the classical
//! transportation formulation: conservation already bounds `f[i][j]` by
//! `min(supply_i, demand_j)`, so the explicit interior capacities the
//! graph solver carries can never cut off an improving path.
//!
//! Two further specialisations over the general solver:
//!
//! * **Early-exit Dijkstra.** The search stops the moment the sink
//!   settles; potentials then advance by `min(dist[v], dist[sink])`
//!   rather than `dist[v]`. The clamp is the standard argument that
//!   keeps every residual reduced cost non-negative without settling
//!   the rest of the graph: settled nodes satisfy the relaxation
//!   inequality outright, and every unsettled node's clamped value is
//!   exactly `dist[sink]`, which cannot decrease below a settled
//!   neighbour's contribution.
//! * **Round-1 record/replay.** As in the graph solver, the first
//!   Dijkstra round is a pure function of `(m, n, costs)` — capacities
//!   only enter as "positive", which all compacted supplies and demands
//!   are — so consecutive solves over the same support set replay it
//!   bit-for-bit. The cache lives on the kernel itself; validity
//!   tracking (support and cost equality) stays with the caller.
//!
//! Determinism: the next node to settle is chosen by a linear scan with
//! lowest-index tie-breaking, and all state is re-derived from the
//! instance on every solve, so a given instance solves bit-identically
//! regardless of scratch history, warm start, or thread placement.

use crate::flow::{FlowResult, CAP_EPS};
use crate::EmdError;

/// Reusable kernel state. All buffers grow to the working-set size and
/// are retained; a long-lived kernel solves a stream of same-sized
/// instances without allocating.
#[derive(Debug, Clone, Default)]
pub(crate) struct BipartiteFlow {
    /// Residual supplies (length `m`).
    sup: Vec<f64>,
    /// Residual demands (length `n`).
    dem: Vec<f64>,
    /// Interior flow, row-major `m × n`.
    flow: Vec<f64>,
    /// Johnson potentials for all `m + n + 2` nodes.
    pot: Vec<f64>,
    dist: Vec<f64>,
    /// Predecessor *node* on the shortest-path tree (`u32::MAX` = none);
    /// the edge between two nodes is implied by their classes.
    prev: Vec<u32>,
    visited: Vec<bool>,
    /// Cached round-1 `dist`/`prev` for warm replay.
    r1_dist: Vec<f64>,
    r1_prev: Vec<u32>,
    /// Demand count of the instance currently held in `flow`.
    n: usize,
}

impl BipartiteFlow {
    /// Flow routed from compacted supply `si` to compacted demand `dj`
    /// by the last solve.
    pub(crate) fn flow_at(&self, si: usize, dj: usize) -> f64 {
        self.flow[si * self.n + dj]
    }

    /// Total element capacity of every buffer (allocation probe).
    pub(crate) fn footprint(&self) -> usize {
        self.sup.capacity()
            + self.dem.capacity()
            + self.flow.capacity()
            + self.pot.capacity()
            + self.dist.capacity()
            + self.prev.capacity()
            + self.visited.capacity()
            + self.r1_dist.capacity()
            + self.r1_prev.capacity()
    }

    /// Route `want` (= total supply) units at minimum cost. `costs` is
    /// the row-major `m × n` ground view; `replay` asserts the caller
    /// verified this instance's supports and costs equal the previous
    /// solve's, making the cached round-1 Dijkstra valid.
    ///
    /// # Errors
    ///
    /// [`EmdError::SolverStalled`] if an internal invariant breaks (e.g.
    /// non-finite input); valid inputs never trigger it.
    pub(crate) fn solve(
        &mut self,
        supplies: &[f64],
        demands: &[f64],
        costs: &[f64],
        want: f64,
        replay: bool,
    ) -> Result<FlowResult, EmdError> {
        let (m, n) = (supplies.len(), demands.len());
        debug_assert_eq!(costs.len(), m * n);
        let nodes = m + n + 2;
        self.n = n;
        self.sup.clear();
        self.sup.extend_from_slice(supplies);
        self.dem.clear();
        self.dem.extend_from_slice(demands);
        self.flow.clear();
        self.flow.resize(m * n, 0.0);
        self.pot.clear();
        self.pot.resize(nodes, 0.0);

        let mut flow = 0.0;
        let mut cost = 0.0;
        // Each augmentation saturates a supply, a demand, or zeroes an
        // interior flow cell; add slack for float re-saturation.
        let max_rounds = 4 * (m * n + m + n) + 16;
        let mut rounds = 0;
        let sink = nodes - 1;
        while want - flow > CAP_EPS {
            rounds += 1;
            if rounds > max_rounds {
                return Err(EmdError::SolverStalled {
                    solver: "bipartite-flow",
                });
            }
            if rounds == 1 && replay {
                debug_assert_eq!(self.r1_dist.len(), nodes, "stale round-1 cache");
                self.dist.clear();
                self.dist.extend_from_slice(&self.r1_dist);
                self.prev.clear();
                self.prev.extend_from_slice(&self.r1_prev);
            } else {
                self.dijkstra(m, n, costs);
                if rounds == 1 {
                    self.r1_dist.clear();
                    self.r1_dist.extend_from_slice(&self.dist);
                    self.r1_prev.clear();
                    self.r1_prev.extend_from_slice(&self.prev);
                }
            }
            let d_sink = self.dist[sink];
            if !d_sink.is_finite() {
                break; // no augmenting path left
            }
            // Advance potentials by the clamped distances. Nodes the
            // early exit left unrelaxed (still at infinity) clamp to
            // `d_sink` like every other unsettled node — a settled node
            // cannot have a residual edge into an unrelaxed one (it
            // would have relaxed it), so every residual reduced cost
            // stays non-negative.
            for v in 0..nodes {
                self.pot[v] += self.dist[v].min(d_sink);
            }
            // Bottleneck along the path (interior forward edges are
            // uncapacitated and never bind).
            let mut push = want - flow;
            let mut v = sink;
            while v != 0 {
                let u = self.prev[v] as usize;
                if u == 0 {
                    push = push.min(self.sup[v - 1]);
                } else if v == sink {
                    push = push.min(self.dem[u - 1 - m]);
                } else if u > m {
                    // Demand u backing up into supply v.
                    push = push.min(self.flow[(v - 1) * n + (u - 1 - m)]);
                }
                v = u;
            }
            if push <= CAP_EPS {
                break;
            }
            // Apply.
            let mut v = sink;
            while v != 0 {
                let u = self.prev[v] as usize;
                if u == 0 {
                    self.sup[v - 1] -= push;
                } else if v == sink {
                    self.dem[u - 1 - m] -= push;
                } else if u <= m {
                    let cell = (u - 1) * n + (v - 1 - m);
                    self.flow[cell] += push;
                    cost += push * costs[cell];
                } else {
                    let cell = (v - 1) * n + (u - 1 - m);
                    self.flow[cell] -= push;
                    cost -= push * costs[cell];
                }
                v = u;
            }
            flow += push;
        }
        Ok(FlowResult { flow, cost })
    }

    /// One Dijkstra pass over reduced costs, stopping once the sink
    /// settles. Node ids: `0` source, `1..=m` supplies, `m+1..=m+n`
    /// demands, `m+n+1` sink — the same layout the graph solver uses.
    fn dijkstra(&mut self, m: usize, n: usize, costs: &[f64]) {
        let nodes = m + n + 2;
        let sink = nodes - 1;
        let BipartiteFlow {
            sup,
            dem,
            flow,
            pot,
            dist,
            prev,
            visited,
            ..
        } = self;
        dist.clear();
        dist.resize(nodes, f64::INFINITY);
        prev.clear();
        prev.resize(nodes, u32::MAX);
        visited.clear();
        visited.resize(nodes, false);
        dist[0] = 0.0;
        loop {
            // Next settled node: linear scan, lowest index wins ties.
            let mut u = usize::MAX;
            let mut best = f64::INFINITY;
            for (v, &d) in dist.iter().enumerate() {
                if !visited[v] && d < best {
                    best = d;
                    u = v;
                }
            }
            if u == usize::MAX || u == sink {
                break;
            }
            visited[u] = true;
            let d = best;
            let pu = pot[u];
            if u == 0 {
                // Source → unsaturated supplies, cost 0.
                for i in 0..m {
                    if sup[i] > CAP_EPS {
                        let nd = d + (pu - pot[1 + i]).max(0.0);
                        if nd + CAP_EPS < dist[1 + i] {
                            dist[1 + i] = nd;
                            prev[1 + i] = 0;
                        }
                    }
                }
            } else if u <= m {
                // Supply → every demand: one dense row sweep.
                let i = u - 1;
                let row = &costs[i * n..(i + 1) * n];
                for (j, &c) in row.iter().enumerate() {
                    let v = 1 + m + j;
                    let nd = d + (c + pu - pot[v]).max(0.0);
                    if nd + CAP_EPS < dist[v] {
                        dist[v] = nd;
                        prev[v] = u as u32;
                    }
                }
            } else {
                let j = u - 1 - m;
                // Demand → sink while demand remains, cost 0.
                if dem[j] > CAP_EPS {
                    let nd = d + (pu - pot[sink]).max(0.0);
                    if nd + CAP_EPS < dist[sink] {
                        dist[sink] = nd;
                        prev[sink] = u as u32;
                    }
                }
                // Demand backing up into supplies it currently draws from.
                for i in 0..m {
                    let cell = i * n + j;
                    if flow[cell] > CAP_EPS {
                        let v = 1 + i;
                        let nd = d + (pu - pot[v] - costs[cell]).max(0.0);
                        if nd + CAP_EPS < dist[v] {
                            dist[v] = nd;
                            prev[v] = u as u32;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(sup: &[f64], dem: &[f64], costs: &[f64]) -> FlowResult {
        let want: f64 = sup.iter().sum();
        BipartiteFlow::default()
            .solve(sup, dem, costs, want, false)
            .unwrap()
    }

    #[test]
    fn single_cell() {
        let r = solve(&[1.0], &[1.0], &[0.25]);
        assert!((r.flow - 1.0).abs() < 1e-12);
        assert!((r.cost - 0.25).abs() < 1e-12);
    }

    #[test]
    fn prefers_cheap_assignment() {
        // Two unit supplies, two unit demands; the identity assignment
        // costs 0 + 0, the crossed one 1 + 1.
        let r = solve(&[1.0, 1.0], &[1.0, 1.0], &[0.0, 1.0, 1.0, 0.0]);
        assert!((r.flow - 2.0).abs() < 1e-12);
        assert!(r.cost.abs() < 1e-12);
    }

    #[test]
    fn reroutes_through_residual_edges() {
        // Greedy round 1 sends supply 0 to demand 0 (cost 0), but the
        // optimum needs it on demand 1 so supply 1 (which can only serve
        // demand 0 cheaply) is not forced onto cost 10.
        let r = solve(&[1.0, 1.0], &[1.0, 1.0], &[0.0, 1.0, 2.0, 10.0]);
        assert!((r.flow - 2.0).abs() < 1e-12);
        assert!((r.cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn round1_replay_is_bit_identical() {
        let sup = [0.4, 0.6];
        let dem = [0.7, 0.3];
        let costs = [1.0, 2.0, 2.0, 1.0];
        let mut k = BipartiteFlow::default();
        let cold = k.solve(&sup, &dem, &costs, 1.0, false).unwrap();
        let warm = k.solve(&sup, &dem, &costs, 1.0, true).unwrap();
        assert_eq!(cold.cost.to_bits(), warm.cost.to_bits());
        assert_eq!(cold.flow.to_bits(), warm.flow.to_bits());
    }

    #[test]
    fn flows_satisfy_marginals() {
        let sup = [0.2, 0.3, 0.5];
        let dem = [0.6, 0.4];
        let costs = [1.0, 4.0, 2.0, 0.5, 3.0, 3.0];
        let want: f64 = sup.iter().sum();
        let mut k = BipartiteFlow::default();
        let r = k.solve(&sup, &dem, &costs, want, false).unwrap();
        assert!((r.flow - want).abs() < 1e-9);
        for (i, &s) in sup.iter().enumerate() {
            let row: f64 = (0..dem.len()).map(|j| k.flow_at(i, j)).sum();
            assert!((row - s).abs() < 1e-9, "supply {i} not exhausted");
        }
        for (j, &d) in dem.iter().enumerate() {
            let col: f64 = (0..sup.len()).map(|i| k.flow_at(i, j)).sum();
            assert!((col - d).abs() < 1e-9, "demand {j} not met");
        }
    }
}
