//! Cheap, provably-correct bounds on the Earth Mover's Distance.
//!
//! The fairness audits evaluate Definition 2 — the average pairwise EMD
//! over per-partition score histograms — millions of times, and most of
//! those pairs are only looked at to be discarded (a losing candidate
//! partitioning, a pair whose distance is dominated by others). This
//! module provides the screening primitives that let the batch kernel in
//! `fairjob-core` settle such pairs without running an exact solver:
//!
//! * [`PrefixCdf`] — a reusable prefix-CDF, built once per histogram and
//!   shared across every pair the histogram participates in. For 1-D L1
//!   grounds the L1 distance between two prefix CDFs *is* the EMD
//!   (Vallender's identity), so [`cdf_l1_grid`] / [`cdf_l1_positions`]
//!   are exact — and, by construction, **bit-identical** to
//!   [`crate::emd_1d_grid`] / [`crate::emd_1d_positions`]: the
//!   normalisation and accumulation run in the same floating-point
//!   operation order.
//! * [`projection_lower`] — the mean-difference (projection) lower bound
//!   `|E_a[x] - E_b[x]| <= W1(a, b)`: any transport plan moves the mean
//!   by at most the mass-weighted distance it pays.
//! * [`tv_upper`] / [`tv_lower`] — total-variation sandwich
//!   `TV(a, b) * d_min <= EMD(a, b) <= TV(a, b) * d_max` for any ground
//!   distance bounded by `d_min`/`d_max` off the diagonal: an optimal
//!   plan moves exactly the differing mass `TV(a, b)`, and each unit of
//!   it costs between `d_min` and `d_max`. This is the bound family that
//!   makes Pele–Werman thresholded grounds screenable.
//!
//! Every bound is validated against the exact solvers by proptest
//! (`tests/properties.rs`).
//!
//! # Floating-point order policy
//!
//! Two classes of reduction live here, with different guarantees:
//!
//! * **Exact closed forms** ([`PrefixCdf::build`]'s prefix sum,
//!   [`cdf_l1_grid`], [`cdf_l1_positions`]) accumulate serially in
//!   index order — the *same* operation order as the exact solvers —
//!   and are asserted bit-identical to them.
//! * **Screening bounds** ([`tv_between`], [`PrefixCdf::mean`] and so
//!   [`projection_lower`], [`tv_upper`], [`tv_lower`]) are restructured
//!   into fixed-width lanes for instruction-level parallelism. They are
//!   deterministic (grouping depends only on bin count, never thread
//!   count) but **not** bit-identical to a serial sum; consumers treat
//!   them strictly as bounds with a pruning margin, so audit results
//!   remain bit-identical anyway.

use crate::EmdError;

/// A normalised mass vector together with its prefix CDF.
///
/// `norm[i]` is `masses[i] / total(masses)` and `cdf[i]` is the running
/// sum of `norm[..=i]`, accumulated in index order — exactly the
/// operations [`crate::emd_1d_grid`] performs internally, so closed
/// forms computed from two `PrefixCdf`s reproduce the exact solver
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixCdf {
    norm: Vec<f64>,
    cdf: Vec<f64>,
}

impl PrefixCdf {
    /// Build the prefix CDF of a mass vector (counts or frequencies).
    ///
    /// # Errors
    ///
    /// Same validation failures as [`crate::emd_1d_grid`]: empty input,
    /// negative/non-finite entries, zero or overflowing total.
    pub fn build(masses: &[f64]) -> Result<PrefixCdf, EmdError> {
        if masses.is_empty() {
            return Err(EmdError::Empty);
        }
        crate::validate_masses(masses)?;
        let t = crate::total(masses);
        crate::validate_total(t)?;
        // Two passes instead of one interleaved loop: the normalisation
        // is elementwise (`m / t`, vectorizable), while the prefix sum
        // stays a serial dependency chain. Each value still undergoes
        // exactly `m / t` then `acc += f` in index order, so the split
        // is bit-identical to the interleaved build — and therefore to
        // [`crate::emd_1d_grid`]'s internal accumulation (asserted by
        // the `*_bit_identical_to_exact` tests below).
        let norm: Vec<f64> = masses.iter().map(|&m| m / t).collect();
        let mut cdf = Vec::with_capacity(masses.len());
        let mut acc = 0.0;
        for &f in &norm {
            acc += f;
            cdf.push(acc);
        }
        Ok(PrefixCdf { norm, cdf })
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.norm.len()
    }

    /// True when there are no bins (never, for a successfully built CDF).
    pub fn is_empty(&self) -> bool {
        self.norm.is_empty()
    }

    /// The normalised masses.
    pub fn norm(&self) -> &[f64] {
        &self.norm
    }

    /// The prefix CDF values.
    pub fn cdf(&self) -> &[f64] {
        &self.cdf
    }

    /// Mass-weighted mean position, given one position per bin.
    ///
    /// Accumulated in [`LANES`] independent lanes (see the module note
    /// on lane-restructured reductions): deterministic for a given
    /// input, but *not* bit-identical to a serial left-to-right sum.
    /// Feeds only the projection *bound*, never an exact distance.
    pub fn mean(&self, positions: &[f64]) -> f64 {
        lane_sum(self.norm.iter().zip(positions).map(|(f, x)| f * x))
    }
}

/// Lane width of the restructured bound reductions. Four independent
/// accumulators break the serial add dependency chain so the compiler
/// can keep multiple FMAs in flight (and vectorize where profitable).
const LANES: usize = 4;

/// Sum an iterator in [`LANES`] round-robin lanes, combining the lanes
/// pairwise at the end. The grouping depends only on the element count,
/// so the result is **deterministic** (same inputs ⇒ same bits, at any
/// thread count) but differs from the serial sum by normal rounding
/// reassociation. Only the inexact screening bounds use this; the exact
/// closed forms ([`cdf_l1_grid`] / [`cdf_l1_positions`]) keep their
/// serial order, which bit-identity tests assert.
fn lane_sum(values: impl Iterator<Item = f64>) -> f64 {
    let mut lanes = [0.0f64; LANES];
    let mut lane = 0usize;
    for v in values {
        lanes[lane] += v;
        lane = (lane + 1) % LANES;
    }
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
}

fn check_pair(a: &PrefixCdf, b: &PrefixCdf) -> Result<(), EmdError> {
    if a.len() != b.len() {
        return Err(EmdError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(())
}

/// Exact 1-D EMD on an equal-width grid over `[lo, hi]`, computed from
/// two cached prefix CDFs.
///
/// Bit-identical to [`crate::emd_1d_grid`] called on the same mass
/// vectors: both accumulate `|CDF_a[i] - CDF_b[i]|` over the `n - 1`
/// interior cuts in index order and multiply by the bin width once.
///
/// # Errors
///
/// [`EmdError::LengthMismatch`] on differing bin counts and
/// [`EmdError::BadGrid`] unless `lo < hi` with both finite.
// `!(lo < hi)` deliberately treats NaN bounds as invalid.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn cdf_l1_grid(a: &PrefixCdf, b: &PrefixCdf, lo: f64, hi: f64) -> Result<f64, EmdError> {
    check_pair(a, b)?;
    if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
        return Err(EmdError::BadGrid {
            reason: "require finite lo < hi",
        });
    }
    let n = a.len();
    let width = (hi - lo) / n as f64;
    let mut acc = 0.0;
    for i in 0..n - 1 {
        acc += (a.cdf[i] - b.cdf[i]).abs();
    }
    Ok(acc * width)
}

/// Exact 1-D EMD at shared sorted positions, computed from two cached
/// prefix CDFs. Bit-identical to [`crate::emd_1d_positions`].
///
/// # Errors
///
/// [`EmdError::LengthMismatch`] on shape problems,
/// [`EmdError::NonFinite`] on non-finite positions.
pub fn cdf_l1_positions(a: &PrefixCdf, b: &PrefixCdf, positions: &[f64]) -> Result<f64, EmdError> {
    check_pair(a, b)?;
    if a.len() != positions.len() {
        return Err(EmdError::LengthMismatch {
            left: a.len(),
            right: positions.len(),
        });
    }
    for (i, &p) in positions.iter().enumerate() {
        if !p.is_finite() {
            return Err(EmdError::NonFinite { index: i, value: p });
        }
    }
    debug_assert!(
        positions.windows(2).all(|w| w[0] <= w[1]),
        "positions must be sorted"
    );
    let mut acc = 0.0;
    for i in 0..a.len() - 1 {
        acc += (a.cdf[i] - b.cdf[i]).abs() * (positions[i + 1] - positions[i]);
    }
    Ok(acc)
}

/// Total variation distance `0.5 * sum_i |a_i - b_i|` between two
/// normalised mass vectors.
///
/// Lane-restructured (see [`lane_sum`]): deterministic but not
/// order-identical to a serial sum. TV feeds only the sandwich
/// *bounds*; screening decisions downstream carry an explicit pruning
/// margin, so a last-ulp difference in a bound never changes which
/// pairs get solved exactly.
pub fn tv_between(a: &PrefixCdf, b: &PrefixCdf) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    0.5 * lane_sum(a.norm.iter().zip(&b.norm).map(|(x, y)| (x - y).abs()))
}

/// Mean-difference (projection) lower bound on the EMD with ground
/// distance `|x_i - x_j|` at the given positions.
///
/// Any transport plan that moves mass `m` over distance `d` changes the
/// mean by at most `m * d`, so the total cost is at least the absolute
/// mean shift: `|E_a[x] - E_b[x]| <= W1(a, b)`.
pub fn projection_lower(a: &PrefixCdf, b: &PrefixCdf, positions: &[f64]) -> Result<f64, EmdError> {
    check_pair(a, b)?;
    if a.len() != positions.len() {
        return Err(EmdError::LengthMismatch {
            left: a.len(),
            right: positions.len(),
        });
    }
    Ok((a.mean(positions) - b.mean(positions)).abs())
}

/// Total-variation upper bound `TV(a, b) * d_max` on the EMD under any
/// ground distance whose off-diagonal costs are at most `d_max`.
///
/// An optimal plan leaves `min(a_i, b_i)` in place in every bin, so it
/// transports exactly `TV(a, b)` mass, each unit costing at most
/// `d_max`.
pub fn tv_upper(a: &PrefixCdf, b: &PrefixCdf, d_max: f64) -> Result<f64, EmdError> {
    check_pair(a, b)?;
    Ok(tv_between(a, b) * d_max)
}

/// Total-variation lower bound `TV(a, b) * d_min` on the EMD under any
/// ground distance whose off-diagonal costs are at least `d_min`.
///
/// At least `TV(a, b)` mass must move between distinct bins (less would
/// leave some bin's surplus unplaced), and each moved unit costs at
/// least `d_min`.
pub fn tv_lower(a: &PrefixCdf, b: &PrefixCdf, d_min: f64) -> Result<f64, EmdError> {
    check_pair(a, b)?;
    Ok(tv_between(a, b) * d_min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{emd_1d_grid, emd_1d_positions};

    #[test]
    fn grid_closed_form_is_bit_identical_to_exact() {
        let a = [3.0, 5.0, 2.0, 0.0, 1.0];
        let b = [0.0, 1.0, 4.0, 5.0, 0.5];
        let pa = PrefixCdf::build(&a).unwrap();
        let pb = PrefixCdf::build(&b).unwrap();
        let exact = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        let cached = cdf_l1_grid(&pa, &pb, 0.0, 1.0).unwrap();
        assert_eq!(exact.to_bits(), cached.to_bits());
    }

    #[test]
    fn positions_closed_form_is_bit_identical_to_exact() {
        let a = [0.2, 0.3, 0.5, 0.0];
        let b = [0.0, 0.1, 0.2, 0.7];
        let pos = [0.0, 0.4, 0.5, 3.0];
        let pa = PrefixCdf::build(&a).unwrap();
        let pb = PrefixCdf::build(&b).unwrap();
        let exact = emd_1d_positions(&a, &b, &pos).unwrap();
        let cached = cdf_l1_positions(&pa, &pb, &pos).unwrap();
        assert_eq!(exact.to_bits(), cached.to_bits());
    }

    #[test]
    fn projection_bound_never_exceeds_exact() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [0.0, 2.0, 2.0, 0.0];
        let pos = [0.125, 0.375, 0.625, 0.875];
        let pa = PrefixCdf::build(&a).unwrap();
        let pb = PrefixCdf::build(&b).unwrap();
        let exact = emd_1d_positions(&a, &b, &pos).unwrap();
        let lower = projection_lower(&pa, &pb, &pos).unwrap();
        assert!(lower <= exact + 1e-12, "lower {lower} > exact {exact}");
        // Symmetric masses around the centre: the means coincide, so the
        // projection bound is vacuous while the exact distance is not.
        assert!(lower.abs() < 1e-12);
        assert!(exact > 0.1);
    }

    #[test]
    fn tv_sandwich_holds_on_grid() {
        let a = [1.0, 0.0, 0.0, 0.0];
        let b = [0.0, 0.0, 0.0, 1.0];
        let pa = PrefixCdf::build(&a).unwrap();
        let pb = PrefixCdf::build(&b).unwrap();
        // 4 bins over [0,1]: adjacent centres 0.25 apart, extremes 0.75.
        let exact = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
        let upper = tv_upper(&pa, &pb, 0.75).unwrap();
        let lower = tv_lower(&pa, &pb, 0.25).unwrap();
        assert!(lower <= exact + 1e-12 && exact <= upper + 1e-12);
        // All mass moves end to end here, so the upper bound is tight.
        assert!((upper - exact).abs() < 1e-12);
    }

    #[test]
    fn build_rejects_bad_masses() {
        assert!(matches!(PrefixCdf::build(&[]), Err(EmdError::Empty)));
        assert!(matches!(
            PrefixCdf::build(&[0.0, 0.0]),
            Err(EmdError::ZeroMass)
        ));
        assert!(matches!(
            PrefixCdf::build(&[-1.0, 2.0]),
            Err(EmdError::Negative { index: 0, .. })
        ));
        assert!(matches!(
            PrefixCdf::build(&[1e308, 1e308]),
            Err(EmdError::NonFiniteTotal { .. })
        ));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let pa = PrefixCdf::build(&[1.0, 1.0]).unwrap();
        let pb = PrefixCdf::build(&[1.0, 1.0, 1.0]).unwrap();
        assert!(matches!(
            cdf_l1_grid(&pa, &pb, 0.0, 1.0),
            Err(EmdError::LengthMismatch { left: 2, right: 3 })
        ));
    }
}
