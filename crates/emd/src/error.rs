//! Error type shared by all EMD solvers.

use std::fmt;

/// Errors produced while validating inputs or solving an EMD instance.
#[derive(Debug, Clone, PartialEq)]
pub enum EmdError {
    /// The two mass vectors (or a positions vector) differ in length.
    LengthMismatch {
        /// Length of the left-hand input.
        left: usize,
        /// Length of the right-hand input.
        right: usize,
    },
    /// Inputs are empty.
    Empty,
    /// A mass entry is negative.
    Negative {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A mass or distance entry is NaN or infinite.
    NonFinite {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Total mass is zero so the input cannot be normalised.
    ZeroMass,
    /// The total mass overflowed to infinity (every entry is finite but
    /// their sum is not), so normalising would silently zero the input.
    NonFiniteTotal {
        /// The overflowed total.
        value: f64,
    },
    /// Normalisation is disabled and total masses differ.
    MassMismatch {
        /// Total mass of the left-hand input.
        left: f64,
        /// Total mass of the right-hand input.
        right: f64,
    },
    /// A ground-distance matrix is not square.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Length of the first offending row.
        row_len: usize,
    },
    /// A grid specification is invalid (`lo >= hi` or zero bins).
    BadGrid {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The solver failed to converge (should not happen on valid input;
    /// indicates a bug or pathological floating-point input).
    SolverStalled {
        /// Which solver stalled.
        solver: &'static str,
    },
}

impl fmt::Display for EmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmdError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            EmdError::Empty => write!(f, "inputs are empty"),
            EmdError::Negative { index, value } => {
                write!(f, "negative mass {value} at index {index}")
            }
            EmdError::NonFinite { index, value } => {
                write!(f, "non-finite value {value} at index {index}")
            }
            EmdError::ZeroMass => write!(f, "total mass is zero"),
            EmdError::NonFiniteTotal { value } => {
                write!(f, "total mass {value} is not finite")
            }
            EmdError::MassMismatch { left, right } => {
                write!(
                    f,
                    "total masses differ: {left} vs {right} (normalisation disabled)"
                )
            }
            EmdError::NotSquare { rows, row_len } => {
                write!(
                    f,
                    "ground matrix not square: {rows} rows but a row of length {row_len}"
                )
            }
            EmdError::BadGrid { reason } => write!(f, "bad grid: {reason}"),
            EmdError::SolverStalled { solver } => write!(f, "{solver} solver stalled"),
        }
    }
}

impl std::error::Error for EmdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EmdError::LengthMismatch { left: 3, right: 4 };
        assert!(e.to_string().contains("3 vs 4"));
        let e = EmdError::MassMismatch {
            left: 1.0,
            right: 2.0,
        };
        assert!(e.to_string().contains("normalisation disabled"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&EmdError::Empty);
    }
}
