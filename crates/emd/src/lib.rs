//! Earth Mover's Distance (EMD) solvers.
//!
//! This crate is the numeric substrate for the fairness-auditing library:
//! the EDBT 2019 paper quantifies unfairness of a scoring function as the
//! average pairwise EMD between per-group score histograms, so everything
//! above this crate ultimately calls into it.
//!
//! Three independent solver families are provided and cross-checked
//! against each other in the test suite:
//!
//! * [`d1`] — closed-form one-dimensional EMD. For histograms whose bins
//!   live on a line with an L1 ground distance the EMD equals the L1
//!   distance between the cumulative distributions, which is computable in
//!   a single pass. This is the fast path used by the auditing algorithms.
//! * [`flow`] + [`transport`] — a general minimum-cost-flow formulation
//!   solved with successive shortest paths and Johnson potentials. Handles
//!   arbitrary ground-distance matrices (multi-dimensional embeddings,
//!   thresholded distances).
//! * [`simplex`] — the classical transportation simplex (north-west-corner
//!   start + MODI pivoting). Slower in the worst case but an entirely
//!   separate code path, which makes it a strong differential-testing
//!   oracle for the flow solver.
//!
//! [`bounds`] complements the solvers with cheap lower/upper bounds
//! (projection, total-variation sandwich) and reusable prefix CDFs whose
//! closed forms are bit-identical to [`d1`] — the screening layer the
//! auditing kernel uses to avoid exact solves entirely.
//!
//! Ground distances are abstracted behind [`ground::GroundDistance`];
//! [`ground::Thresholded`] implements the robust, saturated ground
//! distance of Pele & Werman (ICCV 2009) which the paper cites for EMD.
//!
//! # Conventions
//!
//! * Mass vectors are non-negative `f64` slices. Unless stated otherwise,
//!   the two sides of a comparison are normalised to unit total mass, so
//!   the EMD is a true metric on distributions (given a metric ground
//!   distance).
//! * Positions are points on the real line for the 1-D fast path, or
//!   arbitrary indices resolved through a ground-distance matrix for the
//!   general solvers.
//!
//! # Example
//!
//! ```
//! use fairjob_emd::{emd_1d_grid, EmdConfig, emd_between};
//!
//! // Two 4-bin histograms on the unit interval (bin centres 0.125 ... 0.875).
//! let a = [1.0, 0.0, 0.0, 0.0];
//! let b = [0.0, 0.0, 0.0, 1.0];
//! let d = emd_1d_grid(&a, &b, 0.0, 1.0).unwrap();
//! assert!((d - 0.75).abs() < 1e-12); // |0.125 - 0.875|
//!
//! // The general solver agrees.
//! let d2 = emd_between(&a, &b, &EmdConfig::grid_l1(0.0, 1.0)).unwrap();
//! assert!((d - d2).abs() < 1e-9);
//! ```

pub mod arena;
mod bipartite;
pub mod bounds;
pub mod d1;
pub mod error;
pub mod flow;
pub mod ground;
pub mod signature;
pub mod simplex;
pub mod transport;

pub use arena::{ScratchStats, SolveScratch};
pub use bounds::PrefixCdf;
pub use d1::{emd_1d_grid, emd_1d_positions, emd_1d_samples};
pub use error::EmdError;
pub use ground::{
    GridL1, GroundCache, GroundDistance, GroundKey, GroundMatrix, Matrix, PositionsL1, Thresholded,
};
pub use transport::{
    emd_cost_in, solve_emd, solve_emd_in, Solver, TransportProblem, TransportSolution,
};

/// Tolerance used throughout when comparing floating-point masses.
pub const MASS_EPS: f64 = 1e-9;

/// Configuration for the top-level [`emd_between`] entry point.
#[derive(Debug, Clone)]
pub struct EmdConfig {
    /// Ground distance between bin indices.
    pub ground: GroundKind,
    /// Which exact solver to use when the closed form does not apply.
    pub solver: Solver,
    /// Normalise both inputs to unit mass before solving.
    pub normalise: bool,
}

/// Ground-distance selection for [`EmdConfig`].
#[derive(Debug, Clone)]
pub enum GroundKind {
    /// Bins are equal-width intervals of `[lo, hi]`; distance is the
    /// absolute difference of bin centres. Admits the closed-form path.
    GridL1 { lo: f64, hi: f64 },
    /// Bins sit at explicit 1-D positions; distance is `|xi - xj|`.
    /// Admits the closed-form path when positions are sorted.
    PositionsL1(Vec<f64>),
    /// Arbitrary dense ground-distance matrix (n×n).
    Matrix(Vec<Vec<f64>>),
    /// A grid-L1 ground distance saturated at `threshold` (Pele–Werman).
    ThresholdedGridL1 { lo: f64, hi: f64, threshold: f64 },
}

impl EmdConfig {
    /// Equal-width bins over `[lo, hi]` with L1 ground distance — the
    /// configuration the fairness audits use.
    pub fn grid_l1(lo: f64, hi: f64) -> Self {
        EmdConfig {
            ground: GroundKind::GridL1 { lo, hi },
            solver: Solver::Flow,
            normalise: true,
        }
    }

    /// Explicit 1-D positions with L1 ground distance.
    pub fn positions_l1(positions: Vec<f64>) -> Self {
        EmdConfig {
            ground: GroundKind::PositionsL1(positions),
            solver: Solver::Flow,
            normalise: true,
        }
    }

    /// Arbitrary ground-distance matrix.
    pub fn matrix(m: Vec<Vec<f64>>) -> Self {
        EmdConfig {
            ground: GroundKind::Matrix(m),
            solver: Solver::Flow,
            normalise: true,
        }
    }

    /// Saturated grid distance `min(|ci - cj|, threshold)`.
    pub fn thresholded_grid(lo: f64, hi: f64, threshold: f64) -> Self {
        EmdConfig {
            ground: GroundKind::ThresholdedGridL1 { lo, hi, threshold },
            solver: Solver::Flow,
            normalise: true,
        }
    }

    /// Use a specific exact solver when the closed form does not apply.
    pub fn with_solver(mut self, solver: Solver) -> Self {
        self.solver = solver;
        self
    }
}

/// Compute the EMD between two mass vectors under `config`.
///
/// Dispatches to the closed-form 1-D algorithm when the ground distance is
/// an (unthresholded) L1 distance on the line, otherwise builds and solves
/// a transportation problem with the configured exact solver.
///
/// # Errors
///
/// Returns [`EmdError`] when the inputs have mismatched lengths, negative
/// or non-finite mass, or (when `normalise` is off) unequal totals.
pub fn emd_between(a: &[f64], b: &[f64], config: &EmdConfig) -> Result<f64, EmdError> {
    validate_masses(a)?;
    validate_masses(b)?;
    if a.len() != b.len() {
        return Err(EmdError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(EmdError::Empty);
    }
    let (na, nb);
    let (a, b): (&[f64], &[f64]) = if config.normalise {
        na = normalise(a)?;
        nb = normalise(b)?;
        (&na, &nb)
    } else {
        let (ta, tb) = (total(a), total(b));
        if (ta - tb).abs() > MASS_EPS * ta.max(tb).max(1.0) {
            return Err(EmdError::MassMismatch {
                left: ta,
                right: tb,
            });
        }
        (a, b)
    };

    match &config.ground {
        GroundKind::GridL1 { lo, hi } => d1::emd_1d_grid(a, b, *lo, *hi),
        GroundKind::PositionsL1(pos) => {
            if pos.len() != a.len() {
                return Err(EmdError::LengthMismatch {
                    left: pos.len(),
                    right: a.len(),
                });
            }
            if pos.windows(2).all(|w| w[0] <= w[1]) {
                d1::emd_1d_positions(a, b, pos)
            } else {
                let g = PositionsL1::new(pos.clone());
                transport::solve_emd(a, b, &g, config.solver).map(|s| s.cost)
            }
        }
        GroundKind::Matrix(m) => {
            let g = Matrix::new(m.clone())?;
            if g.size() != a.len() {
                return Err(EmdError::LengthMismatch {
                    left: g.size(),
                    right: a.len(),
                });
            }
            transport::solve_emd(a, b, &g, config.solver).map(|s| s.cost)
        }
        GroundKind::ThresholdedGridL1 { lo, hi, threshold } => {
            let g = Thresholded::new(GridL1::new(*lo, *hi, a.len())?, *threshold);
            transport::solve_emd(a, b, &g, config.solver).map(|s| s.cost)
        }
    }
}

/// Sum of a mass vector.
pub fn total(v: &[f64]) -> f64 {
    v.iter().sum()
}

/// Return a copy of `v` scaled to unit total mass.
///
/// # Errors
///
/// [`EmdError::ZeroMass`] if the total is (numerically) zero, and
/// [`EmdError::NonFiniteTotal`] if it overflowed to infinity.
pub fn normalise(v: &[f64]) -> Result<Vec<f64>, EmdError> {
    let t = total(v);
    validate_total(t)?;
    Ok(v.iter().map(|x| x / t).collect())
}

/// Validate that a mass total is finite and large enough to divide by.
///
/// Finite entries can still sum to `+inf` (e.g. two `1e308` bins), and
/// dividing by an infinite total silently maps every entry to `0.0` —
/// the distance would come out as a plausible-looking `0.0` instead of
/// an error.
pub(crate) fn validate_total(t: f64) -> Result<(), EmdError> {
    if !t.is_finite() {
        return Err(EmdError::NonFiniteTotal { value: t });
    }
    if t <= MASS_EPS {
        return Err(EmdError::ZeroMass);
    }
    Ok(())
}

/// Validate that every entry of `v` is a finite, non-negative mass.
pub fn validate_masses(v: &[f64]) -> Result<(), EmdError> {
    for (i, &x) in v.iter().enumerate() {
        if !x.is_finite() {
            return Err(EmdError::NonFinite { index: i, value: x });
        }
        if x < 0.0 {
            return Err(EmdError::Negative { index: i, value: x });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_config_dispatches_to_closed_form() {
        let a = [0.5, 0.5, 0.0, 0.0];
        let b = [0.0, 0.0, 0.5, 0.5];
        let d = emd_between(&a, &b, &EmdConfig::grid_l1(0.0, 1.0)).unwrap();
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalisation_scales_out() {
        let a = [2.0, 0.0];
        let b = [0.0, 8.0];
        let d = emd_between(&a, &b, &EmdConfig::grid_l1(0.0, 1.0)).unwrap();
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unnormalised_mass_mismatch_is_an_error() {
        let mut cfg = EmdConfig::grid_l1(0.0, 1.0);
        cfg.normalise = false;
        let err = emd_between(&[1.0, 0.0], &[0.0, 2.0], &cfg).unwrap_err();
        assert!(matches!(err, EmdError::MassMismatch { .. }));
    }

    #[test]
    fn rejects_negative_mass() {
        let err =
            emd_between(&[-1.0, 2.0], &[0.5, 0.5], &EmdConfig::grid_l1(0.0, 1.0)).unwrap_err();
        assert!(matches!(err, EmdError::Negative { index: 0, .. }));
    }

    #[test]
    fn rejects_nan() {
        let err =
            emd_between(&[f64::NAN, 1.0], &[0.5, 0.5], &EmdConfig::grid_l1(0.0, 1.0)).unwrap_err();
        assert!(matches!(err, EmdError::NonFinite { index: 0, .. }));
    }

    #[test]
    fn rejects_length_mismatch() {
        let err = emd_between(&[1.0], &[0.5, 0.5], &EmdConfig::grid_l1(0.0, 1.0)).unwrap_err();
        assert!(matches!(
            err,
            EmdError::LengthMismatch { left: 1, right: 2 }
        ));
    }

    #[test]
    fn rejects_empty() {
        let err = emd_between(&[], &[], &EmdConfig::grid_l1(0.0, 1.0)).unwrap_err();
        assert!(matches!(err, EmdError::Empty));
    }

    #[test]
    fn rejects_zero_mass_when_normalising() {
        let err = emd_between(&[0.0, 0.0], &[1.0, 0.0], &EmdConfig::grid_l1(0.0, 1.0)).unwrap_err();
        assert!(matches!(err, EmdError::ZeroMass));
    }

    #[test]
    fn unsorted_positions_fall_back_to_exact_solver() {
        // Positions deliberately out of order: 0.9, 0.1.
        let cfg = EmdConfig::positions_l1(vec![0.9, 0.1]);
        let d = emd_between(&[1.0, 0.0], &[0.0, 1.0], &cfg).unwrap();
        assert!((d - 0.8).abs() < 1e-9);
    }

    #[test]
    fn thresholded_ground_saturates() {
        // Bins at 0.125 and 0.875 (4 bins over [0,1] -> centres .125 .375 .625 .875).
        let a = [1.0, 0.0, 0.0, 0.0];
        let b = [0.0, 0.0, 0.0, 1.0];
        let d = emd_between(&a, &b, &EmdConfig::thresholded_grid(0.0, 1.0, 0.3)).unwrap();
        assert!((d - 0.3).abs() < 1e-9);
    }

    #[test]
    fn identical_inputs_have_zero_distance() {
        let a = [0.25, 0.25, 0.25, 0.25];
        let d = emd_between(&a, &a, &EmdConfig::grid_l1(0.0, 1.0)).unwrap();
        assert!(d.abs() < 1e-12);
    }
}
