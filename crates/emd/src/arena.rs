//! Per-worker solve workspaces for the exact EMD path.
//!
//! [`SolveScratch`] owns every buffer the exact solvers need: the
//! support-compaction index (`srcs`/`dsts` plus compacted
//! supplies/demands), the flat row-major compacted cost view, the
//! min-cost-flow network with its Dijkstra scratch, the transportation
//! simplex tableau scratch, the cached round-1 Dijkstra for warm starts,
//! and a scratch-local tier of the process-wide [`GroundCache`]. A
//! worker that keeps one scratch for its lifetime solves an arbitrary
//! stream of same-sized instances without touching the allocator.
//!
//! # Warm starts and determinism
//!
//! Within a batch chunk, consecutive pairs that share a support set (and
//! therefore a compacted cost matrix) replay the previous solve's
//! round-1 Dijkstra instead of recomputing it — see
//! [`crate::flow::Round1`] for why the replay is bit-identical to a cold
//! solve while seeding *final* duals would not be. Callers that need
//! counters independent of thread count call [`SolveScratch::begin_chunk`]
//! at deterministic chunk boundaries: it invalidates the warm state and
//! zeroes the per-chunk [`ScratchStats`], making both pure functions of
//! the chunk's contents.

use crate::bipartite::BipartiteFlow;
use crate::flow::MinCostFlow;
use crate::ground::{GroundCache, GroundMatrix};
use crate::simplex::SimplexScratch;
use crate::EmdError;

/// Counters a scratch accumulates between [`SolveScratch::take_stats`]
/// calls. All deterministic per chunk once `begin_chunk` bounds them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Solves whose ground matrix was served from the scratch-local slot
    /// or the process-wide [`GroundCache`] (builds do not count).
    pub ground_cache_hits: u64,
    /// Solves beyond the first since the last `begin_chunk` — each one
    /// reused the workspace instead of allocating a fresh solver.
    pub scratch_reuses: u64,
    /// Flow solves that replayed the previous pair's round-1 Dijkstra.
    pub warm_starts: u64,
}

impl ScratchStats {
    /// Accumulate `other` into `self`.
    pub fn merge(&mut self, other: ScratchStats) {
        self.ground_cache_hits += other.ground_cache_hits;
        self.scratch_reuses += other.scratch_reuses;
        self.warm_starts += other.warm_starts;
    }
}

/// A reusable workspace owning every buffer the exact solvers need.
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    /// General min-cost-flow network for [`crate::TransportProblem`]
    /// instances (edges, adjacency, Dijkstra buffers).
    pub(crate) flow: MinCostFlow,
    /// Transport-specialised kernel for compacted EMD solves, including
    /// its cached round-1 Dijkstra.
    pub(crate) bip: BipartiteFlow,
    /// Transportation-simplex tableau scratch.
    pub(crate) simplex: SimplexScratch,
    /// Support-compaction index: original bin indices of non-empty bins.
    pub(crate) srcs: Vec<usize>,
    pub(crate) dsts: Vec<usize>,
    /// Compacted masses (parallel to `srcs`/`dsts`).
    pub(crate) supplies: Vec<f64>,
    pub(crate) demands: Vec<f64>,
    /// Flat row-major compacted cost view, `srcs.len() * dsts.len()`.
    pub(crate) costs: Vec<f64>,
    /// Previous pair's supports and costs — the warm-start comparands.
    pub(crate) prev_srcs: Vec<usize>,
    pub(crate) prev_dsts: Vec<usize>,
    pub(crate) prev_costs: Vec<f64>,
    /// Whether `prev_*` + the kernel's round-1 cache describe the last
    /// *flow* solve.
    pub(crate) warm_valid: bool,
    /// Whether any solve ran since the last `begin_chunk`.
    pub(crate) used: bool,
    /// Edge-id remap buffer for general [`crate::TransportProblem`]
    /// instances (which may contain zero-mass rows).
    pub(crate) edge_ids: Vec<(usize, usize, usize)>,
    /// Signature of the scratch-local ground matrix.
    ground_sig: Vec<u64>,
    sig_tmp: Vec<u64>,
    ground: Option<GroundMatrix>,
    pub(crate) stats: ScratchStats,
}

impl SolveScratch {
    /// A fresh, empty workspace. Buffers grow to the working-set size on
    /// first use and are retained afterwards.
    pub fn new() -> Self {
        SolveScratch::default()
    }

    /// Mark a deterministic batch-chunk boundary: invalidate the warm
    /// state and zero the per-chunk counters, so both depend only on the
    /// chunk's contents — never on which worker thread ran it.
    pub fn begin_chunk(&mut self) {
        self.warm_valid = false;
        self.used = false;
        self.stats = ScratchStats::default();
    }

    /// Record one solve: every solve after the first since `begin_chunk`
    /// reused the workspace rather than allocating a fresh solver.
    pub(crate) fn note_use(&mut self) {
        if self.used {
            self.stats.scratch_reuses += 1;
        }
        self.used = true;
    }

    /// Counters accumulated since the last `begin_chunk`/`take_stats`.
    pub fn stats(&self) -> ScratchStats {
        self.stats
    }

    /// Return the accumulated counters and zero them.
    pub fn take_stats(&mut self) -> ScratchStats {
        std::mem::take(&mut self.stats)
    }

    /// Resolve a ground matrix through the two cache tiers: the
    /// scratch-local slot (no locking, hit when the signature matches
    /// the last grid this scratch solved on) and the process-wide
    /// [`GroundCache`]. `fill_sig` writes the grid's exact fingerprint
    /// into a reused buffer; `build` materialises (and validates) the
    /// matrix on a process-wide first encounter.
    ///
    /// # Errors
    ///
    /// Whatever `build` returns.
    pub fn ground_for(
        &mut self,
        fill_sig: impl FnOnce(&mut Vec<u64>),
        build: impl FnOnce() -> Result<GroundMatrix, EmdError>,
    ) -> Result<GroundMatrix, EmdError> {
        self.sig_tmp.clear();
        fill_sig(&mut self.sig_tmp);
        if let Some(g) = &self.ground {
            if self.sig_tmp == self.ground_sig {
                self.stats.ground_cache_hits += 1;
                return Ok(g.clone());
            }
        }
        let (matrix, was_hit) = GroundCache::global().get_or_build(&self.sig_tmp, build)?;
        if was_hit {
            self.stats.ground_cache_hits += 1;
        }
        std::mem::swap(&mut self.ground_sig, &mut self.sig_tmp);
        self.ground = Some(matrix.clone());
        Ok(matrix)
    }

    /// Total element capacity of every buffer this scratch owns — the
    /// steady-state allocation probe. Two snapshots around a run of
    /// same-sized solves must be equal, or the zero-allocation contract
    /// is broken.
    pub fn footprint(&self) -> usize {
        self.flow.footprint()
            + self.bip.footprint()
            + self.simplex.footprint()
            + self.srcs.capacity()
            + self.dsts.capacity()
            + self.supplies.capacity()
            + self.demands.capacity()
            + self.costs.capacity()
            + self.prev_srcs.capacity()
            + self.prev_dsts.capacity()
            + self.prev_costs.capacity()
            + self.edge_ids.capacity()
            + self.ground_sig.capacity()
            + self.sig_tmp.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::{GridL1, GroundDistance};

    #[test]
    fn ground_for_serves_local_then_global() {
        let mut scratch = SolveScratch::new();
        // Unique signature so other tests sharing the global cache can't
        // interfere with the build/hit accounting below.
        let sig = [0xA12E_u64, 0x51, 1];
        let build = || GroundMatrix::build(&GridL1::new(0.0, 1.0, 6).unwrap());
        let first = scratch
            .ground_for(|s| s.extend_from_slice(&sig), build)
            .unwrap();
        // First encounter in the process: a build, not a hit.
        assert_eq!(scratch.stats().ground_cache_hits, 0);
        let second = scratch
            .ground_for(|s| s.extend_from_slice(&sig), build)
            .unwrap();
        assert_eq!(scratch.stats().ground_cache_hits, 1);
        assert_eq!(first.flat(), second.flat());
        // A second scratch gets the same matrix from the global tier.
        let mut other = SolveScratch::new();
        let third = other
            .ground_for(|s| s.extend_from_slice(&sig), build)
            .unwrap();
        assert_eq!(other.stats().ground_cache_hits, 1);
        assert_eq!(first.flat(), third.flat());
        assert_eq!(third.size(), 6);
    }

    #[test]
    fn begin_chunk_resets_counters_and_warm_state() {
        let mut scratch = SolveScratch::new();
        scratch.stats.ground_cache_hits = 3;
        scratch.warm_valid = true;
        scratch.used = true;
        scratch.begin_chunk();
        assert_eq!(scratch.stats(), ScratchStats::default());
        assert!(!scratch.warm_valid);
        assert!(!scratch.used);
    }

    #[test]
    fn take_stats_drains() {
        let mut scratch = SolveScratch::new();
        scratch.stats.warm_starts = 2;
        let taken = scratch.take_stats();
        assert_eq!(taken.warm_starts, 2);
        assert_eq!(scratch.stats(), ScratchStats::default());
        let mut acc = ScratchStats::default();
        acc.merge(taken);
        acc.merge(taken);
        assert_eq!(acc.warm_starts, 4);
    }
}
