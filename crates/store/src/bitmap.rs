//! Dense bitmaps — the alternative row-set representation.
//!
//! Sorted index vectors ([`crate::RowSet`]) win when sets are sparse
//! relative to the table; dense bitmaps win for large sets (population-
//! scale partitions) where intersection becomes word-parallel AND. The
//! `store_ops` bench measures the crossover; the audit keeps `RowSet`
//! as its working representation because split trees produce mostly
//! small partitions, but the bitmap is available wherever whole-table
//! masks are manipulated.

use crate::RowSet;

/// A fixed-universe dense bitset over rows `0..universe`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    universe: usize,
}

impl Bitmap {
    /// An empty bitmap over `universe` rows.
    pub fn new(universe: usize) -> Self {
        Bitmap {
            words: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// A bitmap with every row of the universe set.
    pub fn full(universe: usize) -> Self {
        let mut b = Bitmap::new(universe);
        for i in 0..universe {
            b.insert(i as u32);
        }
        b
    }

    /// Build from a row set (rows must be `< universe`).
    ///
    /// # Panics
    ///
    /// When a row is outside the universe (programming error at the
    /// conversion boundary).
    pub fn from_rowset(rows: &RowSet, universe: usize) -> Self {
        let mut b = Bitmap::new(universe);
        for row in rows.rows() {
            assert!(
                (*row as usize) < universe,
                "row {row} outside universe {universe}"
            );
            b.insert(*row);
        }
        b
    }

    /// The universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Grow the universe to `new_universe` rows (new rows start unset).
    /// Shrinking is not supported; a smaller value is a no-op.
    pub fn grow(&mut self, new_universe: usize) {
        if new_universe > self.universe {
            self.universe = new_universe;
            self.words.resize(new_universe.div_ceil(64), 0);
        }
    }

    /// Set a row bit.
    ///
    /// # Panics
    ///
    /// When `row >= universe`.
    pub fn insert(&mut self, row: u32) {
        let row = row as usize;
        assert!(
            row < self.universe,
            "row {row} outside universe {}",
            self.universe
        );
        self.words[row / 64] |= 1u64 << (row % 64);
    }

    /// Clear a row bit (no-op when out of universe).
    pub fn remove(&mut self, row: u32) {
        let row = row as usize;
        if row < self.universe {
            self.words[row / 64] &= !(1u64 << (row % 64));
        }
    }

    /// Membership test (false outside the universe).
    pub fn contains(&self, row: u32) -> bool {
        let row = row as usize;
        row < self.universe && self.words[row / 64] & (1u64 << (row % 64)) != 0
    }

    /// Number of set rows.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no rows are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Word-parallel intersection. Universes must match.
    ///
    /// # Panics
    ///
    /// On mismatched universes.
    pub fn intersect(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            universe: self.universe,
        }
    }

    /// Word-parallel union. Universes must match.
    ///
    /// # Panics
    ///
    /// On mismatched universes.
    pub fn union(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            universe: self.universe,
        }
    }

    /// Word-parallel difference `self \ other`. Universes must match.
    ///
    /// # Panics
    ///
    /// On mismatched universes.
    pub fn difference(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
            universe: self.universe,
        }
    }

    /// Iterate set rows in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros();
                bits &= bits - 1;
                Some(wi as u32 * 64 + bit)
            })
        })
    }

    /// Convert to a sorted row set.
    pub fn to_rowset(&self) -> RowSet {
        RowSet::from_sorted(self.iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut b = Bitmap::new(130);
        b.insert(0);
        b.insert(63);
        b.insert(64);
        b.insert(129);
        assert!(b.contains(0) && b.contains(63) && b.contains(64) && b.contains(129));
        assert!(!b.contains(1) && !b.contains(128));
        assert!(!b.contains(500));
        assert_eq!(b.len(), 4);
        b.remove(63);
        assert!(!b.contains(63));
        assert_eq!(b.len(), 3);
        b.remove(500); // out-of-universe remove is a no-op
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        Bitmap::new(10).insert(10);
    }

    #[test]
    fn set_algebra_matches_rowset() {
        let a_rows = RowSet::from_rows(vec![1, 5, 63, 64, 99]);
        let b_rows = RowSet::from_rows(vec![5, 64, 65, 98]);
        let a = Bitmap::from_rowset(&a_rows, 128);
        let b = Bitmap::from_rowset(&b_rows, 128);
        assert_eq!(a.intersect(&b).to_rowset(), a_rows.intersect(&b_rows));
        assert_eq!(a.union(&b).to_rowset(), a_rows.union(&b_rows));
        assert_eq!(a.difference(&b).to_rowset(), a_rows.difference(&b_rows));
    }

    #[test]
    fn roundtrip_rowset() {
        let rows = RowSet::from_rows(vec![0, 2, 67, 126]);
        let b = Bitmap::from_rowset(&rows, 127);
        assert_eq!(b.to_rowset(), rows);
        assert_eq!(b.len(), rows.len());
    }

    #[test]
    fn full_and_empty() {
        let full = Bitmap::full(70);
        assert_eq!(full.len(), 70);
        assert!(full.contains(69));
        let empty = Bitmap::new(70);
        assert!(empty.is_empty());
        assert_eq!(full.intersect(&empty).len(), 0);
        assert_eq!(full.difference(&empty).len(), 70);
    }

    #[test]
    fn iter_is_sorted_ascending() {
        let mut b = Bitmap::new(256);
        for r in [200u32, 3, 77, 128, 4] {
            b.insert(r);
        }
        let got: Vec<u32> = b.iter().collect();
        assert_eq!(got, vec![3, 4, 77, 128, 200]);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universes_panic() {
        let _ = Bitmap::new(64).intersect(&Bitmap::new(128));
    }

    #[test]
    fn zero_universe() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
    }
}
