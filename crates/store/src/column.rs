//! Physical column storage.

/// A physical column of values, row-aligned with its table.
///
/// Categorical columns store dictionary codes (`u32` indexes into the
/// schema's declared domain), which makes splits and group-bys integer
/// comparisons instead of string comparisons.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Dictionary codes into the attribute's declared domain.
    Categorical(Vec<u32>),
    /// Real values.
    Numeric(Vec<f64>),
    /// Integer values.
    Integer(Vec<i64>),
}

impl Column {
    /// Create an empty column matching the given schema data type.
    pub fn empty_for(dtype: &crate::schema::DataType) -> Self {
        match dtype {
            crate::schema::DataType::Categorical { .. } => Column::Categorical(Vec::new()),
            crate::schema::DataType::Numeric { .. } => Column::Numeric(Vec::new()),
            crate::schema::DataType::Integer { .. } => Column::Integer(Vec::new()),
        }
    }

    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Categorical(v) => v.len(),
            Column::Numeric(v) => v.len(),
            Column::Integer(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Categorical codes, if this is a categorical column.
    pub fn as_categorical(&self) -> Option<&[u32]> {
        match self {
            Column::Categorical(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric values, if this is a numeric column.
    pub fn as_numeric(&self) -> Option<&[f64]> {
        match self {
            Column::Numeric(v) => Some(v),
            _ => None,
        }
    }

    /// Integer values, if this is an integer column.
    pub fn as_integer(&self) -> Option<&[i64]> {
        match self {
            Column::Integer(v) => Some(v),
            _ => None,
        }
    }

    /// The value of row `row` as an `f64`, when the column is numeric or
    /// integer (scoring functions read through this).
    pub fn value_as_f64(&self, row: usize) -> Option<f64> {
        match self {
            Column::Numeric(v) => v.get(row).copied(),
            Column::Integer(v) => v.get(row).map(|&x| x as f64),
            Column::Categorical(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    #[test]
    fn empty_for_matches_dtype() {
        let c = Column::empty_for(&DataType::Categorical {
            domain: vec!["x".into()],
        });
        assert!(matches!(c, Column::Categorical(_)));
        assert!(c.is_empty());
        let n = Column::empty_for(&DataType::Numeric { min: 0.0, max: 1.0 });
        assert!(matches!(n, Column::Numeric(_)));
        let i = Column::empty_for(&DataType::Integer { min: 0, max: 1 });
        assert!(matches!(i, Column::Integer(_)));
    }

    #[test]
    fn accessors_are_type_safe() {
        let c = Column::Categorical(vec![0, 1, 0]);
        assert_eq!(c.as_categorical(), Some(&[0u32, 1, 0][..]));
        assert!(c.as_numeric().is_none());
        assert!(c.as_integer().is_none());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn value_as_f64_handles_integers() {
        let i = Column::Integer(vec![5, -3]);
        assert_eq!(i.value_as_f64(0), Some(5.0));
        assert_eq!(i.value_as_f64(1), Some(-3.0));
        assert_eq!(i.value_as_f64(2), None);
        let c = Column::Categorical(vec![0]);
        assert_eq!(c.value_as_f64(0), None);
    }
}
