//! Columnar in-memory store for worker populations.
//!
//! The fairness-audit algorithms repeatedly split sets of workers by the
//! values of protected attributes and histogram the scores of each
//! resulting group. This crate supplies the data layer that makes that
//! fast and safe:
//!
//! * [`schema`] — typed attribute schemas distinguishing **protected**
//!   attributes (gender, country, …: what groups may be defined on) from
//!   **observed** attributes (skills: what scoring functions may read) —
//!   the distinction at the heart of the paper's problem definition.
//! * [`table`] + [`mod@column`] — dictionary-encoded categorical columns and
//!   plain numeric/integer columns over a row-aligned table.
//! * [`rowset`] — sorted row-id sets: the representation of a partition.
//! * [`predicate`] — conjunctions of `attribute = value` constraints (the
//!   description of a partition in an attribute-split tree).
//! * [`index`] — per-column inverted indexes for O(|result|) splits.
//! * [`groupby`] — split a row set by a categorical attribute.
//! * [`bucketize`] — derive categorical columns from numeric ones (year
//!   of birth → age bands etc.), since only categorical attributes can be
//!   split on.
//! * [`sharded`] — deterministic fixed row-range shards: the layout the
//!   data-parallel split/classify kernels slice their input by, merged
//!   in shard order so results stay bit-identical at any thread count.
//! * [`paged`] — out-of-core paged columnar format with zone maps and a
//!   budgeted buffer manager, for audits beyond RAM and fast snapshot
//!   restarts.
//! * [`csv`] — dependency-free CSV import/export for persistence.
//!
//! # Example
//!
//! ```
//! use fairjob_store::schema::{AttributeKind, Schema};
//! use fairjob_store::table::{Table, Value};
//!
//! let schema = Schema::builder()
//!     .categorical("gender", AttributeKind::Protected, &["Male", "Female"])
//!     .numeric("approval", AttributeKind::Observed, 0.0, 100.0)
//!     .build()
//!     .unwrap();
//! let mut t = Table::new(schema);
//! t.push_row(&[Value::cat("Male"), Value::num(88.0)]).unwrap();
//! t.push_row(&[Value::cat("Female"), Value::num(93.5)]).unwrap();
//! assert_eq!(t.len(), 2);
//! ```

pub mod bitmap;
pub mod bucketize;
pub mod column;
pub mod csv;
pub mod error;
pub mod groupby;
pub mod index;
pub mod paged;
pub mod predicate;
pub mod rowset;
pub mod schema;
pub mod schema_text;
pub mod sharded;
pub mod stats;
pub mod table;

pub use error::StoreError;
pub use paged::{BufferManager, PageCacheStats, PageCounters, PagedError, PagedStore};
pub use predicate::{EqConstraint, Predicate};
pub use rowset::RowSet;
pub use schema::{AttributeDef, AttributeKind, DataType, Schema};
pub use sharded::{ShardPlan, ShardPolicy, ShardedRows};
pub use table::{Table, Value};
