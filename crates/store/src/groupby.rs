//! Group-by over categorical attributes (the scan-based counterpart of
//! the inverted index — used where no index has been built, and as the
//! oracle the index is tested against).

use crate::table::Table;
use crate::{RowSet, StoreError};

/// Split `within` by categorical attribute `attr`: one `(code, rows)`
/// group per code present, ordered by code. Empty codes are omitted.
///
/// # Errors
///
/// [`StoreError::NotCategorical`] when `attr` is not categorical.
pub fn group_by(
    table: &Table,
    within: &RowSet,
    attr: usize,
) -> Result<Vec<(u32, RowSet)>, StoreError> {
    let codes = table
        .column(attr)
        .as_categorical()
        .ok_or_else(|| StoreError::NotCategorical {
            attribute: table.schema().attribute(attr).name.clone(),
        })?;
    let cardinality = table
        .schema()
        .attribute(attr)
        .cardinality()
        .expect("categorical has cardinality");
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cardinality];
    for row in within.rows() {
        buckets[codes[*row as usize] as usize].push(*row);
    }
    Ok(buckets
        .into_iter()
        .enumerate()
        .filter(|(_, b)| !b.is_empty())
        .map(|(code, b)| (code as u32, RowSet::from_sorted(b)))
        .collect())
}

/// Group `within` by several categorical attributes at once: the full
/// cartesian refinement (only non-empty cells are returned). Each group
/// is keyed by its code vector, aligned with `attrs`.
///
/// # Errors
///
/// [`StoreError::NotCategorical`] when any attribute is not categorical.
pub fn group_by_many(
    table: &Table,
    within: &RowSet,
    attrs: &[usize],
) -> Result<Vec<(Vec<u32>, RowSet)>, StoreError> {
    if attrs.is_empty() {
        return Ok(vec![(Vec::new(), within.clone())]);
    }
    let mut code_slices = Vec::with_capacity(attrs.len());
    for &attr in attrs {
        let codes =
            table
                .column(attr)
                .as_categorical()
                .ok_or_else(|| StoreError::NotCategorical {
                    attribute: table.schema().attribute(attr).name.clone(),
                })?;
        code_slices.push(codes);
    }
    let mut groups: std::collections::BTreeMap<Vec<u32>, Vec<u32>> =
        std::collections::BTreeMap::new();
    for row in within.rows() {
        let key: Vec<u32> = code_slices
            .iter()
            .map(|codes| codes[*row as usize])
            .collect();
        groups.entry(key).or_default().push(*row);
    }
    Ok(groups
        .into_iter()
        .map(|(k, rows)| (k, RowSet::from_sorted(rows)))
        .collect())
}

/// Per-code counts of `attr` within `within` (a group-by that skips
/// materialising row sets; used for quick cardinality probes).
///
/// # Errors
///
/// [`StoreError::NotCategorical`] when `attr` is not categorical.
pub fn value_counts(table: &Table, within: &RowSet, attr: usize) -> Result<Vec<usize>, StoreError> {
    let codes = table
        .column(attr)
        .as_categorical()
        .ok_or_else(|| StoreError::NotCategorical {
            attribute: table.schema().attribute(attr).name.clone(),
        })?;
    let cardinality = table
        .schema()
        .attribute(attr)
        .cardinality()
        .expect("categorical has cardinality");
    let mut counts = vec![0usize; cardinality];
    for row in within.rows() {
        counts[codes[*row as usize] as usize] += 1;
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeKind, Schema};
    use crate::table::Value;

    fn table() -> Table {
        let schema = Schema::builder()
            .categorical("gender", AttributeKind::Protected, &["Male", "Female"])
            .categorical(
                "lang",
                AttributeKind::Protected,
                &["English", "Indian", "Other"],
            )
            .numeric("score", AttributeKind::Observed, 0.0, 1.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (g, l, s) in [
            ("Male", "English", 0.9),
            ("Male", "Indian", 0.8),
            ("Female", "English", 0.7),
            ("Female", "Other", 0.6),
            ("Male", "English", 0.5),
        ] {
            t.push_row(&[Value::cat(g), Value::cat(l), Value::num(s)])
                .unwrap();
        }
        t
    }

    #[test]
    fn group_by_matches_index_split() {
        let t = table();
        let all = RowSet::all(t.len());
        for attr in [0usize, 1] {
            let scan = group_by(&t, &all, attr).unwrap();
            let idx = crate::index::CategoricalIndex::build(&t, attr).unwrap();
            let via_index = idx.split(&all);
            assert_eq!(scan, via_index, "attr {attr}");
        }
    }

    #[test]
    fn group_by_many_full_partitioning() {
        let t = table();
        let all = RowSet::all(t.len());
        let groups = group_by_many(&t, &all, &[0, 1]).unwrap();
        // (M,E)={0,4}, (M,I)={1}, (F,E)={2}, (F,O)={3}.
        assert_eq!(groups.len(), 4);
        let me = groups.iter().find(|(k, _)| k == &vec![0, 0]).unwrap();
        assert_eq!(me.1.rows(), &[0, 4]);
        // Disjoint cover.
        let mut union = RowSet::empty();
        for (i, (_, a)) in groups.iter().enumerate() {
            for (_, b) in &groups[i + 1..] {
                assert!(a.is_disjoint(b));
            }
            union = union.union(a);
        }
        assert_eq!(union, all);
    }

    #[test]
    fn group_by_many_empty_attrs_is_identity() {
        let t = table();
        let within = RowSet::from_rows(vec![1, 3]);
        let groups = group_by_many(&t, &within, &[]).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1, within);
    }

    #[test]
    fn value_counts_match_group_sizes() {
        let t = table();
        let all = RowSet::all(t.len());
        let counts = value_counts(&t, &all, 1).unwrap();
        assert_eq!(counts, vec![3, 1, 1]);
    }

    #[test]
    fn non_categorical_rejected() {
        let t = table();
        let all = RowSet::all(t.len());
        assert!(group_by(&t, &all, 2).is_err());
        assert!(group_by_many(&t, &all, &[0, 2]).is_err());
        assert!(value_counts(&t, &all, 2).is_err());
    }

    #[test]
    fn group_by_on_subset() {
        let t = table();
        let within = RowSet::from_rows(vec![0, 1]);
        let groups = group_by(&t, &within, 0).unwrap();
        assert_eq!(groups.len(), 1); // only Male present
        assert_eq!(groups[0].0, 0);
        assert_eq!(groups[0].1.rows(), &[0, 1]);
    }
}
