//! The row-aligned, column-stored worker table.

use crate::column::Column;
use crate::schema::{DataType, Schema};
use crate::StoreError;

/// A value being inserted into (or read out of) a table row.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Categorical value by label.
    Cat(String),
    /// Real value.
    Num(f64),
    /// Integer value.
    Int(i64),
}

impl Value {
    /// Shorthand for a categorical value.
    pub fn cat(label: &str) -> Value {
        Value::Cat(label.to_string())
    }

    /// Shorthand for a numeric value.
    pub fn num(x: f64) -> Value {
        Value::Num(x)
    }

    /// Shorthand for an integer value.
    pub fn int(x: i64) -> Value {
        Value::Int(x)
    }
}

/// A table of workers: a [`Schema`] plus one [`Column`] per attribute.
///
/// Ingestion validates every value against the schema (domain membership,
/// range containment), so downstream code can rely on codes being valid
/// dictionary indexes and numerics being in range.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    len: usize,
}

impl Table {
    /// An empty table over `schema`.
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .attributes()
            .iter()
            .map(|a| Column::empty_for(&a.dtype))
            .collect();
        Table {
            schema,
            columns,
            len: 0,
        }
    }

    /// Assemble a table from pre-validated columns (the paged-store
    /// materialisation path). Column types and lengths are checked
    /// against the schema; cell values are trusted — callers hold data
    /// that already passed ingestion validation once.
    ///
    /// # Errors
    ///
    /// [`StoreError::RowArity`] when column lengths disagree,
    /// [`StoreError::TypeMismatch`] when a column's type does not match
    /// its attribute.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Self, StoreError> {
        if columns.len() != schema.width() {
            return Err(StoreError::RowArity {
                expected: schema.width(),
                got: columns.len(),
            });
        }
        let len = columns.first().map_or(0, Column::len);
        for (attr, column) in schema.attributes().iter().zip(&columns) {
            let matches = matches!(
                (&attr.dtype, column),
                (DataType::Categorical { .. }, Column::Categorical(_))
                    | (DataType::Numeric { .. }, Column::Numeric(_))
                    | (DataType::Integer { .. }, Column::Integer(_))
            );
            if !matches {
                return Err(StoreError::TypeMismatch {
                    attribute: attr.name.clone(),
                    expected: attr.dtype.type_name(),
                });
            }
            if column.len() != len {
                return Err(StoreError::RowArity {
                    expected: len,
                    got: column.len(),
                });
            }
        }
        Ok(Table {
            schema,
            columns,
            len,
        })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The physical column for attribute `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// The physical column for a named attribute.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchAttribute`].
    pub fn column_by_name(&self, name: &str) -> Result<&Column, StoreError> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Append one row. Values must match the schema positionally.
    ///
    /// # Errors
    ///
    /// [`StoreError::RowArity`], [`StoreError::TypeMismatch`],
    /// [`StoreError::UnknownCategory`] or [`StoreError::OutOfRange`].
    /// On error the table is left unchanged.
    pub fn push_row(&mut self, values: &[Value]) -> Result<(), StoreError> {
        if values.len() != self.schema.width() {
            return Err(StoreError::RowArity {
                expected: self.schema.width(),
                got: values.len(),
            });
        }
        // Validate everything before mutating anything.
        let mut staged: Vec<StagedValue> = Vec::with_capacity(values.len());
        for (attr, value) in self.schema.attributes().iter().zip(values) {
            let staged_value = match (&attr.dtype, value) {
                (DataType::Categorical { .. }, Value::Cat(label)) => {
                    StagedValue::Code(attr.code_of(label)?)
                }
                (DataType::Numeric { min, max }, Value::Num(x)) => {
                    if !x.is_finite() || *x < *min || *x > *max {
                        return Err(StoreError::OutOfRange {
                            attribute: attr.name.clone(),
                            value: x.to_string(),
                        });
                    }
                    StagedValue::Num(*x)
                }
                (DataType::Integer { min, max }, Value::Int(x)) => {
                    if x < min || x > max {
                        return Err(StoreError::OutOfRange {
                            attribute: attr.name.clone(),
                            value: x.to_string(),
                        });
                    }
                    StagedValue::Int(*x)
                }
                (dtype, _) => {
                    return Err(StoreError::TypeMismatch {
                        attribute: attr.name.clone(),
                        expected: dtype.type_name(),
                    })
                }
            };
            staged.push(staged_value);
        }
        for (column, staged_value) in self.columns.iter_mut().zip(staged) {
            match (column, staged_value) {
                (Column::Categorical(v), StagedValue::Code(c)) => v.push(c),
                (Column::Numeric(v), StagedValue::Num(x)) => v.push(x),
                (Column::Integer(v), StagedValue::Int(x)) => v.push(x),
                _ => unreachable!("staged values are type-checked above"),
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Append a batch of rows, resolving the schema's column layout once
    /// per batch instead of once per row: arity is checked up front, then
    /// each column is validated in one typed pass over the batch (one
    /// dtype dispatch per *column*, not per cell). On error nothing is
    /// committed.
    ///
    /// # Errors
    ///
    /// [`StoreError::BatchRow`] wrapping the first offending row's
    /// [`StoreError::RowArity`], [`StoreError::TypeMismatch`],
    /// [`StoreError::UnknownCategory`] or [`StoreError::OutOfRange`].
    pub fn push_rows(&mut self, rows: &[Vec<Value>]) -> Result<(), StoreError> {
        fn batch(row: usize, error: StoreError) -> StoreError {
            StoreError::BatchRow {
                row,
                error: Box::new(error),
            }
        }
        let width = self.schema.width();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != width {
                return Err(batch(
                    i,
                    StoreError::RowArity {
                        expected: width,
                        got: row.len(),
                    },
                ));
            }
        }
        // Stage column-major; commit only after every cell validated.
        let mut staged: Vec<StagedColumn> = Vec::with_capacity(width);
        for (col, attr) in self.schema.attributes().iter().enumerate() {
            let staged_column = match &attr.dtype {
                DataType::Categorical { .. } => {
                    let mut codes = Vec::with_capacity(rows.len());
                    for (i, row) in rows.iter().enumerate() {
                        match &row[col] {
                            Value::Cat(label) => {
                                codes.push(attr.code_of(label).map_err(|e| batch(i, e))?)
                            }
                            _ => {
                                return Err(batch(
                                    i,
                                    StoreError::TypeMismatch {
                                        attribute: attr.name.clone(),
                                        expected: attr.dtype.type_name(),
                                    },
                                ))
                            }
                        }
                    }
                    StagedColumn::Codes(codes)
                }
                DataType::Numeric { min, max } => {
                    let mut nums = Vec::with_capacity(rows.len());
                    for (i, row) in rows.iter().enumerate() {
                        match &row[col] {
                            Value::Num(x) if x.is_finite() && *x >= *min && *x <= *max => {
                                nums.push(*x)
                            }
                            Value::Num(x) => {
                                return Err(batch(
                                    i,
                                    StoreError::OutOfRange {
                                        attribute: attr.name.clone(),
                                        value: x.to_string(),
                                    },
                                ))
                            }
                            _ => {
                                return Err(batch(
                                    i,
                                    StoreError::TypeMismatch {
                                        attribute: attr.name.clone(),
                                        expected: attr.dtype.type_name(),
                                    },
                                ))
                            }
                        }
                    }
                    StagedColumn::Nums(nums)
                }
                DataType::Integer { min, max } => {
                    let mut ints = Vec::with_capacity(rows.len());
                    for (i, row) in rows.iter().enumerate() {
                        match &row[col] {
                            Value::Int(x) if x >= min && x <= max => ints.push(*x),
                            Value::Int(x) => {
                                return Err(batch(
                                    i,
                                    StoreError::OutOfRange {
                                        attribute: attr.name.clone(),
                                        value: x.to_string(),
                                    },
                                ))
                            }
                            _ => {
                                return Err(batch(
                                    i,
                                    StoreError::TypeMismatch {
                                        attribute: attr.name.clone(),
                                        expected: attr.dtype.type_name(),
                                    },
                                ))
                            }
                        }
                    }
                    StagedColumn::Ints(ints)
                }
            };
            staged.push(staged_column);
        }
        for (column, staged_column) in self.columns.iter_mut().zip(staged) {
            match (column, staged_column) {
                (Column::Categorical(v), StagedColumn::Codes(c)) => v.extend(c),
                (Column::Numeric(v), StagedColumn::Nums(x)) => v.extend(x),
                (Column::Integer(v), StagedColumn::Ints(x)) => v.extend(x),
                _ => unreachable!("staged columns are type-checked above"),
            }
        }
        self.len += rows.len();
        Ok(())
    }

    /// Read back row `row` as labelled [`Value`]s (for reports and CSV
    /// export). Returns `None` when `row >= len()`.
    pub fn row(&self, row: usize) -> Option<Vec<Value>> {
        if row >= self.len {
            return None;
        }
        let mut out = Vec::with_capacity(self.schema.width());
        for (attr, column) in self.schema.attributes().iter().zip(&self.columns) {
            out.push(match column {
                Column::Categorical(v) => Value::Cat(
                    attr.label_of(v[row])
                        .expect("validated on insert")
                        .to_string(),
                ),
                Column::Numeric(v) => Value::Num(v[row]),
                Column::Integer(v) => Value::Int(v[row]),
            });
        }
        Some(out)
    }

    /// Categorical code of attribute `attr_idx` at row `row`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotCategorical`].
    ///
    /// # Panics
    ///
    /// When `row` is out of bounds (internal callers always hold valid
    /// row ids from a [`crate::RowSet`] of this table).
    pub fn code_at(&self, attr_idx: usize, row: usize) -> Result<u32, StoreError> {
        self.columns[attr_idx]
            .as_categorical()
            .map(|codes| codes[row])
            .ok_or_else(|| StoreError::NotCategorical {
                attribute: self.schema.attribute(attr_idx).name.clone(),
            })
    }

    /// Observed-attribute value as `f64` at `row` — the accessor scoring
    /// functions use.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotNumeric`] for categorical attributes.
    pub fn f64_at(&self, attr_idx: usize, row: usize) -> Result<f64, StoreError> {
        self.columns[attr_idx]
            .value_as_f64(row)
            .ok_or_else(|| StoreError::NotNumeric {
                attribute: self.schema.attribute(attr_idx).name.clone(),
            })
    }

    /// Overwrite the numeric value of attribute `attr_idx` at `row`
    /// (used by simulations that evolve observed attributes, e.g.
    /// approval rates rising after successful hires).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotNumeric`] for non-numeric columns and
    /// [`StoreError::OutOfRange`] for values outside the attribute's
    /// declared range (or any value on integer columns — evolve those
    /// via a dedicated integer setter if ever needed).
    pub fn set_f64(&mut self, attr_idx: usize, row: usize, value: f64) -> Result<(), StoreError> {
        let attr = self.schema.attribute(attr_idx);
        let name = attr.name.clone();
        match (&attr.dtype, &mut self.columns[attr_idx]) {
            (DataType::Numeric { min, max }, Column::Numeric(v)) => {
                if !value.is_finite() || value < *min || value > *max {
                    return Err(StoreError::OutOfRange {
                        attribute: name,
                        value: value.to_string(),
                    });
                }
                if row >= v.len() {
                    return Err(StoreError::RowArity {
                        expected: v.len(),
                        got: row,
                    });
                }
                v[row] = value;
                Ok(())
            }
            _ => Err(StoreError::NotNumeric { attribute: name }),
        }
    }

    /// Overwrite the categorical value of attribute `attr_idx` at `row`
    /// with `label` (used by the stream layer's `AttributeChanged`
    /// events). Returns `(old_code, new_code)` so callers can maintain
    /// inverted indexes in place.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotCategorical`] for non-categorical columns,
    /// [`StoreError::UnknownCategory`] for labels outside the domain,
    /// [`StoreError::RowArity`] for out-of-bounds rows.
    pub fn set_cat(
        &mut self,
        attr_idx: usize,
        row: usize,
        label: &str,
    ) -> Result<(u32, u32), StoreError> {
        let attr = self.schema.attribute(attr_idx);
        let new_code = attr.code_of(label)?;
        let name = attr.name.clone();
        match &mut self.columns[attr_idx] {
            Column::Categorical(v) => {
                if row >= v.len() {
                    return Err(StoreError::RowArity {
                        expected: v.len(),
                        got: row,
                    });
                }
                let old_code = v[row];
                v[row] = new_code;
                Ok((old_code, new_code))
            }
            _ => Err(StoreError::NotCategorical { attribute: name }),
        }
    }

    /// Append a new column (and its attribute definition) to the table.
    /// Used by bucketisation to add derived categorical attributes. The
    /// column must already contain exactly one value per existing row.
    ///
    /// # Errors
    ///
    /// [`StoreError::RowArity`] when the column length differs from the
    /// table length; [`StoreError::DuplicateAttribute`] when the name is
    /// taken.
    pub fn append_column(
        &mut self,
        def: crate::schema::AttributeDef,
        column: Column,
    ) -> Result<(), StoreError> {
        if column.len() != self.len {
            return Err(StoreError::RowArity {
                expected: self.len,
                got: column.len(),
            });
        }
        if self.schema.index_of(&def.name).is_ok() {
            return Err(StoreError::DuplicateAttribute { name: def.name });
        }
        // Rebuild the schema with the new attribute appended.
        let mut builder = Schema::builder();
        for a in self.schema.attributes() {
            builder = builder.attribute(a.clone());
        }
        builder = builder.attribute(def);
        self.schema = builder.build()?;
        self.columns.push(column);
        Ok(())
    }
}

enum StagedValue {
    Code(u32),
    Num(f64),
    Int(i64),
}

enum StagedColumn {
    Codes(Vec<u32>),
    Nums(Vec<f64>),
    Ints(Vec<i64>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeKind, Schema};

    fn schema() -> Schema {
        Schema::builder()
            .categorical("gender", AttributeKind::Protected, &["Male", "Female"])
            .integer("yob", AttributeKind::Protected, 1950, 2009)
            .numeric("approval", AttributeKind::Observed, 25.0, 100.0)
            .build()
            .unwrap()
    }

    fn table_with_rows() -> Table {
        let mut t = Table::new(schema());
        t.push_row(&[Value::cat("Male"), Value::int(1980), Value::num(75.0)])
            .unwrap();
        t.push_row(&[Value::cat("Female"), Value::int(1999), Value::num(90.0)])
            .unwrap();
        t
    }

    #[test]
    fn push_and_read_back() {
        let t = table_with_rows();
        assert_eq!(t.len(), 2);
        let row = t.row(1).unwrap();
        assert_eq!(row[0], Value::cat("Female"));
        assert_eq!(row[1], Value::int(1999));
        assert_eq!(row[2], Value::num(90.0));
        assert!(t.row(2).is_none());
    }

    #[test]
    fn arity_checked() {
        let mut t = Table::new(schema());
        let err = t.push_row(&[Value::cat("Male")]).unwrap_err();
        assert!(matches!(
            err,
            StoreError::RowArity {
                expected: 3,
                got: 1
            }
        ));
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn type_mismatch_checked() {
        let mut t = Table::new(schema());
        let err = t
            .push_row(&[Value::num(1.0), Value::int(1980), Value::num(50.0)])
            .unwrap_err();
        assert!(matches!(err, StoreError::TypeMismatch { .. }));
    }

    #[test]
    fn unknown_category_checked() {
        let mut t = Table::new(schema());
        let err = t
            .push_row(&[Value::cat("Robot"), Value::int(1980), Value::num(50.0)])
            .unwrap_err();
        assert!(matches!(err, StoreError::UnknownCategory { .. }));
    }

    #[test]
    fn range_checked() {
        let mut t = Table::new(schema());
        let err = t
            .push_row(&[Value::cat("Male"), Value::int(1900), Value::num(50.0)])
            .unwrap_err();
        assert!(matches!(err, StoreError::OutOfRange { .. }));
        let err = t
            .push_row(&[Value::cat("Male"), Value::int(1980), Value::num(101.0)])
            .unwrap_err();
        assert!(matches!(err, StoreError::OutOfRange { .. }));
        let err = t
            .push_row(&[Value::cat("Male"), Value::int(1980), Value::num(f64::NAN)])
            .unwrap_err();
        assert!(matches!(err, StoreError::OutOfRange { .. }));
        assert_eq!(t.len(), 0, "failed inserts must not mutate the table");
    }

    #[test]
    fn failed_insert_leaves_columns_aligned() {
        let mut t = table_with_rows();
        // Fails on the *last* value; earlier columns must not grow.
        let _ = t.push_row(&[Value::cat("Male"), Value::int(1980), Value::num(999.0)]);
        assert_eq!(t.column(0).len(), 2);
        assert_eq!(t.column(1).len(), 2);
        assert_eq!(t.column(2).len(), 2);
    }

    #[test]
    fn typed_accessors() {
        let t = table_with_rows();
        assert_eq!(t.code_at(0, 0).unwrap(), 0);
        assert_eq!(t.code_at(0, 1).unwrap(), 1);
        assert!(matches!(
            t.code_at(2, 0),
            Err(StoreError::NotCategorical { .. })
        ));
        assert_eq!(t.f64_at(2, 0).unwrap(), 75.0);
        assert_eq!(t.f64_at(1, 1).unwrap(), 1999.0);
        assert!(matches!(t.f64_at(0, 0), Err(StoreError::NotNumeric { .. })));
    }

    #[test]
    fn column_by_name() {
        let t = table_with_rows();
        assert!(t.column_by_name("approval").unwrap().as_numeric().is_some());
        assert!(t.column_by_name("nope").is_err());
    }

    #[test]
    fn set_f64_mutates_with_validation() {
        let mut t = table_with_rows();
        t.set_f64(2, 0, 99.0).unwrap();
        assert_eq!(t.f64_at(2, 0).unwrap(), 99.0);
        assert!(matches!(
            t.set_f64(2, 0, 200.0),
            Err(StoreError::OutOfRange { .. })
        ));
        assert!(matches!(
            t.set_f64(2, 0, f64::NAN),
            Err(StoreError::OutOfRange { .. })
        ));
        assert!(matches!(
            t.set_f64(0, 0, 1.0),
            Err(StoreError::NotNumeric { .. })
        ));
        assert!(matches!(
            t.set_f64(1, 0, 1980.0),
            Err(StoreError::NotNumeric { .. })
        ));
        assert!(matches!(
            t.set_f64(2, 9, 50.0),
            Err(StoreError::RowArity { .. })
        ));
    }

    #[test]
    fn push_rows_matches_per_row_appends() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::cat("Male"), Value::int(1980), Value::num(75.0)],
            vec![Value::cat("Female"), Value::int(1999), Value::num(90.0)],
            vec![Value::cat("Female"), Value::int(1955), Value::num(25.0)],
        ];
        let mut batched = Table::new(schema());
        batched.push_rows(&rows).unwrap();
        let mut one_by_one = Table::new(schema());
        for row in &rows {
            one_by_one.push_row(row).unwrap();
        }
        assert_eq!(batched, one_by_one);
        // Appending onto a non-empty table works too.
        batched.push_rows(&rows[..1]).unwrap();
        assert_eq!(batched.len(), 4);
        assert_eq!(batched.row(3).unwrap()[0], Value::cat("Male"));
    }

    #[test]
    fn push_rows_rejects_atomically_with_row_index() {
        let mut t = table_with_rows();
        let err = t
            .push_rows(&[
                vec![Value::cat("Male"), Value::int(1980), Value::num(75.0)],
                vec![Value::cat("Robot"), Value::int(1980), Value::num(75.0)],
            ])
            .unwrap_err();
        match err {
            StoreError::BatchRow { row, error } => {
                assert_eq!(row, 1);
                assert!(matches!(*error, StoreError::UnknownCategory { .. }));
            }
            other => panic!("expected BatchRow, got {other:?}"),
        }
        assert_eq!(t.len(), 2, "failed batches must not mutate the table");
        for col in 0..3 {
            assert_eq!(t.column(col).len(), 2);
        }
        // Arity failure reports the offending row as well.
        let err = t
            .push_rows(&[
                vec![Value::cat("Male"), Value::int(1980), Value::num(75.0)],
                vec![],
            ])
            .unwrap_err();
        assert!(matches!(err, StoreError::BatchRow { row: 1, .. }));
        // Range and type failures carry the row too.
        let err = t
            .push_rows(&[vec![Value::cat("Male"), Value::int(1900), Value::num(75.0)]])
            .unwrap_err();
        match err {
            StoreError::BatchRow { row: 0, error } => {
                assert!(matches!(*error, StoreError::OutOfRange { .. }))
            }
            other => panic!("expected BatchRow, got {other:?}"),
        }
        let err = t
            .push_rows(&[vec![Value::num(0.0), Value::int(1980), Value::num(75.0)]])
            .unwrap_err();
        match err {
            StoreError::BatchRow { row: 0, error } => {
                assert!(matches!(*error, StoreError::TypeMismatch { .. }))
            }
            other => panic!("expected BatchRow, got {other:?}"),
        }
    }

    #[test]
    fn push_rows_empty_batch_is_noop() {
        let mut t = table_with_rows();
        t.push_rows(&[]).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn set_cat_swaps_code_and_reports_old() {
        let mut t = table_with_rows();
        let (old, new) = t.set_cat(0, 0, "Female").unwrap();
        assert_eq!((old, new), (0, 1));
        assert_eq!(t.code_at(0, 0).unwrap(), 1);
        assert!(matches!(
            t.set_cat(0, 0, "Robot"),
            Err(StoreError::UnknownCategory { .. })
        ));
        assert!(matches!(
            t.set_cat(2, 0, "Male"),
            Err(StoreError::NotCategorical { .. })
        ));
        assert!(matches!(
            t.set_cat(0, 9, "Male"),
            Err(StoreError::RowArity { .. })
        ));
    }

    #[test]
    fn append_column_extends_schema() {
        let mut t = table_with_rows();
        let def = crate::schema::AttributeDef {
            name: "age_band".into(),
            kind: AttributeKind::Protected,
            dtype: crate::schema::DataType::Categorical {
                domain: vec!["young".into(), "old".into()],
            },
        };
        t.append_column(def, Column::Categorical(vec![1, 0]))
            .unwrap();
        assert_eq!(t.schema().width(), 4);
        assert_eq!(t.code_at(3, 0).unwrap(), 1);
    }

    #[test]
    fn append_column_validates() {
        let mut t = table_with_rows();
        let def = crate::schema::AttributeDef {
            name: "x".into(),
            kind: AttributeKind::Metadata,
            dtype: crate::schema::DataType::Categorical {
                domain: vec!["a".into()],
            },
        };
        // Wrong length.
        let err = t
            .append_column(def.clone(), Column::Categorical(vec![0]))
            .unwrap_err();
        assert!(matches!(err, StoreError::RowArity { .. }));
        // Duplicate name.
        let dup = crate::schema::AttributeDef {
            name: "gender".into(),
            ..def
        };
        let err = t
            .append_column(dup, Column::Categorical(vec![0, 0]))
            .unwrap_err();
        assert!(matches!(err, StoreError::DuplicateAttribute { .. }));
    }
}
