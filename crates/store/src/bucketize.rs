//! Deriving categorical attributes from numeric ones.
//!
//! The paper's worker schema has numeric protected attributes (Year of
//! Birth ∈ [1950, 2009], Years of Experience ∈ [0, 30]) but partitions
//! are formed on attribute *values*, so numeric protected attributes are
//! discretised into bands first (the paper's exhaustive-search remark
//! implies ≤ 5 values per attribute). Bucketisation appends a derived
//! categorical column so the original values stay available.

use crate::column::Column;
use crate::schema::{AttributeDef, AttributeKind, DataType};
use crate::table::Table;
use crate::StoreError;

/// How to cut a numeric range into buckets.
#[derive(Debug, Clone)]
pub enum BucketSpec {
    /// `n` equal-width buckets over the attribute's declared range.
    EqualWidth {
        /// Number of buckets.
        n: usize,
    },
    /// Explicit interior boundaries (strictly increasing). `k` boundaries
    /// produce `k + 1` buckets.
    Boundaries {
        /// Interior cut points.
        cuts: Vec<f64>,
    },
}

/// Append to `table` a categorical column named `new_name`, derived by
/// bucketising numeric/integer attribute `source`. The new attribute
/// inherits [`AttributeKind::Protected`] iff the source is protected.
/// Bucket labels look like `[1950,1962)`; the final bucket is closed.
///
/// Returns the index of the new attribute.
///
/// # Errors
///
/// [`StoreError::NotNumeric`] for categorical sources,
/// [`StoreError::BadBuckets`] for invalid specs, and the
/// [`Table::append_column`] errors (duplicate name).
pub fn bucketize(
    table: &mut Table,
    source: &str,
    new_name: &str,
    spec: &BucketSpec,
) -> Result<usize, StoreError> {
    let src_idx = table.schema().index_of(source)?;
    let attr = table.schema().attribute(src_idx).clone();
    let (lo, hi) = match &attr.dtype {
        DataType::Numeric { min, max } => (*min, *max),
        DataType::Integer { min, max } => (*min as f64, *max as f64),
        DataType::Categorical { .. } => {
            return Err(StoreError::NotNumeric {
                attribute: attr.name.clone(),
            })
        }
    };
    let edges: Vec<f64> = match spec {
        BucketSpec::EqualWidth { n } => {
            if *n == 0 {
                return Err(StoreError::BadBuckets {
                    reason: "zero buckets",
                });
            }
            if lo >= hi && *n > 1 {
                return Err(StoreError::BadBuckets {
                    reason: "degenerate range",
                });
            }
            (0..=*n)
                .map(|i| lo + (hi - lo) * i as f64 / *n as f64)
                .collect()
        }
        BucketSpec::Boundaries { cuts } => {
            for w in cuts.windows(2) {
                if w[0] >= w[1] {
                    return Err(StoreError::BadBuckets {
                        reason: "cuts must strictly increase",
                    });
                }
            }
            if cuts.iter().any(|c| !c.is_finite() || *c <= lo || *c >= hi) {
                return Err(StoreError::BadBuckets {
                    reason: "cuts must lie strictly inside the attribute range",
                });
            }
            let mut edges = Vec::with_capacity(cuts.len() + 2);
            edges.push(lo);
            edges.extend_from_slice(cuts);
            edges.push(hi);
            edges
        }
    };
    let n_buckets = edges.len() - 1;
    let is_integer = matches!(attr.dtype, DataType::Integer { .. });
    let domain: Vec<String> = (0..n_buckets)
        .map(|i| {
            let (a, b) = (edges[i], edges[i + 1]);
            let closing = if i + 1 == n_buckets { ']' } else { ')' };
            if is_integer {
                format!("[{},{}{}", a.round() as i64, b.round() as i64, closing)
            } else {
                format!("[{a},{b}{closing}")
            }
        })
        .collect();

    let column = table.column(src_idx);
    let codes: Vec<u32> = if let Some(values) = column.as_numeric() {
        bucket_codes(values, &edges)
    } else if let Some(values) = column.as_integer() {
        let mut scratch = Vec::with_capacity(values.len());
        for chunk in values.chunks(CLASSIFY_CHUNK) {
            scratch.extend(chunk.iter().map(|&x| x as f64));
        }
        bucket_codes(&scratch, &edges)
    } else {
        // Unreachable for numeric/integer sources (categorical was
        // rejected above); kept as the error-propagating fallback.
        let mut codes = Vec::with_capacity(table.len());
        for row in 0..table.len() {
            let v = table.f64_at(src_idx, row)?;
            codes.push(bucket_of(v, &edges) as u32);
        }
        codes
    };
    let kind = if attr.kind == AttributeKind::Protected {
        AttributeKind::Protected
    } else {
        AttributeKind::Metadata
    };
    let def = AttributeDef {
        name: new_name.to_string(),
        kind,
        dtype: DataType::Categorical { domain },
    };
    table.append_column(def, Column::Categorical(codes))?;
    Ok(table.schema().width() - 1)
}

/// Bucketise **every** numeric/integer protected attribute of `table`
/// into `n` equal-width bands named `<attr>_band`, making them all
/// splittable. Returns the new attribute indexes. Attributes already
/// accompanied by a `<attr>_band` column are skipped (idempotent).
///
/// # Errors
///
/// Propagates [`StoreError`] from the individual bucketisations.
pub fn bucketize_all_protected(table: &mut Table, n: usize) -> Result<Vec<usize>, StoreError> {
    let candidates: Vec<String> = table
        .schema()
        .attributes()
        .iter()
        .filter(|a| {
            a.kind == AttributeKind::Protected && !matches!(a.dtype, DataType::Categorical { .. })
        })
        .map(|a| a.name.clone())
        .collect();
    let mut added = Vec::new();
    for name in candidates {
        let band = format!("{name}_band");
        if table.schema().index_of(&band).is_ok() {
            continue;
        }
        added.push(bucketize(
            table,
            &name,
            &band,
            &BucketSpec::EqualWidth { n },
        )?);
    }
    Ok(added)
}

/// Index of the bucket containing `v` (edges sorted; clamped at both
/// ends; final bucket closed above).
fn bucket_of(v: f64, edges: &[f64]) -> usize {
    let n = edges.len() - 1;
    if v <= edges[0] {
        return 0;
    }
    if v >= edges[n] {
        return n - 1;
    }
    match edges.binary_search_by(|e| e.partial_cmp(&v).expect("finite")) {
        Ok(i) => i.min(n - 1),
        Err(i) => i - 1,
    }
}

/// Fixed-width chunk the classification kernels walk per iteration of
/// their outer loop; bounds the live working set so the compare-count
/// inner loop stays in cache and autovectorizes.
const CLASSIFY_CHUNK: usize = 4096;

/// Bulk form of [`bucket_of`]: classify every value against `edges`
/// (`edges.len() >= 2`, strictly increasing) in one chunked, branchless
/// pass. The bucket of `v` is the clamped count of interior-or-upper
/// edges `<= v` — a pure compare-and-add over a handful of edges, which
/// the compiler vectorizes, unlike the per-value binary search.
///
/// Agrees with [`bucket_of`] for every finite `v` and at every edge
/// (ties go right, both ends clamped, final bucket closed above). The
/// only divergence is `NaN`, where [`bucket_of`] panics and this kernel
/// classifies into bucket 0 — table columns are range-validated on
/// insert, so `NaN` never reaches either path in practice.
pub fn bucket_codes(values: &[f64], edges: &[f64]) -> Vec<u32> {
    debug_assert!(edges.len() >= 2);
    let top = (edges.len() - 2) as u32;
    let cuts = &edges[1..];
    let mut codes = Vec::with_capacity(values.len());
    for chunk in values.chunks(CLASSIFY_CHUNK) {
        codes.extend(chunk.iter().map(|&v| {
            let mut c = 0u32;
            for &e in cuts {
                c += u32::from(e <= v);
            }
            c.min(top)
        }));
    }
    codes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::Value;
    use crate::RowSet;

    fn table() -> Table {
        let schema = Schema::builder()
            .categorical("gender", AttributeKind::Protected, &["Male", "Female"])
            .integer("yob", AttributeKind::Protected, 1950, 2009)
            .numeric("approval", AttributeKind::Observed, 25.0, 100.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (g, y, a) in [
            ("Male", 1950, 25.0),
            ("Female", 1961, 50.0),
            ("Male", 1962, 75.0),
            ("Female", 1999, 99.0),
            ("Male", 2009, 100.0),
        ] {
            t.push_row(&[Value::cat(g), Value::int(y), Value::num(a)])
                .unwrap();
        }
        t
    }

    #[test]
    fn equal_width_buckets_integer_attribute() {
        let mut t = table();
        let idx = bucketize(&mut t, "yob", "yob_band", &BucketSpec::EqualWidth { n: 5 }).unwrap();
        assert_eq!(idx, 3);
        let attr = t.schema().attribute(idx);
        assert_eq!(attr.cardinality(), Some(5));
        assert_eq!(attr.kind, AttributeKind::Protected);
        // Width 11.8: 1950->0, 1961->0, 1962->1, 1999->4, 2009->4.
        let codes = t.column(idx).as_categorical().unwrap();
        assert_eq!(codes, &[0, 0, 1, 4, 4]);
        // The derived attribute becomes splittable.
        assert!(t.schema().splittable().contains(&idx));
    }

    #[test]
    fn labels_render_intervals() {
        let mut t = table();
        let idx = bucketize(&mut t, "yob", "band", &BucketSpec::EqualWidth { n: 2 }).unwrap();
        let attr = t.schema().attribute(idx);
        assert_eq!(attr.label_of(0).unwrap(), "[1950,1980)");
        assert_eq!(attr.label_of(1).unwrap(), "[1980,2009]");
    }

    #[test]
    fn explicit_boundaries() {
        let mut t = table();
        let idx = bucketize(
            &mut t,
            "approval",
            "approval_band",
            &BucketSpec::Boundaries {
                cuts: vec![50.0, 90.0],
            },
        )
        .unwrap();
        let codes = t.column(idx).as_categorical().unwrap();
        // 25->0, 50->1 (edge goes right), 75->1, 99->2, 100->2.
        assert_eq!(codes, &[0, 1, 1, 2, 2]);
        // Derived from an observed attribute -> metadata, not splittable.
        assert_eq!(t.schema().attribute(idx).kind, AttributeKind::Metadata);
        assert!(!t.schema().splittable().contains(&idx));
    }

    #[test]
    fn bad_specs_rejected() {
        let mut t = table();
        assert!(matches!(
            bucketize(&mut t, "yob", "b", &BucketSpec::EqualWidth { n: 0 }),
            Err(StoreError::BadBuckets { .. })
        ));
        assert!(matches!(
            bucketize(
                &mut t,
                "yob",
                "b",
                &BucketSpec::Boundaries {
                    cuts: vec![1990.0, 1960.0]
                }
            ),
            Err(StoreError::BadBuckets { .. })
        ));
        assert!(matches!(
            bucketize(
                &mut t,
                "yob",
                "b",
                &BucketSpec::Boundaries { cuts: vec![1940.0] }
            ),
            Err(StoreError::BadBuckets { .. })
        ));
        assert!(matches!(
            bucketize(&mut t, "gender", "b", &BucketSpec::EqualWidth { n: 2 }),
            Err(StoreError::NotNumeric { .. })
        ));
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut t = table();
        assert!(matches!(
            bucketize(&mut t, "yob", "gender", &BucketSpec::EqualWidth { n: 2 }),
            Err(StoreError::DuplicateAttribute { .. })
        ));
    }

    #[test]
    fn bucketize_all_protected_is_idempotent() {
        let mut t = table();
        let added = bucketize_all_protected(&mut t, 5).unwrap();
        assert_eq!(added.len(), 1, "only yob is numeric protected");
        assert_eq!(t.schema().index_of("yob_band").unwrap(), added[0]);
        // approval is observed -> untouched.
        assert!(t.schema().index_of("approval_band").is_err());
        // Second call adds nothing.
        assert!(bucketize_all_protected(&mut t, 5).unwrap().is_empty());
        assert!(t.schema().splittable().contains(&added[0]));
    }

    #[test]
    fn bulk_kernel_matches_scalar_bucket_of() {
        // Edges with exact-value collisions, boundary values, and
        // out-of-range values on both sides.
        let edges = [0.0, 1.5, 3.0, 4.5, 6.0];
        let mut values = vec![-1.0, 0.0, 0.1, 1.5, 2.9, 3.0, 4.5, 5.9, 6.0, 7.0];
        for i in 0..100 {
            values.push((i as f64) * 0.071 - 0.5);
        }
        let bulk = bucket_codes(&values, &edges);
        for (&v, &code) in values.iter().zip(&bulk) {
            assert_eq!(
                code as usize,
                bucket_of(v, &edges),
                "kernel diverged from bucket_of at v={v}"
            );
        }
    }

    #[test]
    fn buckets_cover_all_rows() {
        let mut t = table();
        let idx = bucketize(&mut t, "yob", "band", &BucketSpec::EqualWidth { n: 3 }).unwrap();
        let groups = crate::groupby::group_by(&t, &RowSet::all(t.len()), idx).unwrap();
        let covered: usize = groups.iter().map(|(_, rs)| rs.len()).sum();
        assert_eq!(covered, t.len());
    }
}
