//! Deterministic row-range sharding.
//!
//! Every data-parallel kernel in the workspace slices its input by
//! **fixed row-id ranges** — shard `s` of a [`ShardPlan`] owns the rows
//! whose ids fall in `[bounds[s], bounds[s+1])`, regardless of which
//! rows a particular partition actually contains. Because row sets are
//! sorted, a partition sliced by such ranges decomposes into contiguous
//! subslices whose concatenation *in shard order* reproduces the serial
//! walk exactly; per-shard results merged in that order are therefore
//! bit-identical to the unsharded kernels for every shard count and
//! every thread count. Counts are merged by integer addition (exact),
//! and row vectors by concatenation (order-preserving) — no
//! floating-point reassociation happens in any sharded merge.
//!
//! The plan itself is pure layout: dispatching shards onto worker
//! threads is the caller's business (`fairjob-core` runs them on its
//! `WorkerPool`), which keeps this crate dependency-free and the layout
//! testable in isolation.

use crate::RowSet;
use std::ops::Range;

/// Row-count granule the auto policy aims at per shard: small enough to
/// expose parallelism on large audits, large enough that per-shard
/// bookkeeping (one count array per code) stays negligible.
pub const AUTO_ROWS_PER_SHARD: usize = 65_536;

/// Upper bound the auto policy puts on the shard count, as a multiple
/// of the advertised parallelism (over-subscription evens out skewed
/// shards without drowning the pool in tiny tasks).
pub const AUTO_OVERSUBSCRIPTION: usize = 4;

/// How a store consumer wants its row-parallel kernels sharded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ShardPolicy {
    /// Pick a shard count from the row count and available parallelism
    /// (the default).
    #[default]
    Auto,
    /// Exactly this many shards (clamped to the row count).
    Fixed(usize),
    /// No sharding: run the legacy scalar kernels unchanged. This is
    /// the baseline the `shard_scale` bench gates against.
    Disabled,
}

impl ShardPolicy {
    /// Resolve the policy into a plan over `n_rows` rows, or `None`
    /// when sharding is disabled. `parallelism` is the caller's thread
    /// budget (only consulted by [`ShardPolicy::Auto`]).
    pub fn plan(self, n_rows: usize, parallelism: usize) -> Option<ShardPlan> {
        match self {
            ShardPolicy::Disabled => None,
            ShardPolicy::Fixed(shards) => Some(ShardPlan::new(n_rows, shards)),
            ShardPolicy::Auto => {
                let want = n_rows.div_ceil(AUTO_ROWS_PER_SHARD).max(1);
                let cap = parallelism.max(1) * AUTO_OVERSUBSCRIPTION;
                Some(ShardPlan::new(n_rows, want.min(cap)))
            }
        }
    }

    /// Parse the CLI / FairQL surface form: `auto`, `off`, or a count.
    pub fn parse(text: &str) -> Option<ShardPolicy> {
        match text {
            "auto" => Some(ShardPolicy::Auto),
            "off" | "disabled" | "0" => Some(ShardPolicy::Disabled),
            n => n
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .map(ShardPolicy::Fixed),
        }
    }
}

impl std::fmt::Display for ShardPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardPolicy::Auto => write!(f, "auto"),
            ShardPolicy::Fixed(n) => write!(f, "{n}"),
            ShardPolicy::Disabled => write!(f, "off"),
        }
    }
}

/// Fixed row-range shards over row ids `0..n_rows`.
///
/// Ranges are ceil-division even: the first `n_rows % shards` shards
/// hold one extra row. The layout depends only on `(n_rows, shards)` —
/// never on thread count or data — so every run of the same audit
/// produces the same shard boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    n_rows: usize,
    /// `shards + 1` boundaries; shard `s` owns rows `bounds[s]..bounds[s+1]`.
    bounds: Vec<u32>,
}

impl ShardPlan {
    /// Plan `shards` row ranges over `0..n_rows` (clamped to at least 1
    /// shard and at most one shard per row, so no shard is empty unless
    /// the table is).
    pub fn new(n_rows: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, n_rows.max(1));
        let base = n_rows / shards;
        let extra = n_rows % shards;
        let mut bounds = Vec::with_capacity(shards + 1);
        let mut at = 0usize;
        bounds.push(0);
        for s in 0..shards {
            at += base + usize::from(s < extra);
            bounds.push(at as u32);
        }
        debug_assert_eq!(at, n_rows);
        ShardPlan { n_rows, bounds }
    }

    /// Plan up to `shards` row ranges whose **interior boundaries fall
    /// on multiples of `granule`** — the paged store shards on page
    /// boundaries (granule = rows per page) so no shard ever splits a
    /// page. Boundaries are spread evenly in granule units; with fewer
    /// granules than requested shards the plan degrades to fewer
    /// (larger) shards. Results stay bit-identical under any plan — the
    /// alignment is purely an I/O-locality layout choice.
    pub fn new_aligned(n_rows: usize, shards: usize, granule: usize) -> Self {
        let granule = granule.max(1);
        let granules = n_rows / granule;
        let shards = shards.clamp(1, n_rows.max(1));
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0u32);
        let mut last = 0usize;
        for s in 1..shards {
            let b = (s * granules / shards) * granule;
            if b > last && b < n_rows {
                bounds.push(b as u32);
                last = b;
            }
        }
        bounds.push(n_rows as u32);
        ShardPlan { n_rows, bounds }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total rows the plan covers.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The row-id range owned by shard `s`.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.bounds[s] as usize..self.bounds[s + 1] as usize
    }

    /// Slice a **sorted** row-id slice into per-shard subslices. The
    /// concatenation of the returned slices in order is exactly `rows`.
    pub fn shard_slices<'a>(&self, rows: &'a [u32]) -> ShardedRows<'a> {
        let mut cuts = Vec::with_capacity(self.bounds.len());
        let mut from = 0usize;
        cuts.push(0u32);
        for &bound in &self.bounds[1..] {
            from += rows[from..].partition_point(|&r| r < bound);
            cuts.push(from as u32);
        }
        ShardedRows { rows, cuts }
    }

    /// Slice a [`RowSet`] into per-shard subslices (see
    /// [`ShardPlan::shard_slices`]).
    pub fn shard_rows<'a>(&self, rows: &'a RowSet) -> ShardedRows<'a> {
        self.shard_slices(rows.rows())
    }
}

/// A sorted row slice decomposed into per-shard contiguous subslices —
/// the `ShardedRows` layout every data-parallel kernel consumes. Built
/// by [`ShardPlan::shard_rows`]; zero-copy over the parent set.
#[derive(Debug, Clone)]
pub struct ShardedRows<'a> {
    rows: &'a [u32],
    /// `shards + 1` cut points into `rows`.
    cuts: Vec<u32>,
}

impl<'a> ShardedRows<'a> {
    /// Number of shards (including empty ones).
    pub fn shards(&self) -> usize {
        self.cuts.len() - 1
    }

    /// The rows of shard `s` (possibly empty).
    pub fn shard(&self, s: usize) -> &'a [u32] {
        &self.rows[self.cuts[s] as usize..self.cuts[s + 1] as usize]
    }

    /// Total rows across all shards.
    pub fn total_rows(&self) -> usize {
        self.rows.len()
    }

    /// Iterate the per-shard slices in shard order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [u32]> + '_ {
        (0..self.shards()).map(move |s| self.shard(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_rows_evenly() {
        let plan = ShardPlan::new(10, 3);
        assert_eq!(plan.shards(), 3);
        assert_eq!(plan.range(0), 0..4);
        assert_eq!(plan.range(1), 4..7);
        assert_eq!(plan.range(2), 7..10);
    }

    #[test]
    fn plan_clamps_shard_count() {
        assert_eq!(ShardPlan::new(2, 7).shards(), 2);
        assert_eq!(ShardPlan::new(5, 0).shards(), 1);
        // An empty table still yields one (empty) shard.
        let empty = ShardPlan::new(0, 4);
        assert_eq!(empty.shards(), 1);
        assert_eq!(empty.range(0), 0..0);
    }

    #[test]
    fn shard_rows_concatenate_to_parent() {
        let rows = RowSet::from_rows(vec![0, 3, 4, 6, 7, 9, 11]);
        for shards in 1..6 {
            let plan = ShardPlan::new(12, shards);
            let sharded = plan.shard_rows(&rows);
            let mut rebuilt: Vec<u32> = Vec::new();
            for s in 0..sharded.shards() {
                for &r in sharded.shard(s) {
                    let range = plan.range(s);
                    assert!(range.contains(&(r as usize)), "row {r} outside shard {s}");
                    rebuilt.push(r);
                }
            }
            assert_eq!(rebuilt, rows.rows());
            assert_eq!(sharded.total_rows(), rows.len());
        }
    }

    #[test]
    fn policy_resolution() {
        assert!(ShardPolicy::Disabled.plan(100, 4).is_none());
        assert_eq!(ShardPolicy::Fixed(3).plan(100, 1).unwrap().shards(), 3);
        // Auto: one shard per granule, capped by parallelism.
        let auto = ShardPolicy::Auto.plan(AUTO_ROWS_PER_SHARD * 10, 2).unwrap();
        assert_eq!(auto.shards(), 2 * AUTO_OVERSUBSCRIPTION);
        assert_eq!(ShardPolicy::Auto.plan(100, 8).unwrap().shards(), 1);
    }

    #[test]
    fn policy_parses_surface_forms() {
        assert_eq!(ShardPolicy::parse("auto"), Some(ShardPolicy::Auto));
        assert_eq!(ShardPolicy::parse("off"), Some(ShardPolicy::Disabled));
        assert_eq!(ShardPolicy::parse("0"), Some(ShardPolicy::Disabled));
        assert_eq!(ShardPolicy::parse("5"), Some(ShardPolicy::Fixed(5)));
        assert_eq!(ShardPolicy::parse("nope"), None);
        assert_eq!(ShardPolicy::Auto.to_string(), "auto");
        assert_eq!(ShardPolicy::Fixed(5).to_string(), "5");
        assert_eq!(ShardPolicy::Disabled.to_string(), "off");
    }
}
