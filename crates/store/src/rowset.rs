//! Sorted sets of row ids — the physical representation of a partition.

/// A sorted, duplicate-free set of row ids.
///
/// Partitions of workers are row sets; the audit algorithms split them,
/// intersect them with predicate results, and iterate them to histogram
/// scores. Sorted `Vec<u32>` keeps all of those operations linear and
/// cache-friendly at the population sizes the paper evaluates (≤ 10⁴
/// rows) while staying simple to reason about.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RowSet {
    rows: Vec<u32>,
}

impl RowSet {
    /// The empty set.
    pub fn empty() -> Self {
        RowSet { rows: Vec::new() }
    }

    /// All rows `0..n`.
    pub fn all(n: usize) -> Self {
        RowSet {
            rows: (0..n as u32).collect(),
        }
    }

    /// From an arbitrary list of row ids (sorted and deduplicated).
    pub fn from_rows(mut rows: Vec<u32>) -> Self {
        rows.sort_unstable();
        rows.dedup();
        RowSet { rows }
    }

    /// From a list already known to be sorted and duplicate-free.
    ///
    /// Debug-asserts the invariant; use [`RowSet::from_rows`] otherwise.
    pub fn from_sorted(rows: Vec<u32>) -> Self {
        debug_assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "rows must be sorted and unique"
        );
        RowSet { rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The row ids, sorted ascending.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// Iterate row ids as `usize` (convenient for column indexing).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.rows.iter().map(|&r| r as usize)
    }

    /// Membership test (binary search).
    pub fn contains(&self, row: u32) -> bool {
        self.rows.binary_search(&row).is_ok()
    }

    /// Insert a row, keeping the set sorted. Returns `false` when the
    /// row was already present. O(n) shift — intended for the stream
    /// layer's small per-epoch patches, not bulk construction.
    pub fn insert(&mut self, row: u32) -> bool {
        match self.rows.binary_search(&row) {
            Ok(_) => false,
            Err(pos) => {
                self.rows.insert(pos, row);
                true
            }
        }
    }

    /// Remove a row. Returns `false` when the row was not present.
    /// O(n) shift — see [`RowSet::insert`].
    pub fn remove(&mut self, row: u32) -> bool {
        match self.rows.binary_search(&row) {
            Ok(pos) => {
                self.rows.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Size ratio beyond which [`RowSet::intersect`] gallops the smaller
    /// side through the larger instead of merging linearly. Intersecting
    /// a full-table posting list with a small partition is the hot case
    /// of the audit algorithms' legacy split path; galloping turns its
    /// cost from O(posting) into O(partition · log posting).
    const GALLOP_FACTOR: usize = 16;

    /// Set intersection. Linear merge for similar sizes; when one side is
    /// more than [`Self::GALLOP_FACTOR`]× larger, the smaller side is
    /// galloped (exponential probe + binary search) through the larger.
    pub fn intersect(&self, other: &RowSet) -> RowSet {
        if self.len().saturating_mul(Self::GALLOP_FACTOR) < other.len() {
            return Self::intersect_gallop(&self.rows, &other.rows);
        }
        if other.len().saturating_mul(Self::GALLOP_FACTOR) < self.len() {
            return Self::intersect_gallop(&other.rows, &self.rows);
        }
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.rows.len() && j < other.rows.len() {
            match self.rows[i].cmp(&other.rows[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.rows[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        RowSet { rows: out }
    }

    /// Gallop each element of `small` through the unvisited suffix of
    /// `large`: exponential probing brackets the first candidate ≥ the
    /// probe value, a binary search pins it down. O(m · log(n/m)) for
    /// m ≪ n versus O(m + n) for the linear merge.
    fn intersect_gallop(small: &[u32], large: &[u32]) -> RowSet {
        let mut out = Vec::with_capacity(small.len());
        let mut base = 0usize;
        for &x in small {
            if base >= large.len() {
                break;
            }
            if large[base] < x {
                // Invariant: large[base + prev] < x, and either
                // base + bound is past the end or large[base + bound] >= x.
                let mut prev = 0usize;
                let mut bound = 1usize;
                while base + bound < large.len() && large[base + bound] < x {
                    prev = bound;
                    bound <<= 1;
                }
                let hi = (base + bound + 1).min(large.len());
                let offset = large[base + prev..hi].partition_point(|&v| v < x);
                base += prev + offset;
            }
            if base < large.len() && large[base] == x {
                out.push(x);
                base += 1;
            }
        }
        RowSet { rows: out }
    }

    /// Set union (linear merge).
    pub fn union(&self, other: &RowSet) -> RowSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.rows.len() && j < other.rows.len() {
            match self.rows[i].cmp(&other.rows[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.rows[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.rows[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.rows[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.rows[i..]);
        out.extend_from_slice(&other.rows[j..]);
        RowSet { rows: out }
    }

    /// Set difference `self \ other` (linear merge).
    pub fn difference(&self, other: &RowSet) -> RowSet {
        let mut out = Vec::with_capacity(self.len());
        let (mut i, mut j) = (0, 0);
        while i < self.rows.len() {
            if j >= other.rows.len() || self.rows[i] < other.rows[j] {
                out.push(self.rows[i]);
                i += 1;
            } else if self.rows[i] == other.rows[j] {
                i += 1;
                j += 1;
            } else {
                j += 1;
            }
        }
        RowSet { rows: out }
    }

    /// True when the two sets share no rows.
    pub fn is_disjoint(&self, other: &RowSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.rows.len() && j < other.rows.len() {
            match self.rows[i].cmp(&other.rows[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }
}

impl FromIterator<u32> for RowSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        RowSet::from_rows(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let s = RowSet::from_rows(vec![3, 1, 3, 2]);
        assert_eq!(s.rows(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn all_covers_range() {
        let s = RowSet::all(4);
        assert_eq!(s.rows(), &[0, 1, 2, 3]);
        assert!(RowSet::all(0).is_empty());
    }

    #[test]
    fn contains_uses_binary_search() {
        let s = RowSet::from_rows(vec![1, 5, 9]);
        assert!(s.contains(5));
        assert!(!s.contains(4));
    }

    #[test]
    fn intersect_union_difference() {
        let a = RowSet::from_rows(vec![1, 2, 3, 5]);
        let b = RowSet::from_rows(vec![2, 3, 4]);
        assert_eq!(a.intersect(&b).rows(), &[2, 3]);
        assert_eq!(a.union(&b).rows(), &[1, 2, 3, 4, 5]);
        assert_eq!(a.difference(&b).rows(), &[1, 5]);
        assert_eq!(b.difference(&a).rows(), &[4]);
    }

    #[test]
    fn operations_with_empty() {
        let a = RowSet::from_rows(vec![1, 2]);
        let e = RowSet::empty();
        assert_eq!(a.intersect(&e), e);
        assert_eq!(a.union(&e), a);
        assert_eq!(a.difference(&e), a);
        assert_eq!(e.difference(&a), e);
        assert!(a.is_disjoint(&e));
    }

    #[test]
    fn disjointness() {
        let a = RowSet::from_rows(vec![1, 3]);
        let b = RowSet::from_rows(vec![2, 4]);
        let c = RowSet::from_rows(vec![3]);
        assert!(a.is_disjoint(&b));
        assert!(!a.is_disjoint(&c));
    }

    #[test]
    fn asymmetric_intersect_gallops_to_the_same_result() {
        // Sizes chosen to force the gallop path in both argument orders.
        let small = RowSet::from_rows(vec![3, 250, 251, 999, 2000]);
        let large = RowSet::from_rows((0..1500).map(|i| i * 2).collect());
        let expected: Vec<u32> = small
            .rows()
            .iter()
            .copied()
            .filter(|&r| large.contains(r))
            .collect();
        assert_eq!(small.intersect(&large).rows(), &expected[..]);
        assert_eq!(large.intersect(&small).rows(), &expected[..]);
    }

    #[test]
    fn gallop_handles_probe_past_the_end() {
        let small = RowSet::from_rows(vec![5, 9_999_999]);
        let large = RowSet::from_rows((0..200).collect());
        assert_eq!(small.intersect(&large).rows(), &[5]);
        let all_past = RowSet::from_rows(vec![500, 600]);
        assert!(all_past.intersect(&large).is_empty());
    }

    #[test]
    fn gallop_single_element_sides() {
        let one = RowSet::from_rows(vec![77]);
        let large = RowSet::from_rows((0..100).collect());
        assert_eq!(one.intersect(&large).rows(), &[77]);
        assert_eq!(large.intersect(&one).rows(), &[77]);
        let missing = RowSet::from_rows(vec![1000]);
        assert!(missing.intersect(&large).is_empty());
    }

    #[test]
    fn from_iterator() {
        let s: RowSet = [4u32, 1, 4].into_iter().collect();
        assert_eq!(s.rows(), &[1, 4]);
    }

    #[test]
    fn iter_yields_usize() {
        let s = RowSet::from_rows(vec![2, 7]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![2, 7]);
    }
}
