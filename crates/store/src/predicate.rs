//! Conjunctive equality predicates over categorical attributes.
//!
//! A partition in an attribute-split tree is exactly the set of workers
//! matching a conjunction of `attribute = value` constraints (e.g.
//! `gender = Male ∧ language = English` in Figure 1 of the paper).

use crate::table::Table;
use crate::{RowSet, StoreError};
use std::fmt;

/// One `attribute = value` constraint (attribute index + dictionary code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EqConstraint {
    /// Index of the categorical attribute in the schema.
    pub attr: usize,
    /// Dictionary code the attribute must equal.
    pub code: u32,
}

/// A conjunction of equality constraints. The empty predicate matches all
/// rows.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Predicate {
    constraints: Vec<EqConstraint>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn always() -> Self {
        Predicate::default()
    }

    /// A single-constraint predicate.
    pub fn eq(attr: usize, code: u32) -> Self {
        Predicate {
            constraints: vec![EqConstraint { attr, code }],
        }
    }

    /// This predicate with one more constraint appended. Keeps
    /// constraints ordered by attribute index so structurally equal
    /// predicates compare equal.
    pub fn and(&self, attr: usize, code: u32) -> Self {
        let mut constraints = self.constraints.clone();
        constraints.push(EqConstraint { attr, code });
        constraints.sort_by_key(|c| c.attr);
        Predicate { constraints }
    }

    /// The constraints, ordered by attribute index.
    pub fn constraints(&self) -> &[EqConstraint] {
        &self.constraints
    }

    /// A cheap 128-bit structural fingerprint, equal for structurally
    /// equal predicates (constraints are kept sorted by attribute, so
    /// build order does not matter). Used as a memo-cache key by the
    /// audit layer's evaluation engine; the top bit is always clear so
    /// callers can reserve it as a sentinel.
    pub fn fingerprint(&self) -> u128 {
        // Two independent 64-bit FNV-1a passes over the (attr, code)
        // stream; 128 bits makes accidental collisions across the few
        // thousand predicates of an audit astronomically unlikely.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut lo: u64 = OFFSET;
        let mut hi: u64 = OFFSET ^ 0x9e37_79b9_7f4a_7c15;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                lo = (lo ^ u64::from(byte)).wrapping_mul(PRIME);
                hi = (hi ^ u64::from(byte.rotate_left(3))).wrapping_mul(PRIME);
            }
        };
        mix(self.constraints.len() as u64);
        for c in &self.constraints {
            mix(c.attr as u64);
            mix(u64::from(c.code));
        }
        (u128::from(hi) << 64 | u128::from(lo)) & !(1u128 << 127)
    }

    /// True when this predicate has no constraints.
    pub fn is_always(&self) -> bool {
        self.constraints.is_empty()
    }

    /// True when the predicate already constrains attribute `attr`.
    pub fn constrains(&self, attr: usize) -> bool {
        self.constraints.iter().any(|c| c.attr == attr)
    }

    /// Does row `row` of `table` satisfy the predicate?
    ///
    /// # Errors
    ///
    /// [`StoreError::NotCategorical`] when a constraint references a
    /// non-categorical attribute.
    pub fn matches(&self, table: &Table, row: usize) -> Result<bool, StoreError> {
        for c in &self.constraints {
            if table.code_at(c.attr, row)? != c.code {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// All rows of `within` that satisfy the predicate.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotCategorical`] as in [`Predicate::matches`].
    pub fn filter(&self, table: &Table, within: &RowSet) -> Result<RowSet, StoreError> {
        if self.is_always() {
            return Ok(within.clone());
        }
        // Pull the categorical code slices once, then scan.
        let mut cols = Vec::with_capacity(self.constraints.len());
        for c in &self.constraints {
            let codes = table.column(c.attr).as_categorical().ok_or_else(|| {
                StoreError::NotCategorical {
                    attribute: table.schema().attribute(c.attr).name.clone(),
                }
            })?;
            cols.push((codes, c.code));
        }
        let rows = within
            .rows()
            .iter()
            .copied()
            .filter(|&r| cols.iter().all(|(codes, code)| codes[r as usize] == *code))
            .collect();
        Ok(RowSet::from_sorted(rows))
    }

    /// Render the predicate with attribute and value names from `table`'s
    /// schema (e.g. `gender=Male ∧ language=English`).
    pub fn describe(&self, table: &Table) -> String {
        self.describe_in(table.schema())
    }

    /// Schema-only variant of [`Predicate::describe`] — rendering needs
    /// no row data, so paged (out-of-core) callers hand the schema
    /// directly.
    pub fn describe_in(&self, schema: &crate::Schema) -> String {
        if self.is_always() {
            return "⊤".to_string();
        }
        self.constraints
            .iter()
            .map(|c| {
                let attr = schema.attribute(c.attr);
                let label = attr.label_of(c.code).unwrap_or("?");
                format!("{}={}", attr.name, label)
            })
            .collect::<Vec<_>>()
            .join(" ∧ ")
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_always() {
            return write!(f, "⊤");
        }
        let parts: Vec<String> = self
            .constraints
            .iter()
            .map(|c| format!("a{}={}", c.attr, c.code))
            .collect();
        write!(f, "{}", parts.join(" ∧ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeKind, Schema};
    use crate::table::Value;

    fn table() -> Table {
        let schema = Schema::builder()
            .categorical("gender", AttributeKind::Protected, &["Male", "Female"])
            .categorical(
                "lang",
                AttributeKind::Protected,
                &["English", "Indian", "Other"],
            )
            .numeric("score", AttributeKind::Observed, 0.0, 1.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (g, l, s) in [
            ("Male", "English", 0.9),
            ("Male", "Indian", 0.8),
            ("Female", "English", 0.7),
            ("Female", "Other", 0.6),
            ("Male", "English", 0.5),
        ] {
            t.push_row(&[Value::cat(g), Value::cat(l), Value::num(s)])
                .unwrap();
        }
        t
    }

    #[test]
    fn always_matches_everything() {
        let t = table();
        let all = RowSet::all(t.len());
        let p = Predicate::always();
        assert_eq!(p.filter(&t, &all).unwrap(), all);
        assert!(p.is_always());
    }

    #[test]
    fn single_constraint() {
        let t = table();
        let all = RowSet::all(t.len());
        let males = Predicate::eq(0, 0).filter(&t, &all).unwrap();
        assert_eq!(males.rows(), &[0, 1, 4]);
    }

    #[test]
    fn conjunction() {
        let t = table();
        let all = RowSet::all(t.len());
        let p = Predicate::eq(0, 0).and(1, 0); // Male ∧ English
        assert_eq!(p.filter(&t, &all).unwrap().rows(), &[0, 4]);
    }

    #[test]
    fn filter_respects_within() {
        let t = table();
        let within = RowSet::from_rows(vec![1, 2, 3]);
        let males = Predicate::eq(0, 0).filter(&t, &within).unwrap();
        assert_eq!(males.rows(), &[1]);
    }

    #[test]
    fn matches_per_row() {
        let t = table();
        let p = Predicate::eq(1, 2); // lang = Other
        assert!(!p.matches(&t, 0).unwrap());
        assert!(p.matches(&t, 3).unwrap());
    }

    #[test]
    fn non_categorical_rejected() {
        let t = table();
        let p = Predicate::eq(2, 0); // `score` is numeric
        assert!(matches!(
            p.filter(&t, &RowSet::all(t.len())),
            Err(StoreError::NotCategorical { .. })
        ));
    }

    #[test]
    fn structural_equality_is_order_insensitive() {
        let p1 = Predicate::eq(0, 1).and(1, 2);
        let p2 = Predicate::eq(1, 2).and(0, 1);
        assert_eq!(p1, p2);
    }

    #[test]
    fn fingerprint_is_structural_and_discriminating() {
        // Equal predicates fingerprint equal regardless of build order.
        let p1 = Predicate::eq(0, 1).and(1, 2);
        let p2 = Predicate::eq(1, 2).and(0, 1);
        assert_eq!(p1.fingerprint(), p2.fingerprint());
        // Different predicates (including attr/code swaps and prefixes)
        // fingerprint differently.
        let variants = [
            Predicate::always(),
            Predicate::eq(0, 1),
            Predicate::eq(1, 0),
            Predicate::eq(0, 1).and(1, 2),
            Predicate::eq(0, 2).and(1, 1),
            Predicate::eq(0, 1).and(1, 2).and(2, 0),
        ];
        for (i, a) in variants.iter().enumerate() {
            // Top bit stays clear (reserved for the engine's sentinel).
            assert_eq!(a.fingerprint() >> 127, 0);
            for (j, b) in variants.iter().enumerate() {
                if i != j {
                    assert_ne!(a.fingerprint(), b.fingerprint(), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn constrains_lookup() {
        let p = Predicate::eq(3, 1);
        assert!(p.constrains(3));
        assert!(!p.constrains(0));
    }

    #[test]
    fn describe_uses_labels() {
        let t = table();
        let p = Predicate::eq(0, 0).and(1, 1);
        assert_eq!(p.describe(&t), "gender=Male ∧ lang=Indian");
        assert_eq!(Predicate::always().describe(&t), "⊤");
    }
}
