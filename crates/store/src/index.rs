//! Inverted indexes on categorical columns.
//!
//! Splitting a partition by an attribute is the hot operation of every
//! audit algorithm: `worstAttribute` tries every remaining attribute at
//! every step. The inverted index turns a split into per-code row-set
//! intersections instead of a full column scan.

use crate::table::Table;
use crate::{RowSet, StoreError};

/// One child of a single-pass split: the code, its rows, and the bin
/// counts of its members' scores (accumulated during the same walk that
/// collected the rows).
#[derive(Debug, Clone)]
pub struct SplitChild {
    /// The dictionary code shared by every member.
    pub code: u32,
    /// The member rows (sorted — inherited from the parent's order).
    pub rows: RowSet,
    /// Per-bin member counts (`bin_counts[bin_of[row]] += 1` per row).
    pub bin_counts: Vec<f64>,
}

/// Inverted index for one categorical attribute: rows grouped by code.
#[derive(Debug, Clone)]
pub struct CategoricalIndex {
    attr: usize,
    /// `postings[code]` = sorted rows holding that code.
    postings: Vec<RowSet>,
    /// The forward column: `codes[row]` = the row's dictionary code.
    /// Lets [`CategoricalIndex::split_with_bins`] split a partition in
    /// one walk over its rows instead of one posting intersection per
    /// code.
    codes: Vec<u32>,
}

impl CategoricalIndex {
    /// Build the index for categorical attribute `attr` of `table`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotCategorical`] when `attr` is not categorical.
    pub fn build(table: &Table, attr: usize) -> Result<Self, StoreError> {
        let codes =
            table
                .column(attr)
                .as_categorical()
                .ok_or_else(|| StoreError::NotCategorical {
                    attribute: table.schema().attribute(attr).name.clone(),
                })?;
        let cardinality = table
            .schema()
            .attribute(attr)
            .cardinality()
            .expect("categorical has cardinality");
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cardinality];
        for (row, &code) in codes.iter().enumerate() {
            buckets[code as usize].push(row as u32);
        }
        Ok(CategoricalIndex {
            attr,
            postings: buckets.into_iter().map(RowSet::from_sorted).collect(),
            codes: codes.to_vec(),
        })
    }

    /// The indexed attribute.
    pub fn attribute(&self) -> usize {
        self.attr
    }

    /// Rows with the given code across the whole table.
    pub fn rows_with_code(&self, code: u32) -> &RowSet {
        &self.postings[code as usize]
    }

    /// Split `within` by the indexed attribute: one `(code, rows)` pair
    /// per code that is non-empty inside `within`.
    ///
    /// This is the legacy posting-intersection path, kept as the
    /// differential-test oracle for [`CategoricalIndex::split_with_bins`]
    /// (it touches every posting, so it costs O(table) per split even
    /// for tiny partitions).
    pub fn split(&self, within: &RowSet) -> Vec<(u32, RowSet)> {
        self.postings
            .iter()
            .enumerate()
            .filter_map(|(code, posting)| {
                let rows = posting.intersect(within);
                (!rows.is_empty()).then_some((code as u32, rows))
            })
            .collect()
    }

    /// The forward column: `codes()[row]` is the row's dictionary code.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Append the next row (id `codes().len()`) holding `code`.
    /// In-place maintenance for the stream layer — the index stays
    /// identical to a rebuild from the grown table.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadCode`] when `code` is outside the attribute's
    /// dictionary.
    pub fn push_row(&mut self, code: u32, attribute_name: &str) -> Result<(), StoreError> {
        if code as usize >= self.postings.len() {
            return Err(StoreError::BadCode {
                attribute: attribute_name.to_string(),
                code,
            });
        }
        let row = self.codes.len() as u32;
        self.postings[code as usize].insert(row);
        self.codes.push(code);
        Ok(())
    }

    /// Move `row` from its current code's posting to `new_code`'s
    /// (no-op when the code is unchanged). In-place maintenance for the
    /// stream layer's `AttributeChanged` events.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadCode`] for codes outside the dictionary or rows
    /// outside the index.
    pub fn set_code(
        &mut self,
        row: u32,
        new_code: u32,
        attribute_name: &str,
    ) -> Result<(), StoreError> {
        if new_code as usize >= self.postings.len() || row as usize >= self.codes.len() {
            return Err(StoreError::BadCode {
                attribute: attribute_name.to_string(),
                code: new_code,
            });
        }
        let old_code = self.codes[row as usize];
        if old_code != new_code {
            self.postings[old_code as usize].remove(row);
            self.postings[new_code as usize].insert(row);
            self.codes[row as usize] = new_code;
        }
        Ok(())
    }

    /// Single-pass split kernel: one walk over `within`'s rows reading
    /// the forward column directly, emitting every non-empty child's row
    /// set **and** its score-bin counts simultaneously. `bin_of[row]`
    /// must hold the precomputed bin index of the row's score (`< bins`).
    ///
    /// Equivalent to [`CategoricalIndex::split`] plus one histogram
    /// build per child, at O(|within|) instead of O(table) cost.
    ///
    /// # Panics
    ///
    /// When `bin_of` is shorter than the table or holds an index
    /// `>= bins` for a row of `within` (programming errors at the
    /// store/audit boundary).
    pub fn split_with_bins(&self, within: &RowSet, bin_of: &[u32], bins: usize) -> Vec<SplitChild> {
        let cardinality = self.postings.len();
        let mut child_rows: Vec<Vec<u32>> = vec![Vec::new(); cardinality];
        let mut child_bins: Vec<Vec<f64>> = vec![vec![0.0; bins]; cardinality];
        for &row in within.rows() {
            let code = self.codes[row as usize] as usize;
            child_rows[code].push(row);
            child_bins[code][bin_of[row as usize] as usize] += 1.0;
        }
        child_rows
            .into_iter()
            .zip(child_bins)
            .enumerate()
            .filter(|(_, (rows, _))| !rows.is_empty())
            .map(|(code, (rows, bin_counts))| SplitChild {
                code: code as u32,
                rows: RowSet::from_sorted(rows),
                bin_counts,
            })
            .collect()
    }
}

/// Indexes for every categorical protected attribute of a table.
#[derive(Debug, Clone)]
pub struct IndexSet {
    indexes: Vec<Option<CategoricalIndex>>,
}

impl IndexSet {
    /// Build indexes for all splittable (categorical protected)
    /// attributes of `table`.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from index construction (cannot occur
    /// for attributes reported by [`crate::Schema::splittable`]).
    pub fn build(table: &Table) -> Result<Self, StoreError> {
        let mut indexes: Vec<Option<CategoricalIndex>> = Vec::new();
        indexes.resize_with(table.schema().width(), || None);
        for attr in table.schema().splittable() {
            indexes[attr] = Some(CategoricalIndex::build(table, attr)?);
        }
        Ok(IndexSet { indexes })
    }

    /// The index for attribute `attr`, if one was built.
    pub fn get(&self, attr: usize) -> Option<&CategoricalIndex> {
        self.indexes.get(attr).and_then(Option::as_ref)
    }

    /// Append `table`'s last row to every maintained index (call after
    /// `Table::push_row` on the same table).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the table's last row disagrees with an
    /// index's attribute (cannot occur when the indexes were built from
    /// this table).
    pub fn push_row(&mut self, table: &Table) -> Result<(), StoreError> {
        let row = table.len().checked_sub(1).ok_or(StoreError::RowArity {
            expected: 1,
            got: 0,
        })?;
        for index in self.indexes.iter_mut().flatten() {
            let attr = index.attribute();
            let code = table.code_at(attr, row)?;
            index.push_row(code, &table.schema().attribute(attr).name)?;
        }
        Ok(())
    }

    /// Re-home `row` under `new_code` in attribute `attr`'s index.
    /// No-op when the attribute carries no index (non-splittable
    /// categorical attributes are never constrained by predicates).
    ///
    /// # Errors
    ///
    /// [`StoreError::BadCode`] for invalid codes/rows.
    pub fn set_code(
        &mut self,
        attr: usize,
        row: u32,
        new_code: u32,
        attribute_name: &str,
    ) -> Result<(), StoreError> {
        if let Some(index) = self.indexes.get_mut(attr).and_then(Option::as_mut) {
            index.set_code(row, new_code, attribute_name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeKind, Schema};
    use crate::table::Value;

    fn table() -> Table {
        let schema = Schema::builder()
            .categorical("gender", AttributeKind::Protected, &["Male", "Female"])
            .categorical(
                "lang",
                AttributeKind::Protected,
                &["English", "Indian", "Other"],
            )
            .numeric("score", AttributeKind::Observed, 0.0, 1.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (g, l, s) in [
            ("Male", "English", 0.9),
            ("Male", "Indian", 0.8),
            ("Female", "English", 0.7),
            ("Female", "Other", 0.6),
            ("Male", "English", 0.5),
        ] {
            t.push_row(&[Value::cat(g), Value::cat(l), Value::num(s)])
                .unwrap();
        }
        t
    }

    #[test]
    fn postings_cover_table() {
        let t = table();
        let idx = CategoricalIndex::build(&t, 0).unwrap();
        assert_eq!(idx.rows_with_code(0).rows(), &[0, 1, 4]);
        assert_eq!(idx.rows_with_code(1).rows(), &[2, 3]);
        assert_eq!(idx.attribute(), 0);
    }

    #[test]
    fn split_restricts_to_within() {
        let t = table();
        let idx = CategoricalIndex::build(&t, 1).unwrap();
        let within = RowSet::from_rows(vec![0, 2, 3]);
        let parts = idx.split(&within);
        // English -> {0, 2}, Other -> {3}; Indian empty (dropped).
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[0].1.rows(), &[0, 2]);
        assert_eq!(parts[1].0, 2);
        assert_eq!(parts[1].1.rows(), &[3]);
    }

    #[test]
    fn split_partitions_are_disjoint_and_cover() {
        let t = table();
        let idx = CategoricalIndex::build(&t, 0).unwrap();
        let all = RowSet::all(t.len());
        let parts = idx.split(&all);
        let mut union = RowSet::empty();
        for (i, (_, a)) in parts.iter().enumerate() {
            for (_, b) in &parts[i + 1..] {
                assert!(a.is_disjoint(b));
            }
            union = union.union(a);
        }
        assert_eq!(union, all);
    }

    #[test]
    fn non_categorical_rejected() {
        let t = table();
        assert!(matches!(
            CategoricalIndex::build(&t, 2),
            Err(StoreError::NotCategorical { .. })
        ));
    }

    #[test]
    fn split_with_bins_matches_legacy_split() {
        let t = table();
        let idx = CategoricalIndex::build(&t, 1).unwrap();
        // Pretend scores fall in bins 0..3 per row.
        let bin_of = [0u32, 1, 2, 1, 0];
        let within = RowSet::from_rows(vec![0, 2, 3, 4]);
        let kernel = idx.split_with_bins(&within, &bin_of, 3);
        let legacy = idx.split(&within);
        assert_eq!(kernel.len(), legacy.len());
        for (child, (code, rows)) in kernel.iter().zip(&legacy) {
            assert_eq!(child.code, *code);
            assert_eq!(&child.rows, rows);
            // Bin counts re-derivable from the rows and bin_of.
            let mut expected = vec![0.0; 3];
            for row in rows.iter() {
                expected[bin_of[row] as usize] += 1.0;
            }
            assert_eq!(child.bin_counts, expected);
        }
    }

    #[test]
    fn split_with_bins_of_empty_set_is_empty() {
        let t = table();
        let idx = CategoricalIndex::build(&t, 0).unwrap();
        assert!(idx.split_with_bins(&RowSet::empty(), &[0; 5], 4).is_empty());
    }

    #[test]
    fn forward_codes_match_the_column() {
        let t = table();
        let idx = CategoricalIndex::build(&t, 0).unwrap();
        assert_eq!(idx.codes(), t.column(0).as_categorical().unwrap());
    }

    #[test]
    fn index_set_builds_for_splittable_only() {
        let t = table();
        let set = IndexSet::build(&t).unwrap();
        assert!(set.get(0).is_some());
        assert!(set.get(1).is_some());
        assert!(set.get(2).is_none());
    }

    #[test]
    fn push_row_matches_rebuild() {
        let mut t = table();
        let mut set = IndexSet::build(&t).unwrap();
        t.push_row(&[Value::cat("Female"), Value::cat("Indian"), Value::num(0.4)])
            .unwrap();
        set.push_row(&t).unwrap();
        let rebuilt = IndexSet::build(&t).unwrap();
        for attr in [0usize, 1] {
            let maintained = set.get(attr).unwrap();
            let fresh = rebuilt.get(attr).unwrap();
            assert_eq!(maintained.codes(), fresh.codes());
            for code in 0..3u32.min(fresh.codes().iter().max().unwrap() + 1) {
                assert_eq!(maintained.rows_with_code(code), fresh.rows_with_code(code));
            }
        }
    }

    #[test]
    fn set_code_moves_postings() {
        let t = table();
        let mut idx = CategoricalIndex::build(&t, 0).unwrap();
        // Row 0 is Male (code 0); move to Female (code 1).
        idx.set_code(0, 1, "gender").unwrap();
        assert_eq!(idx.rows_with_code(0).rows(), &[1, 4]);
        assert_eq!(idx.rows_with_code(1).rows(), &[0, 2, 3]);
        assert_eq!(idx.codes()[0], 1);
        // Same-code move is a no-op.
        idx.set_code(0, 1, "gender").unwrap();
        assert_eq!(idx.rows_with_code(1).rows(), &[0, 2, 3]);
        // Bad code / bad row rejected.
        assert!(idx.set_code(0, 9, "gender").is_err());
        assert!(idx.set_code(99, 0, "gender").is_err());
    }

    #[test]
    fn index_push_row_rejects_bad_code() {
        let t = table();
        let mut idx = CategoricalIndex::build(&t, 0).unwrap();
        assert!(matches!(
            idx.push_row(7, "gender"),
            Err(StoreError::BadCode { code: 7, .. })
        ));
    }

    #[test]
    fn index_set_set_code_skips_unindexed_attributes() {
        let t = table();
        let mut set = IndexSet::build(&t).unwrap();
        // Attribute 2 is numeric: no index, silently skipped.
        set.set_code(2, 0, 1, "score").unwrap();
        // Attribute 0 is indexed: forwarded.
        set.set_code(0, 0, 1, "gender").unwrap();
        assert_eq!(set.get(0).unwrap().codes()[0], 1);
    }

    #[test]
    fn empty_table_index() {
        let schema = Schema::builder()
            .categorical("g", AttributeKind::Protected, &["a", "b"])
            .build()
            .unwrap();
        let t = Table::new(schema);
        let idx = CategoricalIndex::build(&t, 0).unwrap();
        assert!(idx.rows_with_code(0).is_empty());
        assert!(idx.split(&RowSet::empty()).is_empty());
    }
}
