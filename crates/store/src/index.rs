//! Inverted indexes on categorical columns.
//!
//! Splitting a partition by an attribute is the hot operation of every
//! audit algorithm: `worstAttribute` tries every remaining attribute at
//! every step. The inverted index turns a split into per-code row-set
//! intersections instead of a full column scan.

use crate::sharded::ShardPlan;
use crate::table::Table;
use crate::{RowSet, StoreError};

/// One child of a single-pass split: the code, its rows, and the bin
/// counts of its members' scores (accumulated during the same walk that
/// collected the rows).
#[derive(Debug, Clone)]
pub struct SplitChild {
    /// The dictionary code shared by every member.
    pub code: u32,
    /// The member rows (sorted — inherited from the parent's order).
    pub rows: RowSet,
    /// Per-bin member counts (`bin_counts[bin_of[row]] += 1` per row).
    pub bin_counts: Vec<f64>,
}

/// Inverted index for one categorical attribute: rows grouped by code.
#[derive(Debug, Clone)]
pub struct CategoricalIndex {
    attr: usize,
    /// `postings[code]` = sorted rows holding that code.
    postings: Vec<RowSet>,
    /// The forward column: `codes[row]` = the row's dictionary code.
    /// Lets [`CategoricalIndex::split_with_bins`] split a partition in
    /// one walk over its rows instead of one posting intersection per
    /// code.
    codes: Vec<u32>,
    /// Byte-narrowed forward column, built **instead of** `codes` by the
    /// sharded constructors when the dictionary has ≤ 256 entries
    /// (`codes` stays empty then). Split walks are bandwidth bound, so
    /// reading 1 byte per row instead of 4 is the single biggest kernel
    /// lever — and not materialising the wide copy at all saves the
    /// build its largest allocation. `None` on legacy-built indexes
    /// (the `shards = off` baseline keeps the original kernels and
    /// memory layout).
    codes8: Option<Vec<u8>>,
}

/// Private helper unifying the two forward-column widths so the shared
/// kernels monomorphize one tight loop per width.
trait CodeWidth: Copy {
    fn idx(self) -> usize;
}
impl CodeWidth for u8 {
    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}
impl CodeWidth for u32 {
    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Dictionary-width ceiling for [`CategoricalIndex::split_onepass`]:
/// each child briefly reserves `rows.len()` capacity, so the kernel is
/// restricted to small dictionaries (every protected attribute of the
/// paper's schema is far below this).
const ONEPASS_MAX_CARDINALITY: usize = 64;

impl CategoricalIndex {
    /// Build the index for categorical attribute `attr` of `table`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotCategorical`] when `attr` is not categorical.
    pub fn build(table: &Table, attr: usize) -> Result<Self, StoreError> {
        let codes =
            table
                .column(attr)
                .as_categorical()
                .ok_or_else(|| StoreError::NotCategorical {
                    attribute: table.schema().attribute(attr).name.clone(),
                })?;
        let cardinality = table
            .schema()
            .attribute(attr)
            .cardinality()
            .expect("categorical has cardinality");
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cardinality];
        for (row, &code) in codes.iter().enumerate() {
            buckets[code as usize].push(row as u32);
        }
        Ok(CategoricalIndex {
            attr,
            postings: buckets.into_iter().map(RowSet::from_sorted).collect(),
            codes: codes.to_vec(),
            codes8: None,
        })
    }

    /// Assemble an index from externally-built parts — the paged context
    /// build streams a column's pages once, producing the postings and
    /// the forward column in the same pass, then hands them here.
    ///
    /// Invariants are the caller's to guarantee: `postings[code]` holds
    /// exactly the rows whose forward-column entry is `code`, sorted
    /// ascending; exactly one of `codes8` / `codes` is populated (the
    /// byte column when the dictionary has ≤ 256 entries, mirroring
    /// [`CategoricalIndex::build_sharded`]'s narrowing).
    ///
    /// # Panics
    ///
    /// Debug-asserts the posting row total does not exceed the forward
    /// column length (paged live-subset builds index only the live rows,
    /// leaving skipped pages as zero-filled forward placeholders).
    pub fn from_parts(
        attr: usize,
        postings: Vec<RowSet>,
        codes8: Option<Vec<u8>>,
        codes: Vec<u32>,
    ) -> Self {
        debug_assert!(
            postings.iter().map(RowSet::len).sum::<usize>()
                <= codes8.as_ref().map_or(codes.len(), Vec::len),
            "postings must cover a subset of the forward column"
        );
        CategoricalIndex {
            attr,
            postings,
            codes,
            codes8,
        }
    }

    /// The indexed attribute.
    pub fn attribute(&self) -> usize {
        self.attr
    }

    /// Rows with the given code across the whole table.
    pub fn rows_with_code(&self, code: u32) -> &RowSet {
        &self.postings[code as usize]
    }

    /// Split `within` by the indexed attribute: one `(code, rows)` pair
    /// per code that is non-empty inside `within`.
    ///
    /// This is the legacy posting-intersection path, kept as the
    /// differential-test oracle for [`CategoricalIndex::split_with_bins`]
    /// (it touches every posting, so it costs O(table) per split even
    /// for tiny partitions).
    pub fn split(&self, within: &RowSet) -> Vec<(u32, RowSet)> {
        self.postings
            .iter()
            .enumerate()
            .filter_map(|(code, posting)| {
                let rows = posting.intersect(within);
                (!rows.is_empty()).then_some((code as u32, rows))
            })
            .collect()
    }

    /// The forward column: `codes()[row]` is the row's dictionary code.
    /// Borrowed for wide-column indexes; reconstructed (widened) from
    /// the byte column for narrow sharded indexes — an introspection
    /// accessor, not a kernel path.
    pub fn codes(&self) -> std::borrow::Cow<'_, [u32]> {
        match &self.codes8 {
            Some(codes8) => std::borrow::Cow::Owned(codes8.iter().map(|&c| u32::from(c)).collect()),
            None => std::borrow::Cow::Borrowed(&self.codes),
        }
    }

    /// Number of rows covered by the index (= table rows at build).
    pub fn rows_indexed(&self) -> usize {
        match &self.codes8 {
            Some(codes8) => codes8.len(),
            None => self.codes.len(),
        }
    }

    /// Dictionary size of the indexed attribute (posting-list count;
    /// codes may be absent from the data, their postings are empty).
    pub fn cardinality(&self) -> usize {
        self.postings.len()
    }

    /// Append the next row (id `codes().len()`) holding `code`.
    /// In-place maintenance for the stream layer — the index stays
    /// identical to a rebuild from the grown table.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadCode`] when `code` is outside the attribute's
    /// dictionary.
    pub fn push_row(&mut self, code: u32, attribute_name: &str) -> Result<(), StoreError> {
        if code as usize >= self.postings.len() {
            return Err(StoreError::BadCode {
                attribute: attribute_name.to_string(),
                code,
            });
        }
        let row = self.rows_indexed() as u32;
        self.postings[code as usize].insert(row);
        match &mut self.codes8 {
            Some(codes8) => codes8.push(code as u8),
            None => self.codes.push(code),
        }
        Ok(())
    }

    /// Move `row` from its current code's posting to `new_code`'s
    /// (no-op when the code is unchanged). In-place maintenance for the
    /// stream layer's `AttributeChanged` events.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadCode`] for codes outside the dictionary or rows
    /// outside the index.
    pub fn set_code(
        &mut self,
        row: u32,
        new_code: u32,
        attribute_name: &str,
    ) -> Result<(), StoreError> {
        if new_code as usize >= self.postings.len() || row as usize >= self.rows_indexed() {
            return Err(StoreError::BadCode {
                attribute: attribute_name.to_string(),
                code: new_code,
            });
        }
        let old_code = match &self.codes8 {
            Some(codes8) => u32::from(codes8[row as usize]),
            None => self.codes[row as usize],
        };
        if old_code != new_code {
            self.postings[old_code as usize].remove(row);
            self.postings[new_code as usize].insert(row);
            match &mut self.codes8 {
                Some(codes8) => codes8[row as usize] = new_code as u8,
                None => self.codes[row as usize] = new_code,
            }
        }
        Ok(())
    }

    /// Single-pass split kernel: one walk over `within`'s rows reading
    /// the forward column directly, emitting every non-empty child's row
    /// set **and** its score-bin counts simultaneously. `bin_of[row]`
    /// must hold the precomputed bin index of the row's score (`< bins`).
    ///
    /// Equivalent to [`CategoricalIndex::split`] plus one histogram
    /// build per child, at O(|within|) instead of O(table) cost.
    ///
    /// # Panics
    ///
    /// When `bin_of` is shorter than the table or holds an index
    /// `>= bins` for a row of `within` (programming errors at the
    /// store/audit boundary).
    pub fn split_with_bins(&self, within: &RowSet, bin_of: &[u32], bins: usize) -> Vec<SplitChild> {
        match &self.codes8 {
            Some(codes8) => self.split_with_bins_in(codes8, within, bin_of, bins),
            None => self.split_with_bins_in(&self.codes, within, bin_of, bins),
        }
    }

    fn split_with_bins_in<C: CodeWidth>(
        &self,
        codes: &[C],
        within: &RowSet,
        bin_of: &[u32],
        bins: usize,
    ) -> Vec<SplitChild> {
        let cardinality = self.postings.len();
        let mut child_rows: Vec<Vec<u32>> = vec![Vec::new(); cardinality];
        let mut child_bins: Vec<Vec<f64>> = vec![vec![0.0; bins]; cardinality];
        for &row in within.rows() {
            let code = codes[row as usize].idx();
            child_rows[code].push(row);
            child_bins[code][bin_of[row as usize] as usize] += 1.0;
        }
        child_rows
            .into_iter()
            .zip(child_bins)
            .enumerate()
            .filter(|(_, (rows, _))| !rows.is_empty())
            .map(|(code, (rows, bin_counts))| SplitChild {
                code: code as u32,
                rows: RowSet::from_sorted(rows),
                bin_counts,
            })
            .collect()
    }

    /// The shared two-pass classification core: count rows and score
    /// bins per code, then fill exactly-sized per-code row vectors
    /// through raw write cursors (no capacity branches, no `len`
    /// bookkeeping in the hot loop). Counters are plain `u32` arrays,
    /// keeping the inner loops free of float traffic and reallocation.
    ///
    /// # Panics
    ///
    /// Same contract as [`CategoricalIndex::split_with_bins`].
    fn classify_rows(
        &self,
        rows: &[u32],
        bin_of: &[u32],
        bins: usize,
    ) -> (Vec<Vec<u32>>, Vec<u32>) {
        match &self.codes8 {
            Some(codes8) => self.classify_rows_in(codes8, rows, bin_of, bins),
            None => self.classify_rows_in(&self.codes, rows, bin_of, bins),
        }
    }

    fn classify_rows_in<C: CodeWidth>(
        &self,
        codes: &[C],
        rows: &[u32],
        bin_of: &[u32],
        bins: usize,
    ) -> (Vec<Vec<u32>>, Vec<u32>) {
        let cardinality = self.postings.len();
        let mut row_counts = vec![0u32; cardinality];
        let mut bin_counts = vec![0u32; cardinality * bins];
        for &row in rows {
            let code = codes[row as usize].idx();
            let bin = bin_of[row as usize] as usize;
            // SAFETY: `codes[row] < cardinality` is the index invariant
            // (codes come from a dictionary of exactly `cardinality`
            // entries, enforced at build and on every mutation).
            unsafe { *row_counts.get_unchecked_mut(code) += 1 };
            bin_counts[code * bins + bin] += 1;
        }
        let mut rows_by_code: Vec<Vec<u32>> = row_counts
            .iter()
            .map(|&c| Vec::with_capacity(c as usize))
            .collect();
        let mut cursors: Vec<*mut u32> = rows_by_code.iter_mut().map(Vec::as_mut_ptr).collect();
        for &row in rows {
            let code = codes[row as usize].idx();
            // SAFETY: `code < cardinality` as above, and each cursor
            // advances exactly `row_counts[code]` times over a buffer
            // with that exact capacity (both passes read the same
            // `rows`/`codes`).
            unsafe {
                let slot = cursors.get_unchecked_mut(code);
                slot.write(row);
                *slot = slot.add(1);
            }
        }
        for (v, &c) in rows_by_code.iter_mut().zip(&row_counts) {
            // SAFETY: exactly `c` elements were written through the
            // cursor into the buffer allocated with capacity `c`.
            unsafe { v.set_len(c as usize) };
        }
        (rows_by_code, bin_counts)
    }

    /// Classify one shard's rows with the two-pass kernel
    /// ([`CategoricalIndex::classify_rows`]). The shard's rows must be
    /// sorted (they are subslices of a sorted row set under a
    /// [`ShardPlan`]).
    ///
    /// # Panics
    ///
    /// Same contract as [`CategoricalIndex::split_with_bins`].
    pub fn split_shard(&self, shard_rows: &[u32], bin_of: &[u32], bins: usize) -> ShardSplit {
        let (rows_by_code, bin_counts) = self.classify_rows(shard_rows, bin_of, bins);
        ShardSplit {
            rows_by_code,
            bin_counts,
        }
    }

    /// Two-pass split over one sorted row slice, emitting the children
    /// directly — the serial fast path of the sharded split: no shard
    /// slicing and no merge copy, but the same exact-allocation kernel,
    /// so the output is **bit-identical** to
    /// [`CategoricalIndex::split_with_bins`] (rows come out in the same
    /// order; bin counts are integers converted once at the end).
    ///
    /// # Panics
    ///
    /// Same contract as [`CategoricalIndex::split_with_bins`].
    pub fn split_with_bins_two_pass(
        &self,
        rows: &[u32],
        bin_of: &[u32],
        bins: usize,
    ) -> Vec<SplitChild> {
        let (rows_by_code, bin_counts) = self.classify_rows(rows, bin_of, bins);
        rows_by_code
            .into_iter()
            .enumerate()
            .filter(|(_, rows)| !rows.is_empty())
            .map(|(code, rows)| SplitChild {
                code: code as u32,
                rows: RowSet::from_sorted(rows),
                bin_counts: bin_counts[code * bins..(code + 1) * bins]
                    .iter()
                    .map(|&c| f64::from(c))
                    .collect(),
            })
            .collect()
    }

    /// Split of the **whole table** straight from the postings: the
    /// children's row sets already exist (posting lists are exactly the
    /// per-code rows of the full table, sorted), so the only per-row
    /// work left is counting score bins over each posting. Bit-identical
    /// to `split_with_bins(RowSet::all(n), ..)` at a fraction of the
    /// cost — the root-partition split every audit starts with.
    ///
    /// # Panics
    ///
    /// Same contract as [`CategoricalIndex::split_with_bins`].
    pub fn split_full_with_bins(&self, bin_of: &[u32], bins: usize) -> Vec<SplitChild> {
        self.postings
            .iter()
            .enumerate()
            .filter(|(_, posting)| !posting.is_empty())
            .map(|(code, posting)| {
                let mut counts = vec![0u32; bins];
                for &row in posting.rows() {
                    counts[bin_of[row as usize] as usize] += 1;
                }
                SplitChild {
                    code: code as u32,
                    rows: posting.clone(),
                    bin_counts: counts.into_iter().map(f64::from).collect(),
                }
            })
            .collect()
    }

    /// Merge per-shard classifications **in shard order** into the same
    /// children [`CategoricalIndex::split_with_bins`] emits. Row vectors
    /// concatenate (shards are contiguous row ranges, so the result is
    /// sorted) and bin counts add as integers, so the merge is exact —
    /// bit-identical to the serial kernel for any shard count.
    pub fn merge_shard_splits(partials: Vec<ShardSplit>, bins: usize) -> Vec<SplitChild> {
        let Some(first) = partials.first() else {
            return Vec::new();
        };
        let cardinality = first.rows_by_code.len();
        let mut children = Vec::new();
        for code in 0..cardinality {
            let total: usize = partials.iter().map(|p| p.rows_by_code[code].len()).sum();
            if total == 0 {
                continue;
            }
            let mut rows = Vec::with_capacity(total);
            let mut counts = vec![0u32; bins];
            for partial in &partials {
                rows.extend_from_slice(&partial.rows_by_code[code]);
                let from = &partial.bin_counts[code * bins..(code + 1) * bins];
                for (acc, &c) in counts.iter_mut().zip(from) {
                    *acc += c;
                }
            }
            children.push(SplitChild {
                code: code as u32,
                rows: RowSet::from_sorted(rows),
                bin_counts: counts.into_iter().map(f64::from).collect(),
            });
        }
        children
    }

    /// Sharded split: slice `within` by the plan's row ranges, classify
    /// each shard with [`CategoricalIndex::split_shard`], merge in shard
    /// order. The serial reference for the pool-dispatched path in
    /// `fairjob-core`; output is bit-identical to
    /// [`CategoricalIndex::split_with_bins`].
    pub fn split_with_bins_sharded(
        &self,
        within: &RowSet,
        bin_of: &[u32],
        bins: usize,
        plan: &ShardPlan,
    ) -> Vec<SplitChild> {
        let sharded = plan.shard_rows(within);
        let partials = sharded
            .iter()
            .map(|shard| self.split_shard(shard, bin_of, bins))
            .collect();
        Self::merge_shard_splits(partials, bins)
    }

    /// Build the index with the two-pass exact-allocation kernel,
    /// walking the column one shard range at a time. Identical output
    /// to [`CategoricalIndex::build`] (postings are per-code row ids in
    /// ascending order either way) without the reallocation traffic of
    /// the push-based build.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotCategorical`] when `attr` is not categorical.
    pub fn build_sharded(table: &Table, attr: usize, plan: &ShardPlan) -> Result<Self, StoreError> {
        let codes =
            table
                .column(attr)
                .as_categorical()
                .ok_or_else(|| StoreError::NotCategorical {
                    attribute: table.schema().attribute(attr).name.clone(),
                })?;
        let cardinality = table
            .schema()
            .attribute(attr)
            .cardinality()
            .expect("categorical has cardinality");
        // Count pass, fused with the byte-narrowed forward column when
        // the dictionary fits a byte: the fill pass then re-reads 1 byte
        // per row instead of 4 (the column is read once either way).
        let narrow = cardinality <= 256;
        let mut codes8: Vec<u8> = Vec::new();
        if narrow {
            // Narrowing is a pure elementwise truncation — one chunked,
            // autovectorizable pass per shard range.
            codes8.reserve_exact(codes.len());
            for s in 0..plan.shards() {
                codes8.extend(codes[plan.range(s)].iter().map(|&c| c as u8));
            }
        }
        let mut counts = vec![0u32; cardinality];
        for s in 0..plan.shards() {
            let range = plan.range(s);
            // Count through the narrow column when it exists: 1 byte per
            // row instead of 4 on a pass that does nothing else.
            if narrow {
                for &code in &codes8[range] {
                    // SAFETY: dictionary codes are `< cardinality` — the
                    // column invariant enforced when rows are pushed.
                    unsafe { *counts.get_unchecked_mut(code as usize) += 1 };
                }
            } else {
                for &code in &codes[range] {
                    // SAFETY: as above.
                    unsafe { *counts.get_unchecked_mut(code as usize) += 1 };
                }
            }
        }
        let mut buckets: Vec<Vec<u32>> = counts
            .iter()
            .map(|&c| Vec::with_capacity(c as usize))
            .collect();
        let mut cursors: Vec<*mut u32> = buckets.iter_mut().map(Vec::as_mut_ptr).collect();
        for s in 0..plan.shards() {
            let range = plan.range(s);
            let mut fill = |row: usize, code: usize| {
                // SAFETY: `code < cardinality` as above; each cursor
                // advances exactly `counts[code]` times (both passes
                // read the same column) over a buffer with that exact
                // capacity.
                unsafe {
                    let slot = &mut *cursors.as_mut_ptr().add(code);
                    slot.write(row as u32);
                    *slot = slot.add(1);
                }
            };
            if narrow {
                for (row, &code) in range.clone().zip(&codes8[range]) {
                    fill(row, code as usize);
                }
            } else {
                for (row, &code) in range.clone().zip(&codes[range]) {
                    fill(row, code as usize);
                }
            }
        }
        for (b, &c) in buckets.iter_mut().zip(&counts) {
            // SAFETY: exactly `c` elements were written into `b`.
            unsafe { b.set_len(c as usize) };
        }
        // Narrow indexes carry only the byte column — the wide copy
        // would be 4× the memory and its materialisation the build's
        // single largest allocation.
        Ok(CategoricalIndex {
            attr,
            postings: buckets.into_iter().map(RowSet::from_sorted).collect(),
            codes: if narrow { Vec::new() } else { codes.to_vec() },
            codes8: narrow.then_some(codes8),
        })
    }

    /// One-pass byte-kernel split: a single walk over `rows` reading the
    /// byte-narrowed forward column (`codes8`) and a byte bin array,
    /// filling every child through raw write cursors. Children reserve
    /// `rows.len()` capacity up front (no count pass), which keeps each
    /// row's memory traffic at 2 loads + 1 store — measured ~1.9× the
    /// scalar walk on audit-sized partitions. Only page-granular virtual
    /// capacity goes unused (untouched tail pages are never faulted),
    /// and [`ONEPASS_MAX_CARDINALITY`] bounds the reservation count.
    ///
    /// Returns `None` when this index carries no byte column (legacy
    /// build, or cardinality > 256/`ONEPASS_MAX_CARDINALITY`) or when
    /// `bins > 256` would not fit `bin8` — callers fall back to
    /// [`CategoricalIndex::split_with_bins_two_pass`]. The output is
    /// bit-identical to [`CategoricalIndex::split_with_bins`]: rows keep
    /// parent order and bin counts are integers converted once.
    ///
    /// # Panics
    ///
    /// When `rows` or `bin8` disagree with the table (row out of range,
    /// `bin8[row] >= bins`) — same boundary contract as
    /// [`CategoricalIndex::split_with_bins`].
    pub fn split_onepass(&self, rows: &[u32], bin8: &[u8], bins: usize) -> Option<Vec<SplitChild>> {
        let codes8: &[u8] = self.codes8.as_deref()?;
        let cardinality = self.postings.len();
        if cardinality > ONEPASS_MAX_CARDINALITY || bins > 256 {
            return None;
        }
        let mut child_rows: Vec<Vec<u32>> = (0..cardinality)
            .map(|_| Vec::with_capacity(rows.len()))
            .collect();
        let mut bin_counts = vec![0u32; cardinality * bins];
        let mut cursors: Vec<*mut u32> = child_rows.iter_mut().map(Vec::as_mut_ptr).collect();
        let bases: Vec<*mut u32> = cursors.clone();
        for &row in rows {
            let code = codes8[row as usize] as usize;
            let bin = bin8[row as usize] as usize;
            // Checked: the flat counter table lives in L1, so the bounds
            // check is ~free and keeps a bad `bin8` a panic, not UB.
            bin_counts[code * bins + bin] += 1;
            // SAFETY: `code < cardinality` is the dictionary invariant
            // (codes8 mirrors codes); each child's buffer has capacity
            // `rows.len()` and at most `rows.len()` writes happen in
            // total across all cursors.
            unsafe {
                let slot = cursors.get_unchecked_mut(code);
                slot.write(row);
                *slot = slot.add(1);
            }
        }
        let children = child_rows
            .iter_mut()
            .enumerate()
            .map(|(code, child)| {
                // SAFETY: the cursor advanced once per element written
                // into this child's buffer.
                let len = unsafe { cursors[code].offset_from(bases[code]) as usize };
                unsafe { child.set_len(len) };
                // The unwritten tail capacity stays reserved but its
                // pages are never touched, so the resident cost is the
                // rows plus at most one page of slop per child —
                // shrinking here would re-copy every child and give the
                // kernel's win back to the allocator.
                (code, std::mem::take(child))
            })
            .filter(|(_, rows)| !rows.is_empty())
            .map(|(code, rows)| SplitChild {
                code: code as u32,
                rows: RowSet::from_sorted(rows),
                bin_counts: bin_counts[code * bins..(code + 1) * bins]
                    .iter()
                    .map(|&c| f64::from(c))
                    .collect(),
            })
            .collect();
        Some(children)
    }

    /// Byte-bin variant of [`CategoricalIndex::split_full_with_bins`]:
    /// the whole-table split straight from the postings, counting bins
    /// through the 1-byte bin array. Bit-identical output (counts are
    /// integers either way).
    ///
    /// # Panics
    ///
    /// Same contract as [`CategoricalIndex::split_full_with_bins`].
    pub fn split_full_with_bins8(&self, bin8: &[u8], bins: usize) -> Vec<SplitChild> {
        self.postings
            .iter()
            .enumerate()
            .filter(|(_, posting)| !posting.is_empty())
            .map(|(code, posting)| {
                let mut counts = vec![0u32; bins];
                for &row in posting.rows() {
                    counts[bin8[row as usize] as usize] += 1;
                }
                SplitChild {
                    code: code as u32,
                    rows: posting.clone(),
                    bin_counts: counts.into_iter().map(f64::from).collect(),
                }
            })
            .collect()
    }
}

/// Per-shard partial of a sharded split: one shard's rows grouped by
/// code plus its flat `cardinality × bins` score-bin counts. Produced
/// by [`CategoricalIndex::split_shard`], consumed in shard order by
/// [`CategoricalIndex::merge_shard_splits`].
#[derive(Debug)]
pub struct ShardSplit {
    rows_by_code: Vec<Vec<u32>>,
    bin_counts: Vec<u32>,
}

/// Indexes for every categorical protected attribute of a table.
#[derive(Debug, Clone)]
pub struct IndexSet {
    indexes: Vec<Option<CategoricalIndex>>,
}

impl IndexSet {
    /// Build indexes for all splittable (categorical protected)
    /// attributes of `table`.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from index construction (cannot occur
    /// for attributes reported by [`crate::Schema::splittable`]).
    pub fn build(table: &Table) -> Result<Self, StoreError> {
        let mut indexes: Vec<Option<CategoricalIndex>> = Vec::new();
        indexes.resize_with(table.schema().width(), || None);
        for attr in table.schema().splittable() {
            indexes[attr] = Some(CategoricalIndex::build(table, attr)?);
        }
        Ok(IndexSet { indexes })
    }

    /// Build indexes for all splittable attributes with the two-pass
    /// sharded kernel ([`CategoricalIndex::build_sharded`]). Identical
    /// output to [`IndexSet::build`].
    ///
    /// # Errors
    ///
    /// As [`IndexSet::build`].
    pub fn build_sharded(table: &Table, plan: &ShardPlan) -> Result<Self, StoreError> {
        Self::build_sharded_subset(table, &table.schema().splittable(), plan)
    }

    /// Build indexes for `attrs` only, with the two-pass sharded
    /// kernel. Each built index is identical to [`IndexSet::build`]'s;
    /// unlisted attributes simply carry no index ([`IndexSet::get`]
    /// returns `None`). The audit context uses this to index exactly
    /// the audited attributes instead of every splittable one.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotCategorical`] when an attr is not categorical.
    pub fn build_sharded_subset(
        table: &Table,
        attrs: &[usize],
        plan: &ShardPlan,
    ) -> Result<Self, StoreError> {
        let mut indexes: Vec<Option<CategoricalIndex>> = Vec::new();
        indexes.resize_with(table.schema().width(), || None);
        for &attr in attrs {
            indexes[attr] = Some(CategoricalIndex::build_sharded(table, attr, plan)?);
        }
        Ok(IndexSet { indexes })
    }

    /// Assemble a set from externally-built indexes (see
    /// [`CategoricalIndex::from_parts`]); `width` is the schema width.
    /// Attributes without an entry carry no index.
    pub fn from_indexes(width: usize, built: Vec<CategoricalIndex>) -> Self {
        let mut indexes: Vec<Option<CategoricalIndex>> = Vec::new();
        indexes.resize_with(width, || None);
        for index in built {
            let attr = index.attribute();
            indexes[attr] = Some(index);
        }
        IndexSet { indexes }
    }

    /// The index for attribute `attr`, if one was built.
    pub fn get(&self, attr: usize) -> Option<&CategoricalIndex> {
        self.indexes.get(attr).and_then(Option::as_ref)
    }

    /// Append `table`'s last row to every maintained index (call after
    /// `Table::push_row` on the same table).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the table's last row disagrees with an
    /// index's attribute (cannot occur when the indexes were built from
    /// this table).
    pub fn push_row(&mut self, table: &Table) -> Result<(), StoreError> {
        let row = table.len().checked_sub(1).ok_or(StoreError::RowArity {
            expected: 1,
            got: 0,
        })?;
        for index in self.indexes.iter_mut().flatten() {
            let attr = index.attribute();
            let code = table.code_at(attr, row)?;
            index.push_row(code, &table.schema().attribute(attr).name)?;
        }
        Ok(())
    }

    /// Re-home `row` under `new_code` in attribute `attr`'s index.
    /// No-op when the attribute carries no index (non-splittable
    /// categorical attributes are never constrained by predicates).
    ///
    /// # Errors
    ///
    /// [`StoreError::BadCode`] for invalid codes/rows.
    pub fn set_code(
        &mut self,
        attr: usize,
        row: u32,
        new_code: u32,
        attribute_name: &str,
    ) -> Result<(), StoreError> {
        if let Some(index) = self.indexes.get_mut(attr).and_then(Option::as_mut) {
            index.set_code(row, new_code, attribute_name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeKind, Schema};
    use crate::table::Value;

    fn table() -> Table {
        let schema = Schema::builder()
            .categorical("gender", AttributeKind::Protected, &["Male", "Female"])
            .categorical(
                "lang",
                AttributeKind::Protected,
                &["English", "Indian", "Other"],
            )
            .numeric("score", AttributeKind::Observed, 0.0, 1.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for (g, l, s) in [
            ("Male", "English", 0.9),
            ("Male", "Indian", 0.8),
            ("Female", "English", 0.7),
            ("Female", "Other", 0.6),
            ("Male", "English", 0.5),
        ] {
            t.push_row(&[Value::cat(g), Value::cat(l), Value::num(s)])
                .unwrap();
        }
        t
    }

    #[test]
    fn postings_cover_table() {
        let t = table();
        let idx = CategoricalIndex::build(&t, 0).unwrap();
        assert_eq!(idx.rows_with_code(0).rows(), &[0, 1, 4]);
        assert_eq!(idx.rows_with_code(1).rows(), &[2, 3]);
        assert_eq!(idx.attribute(), 0);
    }

    #[test]
    fn split_restricts_to_within() {
        let t = table();
        let idx = CategoricalIndex::build(&t, 1).unwrap();
        let within = RowSet::from_rows(vec![0, 2, 3]);
        let parts = idx.split(&within);
        // English -> {0, 2}, Other -> {3}; Indian empty (dropped).
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[0].1.rows(), &[0, 2]);
        assert_eq!(parts[1].0, 2);
        assert_eq!(parts[1].1.rows(), &[3]);
    }

    #[test]
    fn split_partitions_are_disjoint_and_cover() {
        let t = table();
        let idx = CategoricalIndex::build(&t, 0).unwrap();
        let all = RowSet::all(t.len());
        let parts = idx.split(&all);
        let mut union = RowSet::empty();
        for (i, (_, a)) in parts.iter().enumerate() {
            for (_, b) in &parts[i + 1..] {
                assert!(a.is_disjoint(b));
            }
            union = union.union(a);
        }
        assert_eq!(union, all);
    }

    #[test]
    fn non_categorical_rejected() {
        let t = table();
        assert!(matches!(
            CategoricalIndex::build(&t, 2),
            Err(StoreError::NotCategorical { .. })
        ));
    }

    #[test]
    fn split_with_bins_matches_legacy_split() {
        let t = table();
        let idx = CategoricalIndex::build(&t, 1).unwrap();
        // Pretend scores fall in bins 0..3 per row.
        let bin_of = [0u32, 1, 2, 1, 0];
        let within = RowSet::from_rows(vec![0, 2, 3, 4]);
        let kernel = idx.split_with_bins(&within, &bin_of, 3);
        let legacy = idx.split(&within);
        assert_eq!(kernel.len(), legacy.len());
        for (child, (code, rows)) in kernel.iter().zip(&legacy) {
            assert_eq!(child.code, *code);
            assert_eq!(&child.rows, rows);
            // Bin counts re-derivable from the rows and bin_of.
            let mut expected = vec![0.0; 3];
            for row in rows.iter() {
                expected[bin_of[row] as usize] += 1.0;
            }
            assert_eq!(child.bin_counts, expected);
        }
    }

    #[test]
    fn split_with_bins_of_empty_set_is_empty() {
        let t = table();
        let idx = CategoricalIndex::build(&t, 0).unwrap();
        assert!(idx.split_with_bins(&RowSet::empty(), &[0; 5], 4).is_empty());
    }

    #[test]
    fn sharded_split_matches_serial_kernel_for_every_shard_count() {
        let t = table();
        let bin_of = [0u32, 1, 2, 1, 0];
        for attr in [0usize, 1] {
            let idx = CategoricalIndex::build(&t, attr).unwrap();
            for within in [
                RowSet::all(t.len()),
                RowSet::from_rows(vec![0, 2, 3, 4]),
                RowSet::from_rows(vec![1]),
                RowSet::empty(),
            ] {
                let serial = idx.split_with_bins(&within, &bin_of, 3);
                for shards in [1usize, 2, 3, 7] {
                    let plan = ShardPlan::new(t.len(), shards);
                    let sharded = idx.split_with_bins_sharded(&within, &bin_of, 3, &plan);
                    assert_eq!(sharded.len(), serial.len(), "shards={shards}");
                    for (a, b) in sharded.iter().zip(&serial) {
                        assert_eq!(a.code, b.code);
                        assert_eq!(a.rows, b.rows);
                        assert_eq!(a.bin_counts, b.bin_counts);
                    }
                }
                // The serial two-pass fast path matches too.
                let two_pass = idx.split_with_bins_two_pass(within.rows(), &bin_of, 3);
                assert_eq!(two_pass.len(), serial.len());
                for (a, b) in two_pass.iter().zip(&serial) {
                    assert_eq!(a.code, b.code);
                    assert_eq!(a.rows, b.rows);
                    assert_eq!(a.bin_counts, b.bin_counts);
                }
            }
        }
    }

    #[test]
    fn full_table_split_matches_the_general_kernel() {
        let t = table();
        let bin_of = [0u32, 1, 2, 1, 0];
        for attr in [0usize, 1] {
            let idx = CategoricalIndex::build(&t, attr).unwrap();
            let general = idx.split_with_bins(&RowSet::all(t.len()), &bin_of, 3);
            let full = idx.split_full_with_bins(&bin_of, 3);
            assert_eq!(full.len(), general.len());
            for (a, b) in full.iter().zip(&general) {
                assert_eq!(a.code, b.code);
                assert_eq!(a.rows, b.rows);
                assert_eq!(a.bin_counts, b.bin_counts);
            }
        }
    }

    #[test]
    fn onepass_byte_kernel_matches_the_scalar_kernel() {
        let t = table();
        let bin_of = [0u32, 1, 2, 1, 0];
        let bin8: Vec<u8> = bin_of.iter().map(|&b| b as u8).collect();
        let plan = ShardPlan::new(t.len(), 2);
        for attr in [0usize, 1] {
            let legacy = CategoricalIndex::build(&t, attr).unwrap();
            assert!(
                legacy.split_onepass(&[0, 1], &bin8, 3).is_none(),
                "legacy-built index has no byte column"
            );
            let idx = CategoricalIndex::build_sharded(&t, attr, &plan).unwrap();
            for within in [
                RowSet::all(t.len()),
                RowSet::from_rows(vec![0, 2, 3, 4]),
                RowSet::from_rows(vec![1]),
                RowSet::empty(),
            ] {
                let serial = idx.split_with_bins(&within, &bin_of, 3);
                let onepass = idx.split_onepass(within.rows(), &bin8, 3).unwrap();
                assert_eq!(onepass.len(), serial.len());
                for (a, b) in onepass.iter().zip(&serial) {
                    assert_eq!(a.code, b.code);
                    assert_eq!(a.rows, b.rows);
                    assert_eq!(a.bin_counts, b.bin_counts);
                }
                let full8 = idx.split_full_with_bins8(&bin8, 3);
                let full = idx.split_full_with_bins(&bin_of, 3);
                assert_eq!(full8.len(), full.len());
                for (a, b) in full8.iter().zip(&full) {
                    assert_eq!(a.code, b.code);
                    assert_eq!(a.rows, b.rows);
                    assert_eq!(a.bin_counts, b.bin_counts);
                }
            }
        }
    }

    #[test]
    fn byte_column_survives_index_maintenance() {
        let mut t = table();
        let plan = ShardPlan::new(t.len(), 3);
        let mut idx = CategoricalIndex::build_sharded(&t, 0, &plan).unwrap();
        t.push_row(&[Value::cat("Female"), Value::cat("Indian"), Value::num(0.4)])
            .unwrap();
        idx.push_row(1, "gender").unwrap();
        idx.set_code(0, 1, "gender").unwrap();
        let bin_of = [0u32, 1, 2, 1, 0, 2];
        let bin8: Vec<u8> = bin_of.iter().map(|&b| b as u8).collect();
        let within = RowSet::all(t.len());
        let serial = idx.split_with_bins(&within, &bin_of, 3);
        let onepass = idx.split_onepass(within.rows(), &bin8, 3).unwrap();
        assert_eq!(onepass.len(), serial.len());
        for (a, b) in onepass.iter().zip(&serial) {
            assert_eq!(a.code, b.code);
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.bin_counts, b.bin_counts);
        }
    }

    #[test]
    fn subset_build_indexes_only_the_requested_attributes() {
        let t = table();
        let plan = ShardPlan::new(t.len(), 2);
        let subset = IndexSet::build_sharded_subset(&t, &[1], &plan).unwrap();
        assert!(subset.get(0).is_none());
        let full = IndexSet::build(&t).unwrap();
        assert_eq!(subset.get(1).unwrap().codes(), full.get(1).unwrap().codes());
    }

    #[test]
    fn sharded_index_build_matches_push_based_build() {
        let t = table();
        for shards in [1usize, 2, 3, 7] {
            let plan = ShardPlan::new(t.len(), shards);
            let sharded = IndexSet::build_sharded(&t, &plan).unwrap();
            let legacy = IndexSet::build(&t).unwrap();
            for (attr, cardinality) in [(0usize, 2u32), (1, 3)] {
                let a = sharded.get(attr).unwrap();
                let b = legacy.get(attr).unwrap();
                assert_eq!(a.codes(), b.codes());
                for code in 0..cardinality {
                    assert_eq!(a.rows_with_code(code), b.rows_with_code(code));
                }
            }
        }
    }

    #[test]
    fn forward_codes_match_the_column() {
        let t = table();
        let idx = CategoricalIndex::build(&t, 0).unwrap();
        assert_eq!(idx.codes(), t.column(0).as_categorical().unwrap());
    }

    #[test]
    fn index_set_builds_for_splittable_only() {
        let t = table();
        let set = IndexSet::build(&t).unwrap();
        assert!(set.get(0).is_some());
        assert!(set.get(1).is_some());
        assert!(set.get(2).is_none());
    }

    #[test]
    fn push_row_matches_rebuild() {
        let mut t = table();
        let mut set = IndexSet::build(&t).unwrap();
        t.push_row(&[Value::cat("Female"), Value::cat("Indian"), Value::num(0.4)])
            .unwrap();
        set.push_row(&t).unwrap();
        let rebuilt = IndexSet::build(&t).unwrap();
        for attr in [0usize, 1] {
            let maintained = set.get(attr).unwrap();
            let fresh = rebuilt.get(attr).unwrap();
            assert_eq!(maintained.codes(), fresh.codes());
            for code in 0..3u32.min(fresh.codes().iter().max().unwrap() + 1) {
                assert_eq!(maintained.rows_with_code(code), fresh.rows_with_code(code));
            }
        }
    }

    #[test]
    fn set_code_moves_postings() {
        let t = table();
        let mut idx = CategoricalIndex::build(&t, 0).unwrap();
        // Row 0 is Male (code 0); move to Female (code 1).
        idx.set_code(0, 1, "gender").unwrap();
        assert_eq!(idx.rows_with_code(0).rows(), &[1, 4]);
        assert_eq!(idx.rows_with_code(1).rows(), &[0, 2, 3]);
        assert_eq!(idx.codes()[0], 1);
        // Same-code move is a no-op.
        idx.set_code(0, 1, "gender").unwrap();
        assert_eq!(idx.rows_with_code(1).rows(), &[0, 2, 3]);
        // Bad code / bad row rejected.
        assert!(idx.set_code(0, 9, "gender").is_err());
        assert!(idx.set_code(99, 0, "gender").is_err());
    }

    #[test]
    fn index_push_row_rejects_bad_code() {
        let t = table();
        let mut idx = CategoricalIndex::build(&t, 0).unwrap();
        assert!(matches!(
            idx.push_row(7, "gender"),
            Err(StoreError::BadCode { code: 7, .. })
        ));
    }

    #[test]
    fn index_set_set_code_skips_unindexed_attributes() {
        let t = table();
        let mut set = IndexSet::build(&t).unwrap();
        // Attribute 2 is numeric: no index, silently skipped.
        set.set_code(2, 0, 1, "score").unwrap();
        // Attribute 0 is indexed: forwarded.
        set.set_code(0, 0, 1, "gender").unwrap();
        assert_eq!(set.get(0).unwrap().codes()[0], 1);
    }

    #[test]
    fn empty_table_index() {
        let schema = Schema::builder()
            .categorical("g", AttributeKind::Protected, &["a", "b"])
            .build()
            .unwrap();
        let t = Table::new(schema);
        let idx = CategoricalIndex::build(&t, 0).unwrap();
        assert!(idx.rows_with_code(0).is_empty());
        assert!(idx.split(&RowSet::empty()).is_empty());
    }
}
