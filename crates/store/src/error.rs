//! Error type for the columnar store.

use std::fmt;

/// Errors raised by schema construction, ingestion and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Two attributes share a name.
    DuplicateAttribute {
        /// The repeated attribute name.
        name: String,
    },
    /// A categorical attribute was declared with no values.
    EmptyDomain {
        /// The attribute name.
        name: String,
    },
    /// A categorical attribute declares the same value twice.
    DuplicateDomainValue {
        /// The attribute name.
        attribute: String,
        /// The repeated value.
        value: String,
    },
    /// A numeric/integer range has `min > max` or non-finite bounds.
    BadRange {
        /// The attribute name.
        name: String,
    },
    /// The schema has no attributes.
    EmptySchema,
    /// Attribute name not present in the schema.
    NoSuchAttribute {
        /// The requested name.
        name: String,
    },
    /// A row has the wrong number of values.
    RowArity {
        /// Expected number of values (schema width).
        expected: usize,
        /// Provided number of values.
        got: usize,
    },
    /// A value's type does not match the column type.
    TypeMismatch {
        /// The attribute name.
        attribute: String,
        /// What the column stores.
        expected: &'static str,
    },
    /// A categorical value is outside the attribute's declared domain.
    UnknownCategory {
        /// The attribute name.
        attribute: String,
        /// The offending value.
        value: String,
    },
    /// A numeric/integer value is outside the attribute's declared range.
    OutOfRange {
        /// The attribute name.
        attribute: String,
        /// The offending value rendered as text.
        value: String,
    },
    /// The referenced attribute is not categorical (split/group-by/index
    /// require categorical attributes).
    NotCategorical {
        /// The attribute name.
        attribute: String,
    },
    /// The referenced attribute is categorical where a numeric/integer one
    /// is required (bucketisation).
    NotNumeric {
        /// The attribute name.
        attribute: String,
    },
    /// A categorical code is out of range for the attribute's dictionary.
    BadCode {
        /// The attribute name.
        attribute: String,
        /// The offending code.
        code: u32,
    },
    /// CSV parsing failed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// Bucketisation boundaries are invalid.
    BadBuckets {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A batch append ([`crate::Table::push_rows`]) rejected one row;
    /// no row of the batch was committed.
    BatchRow {
        /// 0-based index of the offending row within the batch.
        row: usize,
        /// What was wrong with it.
        error: Box<StoreError>,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateAttribute { name } => write!(f, "duplicate attribute `{name}`"),
            StoreError::EmptyDomain { name } => {
                write!(f, "categorical attribute `{name}` has an empty domain")
            }
            StoreError::DuplicateDomainValue { attribute, value } => {
                write!(f, "attribute `{attribute}` declares value `{value}` twice")
            }
            StoreError::BadRange { name } => write!(f, "attribute `{name}` has an invalid range"),
            StoreError::EmptySchema => write!(f, "schema has no attributes"),
            StoreError::NoSuchAttribute { name } => write!(f, "no attribute named `{name}`"),
            StoreError::RowArity { expected, got } => {
                write!(f, "row has {got} values, schema expects {expected}")
            }
            StoreError::TypeMismatch {
                attribute,
                expected,
            } => {
                write!(f, "attribute `{attribute}` expects a {expected} value")
            }
            StoreError::UnknownCategory { attribute, value } => {
                write!(
                    f,
                    "`{value}` is not in the domain of attribute `{attribute}`"
                )
            }
            StoreError::OutOfRange { attribute, value } => {
                write!(f, "value {value} out of range for attribute `{attribute}`")
            }
            StoreError::NotCategorical { attribute } => {
                write!(f, "attribute `{attribute}` is not categorical")
            }
            StoreError::NotNumeric { attribute } => {
                write!(f, "attribute `{attribute}` is not numeric")
            }
            StoreError::BadCode { attribute, code } => {
                write!(f, "code {code} out of range for attribute `{attribute}`")
            }
            StoreError::Csv { line, reason } => write!(f, "csv line {line}: {reason}"),
            StoreError::BadBuckets { reason } => write!(f, "bad buckets: {reason}"),
            StoreError::BatchRow { row, error } => write!(f, "batch row {row}: {error}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offenders() {
        let e = StoreError::UnknownCategory {
            attribute: "gender".into(),
            value: "X".into(),
        };
        let s = e.to_string();
        assert!(s.contains("gender") && s.contains('X'));
    }
}
