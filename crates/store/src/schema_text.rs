//! A plain-text schema descriptor format.
//!
//! CSV worker files carry values but not types; this sidecar format
//! makes populations self-describing so the CLI (and any downstream
//! tool) can audit arbitrary marketplaces, not just the paper's AMT
//! schema. One attribute per line:
//!
//! ```text
//! # fairjob schema v1
//! gender       protected categorical Male,Female
//! country      protected categorical America,India,Other
//! year_of_birth protected integer 1950 2009
//! language_test observed numeric 25 100
//! ```
//!
//! Kinds: `protected` | `observed` | `metadata`. Categorical domains are
//! comma-separated (values therefore must not contain commas — rejected
//! on write); attribute names must not contain whitespace. Blank lines
//! and `#` comments are ignored.

use crate::schema::{AttributeKind, DataType, Schema};
use crate::StoreError;

/// Serialise a schema to descriptor text.
///
/// # Errors
///
/// [`StoreError::Csv`]-style errors (reported with pseudo line numbers)
/// when a name contains whitespace or a categorical value contains a
/// comma/newline, which the format cannot represent.
pub fn to_text(schema: &Schema) -> Result<String, StoreError> {
    let mut out = String::from("# fairjob schema v1\n");
    for (line, attr) in schema.attributes().iter().enumerate() {
        if attr.name.chars().any(char::is_whitespace) {
            return Err(StoreError::Csv {
                line: line + 2,
                reason: format!("attribute name `{}` contains whitespace", attr.name),
            });
        }
        let kind = match attr.kind {
            AttributeKind::Protected => "protected",
            AttributeKind::Observed => "observed",
            AttributeKind::Metadata => "metadata",
        };
        match &attr.dtype {
            DataType::Categorical { domain } => {
                for value in domain {
                    if value.contains(',') || value.contains('\n') {
                        return Err(StoreError::Csv {
                            line: line + 2,
                            reason: format!(
                                "categorical value `{value}` contains a comma or newline"
                            ),
                        });
                    }
                }
                out.push_str(&format!(
                    "{} {} categorical {}\n",
                    attr.name,
                    kind,
                    domain.join(",")
                ));
            }
            DataType::Numeric { min, max } => {
                out.push_str(&format!("{} {} numeric {} {}\n", attr.name, kind, min, max));
            }
            DataType::Integer { min, max } => {
                out.push_str(&format!("{} {} integer {} {}\n", attr.name, kind, min, max));
            }
        }
    }
    Ok(out)
}

/// Parse descriptor text back into a schema.
///
/// # Errors
///
/// [`StoreError::Csv`] with the offending 1-based line, or schema
/// validation failures from [`crate::schema::SchemaBuilder::build`].
pub fn from_text(text: &str) -> Result<Schema, StoreError> {
    let mut builder = Schema::builder();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(name), Some(kind_token), Some(type_token)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(StoreError::Csv {
                line,
                reason: "expected `<name> <kind> <type> ...`".into(),
            });
        };
        let kind = match kind_token {
            "protected" => AttributeKind::Protected,
            "observed" => AttributeKind::Observed,
            "metadata" => AttributeKind::Metadata,
            other => {
                return Err(StoreError::Csv {
                    line,
                    reason: format!("unknown kind `{other}` (protected | observed | metadata)"),
                })
            }
        };
        match type_token {
            "categorical" => {
                let Some(domain_token) = parts.next() else {
                    return Err(StoreError::Csv {
                        line,
                        reason: "categorical needs a comma-separated domain".into(),
                    });
                };
                if parts.next().is_some() {
                    return Err(StoreError::Csv {
                        line,
                        reason: "unexpected trailing tokens".into(),
                    });
                }
                let domain: Vec<&str> = domain_token.split(',').collect();
                builder = builder.categorical(name, kind, &domain);
            }
            "numeric" | "integer" => {
                let (Some(min_token), Some(max_token), None) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    return Err(StoreError::Csv {
                        line,
                        reason: format!("{type_token} needs exactly `<min> <max>`"),
                    });
                };
                if type_token == "numeric" {
                    let min: f64 = min_token.parse().map_err(|e| StoreError::Csv {
                        line,
                        reason: format!("bad min `{min_token}`: {e}"),
                    })?;
                    let max: f64 = max_token.parse().map_err(|e| StoreError::Csv {
                        line,
                        reason: format!("bad max `{max_token}`: {e}"),
                    })?;
                    builder = builder.numeric(name, kind, min, max);
                } else {
                    let min: i64 = min_token.parse().map_err(|e| StoreError::Csv {
                        line,
                        reason: format!("bad min `{min_token}`: {e}"),
                    })?;
                    let max: i64 = max_token.parse().map_err(|e| StoreError::Csv {
                        line,
                        reason: format!("bad max `{max_token}`: {e}"),
                    })?;
                    builder = builder.integer(name, kind, min, max);
                }
            }
            other => {
                return Err(StoreError::Csv {
                    line,
                    reason: format!("unknown type `{other}` (categorical | numeric | integer)"),
                })
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::builder()
            .categorical("gender", AttributeKind::Protected, &["Male", "Female"])
            .integer("yob", AttributeKind::Protected, 1950, 2009)
            .numeric("approval", AttributeKind::Observed, 25.0, 100.0)
            .categorical("tag", AttributeKind::Metadata, &["a", "b"])
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip() {
        let schema = sample();
        let text = to_text(&schema).unwrap();
        let back = from_text(&text).unwrap();
        assert_eq!(schema, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# comment\n\n  \ngender protected categorical Male,Female\n";
        let schema = from_text(text).unwrap();
        assert_eq!(schema.width(), 1);
        assert_eq!(schema.attribute(0).cardinality(), Some(2));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        for (text, line, fragment) in [
            ("gender protected\n", 1, "expected"),
            ("x sacred categorical a,b\n", 1, "unknown kind"),
            ("x protected blob 1 2\n", 1, "unknown type"),
            ("\nx protected categorical\n", 2, "domain"),
            ("x protected numeric 1\n", 1, "exactly"),
            ("x protected numeric a b\n", 1, "bad min"),
            ("x protected integer 1 2 3\n", 1, "exactly"),
            ("x protected categorical a,b extra\n", 1, "trailing"),
        ] {
            match from_text(text) {
                Err(StoreError::Csv { line: got, reason }) => {
                    assert_eq!(got, line, "{text:?}");
                    assert!(reason.contains(fragment), "{text:?}: {reason}");
                }
                other => panic!("{text:?}: expected Csv error, got {other:?}"),
            }
        }
    }

    #[test]
    fn schema_validation_still_applies() {
        // Duplicate attribute names flow through to SchemaBuilder::build.
        let text = "x protected categorical a,b\nx observed numeric 0 1\n";
        assert!(matches!(
            from_text(text),
            Err(StoreError::DuplicateAttribute { .. })
        ));
    }

    #[test]
    fn unrepresentable_schemas_rejected_on_write() {
        let with_space = Schema::builder()
            .categorical("has space", AttributeKind::Protected, &["a"])
            .build()
            .unwrap();
        assert!(to_text(&with_space).is_err());
        let with_comma = Schema::builder()
            .categorical("x", AttributeKind::Protected, &["a,b"])
            .build()
            .unwrap();
        assert!(to_text(&with_comma).is_err());
    }

    #[test]
    fn amt_style_floats_roundtrip() {
        let text = "score observed numeric 0.25 0.75\n";
        let schema = from_text(text).unwrap();
        let again = to_text(&schema).unwrap();
        assert!(again.contains("0.25 0.75"));
    }
}
